// Filecast: scatter a large file across broker-selected peers with one
// call (Primitives::distribute_file), with event tracing enabled — the
// trace timeline is dumped to filecast_trace.csv for offline analysis.
//
//   $ ./filecast

#include <cstdio>

#include "peerlab/core/economic.hpp"
#include "peerlab/planetlab/deployment.hpp"
#include "peerlab/sim/trace.hpp"

using namespace peerlab;

int main() {
  sim::Simulator sim(/*seed=*/2024);
  planetlab::Deployment dep(sim);
  sim::Tracer tracer;
  dep.network().set_tracer(&tracer);
  dep.boot();
  dep.broker().set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
  overlay::Primitives api(dep.control());

  constexpr double kFileMb = 100.0;
  constexpr int kParts = 16;
  std::printf("filecast: scattering a %.0f MB file in %d parts over broker-selected peers\n",
              kFileMb, kParts);

  // Baseline: the same file to a single broker-selected peer.
  Seconds single_peer = 0.0;
  core::SelectionContext ctx;
  ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
  ctx.payload_size = megabytes(kFileMb);
  api.select_peers(ctx, 1, [&](std::vector<PeerId> best) {
    if (best.empty()) return;
    api.send_file(best.front(), megabytes(kFileMb), kParts,
                  [&](const transport::TransferResult& r) {
                    if (r.complete) single_peer = r.transmission_time();
                  });
  });
  sim.run();

  // Scatter: parts spread over up to 16 selected peers, in parallel.
  std::optional<overlay::FileService::DistributionResult> scattered;
  api.distribute_file(megabytes(kFileMb), kParts,
                      [&](const overlay::FileService::DistributionResult& r) {
                        scattered = r;
                      });
  sim.run();

  if (!scattered || !scattered->complete) {
    std::printf("scatter failed\n");
    return 1;
  }
  std::printf("\n%-28s %-7s %-9s %-12s\n", "peer share", "parts", "MB", "time (s)");
  std::printf("----------------------------------------------------------\n");
  for (const auto& share : scattered->shares) {
    std::printf("%-28s %-7d %-9.1f %-12.1f\n", to_string(share.peer).c_str(), share.parts,
                to_megabytes(share.bytes), share.transmission_time);
  }
  std::printf("\nsingle-peer delivery: %.1f s (%.1f min)\n", single_peer,
              to_minutes(single_peer));
  std::printf("scattered delivery:   %.1f s (%.1f min) — %.1fx faster\n",
              scattered->makespan(), to_minutes(scattered->makespan()),
              single_peer / scattered->makespan());

  tracer.write_csv("filecast_trace.csv");
  std::printf("\n%llu trace events written to filecast_trace.csv (%zu in buffer)\n",
              static_cast<unsigned long long>(tracer.recorded()), tracer.size());
  return 0;
}
