// Quickstart: stand up the paper's testbed (broker on the nozomi
// cluster + SC1..SC8 over a simulated PlanetLab), then walk the
// Primitives API end to end — discover peers, pick one with the
// economic model, ship it a file, run a task, chat.
//
//   $ ./quickstart

#include <cstdio>

#include "peerlab/core/economic.hpp"
#include "peerlab/planetlab/deployment.hpp"

using namespace peerlab;

int main() {
  // 1. Build the world: one Simulator drives everything.
  sim::Simulator sim(/*seed=*/42);
  planetlab::Deployment dep(sim);
  dep.boot();  // clients heartbeat and register at the broker
  std::printf("overlay up: %zu peers registered at %s\n",
              dep.broker().registered_clients().size(),
              planetlab::broker_host().hostname.c_str());

  // 2. The broker applies the economic (scheduling-based) model.
  dep.broker().set_selection_model(std::make_unique<core::EconomicSchedulingModel>());

  // 3. Program against the Primitives facade from the control peer.
  overlay::Primitives api(dep.control());

  api.discover_peers([](std::vector<jxta::Advertisement> peers) {
    std::printf("discovered %zu peers:\n", peers.size());
    for (const auto& adv : peers) {
      std::printf("  %-28s cpu=%.1f GHz\n", adv.name.c_str(),
                  adv.numeric_attribute("cpu_ghz", 0.0));
    }
  });

  // 4. Ask the broker for the best peer for a 10 MB transfer, then
  //    send the file in 4 parts.
  core::SelectionContext ctx;
  ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
  ctx.payload_size = megabytes(10.0);
  api.select_peers(ctx, 1, [&](std::vector<PeerId> chosen) {
    if (chosen.empty()) {
      std::printf("no peer eligible\n");
      return;
    }
    const PeerId dst = chosen.front();
    std::printf("broker selected %s for the transfer\n", to_string(dst).c_str());
    api.send_file(dst, megabytes(10.0), /*parts=*/4,
                  [dst](const transport::TransferResult& r) {
                    std::printf("file to %s: %s in %.1f s (petition %.2f s, %zu parts)\n",
                                to_string(dst).c_str(),
                                r.complete ? "delivered" : "FAILED", r.transmission_time(),
                                r.petition_time(), r.parts.size());
                  });
  });

  // 5. Submit a compute task and let the broker pick the executor.
  api.submit_task_auto(/*work=*/60.0, /*input_size=*/0,
                       [](const overlay::TaskOutcome& o) {
                         std::printf("task on %s: %s in %.1f s\n",
                                     to_string(o.executor).c_str(),
                                     o.ok ? "completed" : "failed", o.turnaround());
                       });

  // 6. Instant messaging between two SimpleClients.
  overlay::Primitives sc2(dep.sc(2));
  sc2.on_message([](PeerId from, std::int64_t tag) {
    std::printf("SC2 received chat %lld from %s\n", static_cast<long long>(tag),
                to_string(from).c_str());
  });
  overlay::Primitives sc4(dep.sc(4));
  sc4.send_message(dep.sc_peer(2), /*tag=*/7,
                   [](bool ok, Seconds rtt) {
                     std::printf("chat %s (rtt %.2f s)\n", ok ? "delivered" : "lost", rtt);
                   });

  // 7. Run the virtual clock until everything above settles.
  sim.run();
  std::printf("done at simulated t=%.1f s\n", sim.now());
  return 0;
}
