// Churn demo: PlanetLab slivers come and go. Peers drop out mid-run,
// the broker ages them out of the registry, selection routes around
// them, and the peers' statistics record the damage. Demonstrates the
// liveness machinery (heartbeats, offline detection, rejoin).
//
//   $ ./churn_demo

#include <cstdio>

#include "peerlab/core/economic.hpp"
#include "peerlab/planetlab/deployment.hpp"

using namespace peerlab;

int main() {
  sim::Simulator sim(/*seed=*/99);
  planetlab::DeploymentOptions opts;
  opts.client.heartbeat_interval = 10.0;
  planetlab::Deployment dep(sim, opts);
  dep.boot();
  dep.broker().set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
  overlay::Primitives api(dep.control());

  auto print_group = [&](const char* when) {
    int online = 0;
    for (const auto peer : dep.broker().registered_clients()) {
      online += dep.broker().online(peer) ? 1 : 0;
    }
    std::printf("[t=%7.1f] %-22s online=%d/8\n", sim.now(), when, online);
  };

  // A steady trickle of jobs throughout.
  int completed = 0, failed = 0;
  for (int j = 0; j < 30; ++j) {
    sim.schedule(20.0 + j * 40.0, [&] {
      api.submit_task_auto(60.0, 0, [&](const overlay::TaskOutcome& o) {
        (o.accepted && o.ok ? completed : failed)++;
      });
    });
  }

  // SC2 and SC4 (two of the best peers) crash at t=200...
  sim.schedule(200.0, [&] {
    dep.sc(2).stop();
    dep.sc(4).stop();
    std::printf("[t=%7.1f] SC2 and SC4 slivers killed\n", sim.now());
  });
  sim.schedule(260.0, [&] { print_group("after the crash"); });

  // ...and recover at t=700.
  sim.schedule(700.0, [&] {
    dep.sc(2).start();
    dep.sc(4).start();
    std::printf("[t=%7.1f] SC2 and SC4 slivers restarted\n", sim.now());
  });
  sim.schedule(760.0, [&] { print_group("after the recovery"); });

  print_group("steady state");
  sim.run();
  print_group("end of run");

  std::printf("\njobs: %d completed, %d failed/unplaced\n", completed, failed);
  std::printf("broker saw %llu heartbeats, applied %llu stat reports\n",
              static_cast<unsigned long long>(dep.broker().heartbeats_received()),
              static_cast<unsigned long long>(dep.broker().reports_applied()));
  return completed > 0 ? 0 : 1;
}
