// Virtual campus: the paper's validating application — "a P2P
// application for processing large size files of a virtual campus".
//
// A batch of lecture recordings must be transcoded: each job ships a
// large input file to a peer and runs a processing task there. The
// campus coordinator uses the broker's economic model so slow or busy
// peers (SC7!) do not become the bottleneck, and shares the processed
// content back through discovery.
//
//   $ ./virtual_campus

#include <cstdio>
#include <vector>

#include "peerlab/core/economic.hpp"
#include "peerlab/planetlab/deployment.hpp"

using namespace peerlab;

namespace {

struct Lecture {
  const char* name;
  double size_mb;
  GigaCycles transcode_work;
};

constexpr Lecture kBatch[] = {
    {"algorithms-week1.mp4", 90.0, 180.0}, {"networks-week1.mp4", 60.0, 120.0},
    {"databases-week1.mp4", 75.0, 150.0},  {"os-week1.mp4", 120.0, 240.0},
    {"ai-week1.mp4", 45.0, 90.0},          {"compilers-week1.mp4", 80.0, 160.0},
};

}  // namespace

int main() {
  sim::Simulator sim(/*seed=*/7);
  planetlab::Deployment dep(sim);
  dep.boot();
  dep.broker().set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
  overlay::Primitives coordinator(dep.control());

  std::printf("virtual campus: transcoding %zu lectures across the peergroup\n\n",
              std::size(kBatch));

  struct JobReport {
    const Lecture* lecture;
    overlay::TaskOutcome outcome;
  };
  std::vector<JobReport> reports;

  // Lectures arrive a minute apart, so the broker's heartbeat-fed view
  // of peer load has time to react and the batch spreads out.
  int submitted = 0;
  for (const auto& lecture : kBatch) {
    const double at = 60.0 * submitted;
    ++submitted;
    sim.schedule(at, [&, lecture = &lecture] {
      coordinator.submit_task_auto(
          lecture->transcode_work, megabytes(lecture->size_mb),
          [&, lecture](const overlay::TaskOutcome& outcome) {
            reports.push_back(JobReport{lecture, outcome});
            if (outcome.ok) {
              // Publish the processed artifact so students can find it.
              coordinator.share_content(std::string(lecture->name) + ".transcoded",
                                        megabytes(lecture->size_mb * 0.4));
            }
          });
    });
  }
  sim.run();

  std::printf("%-26s %-8s %-10s %-12s %-12s\n", "lecture", "peer", "status",
              "transfer(s)", "total(min)");
  std::printf("--------------------------------------------------------------------\n");
  int ok = 0;
  double makespan = 0.0;
  for (const auto& report : reports) {
    ok += report.outcome.ok ? 1 : 0;
    makespan = std::max(makespan, report.outcome.completed);
    std::printf("%-26s %-8s %-10s %-12.1f %-12.1f\n", report.lecture->name,
                to_string(report.outcome.executor).c_str(),
                report.outcome.ok ? "done" : "FAILED",
                report.outcome.input_transfer_time(),
                to_minutes(report.outcome.turnaround()));
  }
  std::printf("\n%d/%d lectures processed; campus batch finished at t=%.1f min\n", ok,
              submitted, to_minutes(makespan));

  // A student peer discovers a processed lecture.
  overlay::Primitives student(dep.sc(2));
  student.discover_content("algorithms-week1.mp4.transcoded",
                           [](std::vector<jxta::Advertisement> found) {
                             std::printf("student found %zu advertisement(s) for the "
                                         "transcoded lecture\n",
                                         found.size());
                           });
  sim.run();
  return ok == submitted ? 0 : 1;
}
