// Selection-model shoot-out: run the same job stream under each of the
// paper's models (plus the blind baseline) and compare what the
// application feels — makespan, mean turnaround, and how often the
// straggler SC7 was picked. This is the paper's conclusion in one
// program: "appropriate selection model should be used according to
// the characteristics of the application".
//
//   $ ./selection_comparison

#include <cstdio>
#include <map>
#include <vector>

#include "peerlab/core/blind.hpp"
#include "peerlab/core/data_evaluator.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/core/user_preference.hpp"
#include "peerlab/planetlab/deployment.hpp"

using namespace peerlab;

namespace {

constexpr int kJobs = 24;
constexpr GigaCycles kWork = 120.0;
constexpr double kInputMb = 20.0;

struct Outcome {
  double makespan_min = 0.0;
  double mean_turnaround_min = 0.0;
  int completed = 0;
  int straggler_picks = 0;
};

Outcome run_with_model(int model_index) {
  sim::Simulator sim(/*seed=*/1234);
  planetlab::Deployment dep(sim);
  dep.boot();

  switch (model_index) {
    case 0:
      dep.broker().set_selection_model(std::make_unique<core::BlindModel>());
      break;
    case 1:
      dep.broker().set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
      break;
    case 2:
      dep.broker().set_selection_model(std::make_unique<core::DataEvaluatorModel>(
          core::DataEvaluatorModel::same_priority()));
      break;
    case 3: {
      // The user's fixed habit: the peers in SC order.
      std::vector<PeerId> order;
      for (int i = 1; i <= 8; ++i) order.push_back(dep.sc_peer(i));
      dep.broker().set_selection_model(std::make_unique<core::UserPreferenceModel>(order));
      break;
    }
    default:
      break;
  }

  overlay::Primitives api(dep.control());
  Outcome outcome;
  double turnaround_sum = 0.0;
  const PeerId straggler = dep.sc_peer(7);

  for (int j = 0; j < kJobs; ++j) {
    sim.schedule(static_cast<double>(j) * 30.0, [&, straggler] {
      api.submit_task_auto(kWork, megabytes(kInputMb), [&,
                                                        straggler](const overlay::TaskOutcome& o) {
        if (o.executor == straggler) ++outcome.straggler_picks;
        if (o.accepted && o.ok) {
          ++outcome.completed;
          turnaround_sum += o.turnaround();
          outcome.makespan_min = std::max(outcome.makespan_min, to_minutes(o.completed));
        }
      });
    });
  }
  sim.run();
  if (outcome.completed > 0) {
    outcome.mean_turnaround_min =
        to_minutes(turnaround_sum / static_cast<double>(outcome.completed));
  }
  return outcome;
}

}  // namespace

int main() {
  const char* names[4] = {"blind (no selection)", "economic scheduling",
                          "data evaluator (same priority)", "user preference (fixed)"};
  std::printf("%d jobs (%.0f Gcycles + %.0f MB input each), broker-selected executors\n\n",
              kJobs, kWork, kInputMb);
  std::printf("%-32s %-10s %-16s %-14s %s\n", "model", "completed", "mean turnaround",
              "makespan", "SC7 picks");
  std::printf("------------------------------------------------------------------------------\n");
  double blind_makespan = 0.0, econ_makespan = 0.0;
  for (int m = 0; m < 4; ++m) {
    const Outcome o = run_with_model(m);
    if (m == 0) blind_makespan = o.makespan_min;
    if (m == 1) econ_makespan = o.makespan_min;
    std::printf("%-32s %-10d %-13.1f min %-11.1f min %d\n", names[m], o.completed,
                o.mean_turnaround_min, o.makespan_min, o.straggler_picks);
  }
  std::printf("\nusing peers in a \"blind way\" makes the straggler the bottleneck;\n");
  std::printf("informed selection cuts the makespan by %.1fx here.\n",
              blind_makespan / std::max(econ_makespan, 1e-9));
  return 0;
}
