#pragma once

// Deterministic random source with the distributions the network and
// workload models need. Wraps one mt19937_64 per simulation; fork()
// derives independent streams (e.g. one per node) so adding a draw in
// one component does not perturb another's sequence.

#include <cstdint>
#include <random>
#include <vector>

#include "peerlab/common/units.hpp"

namespace peerlab::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed == 0 ? 0x9E3779B97F4A7C15ull : seed) {}

  /// Derives an independent stream keyed by `stream`; deterministic in
  /// (seed, stream).
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Normal draw; sigma >= 0.
  double normal(double mean, double sigma);

  /// Lognormal parameterized by its *actual* mean and the sigma of the
  /// underlying normal — the natural way to say "mean latency 12.86 s
  /// with moderate spread".
  double lognormal_mean(double mean, double sigma_log);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Bounded Pareto on [lo, hi] with shape alpha (heavy-tailed sizes).
  double pareto(double lo, double hi, double alpha);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Raw engine access for std distributions in tests.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace peerlab::sim
