#pragma once

// The discrete-event simulator core.
//
// A Simulator owns the virtual clock, the pending-event set and the run
// loop. Everything in peerlab (network flows, protocol timers, task
// executions) advances by scheduling closures. A simulation is
// single-threaded and fully deterministic given its seed; experiment
// harnesses run many independent Simulators in parallel threads instead
// of sharing one.

#include <cstdint>
#include <limits>

#include "peerlab/common/check.hpp"
#include "peerlab/common/units.hpp"
#include "peerlab/sim/event_queue.hpp"
#include "peerlab/sim/rng.hpp"

namespace peerlab::sim {

class Simulator {
 public:
  /// `seed` drives every random draw in this simulation instance.
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] Seconds now() const noexcept { return now_; }

  /// Schedules `action` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule(Seconds delay, Action action) {
    PEERLAB_CHECK_MSG(delay >= 0.0, "cannot schedule into the past");
    return queue_.push(now_ + delay, std::move(action));
  }

  /// Schedules `action` at absolute time `when` (when >= now()).
  EventHandle schedule_at(Seconds when, Action action) {
    PEERLAB_CHECK_MSG(when >= now_, "cannot schedule into the past");
    return queue_.push(when, std::move(action));
  }

  /// Moves a pending event to fire `delay` seconds from now, keeping
  /// its slot and action (see EventQueue::rearm). Firing order matches
  /// what cancel() + schedule(same action) would produce, without the
  /// slot recycling and std::function churn of that pair.
  void reschedule(EventHandle& handle, Seconds delay) {
    PEERLAB_CHECK_MSG(delay >= 0.0, "cannot schedule into the past");
    queue_.rearm(handle, now_ + delay);
  }

  /// Schedules a *daemon* event: periodic background work (heartbeats,
  /// republish timers) that must not keep run() alive. run() exits once
  /// only daemon events remain; a bounded run_until() still fires them.
  EventHandle schedule_daemon(Seconds delay, Action action) {
    PEERLAB_CHECK_MSG(delay >= 0.0, "cannot schedule into the past");
    return queue_.push(now_ + delay, std::move(action), /*daemon=*/true);
  }

  /// Runs until no non-daemon work remains. Returns events executed.
  std::uint64_t run() { return run_until(std::numeric_limits<Seconds>::infinity()); }

  /// Runs events with time <= horizon; advances the clock to the last
  /// executed event (or to `horizon` if finite and the queue drained
  /// earlier events only). Returns events executed.
  std::uint64_t run_until(Seconds horizon);

  /// Executes at most `count` events. Returns events executed.
  std::uint64_t step(std::uint64_t count = 1);

  /// Requests the run loop to exit after the current event.
  void stop() noexcept { stopped_ = true; }

  /// Discards all pending events.
  void clear() noexcept { queue_.clear(); }

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  /// True while non-daemon events remain — the condition run() runs
  /// under. External drivers stepping the simulator (profilers) use it
  /// to stop where run() would, instead of spinning on daemons forever.
  [[nodiscard]] bool has_pending_work() const noexcept { return queue_.has_work(); }
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const noexcept { return executed_; }

  /// The simulation-wide random source. All stochastic models draw from
  /// it (or from streams forked off it) so a seed fixes the whole run.
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  EventQueue queue_;
  Rng rng_;
  Seconds now_ = 0.0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace peerlab::sim
