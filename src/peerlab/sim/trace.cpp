#include "peerlab/sim/trace.hpp"

#include <fstream>
#include <sstream>

#include "peerlab/common/check.hpp"

namespace peerlab::sim {

const char* to_string(TraceCategory category) noexcept {
  switch (category) {
    case TraceCategory::kNetwork: return "network";
    case TraceCategory::kTransport: return "transport";
    case TraceCategory::kOverlay: return "overlay";
    case TraceCategory::kTask: return "task";
    case TraceCategory::kSelection: return "selection";
    case TraceCategory::kOther: return "other";
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  PEERLAB_CHECK_MSG(capacity_ > 0, "tracer needs capacity");
}

void Tracer::record(Seconds time, TraceCategory category, std::string label,
                    std::string detail, std::uint64_t a, std::uint64_t b) {
  ++recorded_;
  if (events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  TraceEvent event;
  event.time = time;
  event.category = category;
  event.label = std::move(label);
  event.detail = std::move(detail);
  event.a = a;
  event.b = b;
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::by_category(TraceCategory category) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.category == category) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> Tracer::by_label(const std::string& label) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.label == label) out.push_back(e);
  }
  return out;
}

std::size_t Tracer::count(TraceCategory category) const {
  std::size_t n = 0;
  for (const auto& e : events_) n += (e.category == category) ? 1 : 0;
  return n;
}

std::size_t Tracer::count_label(const std::string& label) const {
  std::size_t n = 0;
  for (const auto& e : events_) n += (e.label == label) ? 1 : 0;
  return n;
}

void Tracer::clear() {
  events_.clear();
  recorded_ = 0;
  dropped_ = 0;
}

std::string Tracer::csv() const {
  std::ostringstream out;
  out << "time,category,label,detail,a,b\n";
  for (const auto& e : events_) {
    out << e.time << ',' << to_string(e.category) << ',' << e.label << ',' << e.detail
        << ',' << e.a << ',' << e.b << '\n';
  }
  return out.str();
}

void Tracer::write_csv(const std::string& path) const {
  std::ofstream file(path);
  PEERLAB_CHECK_MSG(file.good(), "cannot open " + path);
  file << csv();
}

}  // namespace peerlab::sim
