#include "peerlab/sim/trace.hpp"

#include <fstream>
#include <sstream>

#include "peerlab/common/check.hpp"

namespace peerlab::sim {

namespace {

/// RFC-4180 field: quoted iff it contains a comma, quote, CR or LF;
/// embedded quotes are doubled.
void append_csv_field(std::string& out, std::string_view field) {
  if (field.find_first_of(",\"\r\n") == std::string_view::npos) {
    out.append(field);
    return;
  }
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

const char* to_string(TraceCategory category) noexcept {
  switch (category) {
    case TraceCategory::kNetwork: return "network";
    case TraceCategory::kTransport: return "transport";
    case TraceCategory::kOverlay: return "overlay";
    case TraceCategory::kTask: return "task";
    case TraceCategory::kSelection: return "selection";
    case TraceCategory::kOther: return "other";
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  PEERLAB_CHECK_MSG(capacity_ > 0, "tracer needs capacity");
}

void Tracer::record(Seconds time, TraceCategory category, std::string_view label,
                    std::string_view detail, std::uint64_t a, std::uint64_t b) {
  ++recorded_;
  TraceEvent* slot;
  if (ring_.size() < capacity_) {
    slot = &ring_.emplace_back();
  } else {
    // Overwrite the oldest slot in place; its strings keep their
    // capacity, so a warm ring records without allocating.
    slot = &ring_[head_];
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
  slot->time = time;
  slot->category = category;
  slot->label.assign(label);
  slot->detail.assign(detail);
  slot->a = a;
  slot->b = b;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for_each([&](const TraceEvent& e) { out.push_back(e); });
  return out;
}

std::vector<TraceEvent> Tracer::by_category(TraceCategory category) const {
  std::vector<TraceEvent> out;
  for_each([&](const TraceEvent& e) {
    if (e.category == category) out.push_back(e);
  });
  return out;
}

std::vector<TraceEvent> Tracer::by_label(std::string_view label) const {
  std::vector<TraceEvent> out;
  for_each([&](const TraceEvent& e) {
    if (e.label == label) out.push_back(e);
  });
  return out;
}

std::size_t Tracer::count(TraceCategory category) const {
  std::size_t n = 0;
  for_each([&](const TraceEvent& e) { n += (e.category == category) ? 1 : 0; });
  return n;
}

std::size_t Tracer::count_label(std::string_view label) const {
  std::size_t n = 0;
  for_each([&](const TraceEvent& e) { n += (e.label == label) ? 1 : 0; });
  return n;
}

void Tracer::clear() {
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

std::string Tracer::csv() const {
  std::string out = "time,category,label,detail,a,b\n";
  std::ostringstream num;
  for_each([&](const TraceEvent& e) {
    num.str("");
    num << e.time;
    out.append(num.str());
    out.push_back(',');
    out.append(to_string(e.category));
    out.push_back(',');
    append_csv_field(out, e.label);
    out.push_back(',');
    append_csv_field(out, e.detail);
    out.push_back(',');
    out.append(std::to_string(e.a));
    out.push_back(',');
    out.append(std::to_string(e.b));
    out.push_back('\n');
  });
  return out;
}

void Tracer::write_csv(const std::string& path) const {
  std::ofstream file(path);
  PEERLAB_CHECK_MSG(file.good(), "cannot open " + path);
  file << csv();
}

}  // namespace peerlab::sim
