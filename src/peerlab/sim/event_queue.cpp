#include "peerlab/sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <utility>

#include "peerlab/common/check.hpp"

namespace peerlab::sim {

namespace {

// Below this size a comparison sort of the full (time, packed) key beats
// the radix passes' fixed costs. The comparator is a total order, so no
// stability requirement applies on this path.
constexpr std::size_t kSortCutoff = 64;

/// Time as orderable bits: for non-negative finite doubles the IEEE-754
/// bit pattern is monotone in the value, so unsigned digit-wise radix
/// order equals numeric order. push() canonicalises -0.0 to keep this
/// true at zero.
[[nodiscard]] std::uint64_t time_bits(Seconds t) noexcept {
  return std::bit_cast<std::uint64_t>(t);
}

#if defined(__GNUC__) || defined(__clang__)
inline void prefetch(const void* p) noexcept { __builtin_prefetch(p); }
#else
inline void prefetch(const void*) noexcept {}
#endif

}  // namespace

EventHandle EventQueue::push(Seconds when, Action action, bool daemon) {
  PEERLAB_CHECK_MSG(std::isfinite(when) && when >= 0.0, "event time must be finite and >= 0");
  PEERLAB_CHECK_MSG(static_cast<bool>(action), "event action must be callable");
  PEERLAB_CHECK_MSG(bottom_.size() + far_.size() < kSlotMask,
                    "too many concurrent events (2^20 limit)");
  PEERLAB_CHECK_MSG(next_seq_ < (std::uint64_t{1} << (64 - kSeqShift)),
                    "event sequence space exhausted");
  if (when == 0.0) when = 0.0;  // -0.0 -> +0.0 so bit order == numeric order
  const std::uint32_t slot = acquire_slot();
  detail::EventSlot& state = pool_->slots[slot];
  state.action = std::move(action);
  state.cancelled = false;
  state.daemon = daemon;
  const Entry entry{when, (next_seq_++ << kSeqShift) | (daemon ? kDaemonBit : 0) | slot};
  state.armed_packed = entry.packed;
  state.armed_time = when;
  enqueue(entry);
  ++pool_->live;
  if (!daemon) ++pool_->regular_live;
  return EventHandle(pool_, slot, state.generation);
}

void EventQueue::rearm(EventHandle& handle, Seconds when) {
  PEERLAB_CHECK_MSG(std::isfinite(when) && when >= 0.0, "event time must be finite and >= 0");
  PEERLAB_CHECK_MSG(handle.pool_ == pool_ && handle.pending(),
                    "rearm requires a pending event of this queue");
  if (when == 0.0) when = 0.0;  // -0.0 -> +0.0 so bit order == numeric order
  const std::uint32_t slot = handle.slot_;
  detail::EventSlot& state = pool_->slots[slot];
  // Find the owning entry inside the sorted window by its exact key.
  // Keys are unique (the sequence word), so this either lands on the
  // entry or proves it lives in `far_`.
  const Entry old{state.armed_time, state.armed_packed};
  const auto it = std::lower_bound(
      bottom_.begin(), bottom_.end(), old,
      [](const Entry& a, const Entry& b) { return earlier(b, a); });
  if (it != bottom_.end() && it->packed == old.packed) {
    PEERLAB_CHECK_MSG(next_seq_ < (std::uint64_t{1} << (64 - kSeqShift)),
                      "event sequence space exhausted");
    // In-place replacement: same slot, same action, fresh sequence
    // number. Entry count is conserved, so list capacities stay within
    // the slot-count bound acquire_slot() maintains — no allocation.
    bottom_.erase(it);
    const Entry entry{when,
                      (next_seq_++ << kSeqShift) | (state.daemon ? kDaemonBit : 0) | slot};
    state.armed_packed = entry.packed;
    state.armed_time = when;
    enqueue(entry);
    return;
  }
  // Old entry sits in `far_` (unsorted, so not cheaply erasable):
  // degrade to literal cancel+push, which re-slots the event and leaves
  // the usual cancelled residue for refill() to compact away.
  const bool daemon = state.daemon;
  Action action = std::move(state.action);
  handle.cancel();  // nulls the (already moved-from) action, books the residue
  handle = push(when, std::move(action), daemon);
}

void EventQueue::enqueue(const Entry& entry) {
  if (entry.time < bottom_limit_) {
    // Inside the sorted window: ordered insert. Near-future events land
    // near the back, so the shifted tail is short in the common case.
    const auto it = std::lower_bound(
        bottom_.begin(), bottom_.end(), entry,
        [](const Entry& a, const Entry& b) { return earlier(b, a); });
    bottom_.insert(it, entry);
  } else if (bottom_.empty() && far_.empty()) {
    // Empty queue: seed the sorted window directly and raise the limit,
    // so a pop-one/push-one cadence (event chains, single timers) never
    // routes through refill at all.
    bottom_.push_back(entry);
    bottom_limit_ = entry.time;
  } else {
    far_.push_back(entry);
  }
}

Seconds EventQueue::next_time() const {
  drop_dead();
  PEERLAB_CHECK(!bottom_.empty());
  return bottom_.back().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_dead();
  PEERLAB_CHECK(!bottom_.empty());
  const Entry top = bottom_.back();
  bottom_.pop_back();
  const std::size_t n = bottom_.size();
  if (n >= 4) {
    // The next few pops' slots are already known; hide their cache miss
    // behind this pop's work.
    prefetch(&pool_->slots[slot_of(bottom_[n - 4])]);
  }
  const std::uint32_t slot = slot_of(top);
  Fired fired{top.time, std::move(pool_->slots[slot].action)};
  --pool_->live;
  if (!daemon_of(top)) --pool_->regular_live;
  release_slot(slot);
  return fired;
}

void EventQueue::clear() noexcept {
  for (const Entry& entry : bottom_) release_slot(slot_of(entry));
  for (const Entry& entry : far_) release_slot(slot_of(entry));
  bottom_.clear();
  far_.clear();
  bottom_limit_ = 0.0;
  pool_->live = 0;
  pool_->regular_live = 0;
  pool_->cancelled_scheduled = 0;
}

void EventQueue::drop_dead() const {
  for (;;) {
    while (bottom_.empty() && !far_.empty()) refill();
    if (bottom_.empty() || pool_->cancelled_scheduled == 0) return;
    const std::uint32_t slot = slot_of(bottom_.back());
    if (!pool_->slots[slot].cancelled) return;
    --pool_->cancelled_scheduled;
    release_slot(slot);
    bottom_.pop_back();
  }
}

void EventQueue::refill() const {
  std::size_t n = far_.size();
  if (pool_->cancelled_scheduled != 0) {
    // Compact cancelled entries away before sorting: recycles their
    // slots now and keeps the sort sized to live work. The in-order
    // compaction preserves `far_`'s push order.
    std::size_t live = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t slot = slot_of(far_[i]);
      if (pool_->slots[slot].cancelled) {
        --pool_->cancelled_scheduled;
        release_slot(slot);
      } else {
        far_[live++] = far_[i];
      }
    }
    far_.resize(live);
    n = live;
    if (n == 0) return;
  }
  if (n == 1) {
    bottom_.push_back(far_[0]);
    bottom_limit_ = far_[0].time;
    far_.clear();
    return;
  }
  if (n <= kSortCutoff) {
    std::sort(far_.begin(), far_.end(),
              [](const Entry& a, const Entry& b) { return earlier(a, b); });
  } else {
    sort_far();
  }
  // Reverse-copy the ascending order into descending storage so pop is
  // pop_back(); the full reversal also reverses equal-time runs, which
  // is exactly what puts their pop order back to FIFO.
  bottom_.resize(n);
  for (std::size_t i = 0; i < n; ++i) bottom_[i] = far_[n - 1 - i];
  bottom_limit_ = far_[n - 1].time;
  far_.clear();
}

void EventQueue::sort_far() const {
  const std::size_t n = far_.size();
  sort_tmp_.resize(n);
  // One read pass builds the histograms for all eight digit positions;
  // digit positions every key shares (common: high exponent bytes, low
  // mantissa zeros) cost no scatter pass at all.
  std::uint32_t hist[8][256] = {};
  for (const Entry& e : far_) {
    const std::uint64_t k = time_bits(e.time);
    for (int pass = 0; pass < 8; ++pass) ++hist[pass][(k >> (8 * pass)) & 0xFF];
  }
  Entry* src = far_.data();
  Entry* dst = sort_tmp_.data();
  for (int pass = 0; pass < 8; ++pass) {
    const std::uint32_t* h = hist[pass];
    bool trivial = false;
    for (int b = 0; b < 256; ++b) {
      if (h[b] == n) {
        trivial = true;
        break;
      }
    }
    if (trivial) continue;
    std::uint32_t offsets[256];
    std::uint32_t sum = 0;
    for (int b = 0; b < 256; ++b) {
      offsets[b] = sum;
      sum += h[b];
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[offsets[(time_bits(src[i].time) >> (8 * pass)) & 0xFF]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != far_.data()) far_.swap(sort_tmp_);
}

std::uint32_t EventQueue::acquire_slot() {
  detail::EventPool& pool = *pool_;
  if (!pool.free_list.empty()) {
    const std::uint32_t slot = pool.free_list.back();
    pool.free_list.pop_back();
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(pool.slots.size());
  pool.slots.emplace_back();
  // Keep the free list's capacity ahead of the slot count so releases
  // (including those on noexcept paths) never allocate. Track the slot
  // vector's *capacity*, not its size, so growth stays amortized. The
  // entry lists each hold at most one entry per slot, so growing them
  // here too makes every later push/refill genuinely allocation-free.
  if (pool.free_list.capacity() < pool.slots.size()) {
    pool.free_list.reserve(pool.slots.capacity());
  }
  if (bottom_.capacity() < pool.slots.size()) bottom_.reserve(pool.slots.capacity());
  if (far_.capacity() < pool.slots.size()) far_.reserve(pool.slots.capacity());
  if (sort_tmp_.capacity() < pool.slots.size()) sort_tmp_.reserve(pool.slots.capacity());
  return slot;
}

void EventQueue::release_slot(std::uint32_t slot) const noexcept {
  detail::EventSlot& state = pool_->slots[slot];
  state.action = nullptr;
  state.cancelled = false;
  ++state.generation;  // invalidate outstanding handles before reuse
  pool_->free_list.push_back(slot);
}

}  // namespace peerlab::sim
