#include "peerlab/sim/event_queue.hpp"

#include <cmath>
#include <utility>

#include "peerlab/common/check.hpp"

namespace peerlab::sim {

bool EventHandle::pending() const noexcept {
  return state_ && !state_->cancelled && !state_->fired;
}

void EventHandle::cancel() noexcept {
  if (state_ && !state_->cancelled && !state_->fired) {
    state_->cancelled = true;
    if (!state_->daemon && state_->regular_live) {
      --*state_->regular_live;
    }
  }
}

EventHandle EventQueue::push(Seconds when, Action action, bool daemon) {
  PEERLAB_CHECK_MSG(std::isfinite(when) && when >= 0.0, "event time must be finite and >= 0");
  PEERLAB_CHECK_MSG(static_cast<bool>(action), "event action must be callable");
  auto state = std::make_shared<EventHandle::State>();
  state->daemon = daemon;
  if (!daemon) {
    state->regular_live = regular_live_;
    ++*regular_live_;
  }
  heap_.push(Entry{when, next_seq_++, std::move(action), state});
  ++live_;
  return EventHandle(std::move(state));
}

void EventQueue::drop_dead() {
  while (!heap_.empty() && heap_.top().state->cancelled) {
    heap_.pop();
    --live_;
  }
}

bool EventQueue::empty() const noexcept {
  // live_ counts non-cancelled entries... but cancel() happens on the
  // handle without touching the queue, so recompute lazily.
  auto* self = const_cast<EventQueue*>(this);
  self->drop_dead();
  return heap_.empty();
}

Seconds EventQueue::next_time() const {
  auto* self = const_cast<EventQueue*>(this);
  self->drop_dead();
  PEERLAB_CHECK(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_dead();
  PEERLAB_CHECK(!heap_.empty());
  const Entry& top = heap_.top();
  Fired fired{top.time, std::move(top.action)};
  top.state->fired = true;
  if (!top.state->daemon) {
    --*regular_live_;
  }
  heap_.pop();
  --live_;
  return fired;
}

void EventQueue::clear() noexcept {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (!top.state->cancelled && !top.state->fired && !top.state->daemon) {
      --*regular_live_;
    }
    top.state->cancelled = true;
    heap_.pop();
  }
  live_ = 0;
}

}  // namespace peerlab::sim
