#include "peerlab/sim/simulator.hpp"

#include <cmath>

namespace peerlab::sim {

std::uint64_t Simulator::run_until(Seconds horizon) {
  stopped_ = false;
  const bool bounded = std::isfinite(horizon);
  std::uint64_t ran = 0;
  // Unbounded runs stop once only daemon events remain; bounded runs
  // fire daemons too, up to the horizon.
  while (!stopped_ && !queue_.empty() && (bounded || queue_.has_work()) &&
         queue_.next_time() <= horizon) {
    auto fired = queue_.pop();
    PEERLAB_CHECK_MSG(fired.time >= now_, "event queue went backwards");
    now_ = fired.time;
    fired.action();
    ++ran;
  }
  if (std::isfinite(horizon) && now_ < horizon && !stopped_) {
    now_ = horizon;
  }
  executed_ += ran;
  return ran;
}

std::uint64_t Simulator::step(std::uint64_t count) {
  stopped_ = false;
  std::uint64_t ran = 0;
  while (!stopped_ && ran < count && !queue_.empty()) {
    auto fired = queue_.pop();
    PEERLAB_CHECK_MSG(fired.time >= now_, "event queue went backwards");
    now_ = fired.time;
    fired.action();
    ++ran;
  }
  executed_ += ran;
  return ran;
}

}  // namespace peerlab::sim
