#pragma once

// Streaming summary statistics and a fixed-bin histogram, used by the
// experiment harness to aggregate repetition results and by the stats
// module for windowed averages' sanity checks.

#include <cstddef>
#include <string>
#include <vector>

namespace peerlab::sim {

/// Online mean/variance (Welford) plus min/max. O(1) per sample.
class Summary {
 public:
  void add(double x) noexcept;
  void merge(const Summary& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width bins over [lo, hi); out-of-range samples clamp to the
/// edge bins so totals are conserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;

  /// Linear-interpolated quantile estimate, q in [0,1].
  [[nodiscard]] double quantile(double q) const;

  /// Compact ASCII rendering for logs.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace peerlab::sim
