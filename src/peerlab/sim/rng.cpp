#include "peerlab/sim/rng.hpp"

#include <algorithm>
#include <cmath>

#include "peerlab/common/check.hpp"

namespace peerlab::sim {

namespace {
// splitmix64: decorrelates fork streams from the parent seed.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace

Rng Rng::fork(std::uint64_t stream) const noexcept {
  // Mix the engine's current seed-derived identity with the stream key.
  // We cannot read the engine state portably, so fold the stream into a
  // fresh seed derived from a copy's next output.
  auto copy = engine_;
  const std::uint64_t base = copy();
  return Rng(splitmix64(base ^ splitmix64(stream)));
}

double Rng::uniform(double lo, double hi) {
  PEERLAB_DCHECK(lo <= hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PEERLAB_DCHECK(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  const double clamped = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution dist(clamped);
  return dist(engine_);
}

double Rng::normal(double mean, double sigma) {
  PEERLAB_DCHECK(sigma >= 0.0);
  if (sigma == 0.0) return mean;
  std::normal_distribution<double> dist(mean, sigma);
  return dist(engine_);
}

double Rng::lognormal_mean(double mean, double sigma_log) {
  PEERLAB_CHECK_MSG(mean > 0.0, "lognormal mean must be positive");
  PEERLAB_DCHECK(sigma_log >= 0.0);
  if (sigma_log == 0.0) return mean;
  // E[lognormal(mu, s)] = exp(mu + s^2/2)  =>  mu = ln(mean) - s^2/2.
  const double mu = std::log(mean) - 0.5 * sigma_log * sigma_log;
  std::lognormal_distribution<double> dist(mu, sigma_log);
  return dist(engine_);
}

double Rng::exponential(double mean) {
  PEERLAB_CHECK_MSG(mean > 0.0, "exponential mean must be positive");
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

double Rng::pareto(double lo, double hi, double alpha) {
  PEERLAB_CHECK_MSG(lo > 0.0 && hi > lo && alpha > 0.0, "bad bounded-pareto parameters");
  // Inverse CDF of the bounded Pareto.
  const double u = uniform(0.0, 1.0);
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  return std::clamp(x, lo, hi);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  PEERLAB_CHECK_MSG(!weights.empty(), "weighted_index needs at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    PEERLAB_CHECK_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  PEERLAB_CHECK_MSG(total > 0.0, "weights must not all be zero");
  double pick = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace peerlab::sim
