#include "peerlab/sim/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "peerlab/common/check.hpp"

namespace peerlab::sim {

void Summary::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  PEERLAB_CHECK_MSG(hi > lo && bins > 0, "histogram needs hi > lo and >= 1 bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::int64_t>((x - lo_) / span * static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const noexcept { return bin_lo(i + 1); }

double Histogram::quantile(double q) const {
  PEERLAB_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double inside =
          counts_[i] == 0 ? 0.0 : (target - cumulative) / static_cast<double>(counts_[i]);
      return bin_lo(i) + inside * (bin_hi(i) - bin_lo(i));
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 0;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        peak == 0 ? 0 : static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                                 static_cast<double>(peak) * static_cast<double>(width));
    out += "[" + std::to_string(bin_lo(i)) + ", " + std::to_string(bin_hi(i)) + ") ";
    out.append(bar, '#');
    out += " " + std::to_string(counts_[i]) + "\n";
  }
  return out;
}

}  // namespace peerlab::sim
