#pragma once

// Pending-event set for the discrete-event engine.
//
// Events are (time, sequence, action). The sequence number makes ordering
// total and FIFO among events scheduled for the same instant, which is
// what makes simulations deterministic and replayable. Cancellation is
// lazy: cancel() marks the handle and pop() skips dead entries, so both
// operations stay O(log n) / O(1).

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "peerlab/common/units.hpp"

namespace peerlab::sim {

using Action = std::function<void()>;

/// Handle to a scheduled event; lets the scheduler cancel timers
/// (e.g. a retransmission timer once the ack arrives).
class EventHandle {
 public:
  EventHandle() = default;

  /// True while the event is scheduled and not cancelled or fired.
  [[nodiscard]] bool pending() const noexcept;

  /// Cancels the event; safe to call repeatedly or on an empty handle.
  void cancel() noexcept;

 private:
  friend class EventQueue;
  struct State {
    bool cancelled = false;
    bool fired = false;
    bool daemon = false;
    /// Shared with the queue so cancelling a non-daemon event
    /// immediately releases its claim on the run loop.
    std::shared_ptr<std::int64_t> regular_live;
  };
  explicit EventHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class EventQueue {
 public:
  /// Adds an event firing at absolute time `when`. Times must be finite
  /// and non-negative; the caller (Simulator) enforces monotonicity
  /// against the clock. Daemon events (periodic heartbeats,
  /// housekeeping timers) do not keep a run() alive: the run loop exits
  /// once only daemon events remain.
  EventHandle push(Seconds when, Action action, bool daemon = false);

  /// True if no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const noexcept;

  /// True while at least one live non-daemon event remains.
  [[nodiscard]] bool has_work() const noexcept { return *regular_live_ > 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Time of the earliest live event; undefined when empty().
  [[nodiscard]] Seconds next_time() const;

  /// Removes and returns the earliest live event's action and time.
  /// Precondition: !empty().
  struct Fired {
    Seconds time = 0.0;
    Action action;
  };
  Fired pop();

  /// Drops every pending event (end of simulation teardown).
  void clear() noexcept;

  /// Total number of events ever pushed (telemetry for microbenches).
  [[nodiscard]] std::uint64_t total_pushed() const noexcept { return next_seq_; }

 private:
  struct Entry {
    Seconds time = 0.0;
    std::uint64_t seq = 0;
    // Heap entries own the action; shared state only carries liveness
    // flags so cancelled closures release captured resources lazily.
    mutable Action action;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_dead();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::shared_ptr<std::int64_t> regular_live_ = std::make_shared<std::int64_t>(0);
};

}  // namespace peerlab::sim
