#pragma once

// Pending-event set for the discrete-event engine.
//
// Events are (time, sequence, action). The sequence number makes ordering
// total and FIFO among events scheduled for the same instant, which is
// what makes simulations deterministic and replayable. Cancellation is
// lazy: cancel() marks the event's pool slot and pop() skips dead
// entries, so both operations stay O(log n) / O(1).
//
// Performance layout (see DESIGN.md "Performance architecture"): event
// state lives in a free-listed pool of slots with generation counters,
// not in one shared_ptr control block per event. Ordering uses a
// two-list lazy structure over 16-byte POD entries {time, seq|flags|slot}
// instead of a heap: `bottom_` is sorted descending (pop = pop_back),
// `far_` collects pushes beyond the sorted window in O(1), and when the
// sorted window drains, `far_` is sorted wholesale — a stable LSD radix
// sort on the time bits, which preserves FIFO order among equal times
// because `far_` is already in push (sequence) order. Sorting touches
// each entry O(1) times amortised and streams through memory, where a
// heap pop takes a cache miss per level; the std::function is moved
// exactly twice per event (into its slot at push, out at pop).
// Steady-state push/cancel/pop perform zero heap allocations: the only
// allocations are pool/list growth to the high-water mark.
//
// The pool is shared between the queue and its handles through a
// *non-atomic* intrusive refcount: a simulation is single-threaded by
// design (see Simulator), so handles never cross threads and the
// refcount needs no synchronisation. Handles that outlive the queue
// keep the pool alive, which keeps their cancel()/pending() safe no-ops.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "peerlab/common/units.hpp"

namespace peerlab::sim {

using Action = std::function<void()>;

namespace detail {

/// One pooled event state. A slot is owned by exactly one heap entry
/// from push until that entry drains (pop or drop_dead), then recycled
/// with a bumped generation so stale handles can never observe it.
/// Padded to exactly one cache line: neighbouring slots never share a
/// line, so the move-in/move-out of one event's action and the
/// generation checks of an unrelated handle cannot ping-pong the same
/// line, and slot index << 6 is the line address.
struct alignas(64) EventSlot {
  Action action;
  std::uint64_t generation = 0;
  // Exact heap key {armed_time, armed_packed} of the entry that owns
  // this slot — lets rearm() find and replace that entry in place.
  std::uint64_t armed_packed = 0;
  double armed_time = 0.0;
  bool cancelled = false;
  bool daemon = false;
};
static_assert(sizeof(EventSlot) == 64, "EventSlot must occupy exactly one cache line");
static_assert(alignof(EventSlot) == 64);

/// Slot storage shared between a queue and its handles (intrusive,
/// non-atomic refcount — see file comment). The one allocation is per
/// queue, not per event.
struct EventPool {
  std::vector<EventSlot> slots;
  std::vector<std::uint32_t> free_list;  // capacity kept >= slots.size()
  std::int64_t regular_live = 0;         // live non-daemon events
  std::size_t live = 0;                  // live (non-cancelled) events
  std::size_t cancelled_scheduled = 0;   // cancelled entries still heaped
  std::uint64_t refs = 1;                // queue + outstanding handles
};

}  // namespace detail

/// Handle to a scheduled event; lets the scheduler cancel timers
/// (e.g. a retransmission timer once the ack arrives). Copyable value
/// type; must stay on the simulation's thread.
class EventHandle {
 public:
  EventHandle() = default;
  EventHandle(const EventHandle& other) noexcept
      : pool_(other.pool_), slot_(other.slot_), generation_(other.generation_) {
    if (pool_ != nullptr) ++pool_->refs;
  }
  EventHandle(EventHandle&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)),
        slot_(other.slot_),
        generation_(other.generation_) {}
  EventHandle& operator=(const EventHandle& other) noexcept {
    if (this != &other) {
      release();
      pool_ = other.pool_;
      slot_ = other.slot_;
      generation_ = other.generation_;
      if (pool_ != nullptr) ++pool_->refs;
    }
    return *this;
  }
  EventHandle& operator=(EventHandle&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = std::exchange(other.pool_, nullptr);
      slot_ = other.slot_;
      generation_ = other.generation_;
    }
    return *this;
  }
  ~EventHandle() { release(); }

  /// True while the event is scheduled and not cancelled or fired.
  [[nodiscard]] bool pending() const noexcept {
    return pool_ != nullptr && slot_ < pool_->slots.size() &&
           pool_->slots[slot_].generation == generation_ && !pool_->slots[slot_].cancelled;
  }

  /// Cancels the event; safe to call repeatedly or on an empty handle.
  void cancel() noexcept {
    if (!pending()) return;
    detail::EventSlot& slot = pool_->slots[slot_];
    slot.cancelled = true;
    slot.action = nullptr;  // release captured resources eagerly
    --pool_->live;
    ++pool_->cancelled_scheduled;
    if (!slot.daemon) --pool_->regular_live;
  }

 private:
  friend class EventQueue;
  EventHandle(detail::EventPool* pool, std::uint32_t slot, std::uint64_t generation) noexcept
      : pool_(pool), slot_(slot), generation_(generation) {
    ++pool_->refs;
  }

  void release() noexcept {
    if (pool_ != nullptr && --pool_->refs == 0) delete pool_;
    pool_ = nullptr;
  }

  detail::EventPool* pool_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t generation_ = 0;
};

class EventQueue {
 public:
  EventQueue() : pool_(new detail::EventPool()) {}
  ~EventQueue() {
    clear();
    if (--pool_->refs == 0) delete pool_;
  }

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Adds an event firing at absolute time `when`. Times must be finite
  /// and non-negative; the caller (Simulator) enforces monotonicity
  /// against the clock. Daemon events (periodic heartbeats,
  /// housekeeping timers) do not keep a run() alive: the run loop exits
  /// once only daemon events remain.
  EventHandle push(Seconds when, Action action, bool daemon = false);

  /// Moves a pending event to fire at absolute time `when` instead,
  /// keeping its action and daemon flag. Ordering is exactly what
  /// cancel() + push(same action) would produce: the rearmed event
  /// takes a fresh sequence number, so it fires after anything already
  /// scheduled for the same instant. The common case (old entry inside
  /// the sorted window) replaces the entry in place — no slot
  /// recycling, no std::function churn, no cancelled residue — and
  /// leaves `handle` untouched; otherwise the event is re-slotted via
  /// cancel+push and `handle` is rebound to the new slot (other copies
  /// of the handle then observe the event as cancelled).
  /// Precondition: handle.pending() and the handle belongs to this queue.
  void rearm(EventHandle& handle, Seconds when);

  /// True if no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const noexcept { return pool_->live == 0; }

  /// True while at least one live non-daemon event remains.
  [[nodiscard]] bool has_work() const noexcept { return pool_->regular_live > 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const noexcept { return pool_->live; }

  /// Time of the earliest live event; undefined when empty().
  [[nodiscard]] Seconds next_time() const;

  /// Removes and returns the earliest live event's action and time.
  /// Precondition: !empty().
  struct Fired {
    Seconds time = 0.0;
    Action action;
  };
  Fired pop();

  /// Drops every pending event (end of simulation teardown).
  void clear() noexcept;

  /// Total number of events ever pushed (telemetry for microbenches).
  [[nodiscard]] std::uint64_t total_pushed() const noexcept { return next_seq_; }

 private:
  // Trivially copyable 16-byte entry: sorting moves plain words; the
  // action stays put in its pool slot.
  //
  // `packed` = seq (43 bits) | daemon (1 bit) | slot (20 bits). The
  // sequence lives in the high bits and is unique, so comparing the
  // whole word tie-breaks same-time events FIFO regardless of the low
  // bits. push() checks both width limits loudly (2^20 concurrent
  // events, 2^43 events per queue lifetime).
  struct Entry {
    Seconds time = 0.0;        // comparator-hot field first: the radix
    std::uint64_t packed = 0;  // sort keys off its raw bits at offset 0
  };
  static_assert(std::is_trivially_copyable_v<Entry>);
  static_assert(sizeof(Entry) == 16, "four entries per cache line");
  static_assert(offsetof(Entry, time) == 0, "radix sort reads time at the entry base");

  static constexpr std::uint64_t kSlotBits = 20;
  static constexpr std::uint64_t kDaemonBit = std::uint64_t{1} << kSlotBits;
  static constexpr std::uint64_t kSeqShift = kSlotBits + 1;
  static constexpr std::uint64_t kSlotMask = kDaemonBit - 1;

  [[nodiscard]] static std::uint32_t slot_of(const Entry& e) noexcept {
    return static_cast<std::uint32_t>(e.packed & kSlotMask);
  }
  [[nodiscard]] static bool daemon_of(const Entry& e) noexcept {
    return (e.packed & kDaemonBit) != 0;
  }

  [[nodiscard]] static bool earlier(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.packed < b.packed;
  }

  /// Routes a fresh entry into `bottom_` (ordered insert inside the
  /// sorted window) or `far_` (push-ordered beyond it). Shared by
  /// push() and rearm().
  void enqueue(const Entry& entry);
  /// Drains `far_` into `bottom_` in pop order (descending storage),
  /// dropping cancelled entries on the way. May allocate only while the
  /// scratch/list capacities are still below their high-water marks.
  void refill() const;
  /// Stable ascending sort of `far_` by time: LSD radix over the key
  /// bits, skipping digit positions all keys share. Stability preserves
  /// push order — and therefore FIFO sequence order — among ties.
  void sort_far() const;
  /// Ensures bottom_.back() is the earliest live event: refills from
  /// `far_` when the sorted window is empty and pops cancelled entries,
  /// recycling their slots. Const because read paths (next_time)
  /// trigger it lazily; the lists and pool are the mutable cache this
  /// maintains.
  void drop_dead() const;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) const noexcept;

  // Two-list lazy ordering. Invariant: every `far_` entry's key is
  // >= `bottom_limit_`, which is > every bottom_ entry's time except
  // for refill-batch entries that share the limit exactly — and those
  // carry smaller sequence numbers than anything pushed since, so
  // draining all of `bottom_` before touching `far_` is the correct
  // total order. `far_` stays in push order between refills, which is
  // what lets the refill sort be stable-by-time only.
  mutable std::vector<Entry> bottom_;     // sorted descending; back() = earliest
  mutable std::vector<Entry> far_;        // unsorted, push-ordered
  mutable std::vector<Entry> sort_tmp_;   // radix scatter buffer
  mutable Seconds bottom_limit_ = 0.0;    // pushes below this enter bottom_
  detail::EventPool* pool_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace peerlab::sim
