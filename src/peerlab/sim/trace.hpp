#pragma once

// Structured event tracing. A Tracer is a bounded ring of timestamped
// events that subsystems append to when one is attached (tracing off =
// zero cost beyond a pointer test). Experiments attach a Tracer to
// inspect protocol timelines or dump a CSV for offline analysis.

#include <deque>
#include <string>
#include <vector>

#include "peerlab/common/units.hpp"

namespace peerlab::sim {

enum class TraceCategory : std::uint8_t {
  kNetwork,    // datagrams, bulk messages, losses
  kTransport,  // transfer protocol milestones
  kOverlay,    // heartbeats, registrations, reports
  kTask,       // executions
  kSelection,  // model decisions
  kOther,
};

[[nodiscard]] const char* to_string(TraceCategory category) noexcept;

struct TraceEvent {
  Seconds time = 0.0;
  TraceCategory category = TraceCategory::kOther;
  /// Short machine-friendly label ("datagram-lost", "part-confirmed").
  std::string label;
  /// Free-form detail ("node#3 -> node#7").
  std::string detail;
  /// Two numeric slots for ids/sizes (avoids formatting in hot paths).
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class Tracer {
 public:
  /// Ring capacity; oldest events are dropped (and counted) once full.
  explicit Tracer(std::size_t capacity = 65536);

  void record(Seconds time, TraceCategory category, std::string label,
              std::string detail = "", std::uint64_t a = 0, std::uint64_t b = 0);

  [[nodiscard]] const std::deque<TraceEvent>& events() const noexcept { return events_; }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  [[nodiscard]] std::vector<TraceEvent> by_category(TraceCategory category) const;
  [[nodiscard]] std::vector<TraceEvent> by_label(const std::string& label) const;
  [[nodiscard]] std::size_t count(TraceCategory category) const;
  [[nodiscard]] std::size_t count_label(const std::string& label) const;

  void clear();

  /// time,category,label,detail,a,b per line (header included).
  [[nodiscard]] std::string csv() const;
  void write_csv(const std::string& path) const;

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace peerlab::sim
