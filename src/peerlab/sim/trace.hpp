#pragma once

// Structured event tracing. A Tracer is a bounded ring of timestamped
// events that subsystems append to when one is attached (tracing off =
// zero cost beyond a pointer test). Experiments attach a Tracer to
// inspect protocol timelines or dump a CSV for offline analysis.
//
// The ring is a fixed-capacity vector written in place: once warm,
// record() allocates nothing (slot strings reuse their capacity), so
// tracing stays cheap enough to leave on under load. Overwritten
// events are counted in dropped().

#include <string>
#include <string_view>
#include <vector>

#include "peerlab/common/units.hpp"

namespace peerlab::sim {

enum class TraceCategory : std::uint8_t {
  kNetwork,    // datagrams, bulk messages, losses
  kTransport,  // transfer protocol milestones
  kOverlay,    // heartbeats, registrations, reports
  kTask,       // executions
  kSelection,  // model decisions
  kOther,
};

[[nodiscard]] const char* to_string(TraceCategory category) noexcept;

struct TraceEvent {
  Seconds time = 0.0;
  TraceCategory category = TraceCategory::kOther;
  /// Short machine-friendly label ("datagram-lost", "part-confirmed").
  std::string label;
  /// Free-form detail ("node#3 -> node#7").
  std::string detail;
  /// Two numeric slots for ids/sizes (avoids formatting in hot paths).
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class Tracer {
 public:
  /// Ring capacity; oldest events are overwritten (and counted as
  /// dropped) once full.
  explicit Tracer(std::size_t capacity = 65536);

  void record(Seconds time, TraceCategory category, std::string_view label,
              std::string_view detail = {}, std::uint64_t a = 0, std::uint64_t b = 0);

  /// Retained events, oldest first (materialized from the ring).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  /// Events overwritten by the ring; recorded() - dropped() == size().
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  [[nodiscard]] std::vector<TraceEvent> by_category(TraceCategory category) const;
  [[nodiscard]] std::vector<TraceEvent> by_label(std::string_view label) const;
  [[nodiscard]] std::size_t count(TraceCategory category) const;
  [[nodiscard]] std::size_t count_label(std::string_view label) const;

  void clear();

  /// time,category,label,detail,a,b per line (header included).
  /// RFC-4180: fields containing commas, quotes, or newlines are
  /// quoted, embedded quotes doubled — the output round-trips through
  /// any conforming CSV reader.
  [[nodiscard]] std::string csv() const;
  void write_csv(const std::string& path) const;

 private:
  /// Calls `fn(event)` for each retained event, oldest first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = ring_.size();
    for (std::size_t i = 0; i < n; ++i) fn(ring_[(head_ + i) % n]);
  }

  std::size_t capacity_;
  /// Grows to capacity_, then becomes a circular buffer: head_ is the
  /// oldest slot, record() overwrites it in place.
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace peerlab::sim
