#include "peerlab/mem/arena.hpp"

#include <algorithm>

namespace peerlab::mem {

void* Arena::allocate_slow(std::size_t bytes, std::size_t align) {
  // Move past the exhausted slab (if any) to the next retained one; a
  // retained slab big enough for the request is reused as-is.
  while (current_ + 1 < slabs_.size()) {
    ++current_;
    cursor_ = 0;
    const std::size_t aligned = align_up(cursor_, align);
    if (align <= kAlign && aligned + bytes <= slabs_[current_].bytes) {
      cursor_ = aligned + bytes;
      return slabs_[current_].base + aligned;
    }
  }
  // Grow: geometric doubling, but never smaller than the request (plus
  // alignment slack for over-aligned asks, which bump from offset 0 of
  // a fresh slab and therefore only need the slab base aligned).
  std::size_t want = bytes + (align > kAlign ? align : 0);
  std::size_t size = next_slab_bytes_;
  while (size < want) size *= 2;
  next_slab_bytes_ = size * 2;

  Slab slab;
  slab.bytes = size;
  slab.base = static_cast<std::byte*>(::operator new(size, std::align_val_t(kAlign)));
  slabs_.push_back(slab);
  current_ = slabs_.size() - 1;

  std::size_t offset = 0;
  if (align > kAlign) {
    const auto addr = reinterpret_cast<std::uintptr_t>(slab.base);
    offset = align_up(addr, align) - addr;
  }
  cursor_ = offset + bytes;
  return slab.base + offset;
}

void Arena::consolidate() noexcept {
  // Keep only the biggest slab: the workload outgrew the others, and a
  // single right-sized slab is what makes every later cycle a pure
  // cursor rewind.
  std::size_t best = 0;
  for (std::size_t i = 1; i < slabs_.size(); ++i) {
    if (slabs_[i].bytes > slabs_[best].bytes) best = i;
  }
  for (std::size_t i = 0; i < slabs_.size(); ++i) {
    if (i != best) ::operator delete(slabs_[i].base, std::align_val_t(kAlign));
  }
  slabs_[0] = slabs_[best];
  slabs_.resize(1);
}

}  // namespace peerlab::mem
