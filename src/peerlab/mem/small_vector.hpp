#pragma once

// small_vector<T, N>: a vector with N elements of inline storage.
//
// Sized for bookkeeping that is almost always tiny — a distribution's
// shares (the paper's scatter uses 8 peers), the peers a failed share
// has burned through, a petition's exclusion list — so the common case
// never touches the heap. Past N it spills to a heap buffer and
// behaves like a plain vector (growth factor 2); it never shrinks back
// to inline storage, so pointers returned by data() are invalidated
// only by growth, exactly like std::vector.
//
// Deliberately minimal: the subset the overlay needs (push_back,
// emplace_back, iteration, indexing, clear, pop_back, resize, sort
// via data()/size()), value semantics with moves, and a conversion to
// std::span for call sites that take a view. Not a drop-in for the
// full std::vector API.

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <utility>

#include "peerlab/common/check.hpp"

namespace peerlab::mem {

template <typename T, std::size_t N>
class small_vector {
  static_assert(N > 0, "small_vector needs at least one inline slot");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  small_vector() noexcept = default;

  small_vector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  small_vector(const small_vector& other) {
    reserve(other.size_);
    for (const T& v : other) push_back(v);
  }

  small_vector(small_vector&& other) noexcept(std::is_nothrow_move_constructible_v<T>) {
    steal(std::move(other));
  }

  small_vector& operator=(const small_vector& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (const T& v : other) push_back(v);
    }
    return *this;
  }

  small_vector& operator=(small_vector&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (this != &other) {
      destroy_all();
      release_heap();
      steal(std::move(other));
    }
    return *this;
  }

  ~small_vector() {
    destroy_all();
    release_heap();
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// True while elements still live in the inline buffer (tests).
  [[nodiscard]] bool inline_storage() const noexcept { return data_ == inline_data(); }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  [[nodiscard]] T& front() noexcept { return data_[0]; }
  [[nodiscard]] const T& front() const noexcept { return data_[0]; }
  [[nodiscard]] T& back() noexcept { return data_[size_ - 1]; }
  [[nodiscard]] const T& back() const noexcept { return data_[size_ - 1]; }

  [[nodiscard]] iterator begin() noexcept { return data_; }
  [[nodiscard]] iterator end() noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data_; }
  [[nodiscard]] const_iterator end() const noexcept { return data_ + size_; }

  operator std::span<T>() noexcept { return {data_, size_}; }                // NOLINT
  operator std::span<const T>() const noexcept { return {data_, size_}; }    // NOLINT

  void reserve(std::size_t n) {
    if (n > capacity_) grow_to(n);
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow_to(capacity_ * 2);
    T* p = std::construct_at(data_ + size_, std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  void pop_back() noexcept {
    PEERLAB_CHECK(size_ > 0);
    --size_;
    std::destroy_at(data_ + size_);
  }

  void clear() noexcept {
    destroy_all();
    size_ = 0;
  }

  /// Grows with value-initialised elements or shrinks by destroying the
  /// tail (no capacity change on shrink).
  void resize(std::size_t n) {
    if (n < size_) {
      std::destroy(data_ + n, data_ + size_);
      size_ = n;
      return;
    }
    reserve(n);
    while (size_ < n) {
      std::construct_at(data_ + size_);
      ++size_;
    }
  }

 private:
  [[nodiscard]] T* inline_data() noexcept { return std::launder(reinterpret_cast<T*>(inline_)); }
  [[nodiscard]] const T* inline_data() const noexcept {
    return std::launder(reinterpret_cast<const T*>(inline_));
  }

  void destroy_all() noexcept { std::destroy(data_, data_ + size_); }

  void release_heap() noexcept {
    if (data_ != inline_data()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
    }
    data_ = inline_data();
    capacity_ = N;
  }

  void grow_to(std::size_t n) {
    const std::size_t cap = std::max(n, capacity_ * 2);
    T* fresh = static_cast<T*>(::operator new(cap * sizeof(T), std::align_val_t(alignof(T))));
    for (std::size_t i = 0; i < size_; ++i) {
      std::construct_at(fresh + i, std::move_if_noexcept(data_[i]));
      std::destroy_at(data_ + i);
    }
    if (data_ != inline_data()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
    }
    data_ = fresh;
    capacity_ = cap;
  }

  void steal(small_vector&& other) noexcept(std::is_nothrow_move_constructible_v<T>) {
    if (other.data_ != other.inline_data()) {
      // Adopt the heap buffer wholesale.
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
      other.size_ = 0;
      return;
    }
    data_ = inline_data();
    capacity_ = N;
    size_ = 0;
    for (std::size_t i = 0; i < other.size_; ++i) {
      std::construct_at(data_ + i, std::move_if_noexcept(other.data_[i]));
    }
    size_ = other.size_;
    other.clear();
  }

  alignas(T) std::byte inline_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace peerlab::mem
