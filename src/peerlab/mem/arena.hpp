#pragma once

// Monotonic arena for hot-path scratch.
//
// An Arena hands out raw bytes by bumping a cursor through a slab;
// reset() rewinds the cursor in O(1) without touching the heap, so a
// warmed arena serves any number of petition-sized workloads with zero
// steady-state allocations. Growth is geometric: when a request
// overflows the current slab a bigger one is allocated and becomes the
// *retained* slab at the next reset, so the arena converges on one
// slab sized to the workload's high-water mark (the same discipline as
// the FlowScheduler's scratch vectors, see DESIGN.md "Performance
// architecture").
//
// Lifetime rules (see DESIGN.md §13):
//   * allocate() results live until the next reset(), never longer;
//   * reset() must only run while no container built on the arena is
//     alive (ArenaAllocator deallocate is a no-op, so destroying
//     containers after reset is harmless but reads are not);
//   * the arena is single-threaded, like the simulation that feeds it.
//
// ArenaAllocator<T> adapts an Arena to the std::allocator interface so
// per-call scratch can be an ordinary std::vector with arena-backed
// storage; selection models reset their arena at the top of each
// rank_into() and build all intermediate vectors on it.

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

namespace peerlab::mem {

class Arena {
 public:
  /// `initial_bytes` sizes the first slab, allocated lazily on first
  /// use so an unused arena costs nothing but the object itself.
  explicit Arena(std::size_t initial_bytes = 4096) noexcept
      : next_slab_bytes_(initial_bytes < kMinSlab ? kMinSlab : initial_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Movable so arena-owning objects (selection models) stay movable;
  /// the source is left empty but usable. Pointers into the moved-from
  /// arena's slabs stay valid — the slabs changed owner, not address.
  Arena(Arena&& other) noexcept
      : slabs_(std::move(other.slabs_)),
        current_(other.current_),
        cursor_(other.cursor_),
        next_slab_bytes_(other.next_slab_bytes_) {
    other.slabs_.clear();
    other.current_ = 0;
    other.cursor_ = 0;
  }

  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      release();
      slabs_ = std::move(other.slabs_);
      current_ = other.current_;
      cursor_ = other.cursor_;
      next_slab_bytes_ = other.next_slab_bytes_;
      other.slabs_.clear();
      other.current_ = 0;
      other.cursor_ = 0;
    }
    return *this;
  }

  ~Arena() { release(); }

  /// Raw bytes, aligned to `align` (a power of two <= kAlign; stricter
  /// requests fall back to a dedicated aligned slab).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    std::size_t cursor = align_up(cursor_, align);
    if (current_ >= slabs_.size() || cursor + bytes > slabs_[current_].bytes ||
        align > kAlign) {
      return allocate_slow(bytes, align);
    }
    void* p = slabs_[current_].base + cursor;
    cursor_ = cursor + bytes;
    return p;
  }

  /// Typed convenience: uninitialised storage for `n` objects of T.
  template <typename T>
  T* allocate_for(std::size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty in O(1). When growth left multiple slabs behind,
  /// all but the biggest are released so the arena converges on a
  /// single slab at the workload's high-water mark; in steady state
  /// (one slab) reset never touches the heap.
  void reset() noexcept {
    if (slabs_.size() > 1) consolidate();
    current_ = 0;
    cursor_ = 0;
  }

  /// Bytes handed out since the last reset (diagnostics, tests).
  [[nodiscard]] std::size_t used() const noexcept {
    std::size_t total = cursor_;
    for (std::size_t i = 0; i < current_ && i < slabs_.size(); ++i) {
      total += slabs_[i].bytes;  // earlier slabs count as fully consumed
    }
    return total;
  }

  /// Total slab capacity currently owned (tests assert reuse).
  [[nodiscard]] std::size_t capacity() const noexcept {
    std::size_t total = 0;
    for (const Slab& slab : slabs_) total += slab.bytes;
    return total;
  }

  [[nodiscard]] std::size_t slab_count() const noexcept { return slabs_.size(); }

 private:
  static constexpr std::size_t kMinSlab = 256;
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  struct Slab {
    std::byte* base = nullptr;
    std::size_t bytes = 0;
  };

  [[nodiscard]] static std::size_t align_up(std::size_t v, std::size_t align) noexcept {
    return (v + align - 1) & ~(align - 1);
  }

  void* allocate_slow(std::size_t bytes, std::size_t align);
  void consolidate() noexcept;

  void release() noexcept {
    for (Slab& slab : slabs_) ::operator delete(slab.base, std::align_val_t(kAlign));
    slabs_.clear();
  }

  std::vector<Slab> slabs_;
  std::size_t current_ = 0;          // slab being bumped
  std::size_t cursor_ = 0;           // offset into the current slab
  std::size_t next_slab_bytes_;      // size of the next slab to allocate
};

/// std::allocator adapter over an Arena. deallocate() is a no-op: the
/// arena reclaims everything at reset(). Containers using this
/// allocator must not outlive the arena, and must not be *read* after
/// a reset (see the lifetime rules above).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) noexcept : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept : arena_(other.arena()) {}

  T* allocate(std::size_t n) { return arena_->allocate_for<T>(n); }
  void deallocate(T*, std::size_t) noexcept {}

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) noexcept {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) noexcept {
    return a.arena_ != b.arena_;
  }

 private:
  Arena* arena_;
};

/// Per-call scratch vector living on an arena.
template <typename T>
using ScratchVector = std::vector<T, ArenaAllocator<T>>;

/// Builds an empty ScratchVector on `arena` with capacity for `n`
/// elements reserved up front — one bump allocation, no regrowth while
/// the caller stays within the reservation.
template <typename T>
[[nodiscard]] ScratchVector<T> make_scratch(Arena& arena, std::size_t n) {
  ScratchVector<T> v{ArenaAllocator<T>(arena)};
  v.reserve(n);
  return v;
}

}  // namespace peerlab::mem
