#include "peerlab/common/ids.hpp"

#include <string>

namespace peerlab {

namespace {
std::string render(const char* prefix, std::uint64_t value) {
  return std::string(prefix) + "#" + std::to_string(value);
}
}  // namespace

std::string to_string(NodeId id) { return render("node", id.value()); }
std::string to_string(PeerId id) { return render("peer", id.value()); }
std::string to_string(PipeId id) { return render("pipe", id.value()); }
std::string to_string(GroupId id) { return render("group", id.value()); }
std::string to_string(MessageId id) { return render("msg", id.value()); }
std::string to_string(TaskId id) { return render("task", id.value()); }
std::string to_string(TransferId id) { return render("xfer", id.value()); }
std::string to_string(FlowId id) { return render("flow", id.value()); }
std::string to_string(AdvertisementId id) { return render("adv", id.value()); }

}  // namespace peerlab
