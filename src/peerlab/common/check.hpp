#pragma once

// Invariant checking. PEERLAB_CHECK is always on (simulation correctness
// beats the nanoseconds saved); PEERLAB_DCHECK compiles out in NDEBUG
// builds. Failures throw InvariantError so tests can assert on them and
// long experiment sweeps fail loudly instead of corrupting statistics.

#include <stdexcept>
#include <string>

namespace peerlab {

class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& message) {
  std::string what = "invariant violated: ";
  what += expr;
  what += " at ";
  what += file;
  what += ":";
  what += std::to_string(line);
  if (!message.empty()) {
    what += " (";
    what += message;
    what += ")";
  }
  throw InvariantError(what);
}
}  // namespace detail

}  // namespace peerlab

#define PEERLAB_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::peerlab::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                    \
  } while (false)

#define PEERLAB_CHECK_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::peerlab::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                    \
  } while (false)

#ifdef NDEBUG
#define PEERLAB_DCHECK(expr) \
  do {                       \
  } while (false)
#else
#define PEERLAB_DCHECK(expr) PEERLAB_CHECK(expr)
#endif
