#pragma once

// Invariant checking. PEERLAB_CHECK is always on (simulation correctness
// beats the nanoseconds saved); PEERLAB_DCHECK compiles out in NDEBUG
// builds. Failures throw InvariantError so tests can assert on them and
// long experiment sweeps fail loudly instead of corrupting statistics.

#include <stdexcept>
#include <string>

namespace peerlab {

class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Observer invoked with the formatted message just before a failed
/// PEERLAB_CHECK throws. The obs::trace flight recorder installs one so
/// a fired assertion dumps its postmortem before the stack unwinds.
/// Plain function pointer + state (no <functional>) keeps this header
/// featherweight; the process-wide slot holds at most one observer.
using CheckObserver = void (*)(void* state, const char* what);

namespace detail {
struct CheckHook {
  CheckObserver fn = nullptr;
  void* state = nullptr;
  bool firing = false;  // reentrancy guard: a check inside the observer must not recurse
};

inline CheckHook& check_hook() {
  static CheckHook hook;
  return hook;
}
}  // namespace detail

inline void set_check_observer(CheckObserver fn, void* state) noexcept {
  detail::check_hook() = {fn, state, false};
}

/// Clears the observer only if `state` still owns the slot, so a
/// long-dead installer cannot evict its successor.
inline void clear_check_observer(void* state) noexcept {
  auto& hook = detail::check_hook();
  if (hook.state == state) hook = {};
}

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& message) {
  std::string what = "invariant violated: ";
  what += expr;
  what += " at ";
  what += file;
  what += ":";
  what += std::to_string(line);
  if (!message.empty()) {
    what += " (";
    what += message;
    what += ")";
  }
  auto& hook = check_hook();
  if (hook.fn != nullptr && !hook.firing) {
    hook.firing = true;
    hook.fn(hook.state, what.c_str());
    hook.firing = false;
  }
  throw InvariantError(what);
}
}  // namespace detail

}  // namespace peerlab

#define PEERLAB_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::peerlab::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                    \
  } while (false)

#define PEERLAB_CHECK_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::peerlab::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                    \
  } while (false)

#ifdef NDEBUG
#define PEERLAB_DCHECK(expr) \
  do {                       \
  } while (false)
#else
#define PEERLAB_DCHECK(expr) PEERLAB_CHECK(expr)
#endif
