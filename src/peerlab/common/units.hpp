#pragma once

// Unit conventions for peerlab, in one place so magnitudes stay honest.
//
//   * Simulated time is `Seconds` (double). The simulation epoch is 0.
//   * Data sizes are `Bytes` (64-bit). The 2007 paper writes "Mb" for what
//     its workloads treat as megabytes, so helper constructors accept
//     megabytes (1e6 bytes) and map onto Bytes.
//   * Bandwidth is `MbitPerSec` (double, 1e6 bits per second), the unit
//     PlanetLab-era access links were quoted in.
//   * Compute work is `GigaCycles`; node speed is `GigaHertz`, so
//     work / speed yields Seconds directly.

#include <cstdint>

namespace peerlab {

using Seconds = double;
using Bytes = std::int64_t;
using MbitPerSec = double;
using GigaCycles = double;
using GigaHertz = double;

inline constexpr Bytes kKilobyte = 1'000;
inline constexpr Bytes kMegabyte = 1'000'000;
inline constexpr Bytes kGigabyte = 1'000'000'000;

/// Megabytes -> bytes (1 MB = 1e6 B, the paper's convention).
constexpr Bytes megabytes(double mb) noexcept {
  return static_cast<Bytes>(mb * static_cast<double>(kMegabyte));
}

/// Kilobytes -> bytes.
constexpr Bytes kilobytes(double kb) noexcept {
  return static_cast<Bytes>(kb * static_cast<double>(kKilobyte));
}

/// Bytes -> megabytes as a double, for reporting.
constexpr double to_megabytes(Bytes b) noexcept {
  return static_cast<double>(b) / static_cast<double>(kMegabyte);
}

/// Ideal wire time for `size` at `rate`, ignoring propagation.
/// Returns +inf-ish large value for non-positive rates (caller guards).
Seconds wire_time(Bytes size, MbitPerSec rate) noexcept;

/// Rate that moves `size` bytes in `elapsed` seconds.
MbitPerSec rate_for(Bytes size, Seconds elapsed) noexcept;

/// Minutes/seconds helpers for reporting parity with the paper's figures.
constexpr double to_minutes(Seconds s) noexcept { return s / 60.0; }
constexpr Seconds minutes(double m) noexcept { return m * 60.0; }

}  // namespace peerlab
