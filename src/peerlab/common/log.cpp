#include "peerlab/common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace peerlab::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};
std::mutex g_sink_mutex;
Sink g_sink;  // guarded by g_sink_mutex
}  // namespace

void set_level(Level level) noexcept { g_level.store(level, std::memory_order_relaxed); }

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

void write(Level level, std::string_view module, std::string_view message) {
  if (level < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    std::string line;
    line.reserve(module.size() + message.size() + 16);
    line.append("[").append(level_name(level)).append("] ");
    line.append(module).append(": ").append(message);
    g_sink(level, line);
    return;
  }
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(module.size()), module.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace peerlab::log
