#pragma once

// Minimal leveled logger. Logging in a discrete-event simulator must be
// cheap when disabled (the common case in benchmarks), so level checks
// happen before any formatting. Output is line-buffered to stderr; tests
// can redirect through set_sink().

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace peerlab::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global minimum level; messages below it are dropped before formatting.
void set_level(Level level) noexcept;
[[nodiscard]] Level level() noexcept;

/// Redirects log lines (tests). Pass nullptr to restore stderr.
using Sink = std::function<void(Level, std::string_view)>;
void set_sink(Sink sink);

/// Emits one formatted line; used by the PEERLAB_LOG macro below.
void write(Level level, std::string_view module, std::string_view message);

[[nodiscard]] const char* level_name(Level level) noexcept;

namespace detail {
class LineBuilder {
 public:
  LineBuilder(Level level, std::string_view module) : level_(level), module_(module) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { write(level_, module_, stream_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::string_view module_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace peerlab::log

/// Usage: PEERLAB_LOG(kInfo, "overlay") << "peer " << id << " joined";
#define PEERLAB_LOG(lvl, module)                                    \
  if (::peerlab::log::Level::lvl < ::peerlab::log::level()) {       \
  } else                                                            \
    ::peerlab::log::detail::LineBuilder(::peerlab::log::Level::lvl, module)
