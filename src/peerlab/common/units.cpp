#include "peerlab/common/units.hpp"

#include <limits>

namespace peerlab {

Seconds wire_time(Bytes size, MbitPerSec rate) noexcept {
  if (rate <= 0.0) {
    return std::numeric_limits<Seconds>::infinity();
  }
  const double bits = static_cast<double>(size) * 8.0;
  return bits / (rate * 1e6);
}

MbitPerSec rate_for(Bytes size, Seconds elapsed) noexcept {
  if (elapsed <= 0.0) {
    return std::numeric_limits<MbitPerSec>::infinity();
  }
  const double bits = static_cast<double>(size) * 8.0;
  return bits / (elapsed * 1e6);
}

}  // namespace peerlab
