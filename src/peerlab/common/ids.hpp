#pragma once

// Strongly typed identifiers used across peerlab.
//
// Every subsystem names its entities with a distinct Id type so that a
// NodeId can never be passed where a PipeId is expected. Ids are cheap
// value types (a 64-bit integer) with hashing and ordering, suitable as
// map keys. Fresh ids are minted from an IdAllocator owned by whoever
// creates the entity (typically the Simulator world), which keeps id
// generation deterministic across runs.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace peerlab {

/// Generic strongly typed id. `Tag` is an empty struct that only serves
/// to make different id families distinct types.
template <typename Tag>
class Id {
 public:
  /// Constructs the invalid id (value 0). Valid ids start at 1.
  constexpr Id() noexcept = default;
  constexpr explicit Id(std::uint64_t value) noexcept : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != 0; }

  friend constexpr bool operator==(Id a, Id b) noexcept { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) noexcept { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) noexcept { return a.value_ < b.value_; }
  friend constexpr bool operator<=(Id a, Id b) noexcept { return a.value_ <= b.value_; }
  friend constexpr bool operator>(Id a, Id b) noexcept { return a.value_ > b.value_; }
  friend constexpr bool operator>=(Id a, Id b) noexcept { return a.value_ >= b.value_; }

 private:
  std::uint64_t value_ = 0;
};

struct NodeTag {};
struct PeerTag {};
struct PipeTag {};
struct GroupTag {};
struct MessageTag {};
struct TaskTag {};
struct TransferTag {};
struct FlowTag {};
struct AdvertisementTag {};

/// A physical (simulated) machine in the network substrate.
using NodeId = Id<NodeTag>;
/// A logical JXTA peer (broker or client) living on a node.
using PeerId = Id<PeerTag>;
/// A JXTA unicast pipe between two peers.
using PipeId = Id<PipeTag>;
/// A JXTA peergroup.
using GroupId = Id<GroupTag>;
/// A transport-level message.
using MessageId = Id<MessageTag>;
/// An executable task submitted through the overlay.
using TaskId = Id<TaskTag>;
/// A file transfer session (petition + parts + confirmations).
using TransferId = Id<TransferTag>;
/// A fluid flow in the bandwidth scheduler.
using FlowId = Id<FlowTag>;
/// A published advertisement.
using AdvertisementId = Id<AdvertisementTag>;

/// Mints sequential ids for one id family. Deterministic: the n-th id
/// allocated is always n, so simulations replay identically.
template <typename IdType>
class IdAllocator {
 public:
  IdType next() noexcept { return IdType(++last_); }
  [[nodiscard]] std::uint64_t allocated() const noexcept { return last_; }

 private:
  std::uint64_t last_ = 0;
};

/// Renders an id for logs, e.g. "peer#42"; defined per family.
std::string to_string(NodeId id);
std::string to_string(PeerId id);
std::string to_string(PipeId id);
std::string to_string(GroupId id);
std::string to_string(MessageId id);
std::string to_string(TaskId id);
std::string to_string(TransferId id);
std::string to_string(FlowId id);
std::string to_string(AdvertisementId id);

}  // namespace peerlab

namespace std {
template <typename Tag>
struct hash<peerlab::Id<Tag>> {
  size_t operator()(peerlab::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
