#pragma once

// SlotIndex: a small open-addressed hash index from 64-bit ids to
// 32-bit slot numbers, built for the hot paths that keep entities in a
// slot-vector (dense storage, free-listed reuse) and need a stable
// id -> slot lookup beside it.
//
// Design points:
//  * linear probing over a power-of-two table with Fibonacci hashing,
//    so sequential ids (the common case: IdAllocator mints 1, 2, 3, …)
//    spread evenly;
//  * backward-shift deletion instead of tombstones, so lookups never
//    degrade under churn and erase stays allocation-free;
//  * the only allocation ever performed is table growth — steady-state
//    insert/erase/find touch no allocator, which is what the simulator
//    hot loops require.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "peerlab/common/check.hpp"

namespace peerlab {

class SlotIndex {
 public:
  SlotIndex() = default;

  /// Number of live id -> slot entries.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Pre-sizes the table for `n` entries (one growth, then none).
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 7 / 8 < n) cap *= 2;
    if (cap > cells_.size()) rehash(cap);
  }

  /// Inserts `id -> slot`. `id` must be nonzero and not present.
  void insert(std::uint64_t id, std::uint32_t slot) {
    PEERLAB_CHECK_MSG(id != 0, "SlotIndex ids must be nonzero");
    if (cells_.empty() || (size_ + 1) * 8 > cells_.size() * 7) {
      rehash(cells_.empty() ? kMinCapacity : cells_.size() * 2);
    }
    const std::size_t mask = cells_.size() - 1;
    std::size_t i = bucket_of(id);
    while (cells_[i].id != 0) {
      PEERLAB_CHECK_MSG(cells_[i].id != id, "SlotIndex id already present");
      i = (i + 1) & mask;
    }
    cells_[i] = Cell{id, slot};
    ++size_;
  }

  /// Pointer to the slot for `id`, or nullptr when absent.
  [[nodiscard]] const std::uint32_t* find(std::uint64_t id) const noexcept {
    if (cells_.empty() || id == 0) return nullptr;
    const std::size_t mask = cells_.size() - 1;
    std::size_t i = bucket_of(id);
    while (cells_[i].id != 0) {
      if (cells_[i].id == id) return &cells_[i].slot;
      i = (i + 1) & mask;
    }
    return nullptr;
  }

  /// Removes `id`; returns false when absent. Never allocates.
  bool erase(std::uint64_t id) noexcept {
    if (cells_.empty() || id == 0) return false;
    const std::size_t mask = cells_.size() - 1;
    std::size_t i = bucket_of(id);
    while (cells_[i].id != id) {
      if (cells_[i].id == 0) return false;
      i = (i + 1) & mask;
    }
    // Backward-shift: pull every cluster member whose probe path runs
    // through the hole back into it, keeping probe chains gap-free.
    std::size_t hole = i;
    std::size_t j = (i + 1) & mask;
    while (cells_[j].id != 0) {
      const std::size_t ideal = bucket_of(cells_[j].id);
      if (((j - ideal) & mask) >= ((j - hole) & mask)) {
        cells_[hole] = cells_[j];
        hole = j;
      }
      j = (j + 1) & mask;
    }
    cells_[hole] = Cell{};
    --size_;
    return true;
  }

  /// Drops every entry but keeps the table storage.
  void clear() noexcept {
    for (Cell& c : cells_) c = Cell{};
    size_ = 0;
  }

 private:
  struct Cell {
    std::uint64_t id = 0;  // 0 = empty
    std::uint32_t slot = 0;
  };

  static constexpr std::size_t kMinCapacity = 16;

  [[nodiscard]] std::size_t bucket_of(std::uint64_t id) const noexcept {
    // Fibonacci hashing: multiply by 2^64 / phi, take the top bits.
    const std::uint64_t h = id * 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h) & (cells_.size() - 1);
  }

  void rehash(std::size_t capacity) {
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(capacity, Cell{});
    size_ = 0;
    for (const Cell& c : old) {
      if (c.id != 0) insert(c.id, c.slot);
    }
  }

  std::vector<Cell> cells_;
  std::size_t size_ = 0;
};

}  // namespace peerlab
