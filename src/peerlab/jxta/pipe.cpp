#include "peerlab/jxta/pipe.hpp"

#include <utility>

#include "peerlab/common/check.hpp"

namespace peerlab::jxta {

PipeId PipeDirectory::create(NodeId host) {
  const PipeId id = ids_.next();
  hosts_.emplace(id, host);
  return id;
}

void PipeDirectory::destroy(PipeId id) { hosts_.erase(id); }

NodeId PipeDirectory::host_of(PipeId id) const noexcept {
  const auto it = hosts_.find(id);
  return it == hosts_.end() ? NodeId{} : it->second;
}

PipeService::PipeService(transport::Endpoint& endpoint, DiscoveryService& discovery,
                         PipeDirectory& directory)
    : endpoint_(endpoint), discovery_(discovery), directory_(directory) {
  endpoint_.set_handler(transport::MessageType::kPipeData,
                        [this](const transport::Message& m) { on_pipe_data(m); });
}

PipeService::~PipeService() {
  endpoint_.clear_handler(transport::MessageType::kPipeData);
  for (const auto& [id, listener] : inputs_) {
    directory_.destroy(id);
  }
}

PipeId PipeService::create_input_pipe(const std::string& name, Listener listener,
                                      Seconds adv_lifetime) {
  PEERLAB_CHECK_MSG(!name.empty(), "pipe needs a name");
  PEERLAB_CHECK_MSG(static_cast<bool>(listener), "input pipe needs a listener");
  const PipeId id = directory_.create(endpoint_.node());
  inputs_.emplace(id, std::move(listener));

  Advertisement adv;
  adv.kind = AdvertisementKind::kPipe;
  adv.name = name;
  adv.home = endpoint_.node();
  adv.attributes["pipe_id"] = std::to_string(id.value());
  discovery_.publish(std::move(adv), adv_lifetime);
  return id;
}

void PipeService::close_input_pipe(PipeId id) {
  inputs_.erase(id);
  directory_.destroy(id);
}

void PipeService::bind_output(const std::string& name, BindCallback done) {
  PEERLAB_CHECK_MSG(static_cast<bool>(done), "bind callback required");
  AdvertisementQuery query;
  query.kind = AdvertisementKind::kPipe;
  query.name = name;
  discovery_.query_remote(query, [this, done = std::move(done)](
                                     std::vector<Advertisement> matches) {
    if (matches.empty()) {
      done(false, PipeId{});
      return;
    }
    const Advertisement& adv = matches.front();
    const PipeId pipe(
        static_cast<std::uint64_t>(adv.numeric_attribute("pipe_id", 0.0)));
    const NodeId host = directory_.host_of(pipe);
    if (!host.valid()) {
      done(false, PipeId{});  // advert outlived the pipe
      return;
    }
    outputs_[pipe] = host;
    done(true, pipe);
  });
}

void PipeService::send(PipeId pipe, Bytes size, std::int64_t tag) {
  const auto it = outputs_.find(pipe);
  PEERLAB_CHECK_MSG(it != outputs_.end(), "pipe not bound: " + to_string(pipe));
  transport::Message m;
  m.src = endpoint_.node();
  m.dst = it->second;
  m.type = transport::MessageType::kPipeData;
  m.size = size > 0 ? size : transport::nominal_size(transport::MessageType::kPipeData);
  m.correlation = pipe.value();
  m.arg = tag;
  endpoint_.fabric().route(std::move(m));
}

void PipeService::on_pipe_data(const transport::Message& m) {
  const PipeId pipe(m.correlation);
  const auto it = inputs_.find(pipe);
  if (it == inputs_.end()) {
    return;  // pipe closed while the message was in flight
  }
  ++received_;
  PipeMessage pm;
  pm.pipe = pipe;
  pm.from = m.src;
  pm.size = m.size;
  pm.tag = m.arg;
  it->second(pm);
}

}  // namespace peerlab::jxta
