#include "peerlab/jxta/rendezvous.hpp"

#include <utility>

#include "peerlab/common/check.hpp"

namespace peerlab::jxta {

std::string RendezvousIndex::key_of(PeerId publisher, AdvertisementKind kind,
                                    const std::string& name) {
  return std::to_string(publisher.value()) + "/" + to_string(kind) + "/" + name;
}

AdvertisementId RendezvousIndex::publish(Advertisement adv) {
  PEERLAB_CHECK_MSG(adv.publisher.valid(), "advertisement needs a publisher");
  PEERLAB_CHECK_MSG(adv.expires_at > sim_.now(), "advertisement already expired");
  ++publishes_;
  adv.id = ids_.next();
  adv.published_at = sim_.now();
  const AdvertisementId id = adv.id;
  adverts_[key_of(adv.publisher, adv.kind, adv.name)] = std::move(adv);
  return id;
}

bool RendezvousIndex::revoke(PeerId publisher, AdvertisementKind kind,
                             const std::string& name) {
  return adverts_.erase(key_of(publisher, kind, name)) > 0;
}

std::size_t RendezvousIndex::revoke_all(PeerId publisher) {
  std::size_t removed = 0;
  for (auto it = adverts_.begin(); it != adverts_.end();) {
    if (it->second.publisher == publisher) {
      it = adverts_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<Advertisement> RendezvousIndex::query(const AdvertisementQuery& query) const {
  ++queries_;
  std::vector<Advertisement> out;
  for (const auto& [key, adv] : adverts_) {
    if (query.matches(adv, sim_.now())) {
      out.push_back(adv);
    }
  }
  // Deterministic order for callers that pick "the first" match.
  std::sort(out.begin(), out.end(),
            [](const Advertisement& a, const Advertisement& b) { return a.id < b.id; });
  return out;
}

std::size_t RendezvousIndex::sweep() {
  std::size_t swept = 0;
  for (auto it = adverts_.begin(); it != adverts_.end();) {
    if (it->second.expired(sim_.now())) {
      it = adverts_.erase(it);
      ++swept;
    } else {
      ++it;
    }
  }
  return swept;
}

}  // namespace peerlab::jxta
