#pragma once

// Rendezvous service: the advertisement index a JXTA rendezvous peer
// (our Broker) maintains for its edge peers. Edge peers push their
// advertisements here and route discovery queries through it.
// Expiry is lazy (checked on query) plus an explicit sweep.

#include <unordered_map>
#include <vector>

#include "peerlab/jxta/advertisement.hpp"
#include "peerlab/sim/simulator.hpp"

namespace peerlab::jxta {

class RendezvousIndex {
 public:
  explicit RendezvousIndex(sim::Simulator& sim) : sim_(sim) {}

  /// Stores (or refreshes) an advertisement. An advert with the same
  /// publisher + kind + name replaces the previous edition.
  AdvertisementId publish(Advertisement adv);

  /// Removes a publisher's advertisement of the given kind and name.
  /// Returns true when something was removed.
  bool revoke(PeerId publisher, AdvertisementKind kind, const std::string& name);

  /// Removes everything a peer ever published (peer departure/churn).
  std::size_t revoke_all(PeerId publisher);

  /// All live advertisements matching the query.
  [[nodiscard]] std::vector<Advertisement> query(const AdvertisementQuery& query) const;

  /// Drops expired entries; returns how many were swept.
  std::size_t sweep();

  [[nodiscard]] std::size_t size() const noexcept { return adverts_.size(); }
  [[nodiscard]] std::uint64_t publishes() const noexcept { return publishes_; }
  [[nodiscard]] std::uint64_t queries() const noexcept { return queries_; }

 private:
  [[nodiscard]] static std::string key_of(PeerId publisher, AdvertisementKind kind,
                                          const std::string& name);

  sim::Simulator& sim_;
  std::unordered_map<std::string, Advertisement> adverts_;
  IdAllocator<AdvertisementId> ids_;
  std::uint64_t publishes_ = 0;
  mutable std::uint64_t queries_ = 0;
};

}  // namespace peerlab::jxta
