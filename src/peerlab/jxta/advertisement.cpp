#include "peerlab/jxta/advertisement.hpp"

#include <cstdlib>

namespace peerlab::jxta {

const char* to_string(AdvertisementKind kind) noexcept {
  switch (kind) {
    case AdvertisementKind::kPeer: return "peer";
    case AdvertisementKind::kPipe: return "pipe";
    case AdvertisementKind::kPeerGroup: return "peergroup";
    case AdvertisementKind::kContent: return "content";
    case AdvertisementKind::kModule: return "module";
  }
  return "?";
}

std::optional<std::string> Advertisement::attribute(const std::string& key) const {
  const auto it = attributes.find(key);
  if (it == attributes.end()) return std::nullopt;
  return it->second;
}

double Advertisement::numeric_attribute(const std::string& key, double fallback) const {
  const auto value = attribute(key);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (end == value->c_str()) return fallback;
  return parsed;
}

bool AdvertisementQuery::matches(const Advertisement& adv, Seconds now) const {
  if (adv.kind != kind) return false;
  if (adv.expired(now)) return false;
  if (!name.empty() && adv.name != name) return false;
  for (const auto& [key, expected] : attribute_equals) {
    const auto actual = adv.attribute(key);
    if (!actual || *actual != expected) return false;
  }
  return true;
}

}  // namespace peerlab::jxta
