#include "peerlab/jxta/discovery.hpp"

#include <algorithm>
#include <utility>

#include "peerlab/common/check.hpp"

namespace peerlab::jxta {

namespace {
constexpr std::size_t kMaxParked = 1024;

transport::RetryPolicy discovery_retry() {
  transport::RetryPolicy p;
  p.initial_timeout = 10.0;
  p.backoff = 1.5;
  p.max_attempts = 3;
  return p;
}
}  // namespace

void RendezvousDirectory::enroll(NodeId node, RendezvousIndex& index) {
  indexes_[node] = &index;
}

void RendezvousDirectory::withdraw(NodeId node) { indexes_.erase(node); }

RendezvousIndex* RendezvousDirectory::find(NodeId node) const noexcept {
  const auto it = indexes_.find(node);
  return it == indexes_.end() ? nullptr : it->second;
}

std::uint64_t RendezvousDirectory::park(std::vector<Advertisement> payload) {
  const std::uint64_t ticket = ++next_ticket_;
  parked_.emplace(ticket, std::move(payload));
  order_.push_back(ticket);
  while (order_.size() > kMaxParked) {
    parked_.erase(order_.front());
    order_.pop_front();
  }
  return ticket;
}

std::vector<Advertisement> RendezvousDirectory::claim(std::uint64_t ticket) {
  const auto it = parked_.find(ticket);
  if (it == parked_.end()) return {};
  std::vector<Advertisement> payload = std::move(it->second);
  parked_.erase(it);
  return payload;
}

std::uint64_t RendezvousDirectory::park_query(AdvertisementQuery query) {
  const std::uint64_t ticket = ++next_ticket_;
  queries_.emplace(ticket, std::move(query));
  query_order_.push_back(ticket);
  while (query_order_.size() > kMaxParked) {
    queries_.erase(query_order_.front());
    query_order_.pop_front();
  }
  return ticket;
}

const AdvertisementQuery* RendezvousDirectory::peek_query(std::uint64_t ticket) const {
  const auto it = queries_.find(ticket);
  return it == queries_.end() ? nullptr : &it->second;
}

void RendezvousDirectory::release_query(std::uint64_t ticket) { queries_.erase(ticket); }

DiscoveryService::DiscoveryService(transport::Endpoint& endpoint,
                                   RendezvousDirectory& directory, PeerId self,
                                   NodeId rendezvous)
    : endpoint_(endpoint),
      directory_(directory),
      self_(self),
      rendezvous_(rendezvous),
      query_channel_(endpoint, transport::MessageType::kDiscoveryQuery,
                     transport::MessageType::kDiscoveryResponse, discovery_retry()) {
  PEERLAB_CHECK_MSG(self_.valid(), "discovery needs a peer identity");
}

DiscoveryService::~DiscoveryService() = default;

void DiscoveryService::publish(Advertisement adv, Seconds lifetime) {
  PEERLAB_CHECK_MSG(lifetime > 0.0, "advertisement lifetime must be positive");
  adv.publisher = self_;
  adv.published_at = endpoint_.fabric().simulator().now();
  adv.expires_at = adv.published_at + lifetime;
  adv.id = local_ids_.next();

  // Replace any local edition of the same (kind, name).
  const auto same = [&adv](const Advertisement& other) {
    return other.kind == adv.kind && other.name == adv.name && other.publisher == adv.publisher;
  };
  local_.erase(std::remove_if(local_.begin(), local_.end(), same), local_.end());
  local_.push_back(adv);

  // Push to the rendezvous: the datagram delay models the publish
  // round; the index mutation happens at arrival time.
  endpoint_.fabric().network().send_datagram(
      endpoint_.node(), rendezvous_, transport::nominal_size(transport::MessageType::kStatsReport),
      [this, adv] {
        if (RendezvousIndex* index = directory_.find(rendezvous_)) {
          if (!adv.expired(endpoint_.fabric().simulator().now())) {
            index->publish(adv);
          }
        }
      });
}

std::vector<Advertisement> DiscoveryService::lookup_local(
    const AdvertisementQuery& query) const {
  const Seconds now = endpoint_.fabric().simulator().now();
  std::vector<Advertisement> out;
  for (const auto& adv : local_) {
    if (query.matches(adv, now)) out.push_back(adv);
  }
  return out;
}

void DiscoveryService::query_remote(const AdvertisementQuery& query, QueryCallback done) {
  query_remote(query, /*hop=*/0, std::move(done));
}

void DiscoveryService::query_remote(const AdvertisementQuery& query, std::int64_t hop,
                                    QueryCallback done) {
  query_remote(query, hop, obs::trace::TraceContext{}, std::move(done));
}

void DiscoveryService::query_remote(const AdvertisementQuery& query, std::int64_t hop,
                                    const obs::trace::TraceContext& trace,
                                    QueryCallback done) {
  PEERLAB_CHECK_MSG(static_cast<bool>(done), "query callback required");
  // The control plane carries no structured payloads; the query body
  // travels via a parked ticket the rendezvous peeks at.
  const std::uint64_t query_ticket = directory_.park_query(query);
  query_channel_.request(
      rendezvous_, query_ticket, hop, trace,
      [this, query_ticket, done = std::move(done)](const transport::RequestOutcome& outcome) {
        directory_.release_query(query_ticket);
        if (!outcome.ok) {
          done({});
          return;
        }
        done(directory_.claim(static_cast<std::uint64_t>(outcome.response.arg)));
      });
}

void DiscoveryService::serve_rendezvous_queries() {
  serve_rendezvous_queries([this](const AdvertisementQuery& query, std::int64_t /*hop*/,
                                  std::function<void(std::vector<Advertisement>)> done) {
    RendezvousIndex* index = directory_.find(endpoint_.node());
    done(index != nullptr ? index->query(query) : std::vector<Advertisement>{});
  });
}

void DiscoveryService::serve_rendezvous_queries(QueryResolver resolver) {
  PEERLAB_CHECK_MSG(static_cast<bool>(resolver), "resolver required");
  query_channel_.serve([this, resolver](const transport::Message& m) {
    const AdvertisementQuery* parked = directory_.peek_query(m.correlation);
    const AdvertisementQuery query = parked != nullptr ? *parked : AdvertisementQuery{};
    resolver(query, m.arg, [this, m](std::vector<Advertisement> results) {
      const std::uint64_t ticket = directory_.park(std::move(results));
      endpoint_.reply(m, transport::MessageType::kDiscoveryResponse,
                      static_cast<std::int64_t>(ticket));
    });
  });
}

std::size_t DiscoveryService::sweep_local() {
  const Seconds now = endpoint_.fabric().simulator().now();
  const auto before = local_.size();
  local_.erase(std::remove_if(local_.begin(), local_.end(),
                              [now](const Advertisement& a) { return a.expired(now); }),
               local_.end());
  return before - local_.size();
}

}  // namespace peerlab::jxta
