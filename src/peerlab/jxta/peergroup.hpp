#pragma once

// Peergroup functionality: JXTA scopes discovery and services inside
// peergroups. The broker (rendezvous) hosts the authoritative
// membership registry; edge peers join/leave over the control plane
// with a reliable handshake. Groups are advertised through discovery
// so peers can find them by name.

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "peerlab/jxta/discovery.hpp"
#include "peerlab/transport/reliable_channel.hpp"

namespace peerlab::jxta {

/// Broker-side registry of groups and members.
class PeerGroupRegistry {
 public:
  /// Creates a group; names are unique — creating an existing name
  /// returns the existing id (idempotent for retried requests).
  GroupId create(const std::string& name, PeerId creator);

  [[nodiscard]] std::optional<GroupId> find(const std::string& name) const;
  [[nodiscard]] bool exists(GroupId id) const noexcept;

  /// Adds a member; returns false for unknown groups. Idempotent.
  bool join(GroupId id, PeerId peer);
  /// Removes a member; returns true when the peer was present.
  bool leave(GroupId id, PeerId peer);
  /// Removes a peer from every group (churn).
  std::size_t evict(PeerId peer);

  [[nodiscard]] std::vector<PeerId> members(GroupId id) const;
  [[nodiscard]] bool is_member(GroupId id, PeerId peer) const noexcept;
  [[nodiscard]] std::size_t group_count() const noexcept { return groups_.size(); }

 private:
  struct Group {
    std::string name;
    PeerId creator;
    std::set<PeerId> members;
  };
  std::map<GroupId, Group> groups_;
  std::map<std::string, GroupId> by_name_;
  IdAllocator<GroupId> ids_;
};

/// In-process locator for registries (which node hosts which registry).
class PeerGroupDirectory {
 public:
  void enroll(NodeId node, PeerGroupRegistry& registry);
  void withdraw(NodeId node);
  [[nodiscard]] PeerGroupRegistry* find(NodeId node) const noexcept;

 private:
  std::unordered_map<NodeId, PeerGroupRegistry*> registries_;
};

/// Edge-peer membership operations against a broker-hosted registry.
class GroupMembership {
 public:
  GroupMembership(transport::Endpoint& endpoint, PeerGroupDirectory& directory, PeerId self,
                  NodeId broker);
  ~GroupMembership();

  GroupMembership(const GroupMembership&) = delete;
  GroupMembership& operator=(const GroupMembership&) = delete;

  using JoinCallback = std::function<void(bool ok, GroupId group)>;

  /// Joins a group by id (resolve the id via discovery first).
  /// Retried on loss; the broker-side join is idempotent.
  void join(GroupId group, JoinCallback done);

  /// Leaves a group (fire-and-forget, like JXTA's best-effort leave).
  void leave(GroupId group);

  /// Installs the broker-side responder. Call once on the broker.
  void serve_registry();

  /// Re-points membership operations at a different broker.
  void set_broker(NodeId broker) noexcept { broker_ = broker; }
  [[nodiscard]] NodeId broker() const noexcept { return broker_; }
  [[nodiscard]] PeerId self() const noexcept { return self_; }

 private:
  transport::Endpoint& endpoint_;
  PeerGroupDirectory& directory_;
  PeerId self_;
  NodeId broker_;
  transport::ReliableChannel join_channel_;
};

}  // namespace peerlab::jxta
