#pragma once

// Discovery service: the JXTA primitive that lets a peer publish
// advertisements and find others'. Edge peers keep a local cache and
// delegate wide queries to their rendezvous (broker) over the control
// plane, with retry — discovery traffic crosses the same lossy
// wide-area links everything else does.

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "peerlab/jxta/rendezvous.hpp"
#include "peerlab/transport/reliable_channel.hpp"

namespace peerlab::jxta {

/// In-process registry: which node hosts which rendezvous index, plus
/// the payload store that carries query results across the simulated
/// control plane (messages themselves are payload-free).
class RendezvousDirectory {
 public:
  void enroll(NodeId node, RendezvousIndex& index);
  void withdraw(NodeId node);
  [[nodiscard]] RendezvousIndex* find(NodeId node) const noexcept;

  /// Parks a query result; returns its claim ticket.
  std::uint64_t park(std::vector<Advertisement> payload);
  /// Claims (and removes) a parked result; empty if expired/unknown.
  [[nodiscard]] std::vector<Advertisement> claim(std::uint64_t ticket);

  /// Parks a query body so the rendezvous can read it. Query tickets
  /// are peeked, not claimed: request retransmissions must stay
  /// idempotent.
  std::uint64_t park_query(AdvertisementQuery query);
  [[nodiscard]] const AdvertisementQuery* peek_query(std::uint64_t ticket) const;
  void release_query(std::uint64_t ticket);

 private:
  std::unordered_map<NodeId, RendezvousIndex*> indexes_;
  std::unordered_map<std::uint64_t, std::vector<Advertisement>> parked_;
  std::deque<std::uint64_t> order_;  // FIFO eviction of stale payloads
  std::unordered_map<std::uint64_t, AdvertisementQuery> queries_;
  std::deque<std::uint64_t> query_order_;
  std::uint64_t next_ticket_ = 0;
};

class DiscoveryService {
 public:
  /// `self` identifies the publishing peer; `rendezvous` is the node
  /// hosting this peer's rendezvous index (its broker).
  DiscoveryService(transport::Endpoint& endpoint, RendezvousDirectory& directory, PeerId self,
                   NodeId rendezvous);
  ~DiscoveryService();

  DiscoveryService(const DiscoveryService&) = delete;
  DiscoveryService& operator=(const DiscoveryService&) = delete;

  /// Publishes locally and pushes to the rendezvous. The push is a
  /// datagram: it takes control-plane time and can be lost, in which
  /// case the periodic republish (the caller's business) heals it.
  void publish(Advertisement adv, Seconds lifetime);

  /// Local cache lookup (instant, possibly stale).
  [[nodiscard]] std::vector<Advertisement> lookup_local(const AdvertisementQuery& query) const;

  using QueryCallback = std::function<void(std::vector<Advertisement>)>;

  /// Remote query through the rendezvous; retried on loss. The callback
  /// always fires: with the rendezvous' matches, or empty on failure.
  void query_remote(const AdvertisementQuery& query, QueryCallback done);

  /// Re-points this peer at a different rendezvous (broker failover).
  void set_rendezvous(NodeId rendezvous) { rendezvous_ = rendezvous; }
  [[nodiscard]] NodeId rendezvous() const noexcept { return rendezvous_; }
  [[nodiscard]] PeerId self() const noexcept { return self_; }

  /// Drops expired local cache entries.
  std::size_t sweep_local();

  [[nodiscard]] std::size_t local_cache_size() const noexcept { return local_.size(); }

  /// Installs the responder side on a rendezvous-hosting node's
  /// endpoint. Call once on the broker's discovery service.
  void serve_rendezvous_queries();

  /// Responder with a custom (possibly asynchronous) resolver — used
  /// by federated brokers that consult peer rendezvous on a local
  /// miss. `hop` is the query's hop marker (see query_remote); the
  /// resolver must call `done` exactly once per invocation.
  using QueryResolver =
      std::function<void(const AdvertisementQuery& query, std::int64_t hop,
                         std::function<void(std::vector<Advertisement>)> done)>;
  void serve_rendezvous_queries(QueryResolver resolver);

  /// query_remote with an explicit hop marker riding the request
  /// (hop != 0 tells a federated responder not to forward again).
  void query_remote(const AdvertisementQuery& query, std::int64_t hop, QueryCallback done);

  /// Traced variant: `trace` is stamped onto the query datagram and
  /// every retransmission, keeping the whole discovery round trip on
  /// the caller's causal chain (the rendezvous reply echoes it back).
  void query_remote(const AdvertisementQuery& query, std::int64_t hop,
                    const obs::trace::TraceContext& trace, QueryCallback done);

 private:
  transport::Endpoint& endpoint_;
  RendezvousDirectory& directory_;
  PeerId self_;
  NodeId rendezvous_;
  transport::ReliableChannel query_channel_;
  std::vector<Advertisement> local_;
  IdAllocator<AdvertisementId> local_ids_;
};

}  // namespace peerlab::jxta
