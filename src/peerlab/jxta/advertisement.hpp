#pragma once

// JXTA advertisements.
//
// In JXTA every discoverable entity — peer, pipe, peergroup, shared
// content — announces itself with an XML advertisement carrying a
// lifetime. peerlab keeps the same shape (kind + name + attribute map +
// expiry) without the XML: the selection experiments only care about
// what can be discovered and when it expires.

#include <map>
#include <optional>
#include <string>

#include "peerlab/common/ids.hpp"
#include "peerlab/common/units.hpp"

namespace peerlab::jxta {

enum class AdvertisementKind : std::uint8_t {
  kPeer,       // a live peer (node + capabilities)
  kPipe,       // an input pipe another peer can bind to
  kPeerGroup,  // a peergroup that can be joined
  kContent,    // shared file/data
  kModule,     // a service implementation (task executor etc.)
};

[[nodiscard]] const char* to_string(AdvertisementKind kind) noexcept;

struct Advertisement {
  AdvertisementId id;
  AdvertisementKind kind = AdvertisementKind::kPeer;
  /// The peer that published this advertisement.
  PeerId publisher;
  /// The node the publisher lives on (resolution target).
  NodeId home;
  /// Human-meaningful name, e.g. a hostname or pipe name.
  std::string name;
  /// Free-form typed attributes ("cpu_ghz" -> "1.2", ...).
  std::map<std::string, std::string> attributes;
  Seconds published_at = 0.0;
  Seconds expires_at = 0.0;

  [[nodiscard]] bool expired(Seconds now) const noexcept { return now >= expires_at; }

  [[nodiscard]] std::optional<std::string> attribute(const std::string& key) const;
  [[nodiscard]] double numeric_attribute(const std::string& key, double fallback) const;
};

/// Query predicate: kind always matches exactly; empty name matches any.
struct AdvertisementQuery {
  AdvertisementKind kind = AdvertisementKind::kPeer;
  std::string name;  // exact match when non-empty
  /// Attribute constraints that must all be present and equal.
  std::map<std::string, std::string> attribute_equals;

  [[nodiscard]] bool matches(const Advertisement& adv, Seconds now) const;
};

}  // namespace peerlab::jxta
