#include "peerlab/jxta/peergroup.hpp"

#include <utility>

#include "peerlab/common/check.hpp"

namespace peerlab::jxta {

GroupId PeerGroupRegistry::create(const std::string& name, PeerId creator) {
  PEERLAB_CHECK_MSG(!name.empty(), "group needs a name");
  PEERLAB_CHECK_MSG(creator.valid(), "group needs a creator");
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    return it->second;
  }
  const GroupId id = ids_.next();
  Group group;
  group.name = name;
  group.creator = creator;
  group.members.insert(creator);
  groups_.emplace(id, std::move(group));
  by_name_.emplace(name, id);
  return id;
}

std::optional<GroupId> PeerGroupRegistry::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

bool PeerGroupRegistry::exists(GroupId id) const noexcept { return groups_.count(id) > 0; }

bool PeerGroupRegistry::join(GroupId id, PeerId peer) {
  const auto it = groups_.find(id);
  if (it == groups_.end()) return false;
  it->second.members.insert(peer);
  return true;
}

bool PeerGroupRegistry::leave(GroupId id, PeerId peer) {
  const auto it = groups_.find(id);
  if (it == groups_.end()) return false;
  return it->second.members.erase(peer) > 0;
}

std::size_t PeerGroupRegistry::evict(PeerId peer) {
  std::size_t removed = 0;
  for (auto& [id, group] : groups_) {
    removed += group.members.erase(peer);
  }
  return removed;
}

std::vector<PeerId> PeerGroupRegistry::members(GroupId id) const {
  const auto it = groups_.find(id);
  if (it == groups_.end()) return {};
  return {it->second.members.begin(), it->second.members.end()};
}

bool PeerGroupRegistry::is_member(GroupId id, PeerId peer) const noexcept {
  const auto it = groups_.find(id);
  return it != groups_.end() && it->second.members.count(peer) > 0;
}

void PeerGroupDirectory::enroll(NodeId node, PeerGroupRegistry& registry) {
  registries_[node] = &registry;
}

void PeerGroupDirectory::withdraw(NodeId node) { registries_.erase(node); }

PeerGroupRegistry* PeerGroupDirectory::find(NodeId node) const noexcept {
  const auto it = registries_.find(node);
  return it == registries_.end() ? nullptr : it->second;
}

namespace {
transport::RetryPolicy join_retry() {
  transport::RetryPolicy p;
  p.initial_timeout = 10.0;
  p.backoff = 1.5;
  p.max_attempts = 4;
  return p;
}
}  // namespace

GroupMembership::GroupMembership(transport::Endpoint& endpoint, PeerGroupDirectory& directory,
                                 PeerId self, NodeId broker)
    : endpoint_(endpoint),
      directory_(directory),
      self_(self),
      broker_(broker),
      join_channel_(endpoint, transport::MessageType::kGroupJoin,
                    transport::MessageType::kGroupJoinAck, join_retry()) {
  PEERLAB_CHECK_MSG(self_.valid(), "membership needs a peer identity");
  endpoint_.set_handler(transport::MessageType::kGroupLeave, [this](const transport::Message& m) {
    if (PeerGroupRegistry* registry = directory_.find(endpoint_.node())) {
      registry->leave(GroupId(m.correlation), PeerId(static_cast<std::uint64_t>(m.arg)));
    }
  });
}

GroupMembership::~GroupMembership() {
  endpoint_.clear_handler(transport::MessageType::kGroupLeave);
}

void GroupMembership::join(GroupId group, JoinCallback done) {
  PEERLAB_CHECK_MSG(static_cast<bool>(done), "join callback required");
  join_channel_.request(broker_, group.value(), static_cast<std::int64_t>(self_.value()),
                        [group, done = std::move(done)](const transport::RequestOutcome& o) {
                          done(o.ok && o.response.arg != 0, group);
                        });
}

void GroupMembership::leave(GroupId group) {
  endpoint_.send(broker_, transport::MessageType::kGroupLeave, group.value(), 0,
                 static_cast<std::int64_t>(self_.value()));
}

void GroupMembership::serve_registry() {
  join_channel_.serve([this](const transport::Message& m) {
    bool ok = false;
    if (PeerGroupRegistry* registry = directory_.find(endpoint_.node())) {
      ok = registry->join(GroupId(m.correlation), PeerId(static_cast<std::uint64_t>(m.arg)));
    }
    endpoint_.reply(m, transport::MessageType::kGroupJoinAck, ok ? 1 : 0);
  });
}

}  // namespace peerlab::jxta
