#pragma once

// JXTA pipe service: named, unidirectional message conduits. A peer
// creates an *input pipe* (publishing a pipe advertisement through
// discovery); other peers *bind* an output pipe by resolving that
// advertisement and can then push small messages which arrive at the
// input pipe's listener. Bulk data does not ride pipes in peerlab —
// the file-transfer protocol owns the data plane — but task offers,
// results and chat do.

#include <functional>
#include <string>
#include <unordered_map>

#include "peerlab/jxta/discovery.hpp"
#include "peerlab/transport/endpoint.hpp"

namespace peerlab::jxta {

struct PipeMessage {
  PipeId pipe;
  NodeId from;
  Bytes size = 0;
  std::int64_t tag = 0;
};

/// Authoritative pipe-id -> host-node map (what pipe resolution
/// ultimately yields in JXTA).
class PipeDirectory {
 public:
  PipeId create(NodeId host);
  void destroy(PipeId id);
  [[nodiscard]] NodeId host_of(PipeId id) const noexcept;

 private:
  IdAllocator<PipeId> ids_;
  std::unordered_map<PipeId, NodeId> hosts_;
};

class PipeService {
 public:
  PipeService(transport::Endpoint& endpoint, DiscoveryService& discovery,
              PipeDirectory& directory);
  ~PipeService();

  PipeService(const PipeService&) = delete;
  PipeService& operator=(const PipeService&) = delete;

  using Listener = std::function<void(const PipeMessage&)>;
  using BindCallback = std::function<void(bool ok, PipeId pipe)>;

  /// Creates an input pipe named `name`, publishes its advertisement
  /// (lifetime `adv_lifetime`), and wires `listener`.
  PipeId create_input_pipe(const std::string& name, Listener listener,
                           Seconds adv_lifetime = 3600.0);

  /// Closes an input pipe and revokes nothing remotely (adverts expire).
  void close_input_pipe(PipeId id);

  /// Resolves `name` through discovery and binds an output pipe.
  void bind_output(const std::string& name, BindCallback done);

  /// Sends one message through a bound output pipe (fire-and-forget
  /// control datagram).
  void send(PipeId pipe, Bytes size, std::int64_t tag = 0);

  [[nodiscard]] bool bound(PipeId pipe) const noexcept { return outputs_.count(pipe) > 0; }
  [[nodiscard]] std::size_t input_pipes() const noexcept { return inputs_.size(); }
  [[nodiscard]] std::uint64_t messages_received() const noexcept { return received_; }

 private:
  void on_pipe_data(const transport::Message& m);

  transport::Endpoint& endpoint_;
  DiscoveryService& discovery_;
  PipeDirectory& directory_;
  std::unordered_map<PipeId, Listener> inputs_;
  std::unordered_map<PipeId, NodeId> outputs_;  // bound output -> host
  std::uint64_t received_ = 0;
};

}  // namespace peerlab::jxta
