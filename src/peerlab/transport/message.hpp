#pragma once

// Control-plane message vocabulary of the overlay transport.
//
// Bulk data (file parts) moves on the data plane (net::Network bulk
// messages); everything here is small advisory traffic. A Message is
// deliberately payload-free: simulated endpoints carry protocol state
// in their services, and messages only need routing plus correlation
// fields (which session, which sequence number, which part).

#include <cstdint>
#include <string>

#include "peerlab/common/ids.hpp"
#include "peerlab/common/units.hpp"
#include "peerlab/obs/trace_context.hpp"

namespace peerlab::transport {

enum class MessageType : std::uint8_t {
  // File transfer protocol (Section 4.2 of the paper).
  kTransferPetition,     // "may I send you a file part?"
  kTransferPetitionAck,  // "yes, ready to receive"
  kPartConfirm,          // "part received correctly, send the next"
  kConfirmQuery,         // sender lost the confirm; asks again
  // Task management protocol.
  kTaskOffer,
  kTaskAccept,
  kTaskReject,
  kTaskResult,
  kTaskResultAck,
  // Overlay housekeeping.
  kHeartbeat,
  kStatsReport,
  kDiscoveryQuery,
  kDiscoveryResponse,
  kGroupJoin,
  kGroupJoinAck,
  kGroupLeave,
  // Instant messaging primitive.
  kChat,
  kChatAck,
  // JXTA pipe service.
  kPipeResolve,
  kPipeResolveAck,
  kPipeData,
  // Broker-mediated peer selection.
  kSelectRequest,
  kSelectResponse,
  // Broker replication (primary -> standby state streaming).
  kReplicaDelta,      // one sequence-numbered StatsDelta, via ticket
  kReplicaDeltaAck,   // standby's cumulative applied sequence
  kReplicaHeartbeat,  // primary liveness + current stream sequence
  kReplicaSnapshot,   // anti-entropy full-state snapshot, via ticket
  kReplicaJoin,       // (re)joining standby asks for a snapshot now
};

[[nodiscard]] const char* to_string(MessageType type) noexcept;

/// Nominal wire sizes for control messages (affects only loss odds and
/// the tiny serialization term; all are degradation-exempt).
[[nodiscard]] Bytes nominal_size(MessageType type) noexcept;

struct Message {
  MessageId id;
  NodeId src;
  NodeId dst;
  MessageType type = MessageType::kHeartbeat;
  Bytes size = 0;
  /// Protocol session this message belongs to (transfer id, task id...).
  std::uint64_t correlation = 0;
  /// Request/response matching sequence, stamped by ReliableChannel.
  std::uint64_t seq = 0;
  /// Free slot for small protocol arguments (part index, status code).
  std::int64_t arg = 0;
  /// Causal-tracing header (DESIGN.md §16). All-zero (inactive) unless
  /// the sender runs under an obs::trace chain; Endpoint::reply echoes
  /// it so responses stay on the requester's chain.
  obs::trace::TraceContext trace;
};

}  // namespace peerlab::transport
