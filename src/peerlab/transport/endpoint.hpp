#pragma once

// Endpoints and the fabric that connects them.
//
// Every node that runs overlay software gets one Endpoint. An Endpoint
// dispatches inbound control messages to per-type handlers and sends
// outbound ones through the Network's control plane. The
// TransportFabric is the in-process registry that lets the network's
// delivery events find the destination endpoint.

#include <functional>
#include <memory>
#include <unordered_map>

#include "peerlab/common/ids.hpp"
#include "peerlab/net/network.hpp"
#include "peerlab/transport/message.hpp"

namespace peerlab::obs::trace {
class TraceRecorder;
}  // namespace peerlab::obs::trace

namespace peerlab::transport {

class TransportFabric;

class Endpoint {
 public:
  using Handler = std::function<void(const Message&)>;

  Endpoint(TransportFabric& fabric, NodeId node);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] TransportFabric& fabric() noexcept { return fabric_; }

  /// Installs the handler for one message type (one per type; services
  /// own their types). Replacing an existing handler is allowed.
  void set_handler(MessageType type, Handler handler);

  /// Removes a handler.
  void clear_handler(MessageType type);

  /// Sends one control datagram (may be lost; returns its id). `trace`
  /// stamps the causal-tracing header; the default inactive context
  /// marks the datagram untraced.
  MessageId send(NodeId dst, MessageType type, std::uint64_t correlation = 0,
                 std::uint64_t seq = 0, std::int64_t arg = 0,
                 const obs::trace::TraceContext& trace = {});

  /// Convenience reply: echoes correlation/seq — and the causal-trace
  /// header — back to the sender.
  MessageId reply(const Message& to, MessageType type, std::int64_t arg = 0);

  /// Delivery entry point (called by the fabric at the arrival instant).
  void deliver(const Message& message);

  [[nodiscard]] std::uint64_t delivered_count() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t unhandled_count() const noexcept { return unhandled_; }

 private:
  TransportFabric& fabric_;
  NodeId node_;
  std::unordered_map<MessageType, Handler> handlers_;
  std::uint64_t delivered_ = 0;
  std::uint64_t unhandled_ = 0;
};

/// In-process registry of endpoints over one Network.
class TransportFabric {
 public:
  explicit TransportFabric(net::Network& network) : network_(network) {}

  TransportFabric(const TransportFabric&) = delete;
  TransportFabric& operator=(const TransportFabric&) = delete;

  /// Creates (or returns the existing) endpoint for `node`.
  Endpoint& attach(NodeId node);

  [[nodiscard]] bool attached(NodeId node) const noexcept;
  [[nodiscard]] Endpoint& endpoint(NodeId node);

  [[nodiscard]] net::Network& network() noexcept { return network_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return network_.simulator(); }

  /// Attaches the causal-trace recorder (nullptr detaches). Datagrams
  /// carrying an active context then emit msg-send/msg-deliver events;
  /// detached, the cost is one pointer test per routed message.
  void set_trace(obs::trace::TraceRecorder* recorder) noexcept { trace_ = recorder; }
  [[nodiscard]] obs::trace::TraceRecorder* trace() const noexcept { return trace_; }

  /// Routes one message; loss and delay are the network's business.
  MessageId route(Message message);

 private:
  net::Network& network_;
  std::unordered_map<NodeId, std::unique_ptr<Endpoint>> endpoints_;
  IdAllocator<MessageId> message_ids_;
  obs::trace::TraceRecorder* trace_ = nullptr;
};

}  // namespace peerlab::transport
