#include "peerlab/transport/reliable_channel.hpp"

#include <utility>
#include <vector>

#include "peerlab/common/check.hpp"

namespace peerlab::transport {

namespace {

/// Stateless full-jitter factor in [1 - jitter, 1 + jitter): a
/// splitmix64 finalizer over (channel salt, seq, attempt). No shared
/// RNG stream is consumed, so enabling jitter on one channel cannot
/// perturb any other component's random sequence.
double jitter_factor(std::uint64_t salt, std::uint64_t seq, int attempt,
                     double jitter) noexcept {
  std::uint64_t x = salt ^ (seq * 0x9E3779B97F4A7C15ull) ^
                    (static_cast<std::uint64_t>(attempt) << 48);
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  const double unit = static_cast<double>(x >> 11) * 0x1.0p-53;  // [0, 1)
  return 1.0 - jitter + 2.0 * jitter * unit;
}

}  // namespace

ReliableChannel::ReliableChannel(Endpoint& endpoint, MessageType request_type,
                                 MessageType response_type, RetryPolicy policy)
    : endpoint_(endpoint),
      request_type_(request_type),
      response_type_(response_type),
      policy_(policy) {
  PEERLAB_CHECK_MSG(policy_.initial_timeout > 0.0, "timeout must be positive");
  PEERLAB_CHECK_MSG(policy_.backoff >= 1.0, "backoff must be >= 1");
  PEERLAB_CHECK_MSG(policy_.max_attempts >= 1, "need at least one attempt");
  PEERLAB_CHECK_MSG(policy_.jitter >= 0.0 && policy_.jitter < 1.0,
                    "jitter must be in [0, 1)");
  endpoint_.set_handler(response_type_, [this](const Message& m) { on_response(m); });
}

ReliableChannel::~ReliableChannel() {
  endpoint_.clear_handler(response_type_);
  if (serving_) {
    endpoint_.clear_handler(request_type_);
  }
  for (auto& [seq, p] : pending_) {
    p.timer.cancel();
  }
}

void ReliableChannel::serve(std::function<void(const Message&)> on_request) {
  PEERLAB_CHECK_MSG(static_cast<bool>(on_request), "responder must be callable");
  serving_ = true;
  endpoint_.set_handler(request_type_, std::move(on_request));
}

void ReliableChannel::request(NodeId dst, std::uint64_t correlation, std::int64_t arg,
                              std::function<void(const RequestOutcome&)> done) {
  request(dst, correlation, arg, policy_, obs::trace::TraceContext{}, std::move(done));
}

void ReliableChannel::request(NodeId dst, std::uint64_t correlation, std::int64_t arg,
                              const RetryPolicy& policy,
                              std::function<void(const RequestOutcome&)> done) {
  request(dst, correlation, arg, policy, obs::trace::TraceContext{}, std::move(done));
}

void ReliableChannel::request(NodeId dst, std::uint64_t correlation, std::int64_t arg,
                              const obs::trace::TraceContext& trace,
                              std::function<void(const RequestOutcome&)> done) {
  request(dst, correlation, arg, policy_, trace, std::move(done));
}

void ReliableChannel::request(NodeId dst, std::uint64_t correlation, std::int64_t arg,
                              const RetryPolicy& policy, const obs::trace::TraceContext& trace,
                              std::function<void(const RequestOutcome&)> done) {
  PEERLAB_CHECK_MSG(static_cast<bool>(done), "completion callback required");
  PEERLAB_CHECK_MSG(policy.initial_timeout > 0.0 && policy.backoff >= 1.0 &&
                        policy.max_attempts >= 1 && policy.jitter >= 0.0 &&
                        policy.jitter < 1.0,
                    "degenerate per-request retry policy");
  const std::uint64_t seq = ++next_seq_;
  Pending p;
  p.dst = dst;
  p.correlation = correlation;
  p.arg = arg;
  p.first_sent = endpoint_.fabric().simulator().now();
  p.timeout = policy.initial_timeout;
  p.policy = policy;
  p.trace = trace;
  p.done = std::move(done);
  pending_.emplace(seq, std::move(p));
  transmit(seq);
}

std::size_t ReliableChannel::fail_pending_to(NodeId dst) {
  std::vector<std::uint64_t> doomed;
  for (const auto& [seq, p] : pending_) {
    if (p.dst == dst) doomed.push_back(seq);
  }
  // Two passes: the callbacks may add new pending requests (re-issue
  // against a replacement destination), which must not be visited.
  std::size_t failed = 0;
  for (const std::uint64_t seq : doomed) {
    auto it = pending_.find(seq);
    if (it == pending_.end()) continue;
    it->second.timer.cancel();
    RequestOutcome outcome;
    outcome.ok = false;
    outcome.attempts = it->second.attempts;
    outcome.elapsed = endpoint_.fabric().simulator().now() - it->second.first_sent;
    auto done = std::move(it->second.done);
    pending_.erase(it);
    done(outcome);
    ++failed;
  }
  return failed;
}

void ReliableChannel::transmit(std::uint64_t seq) {
  auto it = pending_.find(seq);
  PEERLAB_CHECK(it != pending_.end());
  Pending& p = it->second;
  ++p.attempts;
  if (p.attempts > 1) {
    ++retransmissions_;
  }
  endpoint_.send(p.dst, request_type_, p.correlation, seq, p.arg, p.trace);
  Seconds wait = p.timeout;
  if (p.policy.jitter > 0.0) {
    const std::uint64_t salt = (endpoint_.node().value() << 16) ^
                               (static_cast<std::uint64_t>(request_type_) << 8) ^
                               static_cast<std::uint64_t>(response_type_);
    wait *= jitter_factor(salt, seq, p.attempts, p.policy.jitter);
  }
  p.timer = endpoint_.fabric().simulator().schedule(wait,
                                                    [this, seq] { on_timeout(seq); });
  p.timeout *= p.policy.backoff;
}

void ReliableChannel::on_timeout(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) {
    return;  // response won the race
  }
  if (it->second.attempts >= it->second.policy.max_attempts) {
    RequestOutcome outcome;
    outcome.ok = false;
    outcome.attempts = it->second.attempts;
    outcome.elapsed = endpoint_.fabric().simulator().now() - it->second.first_sent;
    auto done = std::move(it->second.done);
    pending_.erase(it);
    done(outcome);
    return;
  }
  transmit(seq);
}

void ReliableChannel::on_response(const Message& message) {
  auto it = pending_.find(message.seq);
  if (it == pending_.end()) {
    return;  // duplicate response after completion; drop
  }
  it->second.timer.cancel();
  RequestOutcome outcome;
  outcome.ok = true;
  outcome.attempts = it->second.attempts;
  outcome.elapsed = endpoint_.fabric().simulator().now() - it->second.first_sent;
  outcome.response = message;
  auto done = std::move(it->second.done);
  pending_.erase(it);
  done(outcome);
}

}  // namespace peerlab::transport
