#include "peerlab/transport/message.hpp"

namespace peerlab::transport {

const char* to_string(MessageType type) noexcept {
  switch (type) {
    case MessageType::kTransferPetition: return "transfer-petition";
    case MessageType::kTransferPetitionAck: return "transfer-petition-ack";
    case MessageType::kPartConfirm: return "part-confirm";
    case MessageType::kConfirmQuery: return "confirm-query";
    case MessageType::kTaskOffer: return "task-offer";
    case MessageType::kTaskAccept: return "task-accept";
    case MessageType::kTaskReject: return "task-reject";
    case MessageType::kTaskResult: return "task-result";
    case MessageType::kTaskResultAck: return "task-result-ack";
    case MessageType::kHeartbeat: return "heartbeat";
    case MessageType::kStatsReport: return "stats-report";
    case MessageType::kDiscoveryQuery: return "discovery-query";
    case MessageType::kDiscoveryResponse: return "discovery-response";
    case MessageType::kGroupJoin: return "group-join";
    case MessageType::kGroupJoinAck: return "group-join-ack";
    case MessageType::kGroupLeave: return "group-leave";
    case MessageType::kChat: return "chat";
    case MessageType::kChatAck: return "chat-ack";
    case MessageType::kPipeResolve: return "pipe-resolve";
    case MessageType::kPipeResolveAck: return "pipe-resolve-ack";
    case MessageType::kPipeData: return "pipe-data";
    case MessageType::kSelectRequest: return "select-request";
    case MessageType::kSelectResponse: return "select-response";
    case MessageType::kReplicaDelta: return "replica-delta";
    case MessageType::kReplicaDeltaAck: return "replica-delta-ack";
    case MessageType::kReplicaHeartbeat: return "replica-heartbeat";
    case MessageType::kReplicaSnapshot: return "replica-snapshot";
    case MessageType::kReplicaJoin: return "replica-join";
  }
  return "?";
}

Bytes nominal_size(MessageType type) noexcept {
  switch (type) {
    case MessageType::kTransferPetition:
    case MessageType::kTaskOffer:
      return 2 * kKilobyte;  // XML advertisement payloads in JXTA
    case MessageType::kStatsReport:
      return 4 * kKilobyte;
    case MessageType::kDiscoveryQuery:
    case MessageType::kDiscoveryResponse:
      return 3 * kKilobyte;
    case MessageType::kChat:
      return 1 * kKilobyte;
    case MessageType::kTaskResult:
      return 8 * kKilobyte;
    case MessageType::kReplicaDelta:
      return 4 * kKilobyte;  // mirrors the stats report it carries
    case MessageType::kReplicaSnapshot:
      return 64 * kKilobyte;  // full history + statistics dump
    default:
      return 512;
  }
}

}  // namespace peerlab::transport
