#include "peerlab/transport/endpoint.hpp"

#include "peerlab/common/check.hpp"
#include "peerlab/common/log.hpp"
#include "peerlab/obs/trace.hpp"

namespace peerlab::transport {

Endpoint::Endpoint(TransportFabric& fabric, NodeId node) : fabric_(fabric), node_(node) {}

void Endpoint::set_handler(MessageType type, Handler handler) {
  PEERLAB_CHECK_MSG(static_cast<bool>(handler), "handler must be callable");
  handlers_[type] = std::move(handler);
}

void Endpoint::clear_handler(MessageType type) { handlers_.erase(type); }

MessageId Endpoint::send(NodeId dst, MessageType type, std::uint64_t correlation,
                         std::uint64_t seq, std::int64_t arg,
                         const obs::trace::TraceContext& trace) {
  Message m;
  m.src = node_;
  m.dst = dst;
  m.type = type;
  m.size = nominal_size(type);
  m.correlation = correlation;
  m.seq = seq;
  m.arg = arg;
  m.trace = trace;
  return fabric_.route(std::move(m));
}

MessageId Endpoint::reply(const Message& to, MessageType type, std::int64_t arg) {
  return send(to.src, type, to.correlation, to.seq, arg, to.trace);
}

void Endpoint::deliver(const Message& message) {
  ++delivered_;
  const auto it = handlers_.find(message.type);
  if (it == handlers_.end()) {
    ++unhandled_;
    PEERLAB_LOG(kDebug, "transport")
        << to_string(node_) << " has no handler for " << to_string(message.type);
    return;
  }
  it->second(message);
}

Endpoint& TransportFabric::attach(NodeId node) {
  PEERLAB_CHECK_MSG(network_.topology().contains(node), "cannot attach to unknown node");
  auto it = endpoints_.find(node);
  if (it == endpoints_.end()) {
    it = endpoints_.emplace(node, std::make_unique<Endpoint>(*this, node)).first;
  }
  return *it->second;
}

bool TransportFabric::attached(NodeId node) const noexcept {
  return endpoints_.find(node) != endpoints_.end();
}

Endpoint& TransportFabric::endpoint(NodeId node) {
  const auto it = endpoints_.find(node);
  PEERLAB_CHECK_MSG(it != endpoints_.end(), "no endpoint attached at " + to_string(node));
  return *it->second;
}

MessageId TransportFabric::route(Message message) {
  message.id = message_ids_.next();
  const Message copy = message;
  // Traced datagrams bracket the wire leg: a send with no matching
  // deliver is a loss (or a dead destination) made visible on the
  // chain. Untraced traffic (heartbeats, idle chatter) stays silent.
  if (trace_ != nullptr && copy.trace.active()) {
    trace_->emit(copy.src, obs::trace::TraceKind::kMsgSend, copy.trace,
                 static_cast<std::uint64_t>(copy.type), copy.dst.value());
  }
  network_.send_datagram(copy.src, copy.dst, copy.size, [this, copy] {
    const auto it = endpoints_.find(copy.dst);
    if (it == endpoints_.end()) {
      return;  // destination software not running; datagram evaporates
    }
    if (trace_ != nullptr && copy.trace.active()) {
      trace_->emit(copy.dst, obs::trace::TraceKind::kMsgDeliver, copy.trace,
                   static_cast<std::uint64_t>(copy.type), copy.src.value());
    }
    it->second->deliver(copy);
  });
  return copy.id;
}

}  // namespace peerlab::transport
