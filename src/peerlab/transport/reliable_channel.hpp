#pragma once

// Reliable request/response over lossy control datagrams.
//
// A ReliableChannel owns one (request-type, response-type) pair on one
// endpoint. request() sends the request datagram and arms a
// retransmission timer with exponential backoff; the first matching
// response (same seq) completes the exchange. Responders are expected
// to be idempotent — duplicated requests from retries must be safe,
// which every peerlab protocol honours (acks and confirms restate
// receiver state rather than mutate it).

#include <functional>
#include <unordered_map>

#include "peerlab/sim/event_queue.hpp"
#include "peerlab/transport/endpoint.hpp"

namespace peerlab::transport {

struct RetryPolicy {
  /// First wait before retransmitting. Petitions to loaded PlanetLab
  /// slivers can take tens of seconds to be answered (Figure 2), so
  /// the default is generous.
  Seconds initial_timeout = 45.0;
  double backoff = 1.5;
  int max_attempts = 5;
  /// Full-jitter fraction in [0, 1): each armed wait is scaled by a
  /// deterministic factor in [1 - jitter, 1 + jitter) — a stateless
  /// hash of (channel, seq, attempt), so it draws nothing from any
  /// shared RNG stream and a seeded run replays bit-for-bit. Spreads
  /// otherwise-synchronized retries from many clients so they don't
  /// stampede a recovering broker. 0 (the default) leaves the timer
  /// arithmetic untouched.
  double jitter = 0.0;
};

struct RequestOutcome {
  bool ok = false;
  /// Round-trip time of the *successful* attempt's request-to-response
  /// span, measured from the first send (what the application felt).
  Seconds elapsed = 0.0;
  int attempts = 0;
  /// The response message (valid only when ok).
  Message response;
};

class ReliableChannel {
 public:
  /// The channel installs itself as the endpoint's handler for
  /// `response_type`. `on_request` (optional) handles inbound requests
  /// of `request_type` on this endpoint, i.e. one channel object serves
  /// both roles of the exchange.
  ReliableChannel(Endpoint& endpoint, MessageType request_type, MessageType response_type,
                  RetryPolicy policy = {});
  ~ReliableChannel();

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Installs the responder side: called for each inbound request; the
  /// handler typically calls endpoint().reply(msg, response_type, ...).
  void serve(std::function<void(const Message&)> on_request);

  /// Issues a request. `correlation`/`arg` ride on the message.
  /// `done` always fires exactly once (success or exhausted retries).
  void request(NodeId dst, std::uint64_t correlation, std::int64_t arg,
               std::function<void(const RequestOutcome&)> done);

  /// Same, with a per-request retry policy overriding the channel's.
  void request(NodeId dst, std::uint64_t correlation, std::int64_t arg,
               const RetryPolicy& policy, std::function<void(const RequestOutcome&)> done);

  /// Traced variants: `trace` is stamped onto the request datagram and
  /// every retransmission of it, so the whole retry ladder stays on
  /// the caller's causal chain (responses echo it back automatically).
  void request(NodeId dst, std::uint64_t correlation, std::int64_t arg,
               const obs::trace::TraceContext& trace,
               std::function<void(const RequestOutcome&)> done);
  void request(NodeId dst, std::uint64_t correlation, std::int64_t arg,
               const RetryPolicy& policy, const obs::trace::TraceContext& trace,
               std::function<void(const RequestOutcome&)> done);

  /// Fails every pending request addressed to `dst` right now (its
  /// `done` fires with ok=false) instead of burning the remaining
  /// retry budget. Used when the caller learns the destination is
  /// gone, e.g. a client re-homing off a crashed broker. Callbacks may
  /// re-issue requests on this channel re-entrantly. Returns the
  /// number of requests failed.
  std::size_t fail_pending_to(NodeId dst);

  [[nodiscard]] std::size_t outstanding() const noexcept { return pending_.size(); }
  [[nodiscard]] std::uint64_t retransmissions() const noexcept { return retransmissions_; }
  [[nodiscard]] Endpoint& endpoint() noexcept { return endpoint_; }

 private:
  struct Pending {
    NodeId dst;
    std::uint64_t correlation = 0;
    std::int64_t arg = 0;
    Seconds first_sent = 0.0;
    int attempts = 0;
    Seconds timeout = 0.0;
    RetryPolicy policy;
    obs::trace::TraceContext trace;
    sim::EventHandle timer;
    std::function<void(const RequestOutcome&)> done;
  };

  void transmit(std::uint64_t seq);
  void on_timeout(std::uint64_t seq);
  void on_response(const Message& message);

  Endpoint& endpoint_;
  MessageType request_type_;
  MessageType response_type_;
  RetryPolicy policy_;
  std::unordered_map<std::uint64_t, Pending> pending_;  // keyed by seq
  std::uint64_t next_seq_ = 0;
  std::uint64_t retransmissions_ = 0;
  bool serving_ = false;
};

}  // namespace peerlab::transport
