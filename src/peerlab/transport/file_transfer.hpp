#pragma once

// The paper's file transmission protocol (Section 4.2).
//
// A sender first issues a *petition* asking the receiving peer whether
// it can accept a file; the time the peer takes to receive that
// petition is what Figure 2 reports per node. After the petition is
// acknowledged, the file is sent as `parts` sequential bulk messages;
// after each part the receiver confirms "correct reception of the file
// and its availability to receive another part" before the sender
// dispatches the next one (Figures 3-5 study this loop under different
// granularities). Lost parts are retransmitted whole — which is
// exactly why monolithic transfers hurt — and lost confirmations are
// recovered with an idempotent confirm-query.
//
// One FileTransferPeer per node plays both roles; a FileTransferDirectory
// wires receivers to the data-plane arrival events.

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "peerlab/obs/metrics.hpp"
#include "peerlab/transport/reliable_channel.hpp"

namespace peerlab::transport {

struct FileTransferConfig {
  Bytes file_size = 0;
  /// Number of equal parts ("granularity"); 1 = whole file.
  int parts = 1;
  /// Retry policy for the petition handshake.
  RetryPolicy petition_retry{};
  /// How long the sender waits for a part confirmation before asking.
  Seconds confirm_timeout = 20.0;
  int max_confirm_queries = 5;
  /// Bulk retransmissions allowed per part before the transfer fails.
  int max_part_attempts = 8;
  /// Causal chain this transfer belongs to (inactive = untraced). The
  /// sender opens a child span under it; every protocol message of the
  /// transfer then carries that span.
  obs::trace::TraceContext trace;
};

struct PartRecord {
  int index = 0;
  Bytes size = 0;
  Seconds data_started = 0.0;
  Seconds data_completed = 0.0;
  Seconds confirmed = 0.0;
  /// Bulk transmissions used (1 = no loss).
  int attempts = 0;
  /// Estimated time the final megabyte of this part spent in flight
  /// (Figure 4's metric), derived from the part's achieved rate.
  Seconds last_mb_time = 0.0;
};

struct TransferResult {
  TransferId id;
  NodeId src;
  NodeId dst;
  bool complete = false;
  const char* failure = "";

  Seconds started = 0.0;
  Seconds petition_sent = 0.0;
  /// When the destination peer received the petition (Figure 2).
  Seconds petition_received = 0.0;
  /// When the sender learned the destination was ready.
  Seconds petition_acked = 0.0;
  int petition_attempts = 0;
  Seconds finished = 0.0;

  std::vector<PartRecord> parts;

  /// Figure 2 metric: time for the peer to receive the petition.
  [[nodiscard]] Seconds petition_time() const noexcept {
    return petition_received - petition_sent;
  }
  /// Figures 3/5 metric: data phase duration (parts + confirmations).
  [[nodiscard]] Seconds transmission_time() const noexcept {
    return finished - petition_acked;
  }
  /// End-to-end including the petition handshake.
  [[nodiscard]] Seconds total_time() const noexcept { return finished - started; }
  /// Figure 4 metric: last-megabyte time of the final part.
  [[nodiscard]] Seconds last_mb_time() const noexcept {
    return parts.empty() ? 0.0 : parts.back().last_mb_time;
  }
  [[nodiscard]] int total_part_attempts() const noexcept {
    int n = 0;
    for (const auto& p : parts) n += p.attempts;
    return n;
  }
};

class FileTransferPeer;

/// Registry mapping nodes to their file-transfer software, so the
/// data plane can hand arrived parts to the receiving peer.
class FileTransferDirectory {
 public:
  void enroll(NodeId node, FileTransferPeer& peer);
  void withdraw(NodeId node);
  [[nodiscard]] FileTransferPeer* find(NodeId node) const noexcept;

 private:
  std::unordered_map<NodeId, FileTransferPeer*> peers_;
};

/// Receiver-side policy decision for one inbound transfer. Defaults
/// describe an honest peer; the adversary layer scripts deviations.
/// A decision is taken once per correlation and cached, so every
/// retransmission of the same transfer sees the same behaviour
/// (deterministic misbehaviour, idempotent under duplicates).
struct InboundDecision {
  /// Pretend the petition never arrived: no ack, ever. The sender's
  /// retry channel burns its attempts and fails the share
  /// ("petition unanswered").
  bool refuse_petition = false;
  /// Confirm at most this many leading parts, then go silent — parts
  /// are still received, never acknowledged ("confirmation lost").
  /// 0 = accept-then-abort (free-rider), >0 = flapper; -1 = no cap.
  int confirm_at_most = -1;
  /// Delay each part confirmation by this much (throttle); 0 = honest.
  Seconds confirm_delay = 0.0;
};

class FileTransferPeer {
 public:
  FileTransferPeer(Endpoint& endpoint, FileTransferDirectory& directory);
  ~FileTransferPeer();

  FileTransferPeer(const FileTransferPeer&) = delete;
  FileTransferPeer& operator=(const FileTransferPeer&) = delete;

  using Completion = std::function<void(const TransferResult&)>;

  /// Starts sending a file to `dst`; `done` fires exactly once.
  TransferId send_file(NodeId dst, const FileTransferConfig& config, Completion done);

  /// Cancels an outgoing transfer ("cancelled file transfer" in the
  /// paper's data-evaluator criteria); done fires with complete=false.
  void cancel(TransferId id);

  /// True while an outgoing transfer is still in flight (its completion
  /// callback has not fired yet).
  [[nodiscard]] bool sending(TransferId id) const noexcept;

  [[nodiscard]] NodeId node() const noexcept { return endpoint_.node(); }
  [[nodiscard]] std::size_t active_outgoing() const noexcept { return sending_.size(); }

  /// Receiver-side bookkeeping exposed for stats/tests.
  [[nodiscard]] std::uint64_t parts_received() const noexcept { return parts_received_; }
  [[nodiscard]] std::uint64_t petitions_received() const noexcept { return petitions_received_; }

  /// Registers the transport counters in `registry`. All peers of a
  /// deployment share the same named instruments (registration is
  /// get-or-create), so the readout is per-world. Zero-cost when never
  /// called.
  void attach_metrics(obs::MetricRegistry& registry);

  /// Attaches the causal-trace recorder (nullptr detaches). Transfers
  /// whose config carries an active context then emit the protocol
  /// milestones (petition/parts/confirms/terminal) onto their chain.
  void attach_trace(obs::trace::TraceRecorder* recorder) noexcept { trace_ = recorder; }

  /// Installs the receiver-side behaviour policy, consulted once per
  /// inbound correlation (then cached). nullptr restores honesty for
  /// transfers not yet decided; already-cached decisions stand.
  using InboundPolicy = std::function<InboundDecision(NodeId sender, std::uint64_t correlation)>;
  void set_inbound_policy(InboundPolicy policy) { inbound_policy_ = std::move(policy); }

  [[nodiscard]] std::uint64_t petitions_refused() const noexcept { return petitions_refused_; }
  [[nodiscard]] std::uint64_t confirms_withheld() const noexcept { return confirms_withheld_; }

  /// Internal: data plane hands an arrived part to the receiving peer.
  void on_part_delivered(std::uint64_t correlation, int part_index, NodeId sender);

 private:
  /// Cached instrument handles; all null while detached.
  struct Metrics {
    obs::Counter* transfers_started = nullptr;
    obs::Counter* transfers_completed = nullptr;
    obs::Counter* transfers_failed = nullptr;
    obs::Counter* transfers_cancelled = nullptr;
    obs::Counter* parts_confirmed = nullptr;
    obs::Counter* bytes_confirmed = nullptr;
    obs::Counter* petitions_served = nullptr;
    obs::Counter* petitions_refused = nullptr;
    obs::Counter* confirms_withheld = nullptr;
    obs::Counter* confirms_delayed = nullptr;
  };

  struct Sending {
    TransferResult result;
    FileTransferConfig config;
    Completion done;
    int current_part = 0;
    int confirm_queries = 0;
    Bytes part_size = 0;
    Bytes last_part_size = 0;
    FlowId active_flow;
    sim::EventHandle confirm_timer;
    bool cancelled = false;
    /// Transfer span on the distribution's chain (inactive = untraced).
    obs::trace::TraceContext ctx;
  };
  struct Receiving {
    Seconds petition_received = 0.0;
    NodeId sender;
    std::set<int> parts;
    /// Cached behaviour for this correlation (see InboundDecision).
    InboundDecision decision;
    bool decided = false;
    /// Sender's transfer span as seen on this side (one hop away).
    obs::trace::TraceContext ctx;
  };

  /// Takes (and caches) the inbound decision for a transfer.
  [[nodiscard]] const InboundDecision& decide(Receiving& r, NodeId sender,
                                              std::uint64_t correlation);

  void start_parts(std::uint64_t correlation);
  void send_part(std::uint64_t correlation);
  void on_part_sent(std::uint64_t correlation, int part_index, bool ok, Seconds elapsed);
  void on_confirm(const Message& message);
  void on_confirm_timeout(std::uint64_t correlation);
  void finish(std::uint64_t correlation, bool complete, const char* failure);

  void serve_petition(const Message& message);
  void serve_confirm_query(const Message& message);

  [[nodiscard]] sim::Simulator& sim() noexcept { return endpoint_.fabric().simulator(); }
  [[nodiscard]] net::Network& network() noexcept { return endpoint_.fabric().network(); }

  Endpoint& endpoint_;
  FileTransferDirectory& directory_;
  Metrics m_;
  obs::trace::TraceRecorder* trace_ = nullptr;
  ReliableChannel petition_channel_;
  IdAllocator<TransferId> transfer_ids_;
  std::map<std::uint64_t, Sending> sending_;      // key: correlation
  std::map<std::uint64_t, Receiving> receiving_;  // key: correlation
  InboundPolicy inbound_policy_;
  std::uint64_t parts_received_ = 0;
  std::uint64_t petitions_received_ = 0;
  std::uint64_t petitions_refused_ = 0;
  std::uint64_t confirms_withheld_ = 0;
};

/// Correlation encoding: unique across nodes.
[[nodiscard]] constexpr std::uint64_t make_correlation(NodeId node, TransferId transfer) noexcept {
  return (node.value() << 24) | transfer.value();
}

}  // namespace peerlab::transport
