#include "peerlab/transport/file_transfer.hpp"

#include <algorithm>
#include <utility>

#include "peerlab/common/check.hpp"
#include "peerlab/common/log.hpp"
#include "peerlab/obs/trace.hpp"

namespace peerlab::transport {

using obs::trace::TraceKind;

void FileTransferDirectory::enroll(NodeId node, FileTransferPeer& peer) {
  peers_[node] = &peer;
}

void FileTransferDirectory::withdraw(NodeId node) { peers_.erase(node); }

FileTransferPeer* FileTransferDirectory::find(NodeId node) const noexcept {
  const auto it = peers_.find(node);
  return it == peers_.end() ? nullptr : it->second;
}

FileTransferPeer::FileTransferPeer(Endpoint& endpoint, FileTransferDirectory& directory)
    : endpoint_(endpoint),
      directory_(directory),
      petition_channel_(endpoint, MessageType::kTransferPetition,
                        MessageType::kTransferPetitionAck) {
  directory_.enroll(endpoint_.node(), *this);
  petition_channel_.serve([this](const Message& m) { serve_petition(m); });
  endpoint_.set_handler(MessageType::kPartConfirm, [this](const Message& m) { on_confirm(m); });
  endpoint_.set_handler(MessageType::kConfirmQuery,
                        [this](const Message& m) { serve_confirm_query(m); });
}

FileTransferPeer::~FileTransferPeer() {
  directory_.withdraw(endpoint_.node());
  endpoint_.clear_handler(MessageType::kPartConfirm);
  endpoint_.clear_handler(MessageType::kConfirmQuery);
  for (auto& [corr, s] : sending_) {
    s.confirm_timer.cancel();
    if (network().flows().active(s.active_flow)) {
      network().cancel_message(s.active_flow);
    }
  }
}

void FileTransferPeer::attach_metrics(obs::MetricRegistry& registry) {
  m_.transfers_started = &registry.counter("transport.transfers.started", "transfers");
  m_.transfers_completed = &registry.counter("transport.transfers.completed", "transfers");
  m_.transfers_failed = &registry.counter("transport.transfers.failed", "transfers");
  m_.transfers_cancelled = &registry.counter("transport.transfers.cancelled", "transfers");
  m_.parts_confirmed = &registry.counter("transport.parts.confirmed", "parts");
  m_.bytes_confirmed = &registry.counter("transport.bytes.confirmed", "bytes");
  m_.petitions_served = &registry.counter("transport.petitions.served", "petitions");
  m_.petitions_refused = &registry.counter("transport.petitions.refused", "petitions");
  m_.confirms_withheld = &registry.counter("transport.confirms.withheld", "confirms");
  m_.confirms_delayed = &registry.counter("transport.confirms.delayed", "confirms");
}

const InboundDecision& FileTransferPeer::decide(Receiving& r, NodeId sender,
                                                std::uint64_t correlation) {
  if (!r.decided && inbound_policy_) {
    r.decision = inbound_policy_(sender, correlation);
    r.decided = true;
  }
  return r.decision;
}

TransferId FileTransferPeer::send_file(NodeId dst, const FileTransferConfig& config,
                                       Completion done) {
  PEERLAB_CHECK_MSG(config.file_size > 0, "file must be non-empty");
  PEERLAB_CHECK_MSG(config.parts >= 1, "need at least one part");
  PEERLAB_CHECK_MSG(config.parts <= 100000, "unreasonable part count");
  PEERLAB_CHECK_MSG(static_cast<bool>(done), "completion callback required");
  PEERLAB_CHECK_MSG(dst != node(), "refusing self-transfer");

  const TransferId id = transfer_ids_.next();
  const std::uint64_t corr = make_correlation(node(), id);

  Sending s;
  s.result.id = id;
  s.result.src = node();
  s.result.dst = dst;
  s.result.started = sim().now();
  s.result.petition_sent = sim().now();
  s.config = config;
  s.part_size = config.file_size / config.parts;
  s.last_part_size = config.file_size - s.part_size * (config.parts - 1);
  PEERLAB_CHECK_MSG(s.part_size > 0, "more parts than bytes");
  s.done = std::move(done);
  const auto sit = sending_.emplace(corr, std::move(s)).first;
  if (m_.transfers_started != nullptr) m_.transfers_started->add(1);
  if (trace_ != nullptr && config.trace.active()) {
    // Open the transfer span under the caller's chain; the petition
    // request (and every retransmission) rides on it.
    sit->second.ctx = trace_->child_of(config.trace);
    trace_->emit(node(), TraceKind::kPetitionSend, sit->second.ctx, corr,
                 static_cast<std::uint64_t>(config.parts), config.trace.span);
  }

  petition_channel_.request(
      dst, corr, /*arg=*/config.parts, config.petition_retry, sit->second.ctx,
      [this, corr](const RequestOutcome& outcome) {
        auto it = sending_.find(corr);
        if (it == sending_.end()) {
          return;  // cancelled while petitioning
        }
        Sending& snd = it->second;
        snd.result.petition_attempts = outcome.attempts;
        if (!outcome.ok) {
          finish(corr, false, "petition unanswered");
          return;
        }
        snd.result.petition_acked = sim().now();
        // The ack's arg carries the receiver's recorded arrival time in
        // microseconds (the peer reports when it saw the petition).
        snd.result.petition_received = static_cast<double>(outcome.response.arg) * 1e-6;
        if (trace_ != nullptr && snd.ctx.active()) {
          trace_->emit(node(), TraceKind::kPetitionAck, snd.ctx, corr,
                       static_cast<std::uint64_t>(outcome.attempts));
        }
        start_parts(corr);
      });
  return id;
}

void FileTransferPeer::cancel(TransferId id) {
  const std::uint64_t corr = make_correlation(node(), id);
  auto it = sending_.find(corr);
  if (it == sending_.end()) return;
  it->second.cancelled = true;
  it->second.confirm_timer.cancel();
  if (network().flows().active(it->second.active_flow)) {
    network().cancel_message(it->second.active_flow);
  }
  if (m_.transfers_cancelled != nullptr) m_.transfers_cancelled->add(1);
  finish(corr, false, "cancelled by sender");
}

bool FileTransferPeer::sending(TransferId id) const noexcept {
  return sending_.count(make_correlation(node(), id)) > 0;
}

void FileTransferPeer::start_parts(std::uint64_t correlation) {
  auto it = sending_.find(correlation);
  PEERLAB_CHECK(it != sending_.end());
  it->second.current_part = 0;
  send_part(correlation);
}

void FileTransferPeer::send_part(std::uint64_t correlation) {
  auto it = sending_.find(correlation);
  PEERLAB_CHECK(it != sending_.end());
  Sending& s = it->second;
  const int index = s.current_part;
  const Bytes size = (index == s.config.parts - 1) ? s.last_part_size : s.part_size;

  if (static_cast<int>(s.result.parts.size()) <= index) {
    PartRecord rec;
    rec.index = index;
    rec.size = size;
    rec.data_started = sim().now();
    s.result.parts.push_back(rec);
  }
  PartRecord& rec = s.result.parts.back();
  if (rec.attempts >= s.config.max_part_attempts) {
    finish(correlation, false, "part retransmission limit");
    return;
  }
  ++rec.attempts;
  if (trace_ != nullptr && s.ctx.active()) {
    trace_->emit(node(), TraceKind::kPartSend, s.ctx, correlation,
                 static_cast<std::uint64_t>(index));
  }

  s.active_flow = network().start_message(
      node(), s.result.dst, size, s.ctx,
      [this, correlation, index](bool ok, Seconds elapsed) {
        on_part_sent(correlation, index, ok, elapsed);
      });
}

void FileTransferPeer::on_part_sent(std::uint64_t correlation, int part_index, bool ok,
                                    Seconds elapsed) {
  auto it = sending_.find(correlation);
  if (it == sending_.end()) return;  // cancelled
  Sending& s = it->second;
  PEERLAB_CHECK(part_index == s.current_part);
  PartRecord& rec = s.result.parts.back();

  if (!ok) {
    PEERLAB_LOG(kDebug, "transfer") << to_string(s.result.id) << " lost part " << part_index
                                    << " after " << elapsed << "s; retransmitting";
    if (trace_ != nullptr && s.ctx.active()) {
      trace_->emit(node(), TraceKind::kPartLost, s.ctx, correlation,
                   static_cast<std::uint64_t>(part_index));
    }
    send_part(correlation);
    return;
  }

  rec.data_completed = sim().now();
  const double mb = to_megabytes(rec.size);
  rec.last_mb_time = mb <= 0.0 ? 0.0 : elapsed * std::min(1.0, 1.0 / mb);

  // Hand the part to the receiving peer's software at the arrival
  // instant; it will send back a confirmation datagram.
  if (FileTransferPeer* receiver = directory_.find(s.result.dst)) {
    receiver->on_part_delivered(correlation, part_index, node());
  }

  s.confirm_queries = 0;
  s.confirm_timer.cancel();
  s.confirm_timer = sim().schedule(s.config.confirm_timeout,
                                   [this, correlation] { on_confirm_timeout(correlation); });
}

void FileTransferPeer::on_confirm(const Message& message) {
  // Emitted before any matching so the watchdog sees forged, stale, or
  // misrouted confirms too (confirm-requires-petition invariant).
  if (trace_ != nullptr && message.trace.active()) {
    trace_->emit(node(), TraceKind::kConfirmRecv, message.trace.hop(), message.correlation,
                 static_cast<std::uint64_t>(message.arg));
  }
  auto it = sending_.find(message.correlation);
  if (it == sending_.end()) return;  // stale confirm
  Sending& s = it->second;
  if (message.arg != s.current_part) return;  // duplicate of an old part
  PartRecord& rec = s.result.parts.back();
  if (rec.data_completed == 0.0) return;  // confirm raced a retransmit
  rec.confirmed = sim().now();
  s.confirm_timer.cancel();
  if (m_.parts_confirmed != nullptr) {
    m_.parts_confirmed->add(1);
    m_.bytes_confirmed->add(static_cast<std::uint64_t>(rec.size));
  }

  if (s.current_part + 1 < s.config.parts) {
    ++s.current_part;
    send_part(message.correlation);
  } else {
    finish(message.correlation, true, "");
  }
}

void FileTransferPeer::on_confirm_timeout(std::uint64_t correlation) {
  auto it = sending_.find(correlation);
  if (it == sending_.end()) return;
  Sending& s = it->second;
  if (++s.confirm_queries > s.config.max_confirm_queries) {
    finish(correlation, false, "confirmation lost");
    return;
  }
  if (trace_ != nullptr && s.ctx.active()) {
    trace_->emit(node(), TraceKind::kConfirmQuery, s.ctx, correlation,
                 static_cast<std::uint64_t>(s.current_part));
  }
  endpoint_.send(s.result.dst, MessageType::kConfirmQuery, correlation, 0, s.current_part,
                 s.ctx);
  s.confirm_timer = sim().schedule(s.config.confirm_timeout,
                                   [this, correlation] { on_confirm_timeout(correlation); });
}

void FileTransferPeer::finish(std::uint64_t correlation, bool complete, const char* failure) {
  auto it = sending_.find(correlation);
  PEERLAB_CHECK(it != sending_.end());
  it->second.confirm_timer.cancel();
  if (trace_ != nullptr && it->second.ctx.active()) {
    const obs::trace::TransferFailure code = obs::trace::transfer_failure_code(failure);
    const TraceKind kind = complete ? TraceKind::kTransferDone
                           : code == obs::trace::TransferFailure::kCancelled
                               ? TraceKind::kTransferCancel
                               : TraceKind::kTransferFail;
    trace_->emit(node(), kind, it->second.ctx, correlation, static_cast<std::uint64_t>(code));
  }
  TransferResult result = std::move(it->second.result);
  Completion done = std::move(it->second.done);
  sending_.erase(it);
  result.complete = complete;
  result.failure = failure;
  result.finished = sim().now();
  if (m_.transfers_completed != nullptr) {
    (complete ? m_.transfers_completed : m_.transfers_failed)->add(1);
  }
  done(result);
}

void FileTransferPeer::serve_petition(const Message& message) {
  auto [it, inserted] = receiving_.try_emplace(message.correlation);
  if (inserted) {
    it->second.petition_received = sim().now();
    it->second.sender = message.src;
    it->second.ctx = message.trace.hop();
    ++petitions_received_;
    if (m_.petitions_served != nullptr) m_.petitions_served->add(1);
    if (trace_ != nullptr && it->second.ctx.active()) {
      trace_->emit(node(), TraceKind::kPetitionRecv, it->second.ctx, message.correlation,
                   message.src.value());
    }
  }
  if (decide(it->second, message.src, message.correlation).refuse_petition) {
    // Free-rider: pretend the petition never arrived (every retry of
    // this correlation hits the cached decision, so the silence is
    // total and the sender fails with "petition unanswered").
    ++petitions_refused_;
    if (m_.petitions_refused != nullptr) m_.petitions_refused->add(1);
    if (trace_ != nullptr && it->second.ctx.active()) {
      trace_->emit(node(), TraceKind::kPetitionRefuse, it->second.ctx, message.correlation,
                   message.src.value());
    }
    return;
  }
  // Idempotent ack carrying the (first) arrival time in microseconds.
  endpoint_.reply(message, MessageType::kTransferPetitionAck,
                  static_cast<std::int64_t>(it->second.petition_received * 1e6));
}

void FileTransferPeer::on_part_delivered(std::uint64_t correlation, int part_index,
                                         NodeId sender) {
  auto [it, inserted] = receiving_.try_emplace(correlation);
  if (inserted) {
    // Part arrived without a recorded petition (possible after peer
    // software restart); accept anyway.
    it->second.petition_received = sim().now();
    it->second.sender = sender;
  }
  if (it->second.parts.insert(part_index).second) {
    ++parts_received_;
  }
  const obs::trace::TraceContext ctx = it->second.ctx;
  if (trace_ != nullptr && ctx.active()) {
    trace_->emit(node(), TraceKind::kPartDelivered, ctx, correlation,
                 static_cast<std::uint64_t>(part_index));
  }
  const InboundDecision& d = decide(it->second, sender, correlation);
  if (d.confirm_at_most >= 0 && part_index >= d.confirm_at_most) {
    // Accept-then-abort: the part was received, the confirmation never
    // comes. The sender's confirm-queries stonewall the same way
    // (serve_confirm_query), so the share dies as "confirmation lost".
    ++confirms_withheld_;
    if (m_.confirms_withheld != nullptr) m_.confirms_withheld->add(1);
    if (trace_ != nullptr && ctx.active()) {
      trace_->emit(node(), TraceKind::kConfirmWithheld, ctx, correlation,
                   static_cast<std::uint64_t>(part_index));
    }
    return;
  }
  if (d.confirm_delay > 0.0) {
    // Throttle: confirmations limp back late, stretching the per-part
    // loop without tripping the sender's failure detector outright.
    if (m_.confirms_delayed != nullptr) m_.confirms_delayed->add(1);
    if (trace_ != nullptr && ctx.active()) {
      trace_->emit(node(), TraceKind::kConfirmDelayed, ctx, correlation,
                   static_cast<std::uint64_t>(part_index));
    }
    sim().schedule(d.confirm_delay, [this, sender, correlation, part_index, ctx] {
      endpoint_.send(sender, MessageType::kPartConfirm, correlation, 0, part_index, ctx);
    });
    return;
  }
  if (trace_ != nullptr && ctx.active()) {
    trace_->emit(node(), TraceKind::kConfirmSend, ctx, correlation,
                 static_cast<std::uint64_t>(part_index));
  }
  endpoint_.send(sender, MessageType::kPartConfirm, correlation, 0, part_index, ctx);
}

void FileTransferPeer::serve_confirm_query(const Message& message) {
  const auto it = receiving_.find(message.correlation);
  if (it == receiving_.end()) return;
  const int part = static_cast<int>(message.arg);
  const InboundDecision& d = it->second.decision;
  if (d.confirm_at_most >= 0 && part >= d.confirm_at_most) {
    // The withholding decision covers recovery queries too; replying
    // here would un-abort the transfer.
    ++confirms_withheld_;
    if (m_.confirms_withheld != nullptr) m_.confirms_withheld->add(1);
    return;
  }
  if (it->second.parts.count(part) > 0) {
    // Query replies go out immediately even under confirm_delay: the
    // query round itself already cost the sender a full timeout.
    if (trace_ != nullptr && it->second.ctx.active()) {
      trace_->emit(node(), TraceKind::kConfirmSend, it->second.ctx, message.correlation,
                   static_cast<std::uint64_t>(part));
    }
    endpoint_.send(message.src, MessageType::kPartConfirm, message.correlation, 0, message.arg,
                   it->second.ctx);
  }
}

}  // namespace peerlab::transport
