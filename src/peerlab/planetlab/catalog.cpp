#include "peerlab/planetlab/catalog.hpp"

namespace peerlab::planetlab {

const std::vector<CatalogEntry>& table1() {
  static const std::vector<CatalogEntry> kEntries = {
      {"ait05.us.es", "University of Seville", "ES", {37.38, -5.99}, 1},
      {"planet01.hhi.fraunhofer.de", "Fraunhofer HHI, Berlin", "DE", {52.52, 13.40}, 0},
      {"planet1.cs.huji.ac.il", "Hebrew University of Jerusalem", "IL", {31.78, 35.20}, 0},
      {"planet1.manchester.ac.uk", "University of Manchester", "UK", {53.47, -2.23}, 0},
      {"system18.ncl-ext.net", "Newcastle (external)", "UK", {54.98, -1.61}, 0},
      {"planetlab1.net-research.org.uk", "UK net research", "UK", {51.51, -0.13}, 0},
      {"planetlab01.cs.tcd.ie", "Trinity College Dublin", "IE", {53.34, -6.25}, 3},
      {"planet2.scs.stanford.edu", "Stanford University", "US", {37.43, -122.17}, 0},
      {"planetlab01.ethz.ch", "ETH Zurich", "CH", {47.38, 8.55}, 0},
      {"planetlab1.ssvl.kth.se", "KTH Stockholm", "SE", {59.35, 18.07}, 8},
      {"planetlab1.esi.ucm.es", "Universidad Complutense Madrid", "ES", {40.45, -3.73}, 0},
      {"planetlab1.csg.unizh.ch", "University of Zurich", "CH", {47.37, 8.55}, 4},
      {"planetlab1.poly.edu", "Polytechnic University, Brooklyn", "US", {40.69, -73.99}, 0},
      {"planetlab1.cslab.ece.ntua.gr", "NTUA Athens", "GR", {37.98, 23.78}, 0},
      {"planetlab2.ls.fi.upm.es", "Universidad Politecnica de Madrid", "ES", {40.41, -3.84}, 0},
      {"planetlab1.eecs.iu-bremen.de", "Jacobs University Bremen", "DE", {53.17, 8.65}, 0},
      {"planetlab2.upc.es", "UPC Barcelona", "ES", {41.39, 2.11}, 0},
      {"planetlab1.hiit.fi", "HIIT Helsinki", "FI", {60.17, 24.94}, 2},
      {"lsirextpc01.epfl.ch", "EPFL Lausanne", "CH", {46.52, 6.57}, 6},
      {"planetlab5.upc.es", "UPC Barcelona", "ES", {41.39, 2.11}, 0},
      {"ricepl1.cs.rice.edu", "Rice University, Houston", "US", {29.72, -95.40}, 0},
      {"planetlab1.itwm.fhg.de", "Fraunhofer ITWM, Kaiserslautern", "DE", {49.43, 7.75}, 7},
      {"planet2.seattle.intel-research.net", "Intel Research Seattle", "US", {47.61, -122.33}, 0},
      {"planetlab1.informatik.unierlangen.de", "FAU Erlangen", "DE", {49.57, 11.03}, 0},
      {"edi.tkn.tu-berlin.de", "TU Berlin TKN", "DE", {52.51, 13.32}, 5},
  };
  return kEntries;
}

const CatalogEntry& broker_host() {
  static const CatalogEntry kBroker = {
      "nozomi.lsi.upc.edu", "UPC Barcelona (cluster main node)", "ES", {41.39, 2.11}, 0};
  return kBroker;
}

std::vector<CatalogEntry> simple_clients() {
  std::vector<CatalogEntry> out(8);
  for (const auto& entry : table1()) {
    if (entry.simple_client_index > 0) {
      out[static_cast<std::size_t>(entry.simple_client_index - 1)] = entry;
    }
  }
  return out;
}

const CatalogEntry* find(const std::string& hostname) {
  if (hostname == broker_host().hostname) return &broker_host();
  for (const auto& entry : table1()) {
    if (entry.hostname == hostname) return &entry;
  }
  return nullptr;
}

}  // namespace peerlab::planetlab
