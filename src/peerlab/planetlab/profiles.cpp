#include "peerlab/planetlab/profiles.hpp"

#include "peerlab/common/check.hpp"

namespace peerlab::planetlab {

namespace {

struct Calibration {
  Seconds petition_mean;
  double petition_sigma;
  MbitPerSec bandwidth;
  GigaHertz cpu;
  double load;
  double jitter;
  double loss_per_mb;
  double price;
};

// SC1..SC8, calibrated against Figures 2-5 and 7 (see header).
constexpr Calibration kSimpleClients[8] = {
    // SC1 ait05.us.es: very slow control plane, decent bandwidth.
    {12.86, 0.25, 9.0, 1.4, 0.45, 0.10, 0.004, 1.2},
    // SC2 planetlab1.hiit.fi: snappy and fast.
    {0.04, 0.35, 14.0, 2.0, 0.15, 0.05, 0.001, 2.0},
    // SC3 planetlab01.cs.tcd.ie: sluggish control, mid bandwidth.
    {2.79, 0.30, 9.0, 1.6, 0.35, 0.10, 0.003, 1.4},
    // SC4 planetlab1.csg.unizh.ch: snappy and fast.
    {0.07, 0.35, 14.0, 2.2, 0.15, 0.05, 0.001, 2.1},
    // SC5 edi.tkn.tu-berlin.de: slow control, mid bandwidth.
    {5.19, 0.28, 8.0, 1.5, 0.40, 0.12, 0.004, 1.3},
    // SC6 lsirextpc01.epfl.ch: mild control delay, good bandwidth.
    {0.35, 0.35, 13.0, 1.8, 0.20, 0.08, 0.002, 1.7},
    // SC7 planetlab1.itwm.fhg.de: the straggler on every axis.
    {27.13, 0.22, 4.0, 1.0, 0.75, 0.10, 0.008, 0.6},
    // SC8 planetlab1.ssvl.kth.se: snappy and fast.
    {0.06, 0.35, 15.0, 2.1, 0.15, 0.05, 0.001, 2.0},
};

net::NodeProfile from_calibration(const CatalogEntry& entry, const Calibration& c) {
  net::NodeProfile p;
  p.hostname = entry.hostname;
  p.site = entry.site;
  p.country = entry.country;
  p.location = entry.location;
  p.cpu_ghz = c.cpu;
  p.cpu_slots = 1;
  p.base_load = c.load;
  p.load_jitter = c.jitter;
  p.uplink_mbps = c.bandwidth;
  p.downlink_mbps = c.bandwidth;
  p.control_delay_mean = c.petition_mean;
  p.control_delay_sigma = c.petition_sigma;
  p.loss_per_megabyte = c.loss_per_mb;
  p.price_per_cpu_second = c.price;
  return p;
}

}  // namespace

net::NodeProfile broker_profile() {
  net::NodeProfile p;
  const CatalogEntry& entry = broker_host();
  p.hostname = entry.hostname;
  p.site = entry.site;
  p.country = entry.country;
  p.location = entry.location;
  p.cpu_ghz = 3.0;
  p.cpu_slots = 4;
  p.base_load = 0.05;
  p.load_jitter = 0.02;
  p.uplink_mbps = 100.0;
  p.downlink_mbps = 100.0;
  p.control_delay_mean = 0.01;
  p.control_delay_sigma = 0.2;
  p.loss_per_megabyte = 0.0005;
  p.price_per_cpu_second = 3.0;
  return p;
}

net::NodeProfile simple_client_profile(int index) {
  PEERLAB_CHECK_MSG(index >= 1 && index <= 8, "SimpleClient index must be 1..8");
  const auto clients = simple_clients();
  return from_calibration(clients[static_cast<std::size_t>(index - 1)],
                          kSimpleClients[index - 1]);
}

std::vector<net::NodeProfile> simple_client_profiles() {
  std::vector<net::NodeProfile> out;
  out.reserve(8);
  for (int i = 1; i <= 8; ++i) out.push_back(simple_client_profile(i));
  return out;
}

net::NodeProfile slice_node_profile(const CatalogEntry& entry, int ordinal) {
  // Unremarkable heterogeneity for the non-SC population: parameters
  // cycle deterministically with the ordinal.
  Calibration c;
  c.petition_mean = 0.05 + 0.4 * static_cast<double>(ordinal % 5);
  c.petition_sigma = 0.35;
  c.bandwidth = 5.0 + static_cast<double>(ordinal % 4) * 2.0;
  c.cpu = 1.2 + 0.2 * static_cast<double>(ordinal % 5);
  c.load = 0.15 + 0.1 * static_cast<double>(ordinal % 4);
  c.jitter = 0.08;
  c.loss_per_mb = 0.002;
  c.price = 1.0 + 0.25 * static_cast<double>(ordinal % 5);
  return from_calibration(entry, c);
}

}  // namespace peerlab::planetlab
