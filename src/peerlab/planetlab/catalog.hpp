#pragma once

// The paper's PlanetLab slice (Table 1): 25 nodes at European and US
// sites, plus the nozomi.lsi.upc.edu cluster whose main node acted as
// a broker. Coordinates are the host institutions' campuses; they feed
// the propagation-delay model.

#include <string>
#include <vector>

#include "peerlab/net/geo.hpp"

namespace peerlab::planetlab {

struct CatalogEntry {
  std::string hostname;
  std::string site;
  std::string country;
  net::GeoPoint location{};
  /// 1..8 when the node served as SimpleClient SC1..SC8; 0 otherwise.
  int simple_client_index = 0;
};

/// The 25 slice nodes of Table 1 (order: as listed in the paper,
/// left column top-to-bottom then right column).
[[nodiscard]] const std::vector<CatalogEntry>& table1();

/// The broker host (nozomi.lsi.upc.edu main node, Barcelona).
[[nodiscard]] const CatalogEntry& broker_host();

/// The SC1..SC8 entries, in experiment order.
[[nodiscard]] std::vector<CatalogEntry> simple_clients();

/// Looks up a catalog entry by hostname; nullptr when absent.
[[nodiscard]] const CatalogEntry* find(const std::string& hostname);

/// Paper-reported reference numbers used by the benches' shape checks.
namespace paper {
/// Figure 2: mean petition-reception time per SC peer (seconds).
inline constexpr double kPetitionSeconds[8] = {12.86, 0.04, 2.79, 0.07,
                                               5.19,  0.35, 27.13, 0.06};
/// Figure 5: average 16-part transmission time of a 100 MB file (min).
inline constexpr double kSixteenPartMinutes = 1.7;
/// Figure 6: per-part overhead (seconds) for {economic, same-priority,
/// quick-peer} at 4 parts and the common value at 16 parts.
inline constexpr double kFig6FourParts[3] = {0.16, 0.25, 0.33};
inline constexpr double kFig6SixteenParts = 0.14;
}  // namespace paper

}  // namespace peerlab::planetlab
