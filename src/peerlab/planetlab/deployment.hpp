#pragma once

// Deployment builder: stands up the paper's testbed in one call —
// broker on the nozomi cluster node, SC1..SC8 (or the full 25-node
// slice) as SimpleClient peers, all wired through one simulated
// network. Experiments and examples build on this.

#include <array>
#include <memory>
#include <optional>

#include "peerlab/adversary/behavior_plan.hpp"
#include "peerlab/net/fault_plan.hpp"
#include "peerlab/obs/profile.hpp"
#include "peerlab/overlay/broker.hpp"
#include "peerlab/overlay/client.hpp"
#include "peerlab/overlay/primitives.hpp"
#include "peerlab/overlay/replica_set.hpp"
#include "peerlab/planetlab/profiles.hpp"

namespace peerlab::planetlab {

struct DeploymentOptions {
  /// false: broker + SC1..SC8 (the paper's experiment group).
  /// true: broker + all 25 slice nodes (the paper's future-work scale).
  bool full_slice = false;
  /// Number of brokers ("the main node was used as ONE of the
  /// brokers"). Clients are assigned round-robin; brokers federate
  /// their rendezvous.
  int brokers = 1;
  /// Standby brokers replicating the primary's state (requires
  /// brokers == 1). Standbys govern no clients and answer no queries
  /// until an election promotes one; clients then re-home to it.
  int standby_brokers = 0;
  overlay::ReplicaConfig replication{};
  net::NetworkConfig network{};
  overlay::BrokerConfig broker{};
  overlay::ClientConfig client{};
  /// boot() runs the simulation this long so first heartbeats land
  /// (SC7's control plane needs ~30 s).
  Seconds boot_time = 60.0;
};

class Deployment {
 public:
  Deployment(sim::Simulator& sim, DeploymentOptions options = {});

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  /// Starts every client and advances the simulation until all have
  /// registered at the broker.
  void boot();

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] net::Network& network() noexcept { return *network_; }
  [[nodiscard]] transport::TransportFabric& fabric() noexcept { return *fabric_; }
  [[nodiscard]] overlay::OverlayDirectories& directories() noexcept { return directories_; }
  /// The primary broker (nozomi main node).
  [[nodiscard]] overlay::BrokerPeer& broker() noexcept { return *brokers_.front(); }
  [[nodiscard]] std::size_t broker_count() const noexcept { return brokers_.size(); }
  [[nodiscard]] overlay::BrokerPeer& broker_at(std::size_t i) { return *brokers_.at(i); }

  /// Standby brokers and the replica set coordinating them (null when
  /// standby_brokers == 0).
  [[nodiscard]] std::size_t standby_count() const noexcept { return standbys_.size(); }
  [[nodiscard]] overlay::BrokerPeer& standby_at(std::size_t i) { return *standbys_.at(i); }
  [[nodiscard]] overlay::ReplicaSet* replicas() noexcept { return replicas_.get(); }

  /// The workload driver: a peer on a second nozomi cluster node that
  /// originates transfers/tasks (like the paper's control machine).
  /// It never heartbeats, so it is not a selection candidate.
  [[nodiscard]] overlay::ClientPeer& control() noexcept { return *control_; }

  /// SimpleClient SC`index` (1..8).
  [[nodiscard]] overlay::ClientPeer& sc(int index);
  [[nodiscard]] PeerId sc_peer(int index);
  /// All clients (SCs first, then — in full-slice mode — the rest).
  [[nodiscard]] std::size_t client_count() const noexcept { return clients_.size(); }
  [[nodiscard]] overlay::ClientPeer& client(std::size_t i) { return *clients_.at(i); }

  [[nodiscard]] const DeploymentOptions& options() const noexcept { return options_; }

  /// Nodes hosting clients (fault-plan targets; excludes brokers and
  /// the control peer so a plan never kills the infrastructure it is
  /// measuring — crash those explicitly via network() if desired).
  [[nodiscard]] std::vector<NodeId> client_nodes() const;

  /// Arms a fault plan against this deployment: network faults apply
  /// as scheduled, and crash/restart of a client node also stops /
  /// restarts that client's overlay software (a restarted client
  /// re-registers with its first heartbeat). One plan per deployment;
  /// call before running the faulty window.
  net::FaultInjector& install_faults(net::FaultPlan plan);
  [[nodiscard]] net::FaultInjector* faults() noexcept { return injector_.get(); }

  /// Arms an adversarial-behaviour plan against this deployment's
  /// clients (the byzantine sibling of install_faults): each spec
  /// activates on its target client at its scheduled instant,
  /// actuating through the client's transfer peer and reporting path.
  /// Per-peer decision RNGs fork from the simulator's 0xADBEA7 stream.
  /// One plan per deployment; call before running the hostile window.
  adversary::BehaviorEngine& install_adversaries(adversary::BehaviorPlan plan);
  [[nodiscard]] adversary::BehaviorEngine* adversaries() noexcept { return behaviors_.get(); }

  /// Attaches the whole deployment to `registry`: network + flow
  /// scheduler, every broker and client (the overlay instruments are
  /// shared by name, so e.g. overlay.heartbeats aggregates across all
  /// peers), and the fault injector — including one installed later.
  /// `registry` must outlive the deployment. Zero-cost when never
  /// called; `wall_profiling` additionally enables the wall-clock
  /// re-level histogram (see FlowScheduler::attach_metrics) and stands
  /// up a WallProfiler whose spans (run / flows.relevel /
  /// flows.waterfill / selection.rank) are registered eagerly so the
  /// instrument inventory does not depend on which paths execute.
  void attach_metrics(obs::MetricRegistry& registry, bool wall_profiling = false);

  /// Attaches (or detaches with nullptr) the causal-trace recorder
  /// across the whole deployment: transport fabric (message hops),
  /// network + flow scheduler (flow lifecycle, re-levels), every
  /// broker and client (selection/petition/stats chains), the replica
  /// set (failover elections) and the fault injector (churn ambients)
  /// — including one installed later. `recorder` must outlive the
  /// deployment. Zero-cost when never called: every emit site is one
  /// null test away from the untraced path.
  void attach_tracing(obs::trace::TraceRecorder* recorder);

  /// The deployment-wide span profiler; null unless attach_metrics ran
  /// with wall_profiling. Harnesses wrap their sim run in its "run"
  /// site so subsystem spans get a parent to charge against.
  [[nodiscard]] obs::WallProfiler* profiler() noexcept { return profiler_.get(); }

 private:
  sim::Simulator& sim_;
  DeploymentOptions options_;
  overlay::OverlayDirectories directories_;
  std::optional<net::Network> network_;
  std::optional<transport::TransportFabric> fabric_;
  void on_broker_failover(const overlay::ReplicaSet::FailoverEvent& event);

  std::vector<std::unique_ptr<overlay::BrokerPeer>> brokers_;
  std::vector<std::unique_ptr<overlay::BrokerPeer>> standbys_;
  // Declared after the brokers it references (destroyed first).
  std::unique_ptr<overlay::ReplicaSet> replicas_;
  std::vector<std::unique_ptr<overlay::ClientPeer>> clients_;
  std::unique_ptr<overlay::ClientPeer> control_;
  std::unique_ptr<net::FaultInjector> injector_;
  std::unique_ptr<adversary::BehaviorEngine> behaviors_;
  obs::MetricRegistry* metrics_ = nullptr;  // set by attach_metrics
  obs::trace::TraceRecorder* trace_ = nullptr;  // set by attach_tracing
  std::unique_ptr<obs::WallProfiler> profiler_;  // set when wall_profiling
  std::array<NodeId, 8> sc_nodes_{};
};

}  // namespace peerlab::planetlab
