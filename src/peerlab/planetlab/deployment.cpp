#include "peerlab/planetlab/deployment.hpp"

#include "peerlab/common/check.hpp"

namespace peerlab::planetlab {

Deployment::Deployment(sim::Simulator& sim, DeploymentOptions options)
    : sim_(sim), options_(options) {
  // Liveness detection only makes sense when the broker's notion of
  // the heartbeat period matches what clients actually do.
  options_.broker.heartbeat_interval = options_.client.heartbeat_interval;

  PEERLAB_CHECK_MSG(options_.brokers >= 1, "deployment needs at least one broker");
  net::Topology topo(sim.rng().fork(0x9EE20FABull));
  std::vector<NodeId> broker_nodes;
  broker_nodes.push_back(topo.add_node(broker_profile()));
  for (int b = 1; b < options_.brokers; ++b) {
    net::NodeProfile extra = broker_profile();
    extra.hostname = "nozomi-b" + std::to_string(b + 1) + ".lsi.upc.edu";
    extra.site = "UPC Barcelona (cluster node " + std::to_string(b + 1) + ")";
    broker_nodes.push_back(topo.add_node(extra));
  }

  PEERLAB_CHECK_MSG(options_.standby_brokers >= 0, "standby count must be non-negative");
  PEERLAB_CHECK_MSG(options_.standby_brokers == 0 || options_.brokers == 1,
                    "standby replication assumes a single governing broker");
  std::vector<NodeId> standby_nodes;
  for (int s = 0; s < options_.standby_brokers; ++s) {
    net::NodeProfile standby = broker_profile();
    standby.hostname = "nozomi-s" + std::to_string(s + 1) + ".lsi.upc.edu";
    standby.site = "UPC Barcelona (standby cluster node " + std::to_string(s + 1) + ")";
    standby_nodes.push_back(topo.add_node(standby));
  }

  net::NodeProfile control_profile = broker_profile();
  control_profile.hostname = "nozomi-c1.lsi.upc.edu";
  control_profile.site = "UPC Barcelona (cluster compute node)";
  const NodeId control_node = topo.add_node(control_profile);

  std::vector<NodeId> client_nodes;
  if (options_.full_slice) {
    int ordinal = 0;
    for (const auto& entry : table1()) {
      net::NodeProfile profile = entry.simple_client_index > 0
                                     ? simple_client_profile(entry.simple_client_index)
                                     : slice_node_profile(entry, ordinal);
      const NodeId node = topo.add_node(profile);
      client_nodes.push_back(node);
      if (entry.simple_client_index > 0) {
        sc_nodes_[static_cast<std::size_t>(entry.simple_client_index - 1)] = node;
      }
      ++ordinal;
    }
  } else {
    for (int i = 1; i <= 8; ++i) {
      const NodeId node = topo.add_node(simple_client_profile(i));
      client_nodes.push_back(node);
      sc_nodes_[static_cast<std::size_t>(i - 1)] = node;
    }
  }

  network_.emplace(sim_, std::move(topo), options_.network);
  fabric_.emplace(*network_);
  for (const NodeId node : broker_nodes) {
    brokers_.push_back(std::make_unique<overlay::BrokerPeer>(*fabric_, node, directories_,
                                                             options_.broker));
  }
  for (auto& a : brokers_) {
    for (auto& b : brokers_) {
      if (a->node() != b->node()) a->federate_with(b->node());
    }
  }
  // Standbys run full broker software but govern no clients and do not
  // federate; until an election they only consume the primary's
  // replication stream.
  for (const NodeId node : standby_nodes) {
    standbys_.push_back(std::make_unique<overlay::BrokerPeer>(*fabric_, node, directories_,
                                                              options_.broker));
  }
  if (!standbys_.empty()) {
    replicas_ = std::make_unique<overlay::ReplicaSet>(*fabric_, options_.replication);
    replicas_->add_primary(*brokers_.front());
    for (auto& standby : standbys_) replicas_->add_standby(*standby);
    replicas_->set_failover_callback(
        [this](const overlay::ReplicaSet::FailoverEvent& event) {
          on_broker_failover(event);
        });
    replicas_->start();
  }
  control_ = std::make_unique<overlay::ClientPeer>(*fabric_, control_node, broker_nodes[0],
                                                   directories_, options_.client);
  std::size_t assign = 0;
  for (const NodeId node : client_nodes) {
    const NodeId home = broker_nodes[assign++ % broker_nodes.size()];
    clients_.push_back(std::make_unique<overlay::ClientPeer>(*fabric_, node, home,
                                                             directories_, options_.client));
  }
}

void Deployment::boot() {
  for (auto& client : clients_) client->start();
  const auto registered = [this] {
    std::size_t n = 0;
    for (const auto& broker : brokers_) n += broker->registered_clients().size();
    return n;
  };
  // Heartbeats can be lost on lossy deployments; keep the clock moving
  // until every client has registered (bounded patience).
  const Seconds deadline = sim_.now() + 20.0 * options_.boot_time;
  sim_.run_until(sim_.now() + options_.boot_time);
  while (registered() < clients_.size() && sim_.now() < deadline) {
    sim_.run_until(sim_.now() + options_.boot_time);
  }
  PEERLAB_CHECK_MSG(registered() == clients_.size(),
                    "not every client registered during boot");
}

overlay::ClientPeer& Deployment::sc(int index) {
  PEERLAB_CHECK_MSG(index >= 1 && index <= 8, "SimpleClient index must be 1..8");
  const NodeId node = sc_nodes_[static_cast<std::size_t>(index - 1)];
  for (auto& client : clients_) {
    if (client->node() == node) return *client;
  }
  PEERLAB_CHECK_MSG(false, "SimpleClient not deployed");
  throw InvariantError("unreachable");
}

PeerId Deployment::sc_peer(int index) { return sc(index).id(); }

std::vector<NodeId> Deployment::client_nodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(clients_.size());
  for (const auto& client : clients_) nodes.push_back(client->node());
  return nodes;
}

net::FaultInjector& Deployment::install_faults(net::FaultPlan plan) {
  PEERLAB_CHECK_MSG(injector_ == nullptr, "fault plan already installed");
  auto client_by_node = [this](NodeId node) -> overlay::ClientPeer* {
    for (auto& client : clients_) {
      if (client->node() == node) return client.get();
    }
    return nullptr;
  };
  net::FaultInjector::Hooks hooks;
  // Co-simulate the software side of a node fault: a crash silences the
  // client (heartbeats stop, so the broker ages it out), a restart
  // brings it back — its first heartbeat re-registers it. Replica-set
  // members get the equivalent treatment: a crashed primary stops
  // streaming (standbys detect the silence and elect), a restarted
  // member rejoins as a standby and snapshot-heals.
  hooks.on_crash = [this, client_by_node](NodeId node) {
    if (auto* client = client_by_node(node)) client->stop();
    if (replicas_ != nullptr && replicas_->is_member(node)) replicas_->notify_crash(node);
  };
  hooks.on_restart = [this, client_by_node](NodeId node) {
    if (auto* client = client_by_node(node)) client->start();
    if (replicas_ != nullptr && replicas_->is_member(node)) {
      replicas_->notify_restart(node);
    }
  };
  injector_ = std::make_unique<net::FaultInjector>(*network_, std::move(plan),
                                                   std::move(hooks));
  if (metrics_ != nullptr) injector_->attach_metrics(*metrics_);
  if (trace_ != nullptr) injector_->set_trace(trace_);
  return *injector_;
}

adversary::BehaviorEngine& Deployment::install_adversaries(adversary::BehaviorPlan plan) {
  PEERLAB_CHECK_MSG(behaviors_ == nullptr, "behavior plan already installed");
  behaviors_ = std::make_unique<adversary::BehaviorEngine>(
      sim_, std::move(plan), sim_.rng().fork(0xADBEA7ull));
  if (metrics_ != nullptr) behaviors_->attach_metrics(*metrics_);
  for (auto& client : clients_) behaviors_->bind(*client);
  return *behaviors_;
}

void Deployment::attach_metrics(obs::MetricRegistry& registry, bool wall_profiling) {
  metrics_ = &registry;
  if (wall_profiling) {
    profiler_ = std::make_unique<obs::WallProfiler>(registry);
    // Pre-register the harness-level site so the instrument inventory
    // is fixed at attach time (docs/METRICS.md is diffed against it).
    profiler_->site("run");
  }
  network_->attach_metrics(registry, wall_profiling, profiler_.get());
  for (auto& broker : brokers_) broker->attach_metrics(registry, profiler_.get());
  for (auto& standby : standbys_) standby->attach_metrics(registry, profiler_.get());
  if (replicas_ != nullptr) replicas_->attach_metrics(registry);
  control_->attach_metrics(registry);
  for (auto& client : clients_) client->attach_metrics(registry);
  if (injector_ != nullptr) injector_->attach_metrics(registry);
  if (behaviors_ != nullptr) behaviors_->attach_metrics(registry);
}

void Deployment::attach_tracing(obs::trace::TraceRecorder* recorder) {
  trace_ = recorder;
  fabric_->set_trace(recorder);
  network_->set_trace(recorder);
  for (auto& broker : brokers_) broker->attach_trace(recorder);
  for (auto& standby : standbys_) standby->attach_trace(recorder);
  if (replicas_ != nullptr) replicas_->set_trace(recorder);
  control_->attach_trace(recorder);
  for (auto& client : clients_) client->attach_trace(recorder);
  if (injector_ != nullptr) injector_->set_trace(recorder);
}

void Deployment::on_broker_failover(const overlay::ReplicaSet::FailoverEvent& event) {
  // The crashed primary's whole flock re-homes to the elected standby
  // (the control peer included — its in-flight selection petitions are
  // re-issued there by ClientPeer::rehome).
  if (control_->broker_node() == event.old_primary) {
    control_->rehome(event.new_primary);
  }
  for (auto& client : clients_) {
    if (client->broker_node() == event.old_primary) client->rehome(event.new_primary);
  }
}

}  // namespace peerlab::planetlab
