#pragma once

// Calibrated node profiles.
//
// The authors' testbed is gone, so we calibrate per-node performance
// parameters to the paper's reported observations:
//
//  * control-plane responsiveness — means set to Figure 2's per-SC
//    petition times (SC7 = 27.13 s, SC2 = 0.04 s, ...). PlanetLab
//    slivers shared a machine with up to 100 others; a swamped sliver
//    reacted to control traffic in tens of seconds.
//  * access bandwidth — fast peers ~10 Mbit/s effective, intermediate
//    4-6, SC7 ~2.5, so a 100 MB file in 16 parts averages ~1.7-2 min
//    (Fig. 5) and SC7's last-MB time is several times the rest (Fig. 4).
//  * CPU and background load — SC7 is also the compute straggler
//    (Fig. 7): ~0.25 GHz effective vs 1.3-2.2 GHz for healthy peers.
//  * prices (economic model) roughly track CPU speed, so "cheap and
//    slow vs pricey and fast" is a real trade-off.
//
// Non-SC slice nodes get middle-of-the-road profiles derived from
// their index, giving the full-slice ablation a heterogeneous but
// unremarkable population.

#include "peerlab/net/node.hpp"
#include "peerlab/planetlab/catalog.hpp"

namespace peerlab::planetlab {

/// Profile of the broker host (well-provisioned cluster node).
[[nodiscard]] net::NodeProfile broker_profile();

/// Calibrated profile of SimpleClient `index` (1..8).
[[nodiscard]] net::NodeProfile simple_client_profile(int index);

/// All eight SC profiles, SC1..SC8.
[[nodiscard]] std::vector<net::NodeProfile> simple_client_profiles();

/// Profile of an arbitrary (non-SC) slice node.
[[nodiscard]] net::NodeProfile slice_node_profile(const CatalogEntry& entry, int ordinal);

}  // namespace peerlab::planetlab
