#include "peerlab/core/selection_model.hpp"

#include <algorithm>

namespace peerlab::core {

PeerId SelectionModel::select(std::span<const PeerSnapshot> candidates,
                              const SelectionContext& context) {
  const auto ranking = rank(candidates, context);
  return ranking.empty() ? PeerId{} : ranking.front();
}

std::vector<PeerId> SelectionModel::select_k(std::span<const PeerSnapshot> candidates,
                                             const SelectionContext& context, std::size_t k) {
  auto ranking = rank(candidates, context);
  if (ranking.size() > k) ranking.resize(k);
  return ranking;
}

std::vector<PeerId> ranked_by_cost(std::vector<ScoredPeer> scored) {
  std::stable_sort(scored.begin(), scored.end(), [](const ScoredPeer& a, const ScoredPeer& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.peer < b.peer;
  });
  std::vector<PeerId> out;
  out.reserve(scored.size());
  for (const auto& s : scored) out.push_back(s.peer);
  return out;
}

}  // namespace peerlab::core
