#include "peerlab/core/selection_model.hpp"

#include <algorithm>

namespace peerlab::core {

PeerId SelectionModel::select(std::span<const PeerSnapshot> candidates,
                              const SelectionContext& context) {
  rank_into(candidates, context, ranking_);
  return ranking_.empty() ? PeerId{} : ranking_.front();
}

std::vector<PeerId> SelectionModel::select_k(std::span<const PeerSnapshot> candidates,
                                             const SelectionContext& context, std::size_t k) {
  rank_into(candidates, context, ranking_);
  const std::size_t n = std::min(k, ranking_.size());
  return std::vector<PeerId>(ranking_.begin(),
                             ranking_.begin() + static_cast<std::ptrdiff_t>(n));
}

void append_ranked(std::span<ScoredPeer> scored, std::vector<PeerId>& out) {
  std::sort(scored.begin(), scored.end(), [](const ScoredPeer& a, const ScoredPeer& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.peer < b.peer;
  });
  for (const auto& s : scored) out.push_back(s.peer);
}

std::vector<PeerId> ranked_by_cost(std::vector<ScoredPeer> scored) {
  std::vector<PeerId> out;
  out.reserve(scored.size());
  append_ranked(scored, out);
  return out;
}

}  // namespace peerlab::core
