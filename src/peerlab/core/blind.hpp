#pragma once

// Blind selection — the paper's baseline: "all peers were equally
// considered, that is no peer selection is done". Two flavours:
// round-robin (spread work uniformly) and first-available (what a
// naive application does). Both ignore every signal about the peers,
// which is exactly what makes SC7-class stragglers dominate the
// figures' tails.

#include "peerlab/core/selection_model.hpp"

namespace peerlab::core {

class BlindModel final : public SelectionModel {
 public:
  enum class Mode : std::uint8_t { kRoundRobin, kFirstAvailable };

  explicit BlindModel(Mode mode = Mode::kRoundRobin) : mode_(mode) {}

  [[nodiscard]] std::string name() const override { return "blind"; }

  void rank_into(std::span<const PeerSnapshot> candidates, const SelectionContext& context,
                 std::vector<PeerId>& out) override;

  [[nodiscard]] Mode mode() const noexcept { return mode_; }

  /// Advances the round-robin cursor exactly as one rank_into() call
  /// over a `group`-sized eligible list would, returning the rotation
  /// start. The broker's candidate index uses this so the fast path
  /// and the scan share one cursor — interleaving them stays
  /// bit-identical to an all-scan run.
  [[nodiscard]] std::size_t take_turn(std::size_t group) noexcept {
    return static_cast<std::size_t>(next_++ % group);
  }

 private:
  Mode mode_;
  std::uint64_t next_ = 0;  // round-robin cursor
};

}  // namespace peerlab::core
