#pragma once

// PeerSnapshot: everything a selection model may know about a candidate
// peer at decision time. The broker materializes snapshots from its
// registry, statistics and history; models stay decoupled from the
// overlay and are unit-testable on synthetic snapshots.

#include <algorithm>
#include <string>
#include <vector>

#include "peerlab/common/ids.hpp"
#include "peerlab/common/units.hpp"
#include "peerlab/obs/trace_context.hpp"
#include "peerlab/stats/history.hpp"
#include "peerlab/stats/peer_statistics.hpp"

namespace peerlab::core {

struct PeerSnapshot {
  PeerId peer;
  NodeId node;
  std::string hostname;

  // Advertised/static properties.
  GigaHertz cpu_ghz = 1.0;
  double price_per_cpu_second = 1.0;

  // Broker-observed dynamic state.
  bool online = true;
  /// True when the peer is not executing anything right now.
  bool idle = true;
  /// Tasks queued (including running) at the peer.
  int queued_tasks = 0;
  /// File transfers currently inbound to the peer.
  int active_transfers = 0;

  /// Broker-observed outcome reputation in [0, 1]; 1 is a peer whose
  /// observed behaviour matches its advertisements, lower means
  /// attributed failures (aborted shares, unanswered petitions,
  /// throughput shortfall vs its own track record). Neutral (1.0) when
  /// reputation tracking is disabled, so models see no signal.
  double reputation = 1.0;

  // Read-only views of broker-kept data. May be null (models must
  // degrade gracefully — a brand-new peergroup has no history).
  const stats::PeerStatistics* statistics = nullptr;
  const stats::HistoryStore* history = nullptr;
};

/// DBC-style objective for economically-constrained petitions, after
/// Buyya et al.'s deadline/budget-constrained scheduling (see
/// peerlab::econ and DESIGN.md §17). A petition that carries an
/// explicit objective overrides the broker's configured default;
/// kBrokerDefault defers to it.
enum class EconObjective : std::uint8_t {
  kBrokerDefault = 0,
  /// Cheapest candidate that still meets the deadline.
  kCostOptimise,
  /// Fastest candidate that still fits the budget.
  kTimeOptimise,
  /// Cost-optimise with completion time breaking cost ties (Buyya's
  /// cost-time algorithm).
  kCostTime,
  /// Dubey–Tokekar real-time efficiency score (latency + capability +
  /// availability), highest first.
  kEfficiency,
};

[[nodiscard]] const char* to_string(EconObjective objective) noexcept;

/// What the requester is about to do with the selected peer; models
/// weigh signals differently for a 100 MB file push than for a task.
struct SelectionContext {
  enum class Purpose : std::uint8_t { kFileTransfer, kTaskExecution, kGeneric };

  Seconds now = 0.0;
  Purpose purpose = Purpose::kGeneric;
  /// File size for transfers (0 when not applicable).
  Bytes payload_size = 0;
  /// Compute work for task execution (0 when not applicable).
  GigaCycles work = 0.0;
  /// Economic model inputs: absolute completion deadline and maximum
  /// budget; 0 disables the respective constraint.
  Seconds deadline = 0.0;
  double budget = 0.0;
  /// Ranking objective for constrained petitions (see peerlab::econ).
  /// Rides the petition wire format with the rest of the context — the
  /// client parks the whole SelectionContext and the broker peeks it.
  EconObjective objective = EconObjective::kBrokerDefault;
  /// Peers every model must skip regardless of score — the requester
  /// itself, or peers that already failed this workload (failover
  /// re-petitions exclude the peer whose share just died).
  std::vector<PeerId> exclude;
  /// Strength of the reputation penalty every model adds to its cost:
  /// `reputation_weight * (1 - snapshot.reputation)`. 0 (the default)
  /// disables the term exactly — the multiplication yields 0.0 for any
  /// finite reputation, so rankings are bit-identical to a build that
  /// never heard of reputation.
  double reputation_weight = 0.0;
  /// Causal chain of the distribution/petition this selection serves
  /// (inactive = untraced). Models never read it; the broker stamps
  /// ranking events with it.
  obs::trace::TraceContext trace;

  [[nodiscard]] bool excluded(PeerId peer) const noexcept {
    return std::find(exclude.begin(), exclude.end(), peer) != exclude.end();
  }

  /// True when the petition carries an economic constraint or an
  /// explicit objective — the only petitions the broker's econ engine
  /// (and the economic model's feasibility filter) ever act on. A
  /// zero-budget / zero-deadline / default-objective context takes the
  /// pristine selection path bit for bit.
  [[nodiscard]] bool econ_constrained() const noexcept {
    return deadline > 0.0 || budget > 0.0 || objective != EconObjective::kBrokerDefault;
  }

  /// The additive cost penalty for a candidate's reputation; exactly
  /// 0.0 when reputation_weight is 0 (defenses off / idle subsystem).
  [[nodiscard]] double reputation_penalty(const PeerSnapshot& c) const noexcept {
    return reputation_weight * (1.0 - c.reputation);
  }
};

[[nodiscard]] const char* to_string(SelectionContext::Purpose purpose) noexcept;

}  // namespace peerlab::core
