#include "peerlab/core/blind.hpp"

#include <algorithm>

namespace peerlab::core {

std::vector<PeerId> BlindModel::rank(std::span<const PeerSnapshot> candidates,
                                     const SelectionContext& context) {
  std::vector<PeerId> online;
  online.reserve(candidates.size());
  // Two loops so the common fault-free (no-exclude) path stays as tight
  // as before exclusion existed.
  if (context.exclude.empty()) {
    for (const auto& c : candidates) {
      if (c.online) online.push_back(c.peer);
    }
  } else {
    for (const auto& c : candidates) {
      if (c.online && !context.excluded(c.peer)) online.push_back(c.peer);
    }
  }
  if (online.empty()) return {};
  std::sort(online.begin(), online.end());
  if (mode_ == Mode::kRoundRobin) {
    const std::size_t start = static_cast<std::size_t>(next_++ % online.size());
    std::rotate(online.begin(), online.begin() + static_cast<std::ptrdiff_t>(start),
                online.end());
  }
  return online;
}

}  // namespace peerlab::core
