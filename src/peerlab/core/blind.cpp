#include "peerlab/core/blind.hpp"

#include <algorithm>

namespace peerlab::core {

void BlindModel::rank_into(std::span<const PeerSnapshot> candidates,
                           const SelectionContext& context, std::vector<PeerId>& out) {
  out.clear();
  out.reserve(candidates.size());
  // Two loops so the common fault-free (no-exclude) path stays as tight
  // as before exclusion existed.
  if (context.exclude.empty()) {
    for (const auto& c : candidates) {
      if (c.online) out.push_back(c.peer);
    }
  } else {
    for (const auto& c : candidates) {
      if (c.online && !context.excluded(c.peer)) out.push_back(c.peer);
    }
  }
  if (out.empty()) return;
  std::sort(out.begin(), out.end());
  if (mode_ == Mode::kRoundRobin) {
    const std::size_t start = static_cast<std::size_t>(next_++ % out.size());
    std::rotate(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(start), out.end());
  }
}

}  // namespace peerlab::core
