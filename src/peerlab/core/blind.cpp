#include "peerlab/core/blind.hpp"

#include <algorithm>

namespace peerlab::core {

void BlindModel::rank_into(std::span<const PeerSnapshot> candidates,
                           const SelectionContext& context, std::vector<PeerId>& out) {
  out.clear();
  out.reserve(candidates.size());
  // Two loops so the common fault-free (no-exclude) path stays as tight
  // as before exclusion existed.
  if (context.exclude.empty()) {
    for (const auto& c : candidates) {
      if (c.online) out.push_back(c.peer);
    }
  } else {
    for (const auto& c : candidates) {
      if (c.online && !context.excluded(c.peer)) out.push_back(c.peer);
    }
  }
  if (out.empty()) return;
  std::sort(out.begin(), out.end());
  if (context.reputation_weight != 0.0) {
    // Blind stays blind to statistics, but a reputation-defended broker
    // still sinks distrusted peers: stable-partition the id-sorted list
    // by ascending penalty and confine round-robin rotation to the
    // leading minimal-penalty group. At weight 0 that group is the
    // whole list and behaviour is bit-identical to the plain path.
    auto penalty_of = [&](PeerId peer) {
      for (const auto& c : candidates) {
        if (c.peer == peer) return context.reputation_penalty(c);
      }
      return 0.0;
    };
    std::stable_sort(out.begin(), out.end(), [&](PeerId a, PeerId b) {
      return penalty_of(a) < penalty_of(b);
    });
    auto group_end = out.begin();
    const double best = penalty_of(out.front());
    while (group_end != out.end() && penalty_of(*group_end) == best) ++group_end;
    if (mode_ == Mode::kRoundRobin) {
      const auto group = static_cast<std::size_t>(group_end - out.begin());
      const std::size_t start = take_turn(group);
      std::rotate(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(start), group_end);
    }
    return;
  }
  if (mode_ == Mode::kRoundRobin) {
    const std::size_t start = take_turn(out.size());
    std::rotate(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(start), out.end());
  }
}

}  // namespace peerlab::core
