#pragma once

// Hybrid selection model — peerlab extension beyond the paper.
//
// The paper's conclusion is that the right model depends on the
// application; a natural follow-up (in the spirit of its future work)
// is to *blend* the two informed models: the economic scheduler's
// forward-looking completion/cost estimate with the data evaluator's
// backward-looking reliability record. The hybrid cost is
//
//     cost = alpha * economic_utility + (1 - alpha) * evaluator_cost
//
// with both terms normalized to [0, 1] over the candidate set. At
// alpha = 1 it degenerates to the economic model's ordering; at
// alpha = 0 to the data evaluator's.

#include "peerlab/core/data_evaluator.hpp"
#include "peerlab/core/economic.hpp"

namespace peerlab::core {

struct HybridConfig {
  /// Blend factor in [0, 1]: weight of the economic term.
  double alpha = 0.5;
  EconomicConfig economic{};
  /// Weights for the evaluator term (defaults to same-priority).
  std::vector<CriterionWeight> evaluator_weights{};
};

class HybridModel final : public SelectionModel {
 public:
  explicit HybridModel(HybridConfig config = {});

  [[nodiscard]] std::string name() const override { return "hybrid"; }

  void rank_into(std::span<const PeerSnapshot> candidates, const SelectionContext& context,
                 std::vector<PeerId>& out) override;

  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// The blended term models — read-only; the candidate index calls
  /// their estimators so its fast path reproduces this model's exact
  /// arithmetic.
  [[nodiscard]] const EconomicSchedulingModel& economic_term() const noexcept {
    return economic_;
  }
  [[nodiscard]] const DataEvaluatorModel& evaluator_term() const noexcept { return evaluator_; }

 private:
  double alpha_;
  EconomicSchedulingModel economic_;
  DataEvaluatorModel evaluator_;
};

}  // namespace peerlab::core
