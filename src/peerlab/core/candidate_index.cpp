#include "peerlab/core/candidate_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "peerlab/core/blind.hpp"
#include "peerlab/core/data_evaluator.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/core/hybrid.hpp"
#include "peerlab/core/user_preference.hpp"

namespace peerlab::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Smallest t with `front <= t - span` — the exact first moment
/// OutcomeWindow::evict() would drop the event stamped `front`. The
/// naive `front + span` can round past the true threshold in either
/// direction, so probe the window's own comparison and walk by ulps
/// (at most a couple of steps).
double window_expiry_time(double front, double span) {
  double t = front + span;
  if (front <= t - span) {
    for (;;) {
      const double p = std::nextafter(t, -kInf);
      if (front <= p - span) {
        t = p;
      } else {
        break;
      }
    }
  } else {
    while (!(front <= t - span)) t = std::nextafter(t, kInf);
  }
  return t;
}

/// Smallest t with `t - last_seen > thr` — the exact first moment
/// BrokerPeer::online() flips false. Same ulp probing as above.
double offline_time(double last_seen, double thr) {
  double t = last_seen + thr;
  while (t - last_seen <= thr) t = std::nextafter(t, kInf);
  for (;;) {
    const double p = std::nextafter(t, -kInf);
    if (p - last_seen > thr) {
      t = p;
    } else {
      break;
    }
  }
  return t;
}

/// Min-heap ordering for the lazy heaps.
bool heap_cmp(double a, double b) { return a > b; }

}  // namespace

CandidateIndex::CandidateIndex(Config config) : config_(config) {}

void CandidateIndex::set_history(const stats::HistoryStore* history) {
  history_ = history;
  mark_all_dirty();
}

void CandidateIndex::bind_model(SelectionModel* model) {
  for (Slot& slot : slots_) {
    if (slot.in_trees) remove_from_trees(slot);
  }
  model_ = model;
  blind_ = dynamic_cast<BlindModel*>(model);
  economic_ = dynamic_cast<EconomicSchedulingModel*>(model);
  evaluator_ = dynamic_cast<DataEvaluatorModel*>(model);
  preference_ = dynamic_cast<UserPreferenceModel*>(model);
  hybrid_ = dynamic_cast<HybridModel*>(model);
  if (blind_ != nullptr) {
    kind_ = ModelKind::kBlind;
  } else if (economic_ != nullptr) {
    kind_ = ModelKind::kEconomic;
  } else if (evaluator_ != nullptr) {
    kind_ = ModelKind::kEvaluator;
  } else if (preference_ != nullptr) {
    kind_ = ModelKind::kUserPreference;
  } else if (hybrid_ != nullptr) {
    kind_ = ModelKind::kHybrid;
  } else {
    kind_ = ModelKind::kNone;
  }
  eval_term_ = evaluator_ != nullptr
                   ? evaluator_
                   : (hybrid_ != nullptr ? &hybrid_->evaluator_term() : nullptr);
  window_sensitive_ = false;
  if (eval_term_ != nullptr) {
    for (const auto& w : eval_term_->weights()) {
      if (w.criterion == stats::Criterion::kMsgSuccessWindow && w.weight > 0.0) {
        window_sensitive_ = true;
      }
    }
  }
  mark_all_dirty();
}

CandidateIndex::Slot* CandidateIndex::find_slot(PeerId peer) {
  const auto it = slot_of_.find(peer);
  return it == slot_of_.end() ? nullptr : &slots_[it->second];
}

void CandidateIndex::upsert_peer(PeerId peer, NodeId node, const std::string& hostname,
                                 GigaHertz cpu_ghz, double price_per_cpu_second,
                                 const stats::PeerStatistics* statistics, Seconds last_seen,
                                 bool idle, int queued_tasks, int active_transfers) {
  const auto [it, inserted] = slot_of_.try_emplace(peer, static_cast<std::uint32_t>(slots_.size()));
  if (inserted) slots_.emplace_back();
  const std::uint32_t index = it->second;
  Slot& slot = slots_[index];
  if (inserted) {
    slot.snap.peer = peer;
    slot.snap.node = node;
    slot.snap.hostname = hostname;
  }
  slot.snap.history = history_;
  slot.snap.cpu_ghz = cpu_ghz;
  slot.snap.price_per_cpu_second = price_per_cpu_second;
  slot.snap.statistics = statistics;
  slot.snap.idle = idle;
  slot.snap.queued_tasks = queued_tasks;
  slot.snap.active_transfers = active_transfers;
  slot.last_seen = last_seen;
  push_live(index, offline_time(last_seen, config_.heartbeat_interval * config_.offline_after_missed));
  mark_dirty(peer);
}

void CandidateIndex::note_statistics(PeerId peer, const stats::PeerStatistics* statistics) {
  const auto it = slot_of_.find(peer);
  if (it == slot_of_.end()) return;
  slots_[it->second].snap.statistics = statistics;
  mark_dirty(peer);
}

void CandidateIndex::mark_dirty(PeerId peer) {
  const auto it = slot_of_.find(peer);
  if (it == slot_of_.end()) return;
  Slot& slot = slots_[it->second];
  if (slot.dirty || all_dirty_) {
    slot.dirty = true;
    return;
  }
  slot.dirty = true;
  dirty_.push_back(it->second);
}

void CandidateIndex::mark_all_dirty() { all_dirty_ = true; }

void CandidateIndex::clear() {
  slots_.clear();
  slot_of_.clear();
  dirty_.clear();
  all_dirty_ = false;
  ids_.clear();
  t_static_.clear();
  t_eval_.clear();
  t_base_.clear();
  t_speed_.clear();
  t_rate_.clear();
  t_resp_.clear();
  t_price_.clear();
  t_cpu_.clear();
  online_idle_ = 0;
  live_heap_.clear();
  expiry_heap_.clear();
}

void CandidateIndex::attach_metrics(obs::MetricRegistry& registry) {
  m_.fast_path = &registry.counter("selection.index.fast_path", "selections");
  m_.fallbacks = &registry.counter("selection.index.fallbacks", "selections");
  m_.rekeys = &registry.counter("selection.index.rekeys", "peers");
  m_.pulls = &registry.counter("selection.index.pulls", "entries");
  m_.dense_sweeps = &registry.counter("selection.index.dense_sweeps", "selections");
  m_.rebuilds = &registry.counter("selection.index.rebuilds", "rebuilds");
  m_.fast_path->add(fast_path_);
  m_.fallbacks->add(fallbacks_);
  m_.rekeys->add(rekeys_);
  m_.pulls->add(pulls_);
  m_.dense_sweeps->add(dense_sweeps_);
  m_.rebuilds->add(rebuilds_);
}

bool CandidateIndex::refuse() {
  ++fallbacks_;
  if (m_.fallbacks != nullptr) m_.fallbacks->add(1);
  return false;
}

// ---- lazy maintenance -------------------------------------------------

void CandidateIndex::push_live(std::uint32_t slot_index, double key) {
  Slot& slot = slots_[slot_index];
  ++slot.live_stamp;
  live_heap_.push_back(HeapEntry{key, slot_index, slot.live_stamp});
  std::push_heap(live_heap_.begin(), live_heap_.end(),
                 [](const HeapEntry& a, const HeapEntry& b) { return heap_cmp(a.key, b.key); });
}

void CandidateIndex::push_expiry(std::uint32_t slot_index, double key) {
  Slot& slot = slots_[slot_index];
  ++slot.exp_stamp;
  expiry_heap_.push_back(HeapEntry{key, slot_index, slot.exp_stamp});
  std::push_heap(expiry_heap_.begin(), expiry_heap_.end(),
                 [](const HeapEntry& a, const HeapEntry& b) { return heap_cmp(a.key, b.key); });
}

void CandidateIndex::drain_liveness(Seconds sim_now) {
  const auto cmp = [](const HeapEntry& a, const HeapEntry& b) { return heap_cmp(a.key, b.key); };
  while (!live_heap_.empty() && live_heap_.front().key <= sim_now) {
    std::pop_heap(live_heap_.begin(), live_heap_.end(), cmp);
    const HeapEntry entry = live_heap_.back();
    live_heap_.pop_back();
    Slot& slot = slots_[entry.slot];
    if (entry.stamp != slot.live_stamp) continue;
    mark_dirty(slot.snap.peer);
  }
}

void CandidateIndex::drain_expiry(Seconds now) {
  const auto cmp = [](const HeapEntry& a, const HeapEntry& b) { return heap_cmp(a.key, b.key); };
  while (!expiry_heap_.empty() && expiry_heap_.front().key <= now) {
    std::pop_heap(expiry_heap_.begin(), expiry_heap_.end(), cmp);
    const HeapEntry entry = expiry_heap_.back();
    expiry_heap_.pop_back();
    Slot& slot = slots_[entry.slot];
    if (entry.stamp != slot.exp_stamp) continue;
    mark_dirty(slot.snap.peer);
  }
}

void CandidateIndex::flush_dirty(const SelectionContext& context, Seconds sim_now) {
  if (all_dirty_) {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      refresh_slot(i, context, sim_now);
    }
    dirty_.clear();
    all_dirty_ = false;
    ++rebuilds_;
    if (m_.rebuilds != nullptr) m_.rebuilds->add(1);
    return;
  }
  for (const std::uint32_t i : dirty_) refresh_slot(i, context, sim_now);
  dirty_.clear();
}

void CandidateIndex::refresh_slot(std::uint32_t slot_index, const SelectionContext& context,
                                  Seconds sim_now) {
  Slot& slot = slots_[slot_index];
  slot.dirty = false;
  if (slot.in_trees) remove_from_trees(slot);
  if (!slot_online(slot, sim_now)) return;
  compute_keys(slot, slot_index, context);
  insert_into_trees(slot);
  ++rekeys_;
  if (m_.rekeys != nullptr) m_.rekeys->add(1);
}

void CandidateIndex::compute_keys(Slot& slot, std::uint32_t slot_index,
                                  const SelectionContext& context) {
  if (kind_ == ModelKind::kUserPreference) {
    slot.key_static = preference_->base_cost(slot.snap.peer);
  }
  if ((kind_ == ModelKind::kEvaluator || kind_ == ModelKind::kHybrid) && eval_term_ != nullptr) {
    slot.key_eval = eval_term_->cost(slot.snap, context);
    if (window_sensitive_ && slot.snap.statistics != nullptr) {
      const auto& window = slot.snap.statistics->message_window();
      if (const auto front = window.oldest_event()) {
        push_expiry(slot_index, window_expiry_time(*front, window.span()));
      }
    }
  }
  if (kind_ == ModelKind::kEconomic || kind_ == ModelKind::kHybrid) {
    const EconomicSchedulingModel& econ =
        kind_ == ModelKind::kHybrid ? hybrid_->economic_term() : *economic_;
    const EconomicConfig& cfg = econ.config();
    const PeerSnapshot& snap = slot.snap;
    slot.key_base = econ.estimate_ready_time(snap);
    // The attribute keys mirror estimate_service_time/estimate_cost's
    // fallbacks exactly: the chain evaluated at a peer's own keys IS
    // its scan value, which is what makes frontier bounds exact.
    GigaHertz speed = snap.cpu_ghz;
    MbitPerSec rate = cfg.default_rate_estimate;
    Seconds resp = 0.0;
    if (snap.history != nullptr) {
      if (const auto hist = snap.history->mean_effective_speed(snap.peer, cfg.history_depth)) {
        speed = *hist;
      }
      if (const auto hist = snap.history->mean_transfer_rate(snap.peer, cfg.history_depth)) {
        rate = *hist;
      }
      if (const auto hist = snap.history->mean_response_time(snap.peer, cfg.history_depth)) {
        resp = *hist;
      }
    }
    slot.key_speed = speed;
    slot.key_rate = rate;
    slot.key_resp = resp;
    slot.key_price = snap.price_per_cpu_second;
    slot.key_cpu = snap.cpu_ghz;
  }
}

void CandidateIndex::insert_into_trees(Slot& slot) {
  const PeerId peer = slot.snap.peer;
  ids_.insert(0.0, peer);
  switch (kind_) {
    case ModelKind::kUserPreference:
      t_static_.insert(slot.key_static, peer);
      break;
    case ModelKind::kEvaluator:
      t_eval_.insert(slot.key_eval, peer);
      break;
    case ModelKind::kHybrid:
      t_eval_.insert(slot.key_eval, peer);
      [[fallthrough]];
    case ModelKind::kEconomic:
      t_base_.insert(slot.key_base, peer);
      t_speed_.insert(slot.key_speed, peer);
      t_rate_.insert(slot.key_rate, peer);
      t_resp_.insert(slot.key_resp, peer);
      t_price_.insert(slot.key_price, peer);
      t_cpu_.insert(slot.key_cpu, peer);
      break;
    default:
      break;
  }
  slot.in_trees = true;
  slot.indexed_idle = slot.snap.idle;
  slot.snap.online = true;
  if (slot.indexed_idle) ++online_idle_;
}

void CandidateIndex::remove_from_trees(Slot& slot) {
  const PeerId peer = slot.snap.peer;
  ids_.erase(0.0, peer);
  switch (kind_) {
    case ModelKind::kUserPreference:
      t_static_.erase(slot.key_static, peer);
      break;
    case ModelKind::kEvaluator:
      t_eval_.erase(slot.key_eval, peer);
      break;
    case ModelKind::kHybrid:
      t_eval_.erase(slot.key_eval, peer);
      [[fallthrough]];
    case ModelKind::kEconomic:
      t_base_.erase(slot.key_base, peer);
      t_speed_.erase(slot.key_speed, peer);
      t_rate_.erase(slot.key_rate, peer);
      t_resp_.erase(slot.key_resp, peer);
      t_price_.erase(slot.key_price, peer);
      t_cpu_.erase(slot.key_cpu, peer);
      break;
    default:
      break;
  }
  slot.in_trees = false;
  if (slot.indexed_idle) --online_idle_;
  slot.indexed_idle = false;
}

// ---- threshold-walk plumbing ------------------------------------------

void CandidateIndex::mark_excludes(const SelectionContext& context) {
  ++select_epoch_;
  excl_online_ = 0;
  excl_idle_ = 0;
  for (const PeerId peer : context.exclude) {
    Slot* slot = find_slot(peer);
    if (slot == nullptr || slot->excluded == select_epoch_) continue;
    slot->excluded = select_epoch_;
    if (slot->in_trees) {
      ++excl_online_;
      if (slot->indexed_idle) ++excl_idle_;
    }
  }
}

bool CandidateIndex::eligible(const Slot& slot, bool idle_gate) const noexcept {
  if (slot.excluded == select_epoch_) return false;
  if (idle_gate && !slot.snap.idle) return false;
  return true;
}

template <typename ValueOf, typename BoundOf>
double CandidateIndex::extremum(std::vector<Cursor>& cursors, bool want_max, bool idle_gate,
                                ValueOf value_of, BoundOf bound_of, std::size_t budget,
                                bool& blown) {
  ++walk_epoch_;
  double best = want_max ? -kInf : kInf;
  bool have = false;
  std::size_t walked = 0;
  for (;;) {
    bool enumerated_all = false;
    for (auto& cursor : cursors) {
      if (cursor.exhausted()) {
        enumerated_all = true;
        continue;
      }
      const auto entry = cursor.step();
      ++pulls_;
      ++walked;
      if (cursor.exhausted()) enumerated_all = true;
      Slot& slot = slots_[slot_of_.find(entry.peer)->second];
      if (slot.visited == walk_epoch_) continue;
      slot.visited = walk_epoch_;
      if (!eligible(slot, idle_gate)) continue;
      const double v = value_of(slot);
      if (!have || (want_max ? v > best : v < best)) {
        best = v;
        have = true;
      }
    }
    if (enumerated_all) break;
    if (have) {
      const double bound = bound_of();
      if (want_max ? best >= bound : best <= bound) break;
    }
    if (walked > budget) {
      // Degenerate distribution: the frontier is stuck in tied runs and
      // the bound cannot converge. Abandon the walk; the caller redoes
      // this extremum with a dense sweep.
      blown = true;
      return best;
    }
  }
  return best;
}

template <typename ValueOf, typename BoundOf>
void CandidateIndex::top_k(std::vector<Cursor>& cursors, std::size_t k, bool idle_gate,
                           ValueOf value_of, BoundOf bound_of, std::size_t budget, bool& blown) {
  ++walk_epoch_;
  scored_.clear();
  best_heap_.clear();
  const auto better = [](const Scored& a, const Scored& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.peer < b.peer;
  };
  std::size_t walked = 0;
  for (;;) {
    bool enumerated_all = false;
    for (auto& cursor : cursors) {
      if (cursor.exhausted()) {
        enumerated_all = true;
        continue;
      }
      const auto entry = cursor.step();
      ++pulls_;
      ++walked;
      if (cursor.exhausted()) enumerated_all = true;
      Slot& slot = slots_[slot_of_.find(entry.peer)->second];
      if (slot.visited == walk_epoch_) continue;
      slot.visited = walk_epoch_;
      if (!eligible(slot, idle_gate)) continue;
      const std::uint32_t slot_index =
          static_cast<std::uint32_t>(&slot - slots_.data());
      const Scored scored{slot_index, value_of(slot), entry.peer};
      scored_.push_back(scored);
      if (best_heap_.size() < k) {
        best_heap_.push_back(scored);
        std::push_heap(best_heap_.begin(), best_heap_.end(), better);
      } else if (better(scored, best_heap_.front())) {
        std::pop_heap(best_heap_.begin(), best_heap_.end(), better);
        best_heap_.back() = scored;
        std::push_heap(best_heap_.begin(), best_heap_.end(), better);
      }
    }
    if (enumerated_all) return;
    // Strictly better: a tie at the bound could still be beaten on the
    // peer-id tiebreak by an unseen peer, so keep pulling through ties.
    if (best_heap_.size() >= k && best_heap_.front().value < bound_of()) return;
    if (walked > budget) {
      blown = true;
      return;
    }
  }
}

template <typename ValueOf>
void CandidateIndex::dense_top_k(std::size_t k, bool idle_gate, ValueOf value_of) {
  ++dense_sweeps_;
  if (m_.dense_sweeps != nullptr) m_.dense_sweeps->add(1);
  scored_.clear();
  best_heap_.clear();
  const auto better = [](const Scored& a, const Scored& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.peer < b.peer;
  };
  for (const Slot& slot : slots_) {
    if (!slot.in_trees || !eligible(slot, idle_gate)) continue;
    ++pulls_;
    const std::uint32_t slot_index =
        static_cast<std::uint32_t>(&slot - slots_.data());
    const Scored scored{slot_index, value_of(slot), slot.snap.peer};
    if (best_heap_.size() < k) {
      best_heap_.push_back(scored);
      std::push_heap(best_heap_.begin(), best_heap_.end(), better);
    } else if (better(scored, best_heap_.front())) {
      std::pop_heap(best_heap_.begin(), best_heap_.end(), better);
      best_heap_.back() = scored;
      std::push_heap(best_heap_.begin(), best_heap_.end(), better);
    }
  }
  scored_ = best_heap_;
}

void CandidateIndex::emit_scored(std::size_t k, std::vector<PeerId>& out) {
  // Mirrors append_ranked: std::sort by (cost, peer); entries are
  // distinct peers, so the permutation is unique.
  std::sort(scored_.begin(), scored_.end(), [](const Scored& a, const Scored& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.peer < b.peer;
  });
  const std::size_t n = std::min(k, scored_.size());
  out.clear();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(scored_[i].peer);
}

// ---- per-model fast paths ---------------------------------------------

void CandidateIndex::select_blind(const SelectionContext& context, std::size_t k,
                                  std::vector<PeerId>& out) {
  (void)context;  // exclude-free by gate; blind ignores the rest
  out.clear();
  const std::size_t m = ids_.size();
  if (m == 0) return;  // scan returns before advancing the cursor
  std::size_t start = 0;
  if (blind_->mode() == BlindModel::Mode::kRoundRobin) start = blind_->take_turn(m);
  const std::size_t count = std::min(k, m);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(ids_.kth((start + i) % m).peer);
  }
}

void CandidateIndex::select_static_tree(const RankedTree& tree, const SelectionContext& context,
                                        std::size_t k, std::vector<PeerId>& out) {
  (void)context;
  out.clear();
  const std::size_t n = tree.size();
  for (std::size_t i = 0; i < n && out.size() < k; ++i) {
    const auto entry = tree.kth(i);
    ++pulls_;
    const Slot& slot = slots_[slot_of_.find(entry.peer)->second];
    if (slot.excluded == select_epoch_) continue;
    out.push_back(entry.peer);
  }
}

void CandidateIndex::select_economic(const SelectionContext& context, std::size_t k,
                                     std::vector<PeerId>& out) {
  out.clear();
  const EconomicConfig& cfg = economic_->config();
  const bool any_idle = online_idle_ > excl_idle_;
  const bool idle_gate = cfg.prefer_idle && any_idle;
  const std::size_t n_el =
      idle_gate ? online_idle_ - excl_idle_ : ids_.size() - excl_online_;
  if (n_el == 0) return;  // scan: no offers → empty ranking
  const std::size_t n_needed = std::min(k, n_el);

  const bool has_work = context.work > 0.0;
  const bool has_payload = context.payload_size > 0;

  // Monotone mirrors of the scan's accumulation order, evaluated at
  // per-attribute frontier values — exact bounds, no margins.
  const auto service_chain = [&](double speed, double rate, double resp) {
    Seconds service = 0.0;
    if (context.work > 0.0) service += context.work / std::max(speed, 1e-6);
    if (context.payload_size > 0) service += wire_time(context.payload_size, rate);
    service += resp;
    return service;
  };
  const auto completion_chain = [&](double ready, double speed, double rate, double resp) {
    return ready + service_chain(speed, rate, resp);
  };
  const auto cost_chain = [&](double price, double cpu, double rate, double resp) {
    const Seconds cpu_time = context.work > 0.0 ? context.work / std::max(cpu, 1e-6)
                                                : service_chain(0.0, rate, resp);
    return price * cpu_time;
  };
  // The chains evaluated at one peer's cached keys ARE its scan values
  // (compute_keys mirrors the estimators' fallbacks exactly), so per-
  // peer evaluation never touches the estimators or the history maps.
  const auto completion_of = [&](const Slot& s) {
    return completion_chain(s.key_base, s.key_speed, s.key_rate, s.key_resp);
  };
  const auto cost_of = [&](const Slot& s) {
    return cost_chain(s.key_price, s.key_cpu, s.key_rate, s.key_resp);
  };

  int ci_base = -1, ci_speed = -1, ci_rate = -1, ci_resp = -1, ci_price = -1, ci_cpu = -1;
  const auto reset = [&]() {
    cursors_.clear();
    ci_base = ci_speed = ci_rate = ci_resp = ci_price = ci_cpu = -1;
  };
  const auto add = [&](int& index, const RankedTree& tree, bool desc) {
    index = static_cast<int>(cursors_.size());
    cursors_.push_back(Cursor{&tree, desc, 0, 0.0});
  };
  const auto f = [&](int index) { return cursors_[static_cast<std::size_t>(index)].frontier; };

  const auto time_cursors = [&](bool low) {
    reset();
    add(ci_base, t_base_, !low);
    if (has_work) add(ci_speed, t_speed_, low);
    if (has_payload) add(ci_rate, t_rate_, low);
    add(ci_resp, t_resp_, !low);
  };
  const auto time_bound = [&]() {
    return completion_chain(f(ci_base), has_work ? f(ci_speed) : 0.0,
                            has_payload ? f(ci_rate) : 0.0, f(ci_resp));
  };
  const auto cost_cursors = [&](bool low) {
    reset();
    add(ci_price, t_price_, !low);
    if (has_work) {
      add(ci_cpu, t_cpu_, low);
    } else {
      if (has_payload) add(ci_rate, t_rate_, low);
      add(ci_resp, t_resp_, !low);
    }
  };
  const auto cost_bound = [&]() {
    return cost_chain(f(ci_price), has_work ? f(ci_cpu) : 0.0,
                      has_payload ? f(ci_rate) : 0.0, has_work ? 0.0 : f(ci_resp));
  };

  const std::size_t budget = pull_budget(n_el);
  bool blown = false;
  double tlo = kInf, thi = -kInf, clo = kInf, chi = -kInf;
  time_cursors(true);
  tlo = extremum(cursors_, /*want_max=*/false, idle_gate, completion_of, time_bound, budget,
                 blown);
  if (!blown) {
    time_cursors(false);
    thi = extremum(cursors_, /*want_max=*/true, idle_gate, completion_of, time_bound, budget,
                   blown);
  }
  if (!blown) {
    cost_cursors(true);
    clo = extremum(cursors_, /*want_max=*/false, idle_gate, cost_of, cost_bound, budget, blown);
  }
  if (!blown) {
    cost_cursors(false);
    chi = extremum(cursors_, /*want_max=*/true, idle_gate, cost_of, cost_bound, budget, blown);
  }
  if (blown) {
    // Dense redo of all four extrema in one pass over the cached slots:
    // exact by exhaustion, and cheaper than letting four stuck walks
    // crawl tied frontier runs one pull at a time.
    tlo = kInf, thi = -kInf, clo = kInf, chi = -kInf;
    for (const Slot& s : slots_) {
      if (!s.in_trees || !eligible(s, idle_gate)) continue;
      const double t = completion_of(s);
      const double c = cost_of(s);
      if (t < tlo) tlo = t;
      if (t > thi) thi = t;
      if (c < clo) clo = c;
      if (c > chi) chi = c;
    }
  }

  const double wsum = cfg.time_weight + cfg.cost_weight;
  const auto utility_of = [&](const Slot& s) {
    const double completion = completion_of(s);
    const double cost = cost_of(s);
    const double tnorm = thi > tlo ? (completion - tlo) / (thi - tlo) : 0.0;
    const double cnorm = chi > clo ? (cost - clo) / (chi - clo) : 0.0;
    double utility = (cfg.time_weight * tnorm + cfg.cost_weight * cnorm) / wsum;
    utility -= 1e-9 * s.snap.cpu_ghz;
    return utility;
  };

  reset();
  add(ci_base, t_base_, false);
  if (has_work) add(ci_speed, t_speed_, true);
  if (has_payload) add(ci_rate, t_rate_, true);
  add(ci_resp, t_resp_, false);
  add(ci_price, t_price_, false);
  add(ci_cpu, t_cpu_, true);  // cost lower bound (work > 0) and the -1e-9 tiebreak
  const auto utility_bound = [&]() {
    const double completion = completion_chain(f(ci_base), has_work ? f(ci_speed) : 0.0,
                                               has_payload ? f(ci_rate) : 0.0, f(ci_resp));
    const double cost = cost_chain(f(ci_price), has_work ? f(ci_cpu) : 0.0,
                                   has_payload ? f(ci_rate) : 0.0,
                                   has_work ? 0.0 : f(ci_resp));
    const double tnorm = thi > tlo ? (completion - tlo) / (thi - tlo) : 0.0;
    const double cnorm = chi > clo ? (cost - clo) / (chi - clo) : 0.0;
    double utility = (cfg.time_weight * tnorm + cfg.cost_weight * cnorm) / wsum;
    utility -= 1e-9 * f(ci_cpu);
    return utility;
  };
  bool rank_blown = false;
  if (blown) {
    rank_blown = true;  // extrema already proved the distribution degenerate
  } else {
    top_k(cursors_, n_needed, idle_gate, utility_of, utility_bound, budget, rank_blown);
  }
  if (rank_blown) dense_top_k(n_needed, idle_gate, utility_of);
  emit_scored(n_needed, out);
}

void CandidateIndex::select_hybrid(const SelectionContext& context, std::size_t k,
                                   std::vector<PeerId>& out) {
  out.clear();
  const std::size_t n_el = ids_.size() - excl_online_;
  if (n_el == 0) return;
  const std::size_t n_needed = std::min(k, n_el);

  const bool has_work = context.work > 0.0;
  const bool has_payload = context.payload_size > 0;

  const auto service_chain = [&](double speed, double rate, double resp) {
    Seconds service = 0.0;
    if (context.work > 0.0) service += context.work / std::max(speed, 1e-6);
    if (context.payload_size > 0) service += wire_time(context.payload_size, rate);
    service += resp;
    return service;
  };
  const auto cost_chain = [&](double price, double cpu, double rate, double resp) {
    const Seconds cpu_time = context.work > 0.0 ? context.work / std::max(cpu, 1e-6)
                                                : service_chain(0.0, rate, resp);
    return price * cpu_time;
  };
  // Mirrors the scan's left-associated ready + service + cost.
  const auto e_chain = [&](double ready, double speed, double rate, double resp, double price,
                           double cpu) {
    return ready + service_chain(speed, rate, resp) + cost_chain(price, cpu, rate, resp);
  };
  // Per-peer economic term straight off the cached keys; see the
  // compute_keys exactness note.
  const auto e_of = [&](const Slot& s) {
    return e_chain(s.key_base, s.key_speed, s.key_rate, s.key_resp, s.key_price, s.key_cpu);
  };

  int ci_base = -1, ci_speed = -1, ci_rate = -1, ci_resp = -1, ci_price = -1, ci_cpu = -1,
      ci_eval = -1;
  const auto reset = [&]() {
    cursors_.clear();
    ci_base = ci_speed = ci_rate = ci_resp = ci_price = ci_cpu = ci_eval = -1;
  };
  const auto add = [&](int& index, const RankedTree& tree, bool desc) {
    index = static_cast<int>(cursors_.size());
    cursors_.push_back(Cursor{&tree, desc, 0, 0.0});
  };
  const auto f = [&](int index) { return cursors_[static_cast<std::size_t>(index)].frontier; };

  const auto e_cursors = [&](bool low) {
    reset();
    add(ci_base, t_base_, !low);
    if (has_work) add(ci_speed, t_speed_, low);
    if (has_payload) add(ci_rate, t_rate_, low);
    add(ci_resp, t_resp_, !low);
    add(ci_price, t_price_, !low);
    if (has_work) add(ci_cpu, t_cpu_, low);
  };
  const auto e_bound = [&]() {
    return e_chain(f(ci_base), has_work ? f(ci_speed) : 0.0, has_payload ? f(ci_rate) : 0.0,
                   f(ci_resp), f(ci_price), has_work ? f(ci_cpu) : 0.0);
  };

  const std::size_t budget = pull_budget(n_el);
  bool blown = false;
  double elo = kInf, ehi = -kInf;
  e_cursors(true);
  elo = extremum(cursors_, /*want_max=*/false, /*idle_gate=*/false, e_of, e_bound, budget, blown);
  if (!blown) {
    e_cursors(false);
    ehi = extremum(cursors_, /*want_max=*/true, /*idle_gate=*/false, e_of, e_bound, budget,
                   blown);
  }
  if (blown) {
    elo = kInf, ehi = -kInf;
    for (const Slot& s : slots_) {
      if (!s.in_trees || !eligible(s, /*idle_gate=*/false)) continue;
      const double e = e_of(s);
      if (e < elo) elo = e;
      if (e > ehi) ehi = e;
    }
  }

  // Evaluator span: the eval tree is keyed by the exact evaluator
  // cost, so the first/last non-excluded entries are the span.
  double vlo = 0.0;
  double vhi = 0.0;
  for (std::size_t i = 0; i < t_eval_.size(); ++i) {
    const auto entry = t_eval_.kth(i);
    ++pulls_;
    if (slots_[slot_of_.find(entry.peer)->second].excluded == select_epoch_) continue;
    vlo = entry.key;
    break;
  }
  for (std::size_t i = t_eval_.size(); i-- > 0;) {
    const auto entry = t_eval_.kth(i);
    ++pulls_;
    if (slots_[slot_of_.find(entry.peer)->second].excluded == select_epoch_) continue;
    vhi = entry.key;
    break;
  }

  const double alpha = hybrid_->alpha();
  const auto score_of = [&](const Slot& s) {
    const double e = e_of(s);
    const double v = s.key_eval;  // select-time exact: expiry re-dirties on window decay
    const double en = ehi > elo ? (e - elo) / (ehi - elo) : 0.0;
    const double vn = vhi > vlo ? (v - vlo) / (vhi - vlo) : 0.0;
    return alpha * en + (1.0 - alpha) * vn;
  };

  reset();
  add(ci_base, t_base_, false);
  if (has_work) add(ci_speed, t_speed_, true);
  if (has_payload) add(ci_rate, t_rate_, true);
  add(ci_resp, t_resp_, false);
  add(ci_price, t_price_, false);
  if (has_work) add(ci_cpu, t_cpu_, true);
  add(ci_eval, t_eval_, false);
  const auto score_bound = [&]() {
    const double e = e_chain(f(ci_base), has_work ? f(ci_speed) : 0.0,
                             has_payload ? f(ci_rate) : 0.0, f(ci_resp), f(ci_price),
                             has_work ? f(ci_cpu) : 0.0);
    const double v = f(ci_eval);
    const double en = ehi > elo ? (e - elo) / (ehi - elo) : 0.0;
    const double vn = vhi > vlo ? (v - vlo) / (vhi - vlo) : 0.0;
    return alpha * en + (1.0 - alpha) * vn;
  };
  bool rank_blown = false;
  if (blown) {
    rank_blown = true;
  } else {
    top_k(cursors_, n_needed, /*idle_gate=*/false, score_of, score_bound, budget, rank_blown);
  }
  if (rank_blown) dense_top_k(n_needed, /*idle_gate=*/false, score_of);
  emit_scored(n_needed, out);
}

// ---- entry point -------------------------------------------------------

bool CandidateIndex::try_select(const SelectionContext& context, Seconds sim_now, std::size_t k,
                                std::vector<PeerId>& out) {
  if (kind_ == ModelKind::kNone || model_ == nullptr) return refuse();
  if (context.reputation_weight != 0.0) return refuse();
  if (context.exclude.size() > config_.max_inline_excludes) return refuse();
  if (kind_ == ModelKind::kBlind && !context.exclude.empty()) return refuse();
  // Economically-constrained petitions (deadline, budget, or an explicit
  // objective) go through the broker's econ engine, which needs the full
  // model ranking — not just the top-k the threshold walk produces — to
  // run admission. Refuse for every model, not only kEconomic.
  if (context.econ_constrained()) return refuse();

  drain_liveness(sim_now);
  drain_expiry(context.now);
  flush_dirty(context, sim_now);
  mark_excludes(context);

  const std::uint64_t pulls_before = pulls_;
  switch (kind_) {
    case ModelKind::kBlind:
      select_blind(context, k, out);
      break;
    case ModelKind::kUserPreference:
      select_static_tree(t_static_, context, k, out);
      break;
    case ModelKind::kEvaluator:
      select_static_tree(t_eval_, context, k, out);
      break;
    case ModelKind::kEconomic:
      select_economic(context, k, out);
      break;
    case ModelKind::kHybrid:
      select_hybrid(context, k, out);
      break;
    default:
      return refuse();
  }
  ++fast_path_;
  if (m_.fast_path != nullptr) m_.fast_path->add(1);
  if (m_.pulls != nullptr) m_.pulls->add(pulls_ - pulls_before);
  return true;
}

}  // namespace peerlab::core
