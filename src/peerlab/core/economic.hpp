#pragma once

// Scheduling-based (economic) selection model — Section 2.1 of the
// paper, after Ernemann, Hamscher & Yahyapour, "Economic scheduling in
// grid computing" (JSSPP 2002).
//
// The broker provisions *idle* peers for incoming work. For each
// candidate it estimates, from the peergroup's history:
//
//   ready time   — when the peer can start (queue backlog x mean
//                  execution time of its recent tasks),
//   service time — expected execution (work / historical effective
//                  speed, falling back to advertised CPU) and, for
//                  transfers, payload / historical achieved rate,
//   cost         — the peer's advertised price x expected CPU time.
//
// Candidates violating the request's deadline or budget are filtered
// (unless every candidate violates them, in which case the least-bad
// is still offered — the paper's broker never refuses service). The
// surviving candidates are ranked by a weighted utility of normalized
// completion time and normalized cost; CPU speed breaks ties, matching
// the paper's "some additional data and criteria such as CPU speed".

#include "peerlab/core/selection_model.hpp"

namespace peerlab::core {

struct EconomicConfig {
  /// Utility weights (need not sum to 1; normalized internally).
  double time_weight = 0.7;
  double cost_weight = 0.3;
  /// How many recent history records feed the estimators.
  std::size_t history_depth = 16;
  /// Fallbacks when the peergroup has no history for a peer.
  Seconds default_execution_estimate = 60.0;
  MbitPerSec default_rate_estimate = 2.0;
  /// Ready-time penalty per transfer currently inbound to the peer
  /// (a peer mid-download cannot start receiving ours at full rate).
  Seconds transfer_drain_estimate = 120.0;
  /// When true, busy peers are excluded outright if any idle peer
  /// exists ("find/provision as many as possible available idle peers").
  bool prefer_idle = true;
};

class EconomicSchedulingModel final : public SelectionModel {
 public:
  explicit EconomicSchedulingModel(EconomicConfig config = {});

  [[nodiscard]] std::string name() const override { return "economic"; }

  void rank_into(std::span<const PeerSnapshot> candidates, const SelectionContext& context,
                 std::vector<PeerId>& out) override;

  /// Exposed estimators (used by ablation benches and tests).
  [[nodiscard]] Seconds estimate_ready_time(const PeerSnapshot& peer) const;
  [[nodiscard]] Seconds estimate_service_time(const PeerSnapshot& peer,
                                              const SelectionContext& context) const;
  [[nodiscard]] double estimate_cost(const PeerSnapshot& peer,
                                     const SelectionContext& context) const;

  [[nodiscard]] const EconomicConfig& config() const noexcept { return config_; }

 private:
  EconomicConfig config_;
};

}  // namespace peerlab::core
