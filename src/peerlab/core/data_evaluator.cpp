#include "peerlab/core/data_evaluator.hpp"

#include <algorithm>

#include "peerlab/common/check.hpp"

namespace peerlab::core {

DataEvaluatorModel::DataEvaluatorModel(std::vector<CriterionWeight> weights)
    : weights_(std::move(weights)) {
  PEERLAB_CHECK_MSG(!weights_.empty(), "data evaluator needs at least one criterion");
  for (const auto& w : weights_) {
    PEERLAB_CHECK_MSG(w.weight >= 0.0, "criterion weights must be non-negative");
    weight_sum_ += w.weight;
  }
  PEERLAB_CHECK_MSG(weight_sum_ > 0.0, "criterion weights must not all be zero");
}

DataEvaluatorModel DataEvaluatorModel::same_priority() {
  std::vector<CriterionWeight> weights;
  weights.reserve(stats::kCriterionCount);
  for (std::size_t i = 0; i < stats::kCriterionCount; ++i) {
    weights.push_back(CriterionWeight{static_cast<stats::Criterion>(i), 1.0});
  }
  return DataEvaluatorModel(std::move(weights));
}

double DataEvaluatorModel::goodness(stats::Criterion criterion, double value) {
  switch (criterion) {
    case stats::Criterion::kOutboxNow:
    case stats::Criterion::kOutboxAvg:
    case stats::Criterion::kInboxNow:
    case stats::Criterion::kInboxAvg:
    case stats::Criterion::kPendingTransfers:
      // Unbounded counts, lower is better.
      return 1.0 / (1.0 + std::max(0.0, value));
    default: {
      const double fraction = std::clamp(value / 100.0, 0.0, 1.0);
      return stats::higher_is_better(criterion) ? fraction : 1.0 - fraction;
    }
  }
}

double DataEvaluatorModel::cost(const PeerSnapshot& peer,
                                const SelectionContext& context) const {
  if (peer.statistics == nullptr) {
    return 0.5;  // unknown peer: neutral cost
  }
  double weighted = 0.0;
  for (const auto& w : weights_) {
    if (w.weight == 0.0) continue;
    const double value = peer.statistics->value(w.criterion, context.now);
    weighted += w.weight * goodness(w.criterion, value);
  }
  return 1.0 - weighted / weight_sum_;
}

void DataEvaluatorModel::rank_into(std::span<const PeerSnapshot> candidates,
                                   const SelectionContext& context,
                                   std::vector<PeerId>& out) {
  out.clear();
  arena().reset();
  auto scored = mem::make_scratch<ScoredPeer>(arena(), candidates.size());
  const bool has_excludes = !context.exclude.empty();
  for (const auto& c : candidates) {
    if (!c.online || (has_excludes && context.excluded(c.peer))) continue;
    scored.push_back(ScoredPeer{c.peer, cost(c, context) + context.reputation_penalty(c)});
  }
  out.reserve(scored.size());
  append_ranked({scored.data(), scored.size()}, out);
}

}  // namespace peerlab::core
