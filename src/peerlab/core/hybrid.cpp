#include "peerlab/core/hybrid.hpp"

#include <algorithm>
#include <limits>

#include "peerlab/common/check.hpp"

namespace peerlab::core {

namespace {
std::vector<CriterionWeight> weights_or_default(std::vector<CriterionWeight> weights) {
  if (!weights.empty()) return weights;
  return DataEvaluatorModel::same_priority().weights();
}
}  // namespace

HybridModel::HybridModel(HybridConfig config)
    : alpha_(config.alpha),
      economic_(config.economic),
      evaluator_(weights_or_default(std::move(config.evaluator_weights))) {
  PEERLAB_CHECK_MSG(alpha_ >= 0.0 && alpha_ <= 1.0, "alpha must be in [0, 1]");
}

void HybridModel::rank_into(std::span<const PeerSnapshot> candidates,
                            const SelectionContext& context, std::vector<PeerId>& out) {
  out.clear();
  // Economic term: completion + cost estimate, min-max normalized.
  struct Term {
    const PeerSnapshot* peer = nullptr;
    double economic = 0.0;
    double evaluator = 0.0;
  };
  arena().reset();
  auto terms = mem::make_scratch<Term>(arena(), candidates.size());
  const bool has_excludes = !context.exclude.empty();
  for (const auto& c : candidates) {
    if (!c.online || (has_excludes && context.excluded(c.peer))) continue;
    Term t;
    t.peer = &c;
    t.economic = economic_.estimate_ready_time(c) + economic_.estimate_service_time(c, context) +
                 economic_.estimate_cost(c, context);
    t.evaluator = evaluator_.cost(c, context);
    terms.push_back(t);
  }
  if (terms.empty()) return;

  auto normalize = [&terms](auto get, auto set) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const auto& t : terms) {
      lo = std::min(lo, get(t));
      hi = std::max(hi, get(t));
    }
    for (auto& t : terms) {
      set(t, hi > lo ? (get(t) - lo) / (hi - lo) : 0.0);
    }
  };
  normalize([](const Term& t) { return t.economic; },
            [](Term& t, double v) { t.economic = v; });
  normalize([](const Term& t) { return t.evaluator; },
            [](Term& t, double v) { t.evaluator = v; });

  auto scored = mem::make_scratch<ScoredPeer>(arena(), terms.size());
  for (const auto& t : terms) {
    scored.push_back(ScoredPeer{t.peer->peer, alpha_ * t.economic +
                                                 (1.0 - alpha_) * t.evaluator +
                                                 context.reputation_penalty(*t.peer)});
  }
  out.reserve(scored.size());
  append_ranked({scored.data(), scored.size()}, out);
}

}  // namespace peerlab::core
