#pragma once

// Data evaluator selection model — Section 2.2 of the paper (after Yu
// et al., "A framework for price-based resource allocation on the
// grid"). A cost is assigned to each peer from weighted historical and
// statistical criteria; the best-cost peer wins.
//
// Each criterion is normalized to a goodness in [0, 1]:
//   * percentage criteria map linearly (value / 100), inverted when
//     lower is better (cancellation percentages);
//   * unbounded count criteria (queue lengths, pending transfers) map
//     through 1 / (1 + value), so 0 pending = 1.0 goodness and goodness
//     decays smoothly with load.
// The peer's cost is 1 - weighted-average goodness; weights of zero
// drop a criterion ("some are negligible, of zero weight"), and the
// paper's *same priority mode* weights every criterion equally.

#include <array>

#include "peerlab/core/selection_model.hpp"

namespace peerlab::core {

struct CriterionWeight {
  stats::Criterion criterion = stats::Criterion::kMsgSuccessTotal;
  double weight = 1.0;
};

class DataEvaluatorModel final : public SelectionModel {
 public:
  /// Custom weights (user defined, per the paper). Negative weights
  /// are rejected; all-zero weight vectors are rejected.
  explicit DataEvaluatorModel(std::vector<CriterionWeight> weights);

  /// The paper's "same priority mode": every catalogued criterion with
  /// weight 1.
  [[nodiscard]] static DataEvaluatorModel same_priority();

  [[nodiscard]] std::string name() const override { return "data-evaluator"; }

  void rank_into(std::span<const PeerSnapshot> candidates, const SelectionContext& context,
                 std::vector<PeerId>& out) override;

  /// Cost of one peer (lower is better) — exposed for tests/ablations.
  [[nodiscard]] double cost(const PeerSnapshot& peer, const SelectionContext& context) const;

  /// Goodness in [0,1] of one criterion value.
  [[nodiscard]] static double goodness(stats::Criterion criterion, double value);

  [[nodiscard]] const std::vector<CriterionWeight>& weights() const noexcept { return weights_; }

 private:
  std::vector<CriterionWeight> weights_;
  double weight_sum_ = 0.0;
};

}  // namespace peerlab::core
