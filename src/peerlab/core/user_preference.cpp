#include "peerlab/core/user_preference.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "peerlab/common/check.hpp"

namespace peerlab::core {

UserPreferenceModel::UserPreferenceModel(std::vector<PeerId> preference_order)
    : preference_(std::move(preference_order)) {
  for (const auto id : preference_) {
    PEERLAB_CHECK_MSG(id.valid(), "preference order contains an invalid peer");
  }
}

UserPreferenceModel UserPreferenceModel::quick_peer(const stats::HistoryStore& history,
                                                    const std::vector<PeerId>& known_peers) {
  // The user's impression of "quick": historical petition response
  // time, refined by achieved transfer rate when available.
  struct Impression {
    PeerId peer;
    double quickness = std::numeric_limits<double>::infinity();
  };
  std::vector<Impression> impressions;
  impressions.reserve(known_peers.size());
  for (const auto peer : known_peers) {
    Impression imp;
    imp.peer = peer;
    const auto response = history.mean_response_time(peer);
    const auto rate = history.mean_transfer_rate(peer);
    if (response || rate) {
      const double response_s = response.value_or(1.0);
      // Express rate as seconds-per-megabyte so both terms are "time".
      const double rate_cost = rate ? wire_time(kMegabyte, *rate) : 0.0;
      imp.quickness = response_s + rate_cost;
    }
    impressions.push_back(imp);
  }
  std::stable_sort(impressions.begin(), impressions.end(),
                   [](const Impression& a, const Impression& b) {
                     if (a.quickness != b.quickness) return a.quickness < b.quickness;
                     return a.peer < b.peer;
                   });
  std::vector<PeerId> order;
  order.reserve(impressions.size());
  for (const auto& imp : impressions) order.push_back(imp.peer);
  return UserPreferenceModel(std::move(order));
}

std::vector<PeerId> UserPreferenceModel::rank(std::span<const PeerSnapshot> candidates,
                                              const SelectionContext& context) {
  std::unordered_map<PeerId, std::size_t> position;
  for (std::size_t i = 0; i < preference_.size(); ++i) {
    position.emplace(preference_[i], i);
  }
  std::vector<ScoredPeer> scored;
  scored.reserve(candidates.size());
  const bool has_excludes = !context.exclude.empty();
  for (const auto& c : candidates) {
    if (!c.online || (has_excludes && context.excluded(c.peer))) continue;
    const auto it = position.find(c.peer);
    const double cost = it != position.end()
                            ? static_cast<double>(it->second)
                            : static_cast<double>(preference_.size()) +
                                  static_cast<double>(c.peer.value());
    scored.push_back(ScoredPeer{c.peer, cost});
  }
  return ranked_by_cost(std::move(scored));
}

}  // namespace peerlab::core
