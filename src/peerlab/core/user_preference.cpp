#include "peerlab/core/user_preference.hpp"

#include <algorithm>
#include <limits>

#include "peerlab/common/check.hpp"

namespace peerlab::core {

UserPreferenceModel::UserPreferenceModel(std::vector<PeerId> preference_order)
    : preference_(std::move(preference_order)) {
  for (const auto id : preference_) {
    PEERLAB_CHECK_MSG(id.valid(), "preference order contains an invalid peer");
  }
  // Freeze the peer → rank index now: the preference list never changes
  // after construction, so rank_into() can binary-search instead of
  // rebuilding a hash map per petition. Sorting by (peer, rank) and
  // keeping the first entry per peer preserves the old emplace()
  // semantics — the earliest occurrence of a duplicated peer wins.
  position_.reserve(preference_.size());
  for (std::size_t i = 0; i < preference_.size(); ++i) {
    position_.emplace_back(preference_[i], i);
  }
  std::sort(position_.begin(), position_.end());
  position_.erase(std::unique(position_.begin(), position_.end(),
                              [](const auto& a, const auto& b) { return a.first == b.first; }),
                  position_.end());
}

UserPreferenceModel UserPreferenceModel::quick_peer(const stats::HistoryStore& history,
                                                    const std::vector<PeerId>& known_peers) {
  // The user's impression of "quick": historical petition response
  // time, refined by achieved transfer rate when available.
  struct Impression {
    PeerId peer;
    double quickness = std::numeric_limits<double>::infinity();
  };
  std::vector<Impression> impressions;
  impressions.reserve(known_peers.size());
  for (const auto peer : known_peers) {
    Impression imp;
    imp.peer = peer;
    const auto response = history.mean_response_time(peer);
    const auto rate = history.mean_transfer_rate(peer);
    if (response || rate) {
      const double response_s = response.value_or(1.0);
      // Express rate as seconds-per-megabyte so both terms are "time".
      const double rate_cost = rate ? wire_time(kMegabyte, *rate) : 0.0;
      imp.quickness = response_s + rate_cost;
    }
    impressions.push_back(imp);
  }
  std::stable_sort(impressions.begin(), impressions.end(),
                   [](const Impression& a, const Impression& b) {
                     if (a.quickness != b.quickness) return a.quickness < b.quickness;
                     return a.peer < b.peer;
                   });
  std::vector<PeerId> order;
  order.reserve(impressions.size());
  for (const auto& imp : impressions) order.push_back(imp.peer);
  return UserPreferenceModel(std::move(order));
}

double UserPreferenceModel::base_cost(PeerId peer) const {
  const auto it =
      std::lower_bound(position_.begin(), position_.end(), peer,
                       [](const auto& entry, PeerId p) { return entry.first < p; });
  return it != position_.end() && it->first == peer
             ? static_cast<double>(it->second)
             : static_cast<double>(preference_.size()) + static_cast<double>(peer.value());
}

void UserPreferenceModel::rank_into(std::span<const PeerSnapshot> candidates,
                                    const SelectionContext& context,
                                    std::vector<PeerId>& out) {
  out.clear();
  arena().reset();
  auto scored = mem::make_scratch<ScoredPeer>(arena(), candidates.size());
  const bool has_excludes = !context.exclude.empty();
  for (const auto& c : candidates) {
    if (!c.online || (has_excludes && context.excluded(c.peer))) continue;
    double cost = base_cost(c.peer);
    // Costs here are rank indices, so the reputation term is scaled by
    // the candidate count: a fully distrusted peer (reputation 0) at
    // weight 1 drops below every trusted candidate. Exact zero at
    // weight 0.
    cost += context.reputation_penalty(c) * static_cast<double>(candidates.size());
    scored.push_back(ScoredPeer{c.peer, cost});
  }
  out.reserve(scored.size());
  append_ranked({scored.data(), scored.size()}, out);
}

}  // namespace peerlab::core
