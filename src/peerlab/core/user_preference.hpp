#pragma once

// User's preference selection model — Section 2.3 of the paper.
//
// The peer is selected "by the user according to his preferences and
// experience in using the peer nodes". The ranking is *static*: it is
// fixed when the model is built (from an explicit order, or from the
// user's past experience in quick-peer mode) and deliberately ignores
// the current state of the peers and the network — the paper names
// exactly that as the model's main drawback. Selection cost is O(n),
// "very low computational cost".

#include "peerlab/core/selection_model.hpp"

namespace peerlab::core {

class UserPreferenceModel final : public SelectionModel {
 public:
  /// Explicit preference order, most-preferred first. Peers absent
  /// from the list are ranked after listed ones (by id).
  explicit UserPreferenceModel(std::vector<PeerId> preference_order);

  /// "Quick peer" mode: freeze a ranking from the user's experience so
  /// far — peers ordered by their historical response/transfer
  /// quickness as recorded in `history` at this moment. The snapshot
  /// never updates afterwards.
  [[nodiscard]] static UserPreferenceModel quick_peer(const stats::HistoryStore& history,
                                                      const std::vector<PeerId>& known_peers);

  [[nodiscard]] std::string name() const override { return "user-preference"; }

  void rank_into(std::span<const PeerSnapshot> candidates, const SelectionContext& context,
                 std::vector<PeerId>& out) override;

  [[nodiscard]] const std::vector<PeerId>& preference_order() const noexcept {
    return preference_;
  }

  /// The static per-peer cost before the reputation term: the frozen
  /// preference rank, or `preference_order().size() + peer.value()`
  /// for unlisted peers. Exposed so the candidate index can key its
  /// order-statistics tree with the exact ranking expression.
  [[nodiscard]] double base_cost(PeerId peer) const;

 private:
  std::vector<PeerId> preference_;
  /// Peer → preference rank, sorted by peer for binary search. Built
  /// once at construction (first occurrence wins on duplicates); the
  /// ranking is static, so rank_into() must not rebuild a lookup table
  /// per petition.
  std::vector<std::pair<PeerId, std::size_t>> position_;
};

}  // namespace peerlab::core
