#include "peerlab/core/economic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "peerlab/common/check.hpp"

namespace peerlab::core {

EconomicSchedulingModel::EconomicSchedulingModel(EconomicConfig config) : config_(config) {
  PEERLAB_CHECK_MSG(config_.time_weight >= 0.0 && config_.cost_weight >= 0.0 &&
                        config_.time_weight + config_.cost_weight > 0.0,
                    "economic weights must be non-negative and not all zero");
  PEERLAB_CHECK_MSG(config_.history_depth > 0, "history depth must be positive");
  PEERLAB_CHECK_MSG(config_.default_execution_estimate > 0.0 &&
                        config_.default_rate_estimate > 0.0,
                    "fallback estimates must be positive");
}

Seconds EconomicSchedulingModel::estimate_ready_time(const PeerSnapshot& peer) const {
  Seconds ready = static_cast<double>(peer.active_transfers) * config_.transfer_drain_estimate;
  if (peer.idle && peer.queued_tasks == 0) return ready;
  Seconds per_task = config_.default_execution_estimate;
  if (peer.history != nullptr) {
    if (const auto mean = peer.history->mean_execution_time(peer.peer, config_.history_depth)) {
      per_task = *mean;
    }
  }
  // Backlog plus, when busy, half a task for the one in flight.
  const double backlog = static_cast<double>(peer.queued_tasks) + (peer.idle ? 0.0 : 0.5);
  return ready + backlog * per_task;
}

Seconds EconomicSchedulingModel::estimate_service_time(const PeerSnapshot& peer,
                                                       const SelectionContext& context) const {
  Seconds service = 0.0;
  if (context.work > 0.0) {
    GigaHertz speed = peer.cpu_ghz;
    if (peer.history != nullptr) {
      if (const auto hist = peer.history->mean_effective_speed(peer.peer, config_.history_depth)) {
        speed = *hist;
      }
    }
    service += context.work / std::max(speed, 1e-6);
  }
  if (context.payload_size > 0) {
    MbitPerSec rate = config_.default_rate_estimate;
    if (peer.history != nullptr) {
      if (const auto hist = peer.history->mean_transfer_rate(peer.peer, config_.history_depth)) {
        rate = *hist;
      }
    }
    service += wire_time(context.payload_size, rate);
  }
  if (peer.history != nullptr) {
    if (const auto response = peer.history->mean_response_time(peer.peer, config_.history_depth)) {
      service += *response;  // control-plane handshakes are part of it
    }
  }
  return service;
}

double EconomicSchedulingModel::estimate_cost(const PeerSnapshot& peer,
                                              const SelectionContext& context) const {
  GigaHertz speed = peer.cpu_ghz;
  const Seconds cpu_time = context.work > 0.0 ? context.work / std::max(speed, 1e-6)
                                              : estimate_service_time(peer, context);
  return peer.price_per_cpu_second * cpu_time;
}

void EconomicSchedulingModel::rank_into(std::span<const PeerSnapshot> candidates,
                                        const SelectionContext& context,
                                        std::vector<PeerId>& out) {
  out.clear();
  struct Offer {
    const PeerSnapshot* peer = nullptr;
    Seconds completion = 0.0;
    double cost = 0.0;
    bool feasible = true;
  };
  arena().reset();
  auto offers = mem::make_scratch<Offer>(arena(), candidates.size());

  const bool has_excludes = !context.exclude.empty();
  bool any_idle = false;
  for (const auto& c : candidates) {
    if (c.online && c.idle && !(has_excludes && context.excluded(c.peer))) {
      any_idle = true;
      break;
    }
  }

  for (const auto& c : candidates) {
    if (!c.online || (has_excludes && context.excluded(c.peer))) continue;
    if (config_.prefer_idle && any_idle && !c.idle) continue;
    Offer offer;
    offer.peer = &c;
    offer.completion = estimate_ready_time(c) + estimate_service_time(c, context);
    offer.cost = estimate_cost(c, context);
    if (context.deadline > 0.0 && context.now + offer.completion > context.deadline) {
      offer.feasible = false;
    }
    if (context.budget > 0.0 && offer.cost > context.budget) {
      offer.feasible = false;
    }
    offers.push_back(offer);
  }
  if (offers.empty()) return;

  const bool any_feasible =
      std::any_of(offers.begin(), offers.end(), [](const Offer& o) { return o.feasible; });
  if (any_feasible) {
    offers.erase(std::remove_if(offers.begin(), offers.end(),
                                [](const Offer& o) { return !o.feasible; }),
                 offers.end());
  }

  // Min-max normalize completion and cost over the surviving offers so
  // the utility weights are scale-free.
  auto span_of = [&offers](auto extract) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const auto& o : offers) {
      lo = std::min(lo, extract(o));
      hi = std::max(hi, extract(o));
    }
    return std::pair<double, double>(lo, hi);
  };
  const auto [tlo, thi] = span_of([](const Offer& o) { return o.completion; });
  const auto [clo, chi] = span_of([](const Offer& o) { return o.cost; });
  const double wsum = config_.time_weight + config_.cost_weight;

  auto scored = mem::make_scratch<ScoredPeer>(arena(), offers.size());
  for (const auto& o : offers) {
    const double tnorm = thi > tlo ? (o.completion - tlo) / (thi - tlo) : 0.0;
    const double cnorm = chi > clo ? (o.cost - clo) / (chi - clo) : 0.0;
    double utility = (config_.time_weight * tnorm + config_.cost_weight * cnorm) / wsum;
    // CPU-speed tiebreak: nudge faster peers ahead within equal utility.
    utility -= 1e-9 * o.peer->cpu_ghz;
    // Reputation defense: exact zero when the context carries no weight.
    utility += context.reputation_penalty(*o.peer);
    scored.push_back(ScoredPeer{o.peer->peer, utility});
  }
  out.reserve(scored.size());
  append_ranked({scored.data(), scored.size()}, out);
}

}  // namespace peerlab::core
