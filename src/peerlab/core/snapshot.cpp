#include "peerlab/core/snapshot.hpp"

namespace peerlab::core {

const char* to_string(SelectionContext::Purpose purpose) noexcept {
  switch (purpose) {
    case SelectionContext::Purpose::kFileTransfer: return "file-transfer";
    case SelectionContext::Purpose::kTaskExecution: return "task-execution";
    case SelectionContext::Purpose::kGeneric: return "generic";
  }
  return "?";
}

const char* to_string(EconObjective objective) noexcept {
  switch (objective) {
    case EconObjective::kBrokerDefault: return "broker-default";
    case EconObjective::kCostOptimise: return "cost-optimise";
    case EconObjective::kTimeOptimise: return "time-optimise";
    case EconObjective::kCostTime: return "cost-time";
    case EconObjective::kEfficiency: return "efficiency";
  }
  return "?";
}

}  // namespace peerlab::core
