#include "peerlab/core/snapshot.hpp"

namespace peerlab::core {

const char* to_string(SelectionContext::Purpose purpose) noexcept {
  switch (purpose) {
    case SelectionContext::Purpose::kFileTransfer: return "file-transfer";
    case SelectionContext::Purpose::kTaskExecution: return "task-execution";
    case SelectionContext::Purpose::kGeneric: return "generic";
  }
  return "?";
}

}  // namespace peerlab::core
