#pragma once

// CandidateIndex — incrementally-maintained top-k candidate indexes
// for the five selection models (DESIGN.md §15).
//
// The broker's scan path materializes every registered client into a
// PeerSnapshot and lets the model rank the lot: O(n) per petition.
// This index keeps, per bound model, the order statistics that model
// ranks by — a peer-id tree for blind, the frozen preference rank for
// user-preference, the evaluator cost, and the six economic attributes
// (ready time, effective speed, transfer rate, response time, price,
// CPU) — updated on every heartbeat / stats delta / history record,
// and answers try_select() in O((k + pulls) log n) with a Fagin-style
// threshold walk.
//
// The contract is *bit-identical selections*: try_select() either
// returns exactly what the scan would have returned (same peers, same
// order, down to floating-point ties) or refuses (returns false) and
// the caller runs the scan. Exactness without epsilon margins works
// because IEEE round-to-nearest +, -, ×, / are weakly monotone in each
// operand: the threshold bounds mimic the scan's expression shapes
// with per-attribute frontier values, so every unseen peer's true
// score provably cannot beat the bound, and the walk stops only when
// the k-th kept score is *strictly* better than the bound (ties force
// further pulls; a fully-tied registry degrades to a full walk).
//
// Refusal (fallback) conditions — see DESIGN.md §15:
//   * no model bound / unknown model subclass;
//   * context.reputation_weight != 0 (defended rankings re-order by
//     penalties the index does not track);
//   * more than Config::max_inline_excludes excluded peers;
//   * blind with a non-empty exclude list (the rotation modulus would
//     change under the index's feet);
//   * any economically-constrained context — deadline, budget, or an
//     explicit EconObjective (the broker's econ engine needs the full
//     model ranking for admission, and for kEconomic the feasibility
//     filter changes the normalization span in ways cursors cannot
//     bound; see DESIGN.md §17).
//
// Time must be non-decreasing across try_select() calls (simulated
// time is), because windowed statistics evict destructively on read.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "peerlab/common/ids.hpp"
#include "peerlab/common/units.hpp"
#include "peerlab/core/ranked_tree.hpp"
#include "peerlab/core/snapshot.hpp"
#include "peerlab/obs/metrics.hpp"

namespace peerlab::core {

class SelectionModel;
class BlindModel;
class EconomicSchedulingModel;
class DataEvaluatorModel;
class UserPreferenceModel;
class HybridModel;

class CandidateIndex {
 public:
  struct Config {
    /// Liveness parameters — must match the owning broker's so the
    /// index agrees with BrokerPeer::online() bit for bit.
    Seconds heartbeat_interval = 30.0;
    double offline_after_missed = 3.5;
    /// Exclude lists longer than this fall back to the scan (each
    /// excluded peer costs an O(1) lookup plus skipped pulls).
    std::size_t max_inline_excludes = 64;
  };

  CandidateIndex() : CandidateIndex(Config{}) {}
  explicit CandidateIndex(Config config);

  /// Binds the model whose ranking the index mirrors. Recognizes the
  /// five concrete models; anything else leaves the index in
  /// fallback-only mode. Re-keys lazily on the next try_select().
  void bind_model(SelectionModel* model);

  /// The history store feeding the economic estimators (the broker's;
  /// one per index). May be null (models degrade gracefully).
  void set_history(const stats::HistoryStore* history);

  /// Registers or refreshes a peer from a heartbeat / adopted record.
  void upsert_peer(PeerId peer, NodeId node, const std::string& hostname, GigaHertz cpu_ghz,
                   double price_per_cpu_second, const stats::PeerStatistics* statistics,
                   Seconds last_seen, bool idle, int queued_tasks, int active_transfers);

  /// Points the peer at its (possibly newly-created) statistics record
  /// and schedules a re-key — the broker calls this from
  /// statistics_for(), the funnel for every stats mutation.
  void note_statistics(PeerId peer, const stats::PeerStatistics* statistics);

  /// Schedules a re-key of one peer / of everyone (model rebind,
  /// session reset, adopted state). O(1); work happens lazily inside
  /// the next try_select().
  void mark_dirty(PeerId peer);
  void mark_all_dirty();

  /// Drops every peer (adopt_state rebuilds from the new registry).
  void clear();

  /// Fast-path selection: fills `out` with exactly what the bound
  /// model's select_k over the broker's snapshots would return, or
  /// returns false (out untouched) when a fallback condition holds.
  /// `sim_now` drives liveness, `context.now` the windowed statistics.
  bool try_select(const SelectionContext& context, Seconds sim_now, std::size_t k,
                  std::vector<PeerId>& out);

  /// Registers the selection.index.* counters (shared by name across
  /// brokers). Zero-cost when never called.
  void attach_metrics(obs::MetricRegistry& registry);

  [[nodiscard]] std::uint64_t fast_path_selections() const noexcept { return fast_path_; }
  [[nodiscard]] std::uint64_t scan_fallbacks() const noexcept { return fallbacks_; }
  [[nodiscard]] std::uint64_t rekeys() const noexcept { return rekeys_; }
  [[nodiscard]] std::uint64_t bound_pulls() const noexcept { return pulls_; }
  [[nodiscard]] std::uint64_t dense_sweeps() const noexcept { return dense_sweeps_; }
  [[nodiscard]] std::uint64_t rebuilds() const noexcept { return rebuilds_; }
  [[nodiscard]] std::size_t tracked_peers() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t online_peers() const noexcept { return ids_.size(); }

 private:
  enum class ModelKind : std::uint8_t {
    kNone,
    kBlind,
    kEconomic,
    kEvaluator,
    kUserPreference,
    kHybrid,
  };

  struct Slot {
    PeerSnapshot snap;
    Seconds last_seen = 0.0;
    bool in_trees = false;
    bool indexed_idle = false;  // snap.idle at insertion time
    bool dirty = false;
    std::uint32_t live_stamp = 0;  // current liveness heap generation
    std::uint32_t exp_stamp = 0;   // current window-expiry generation
    std::uint64_t visited = 0;     // threshold-walk epoch marker
    std::uint64_t excluded = 0;    // per-select exclude marker
    // Cached tree keys (meaningful only while in_trees).
    double key_static = 0.0;
    double key_eval = 0.0;
    double key_base = 0.0;
    double key_speed = 0.0;
    double key_rate = 0.0;
    double key_resp = 0.0;
    double key_price = 0.0;
    double key_cpu = 0.0;
  };

  struct HeapEntry {
    double key = 0.0;
    std::uint32_t slot = 0;
    std::uint32_t stamp = 0;
  };

  struct Scored {
    std::uint32_t slot = 0;
    double value = 0.0;
    PeerId peer;
  };

  /// Cached instrument handles; all null while detached.
  struct Metrics {
    obs::Counter* fast_path = nullptr;
    obs::Counter* fallbacks = nullptr;
    obs::Counter* rekeys = nullptr;
    obs::Counter* pulls = nullptr;
    obs::Counter* dense_sweeps = nullptr;
    obs::Counter* rebuilds = nullptr;
  };

  /// One directional walk over a tree: kth(i) ascending or descending.
  struct Cursor {
    const RankedTree* tree = nullptr;
    bool desc = false;
    std::size_t i = 0;
    double frontier = 0.0;
    [[nodiscard]] bool exhausted() const { return i >= tree->size(); }
    RankedTree::Entry step() {
      const auto e = desc ? tree->kth(tree->size() - 1 - i) : tree->kth(i);
      ++i;
      frontier = e.key;
      return e;
    }
  };

  [[nodiscard]] bool slot_online(const Slot& slot, Seconds sim_now) const noexcept {
    const Seconds silence = sim_now - slot.last_seen;
    return silence <= config_.heartbeat_interval * config_.offline_after_missed;
  }

  [[nodiscard]] Slot* find_slot(PeerId peer);
  bool refuse();

  // ---- maintenance (all lazy, driven from try_select) ----
  void drain_liveness(Seconds sim_now);
  void drain_expiry(Seconds now);
  void flush_dirty(const SelectionContext& context, Seconds sim_now);
  void refresh_slot(std::uint32_t slot_index, const SelectionContext& context, Seconds sim_now);
  void compute_keys(Slot& slot, std::uint32_t slot_index, const SelectionContext& context);
  void insert_into_trees(Slot& slot);
  void remove_from_trees(Slot& slot);
  void push_live(std::uint32_t slot_index, double key);
  void push_expiry(std::uint32_t slot_index, double key);

  // ---- per-model fast paths ----
  void select_blind(const SelectionContext& context, std::size_t k, std::vector<PeerId>& out);
  void select_static_tree(const RankedTree& tree, const SelectionContext& context, std::size_t k,
                          std::vector<PeerId>& out);
  void select_economic(const SelectionContext& context, std::size_t k, std::vector<PeerId>& out);
  void select_hybrid(const SelectionContext& context, std::size_t k, std::vector<PeerId>& out);

  // ---- threshold-walk plumbing ----
  void mark_excludes(const SelectionContext& context);
  [[nodiscard]] bool eligible(const Slot& slot, bool idle_gate) const noexcept;
  /// Exact min (or max) of `value_of` over eligible indexed peers,
  /// using `cursors` and the matching monotone `bound_of`. Sets
  /// `blown` and returns early once the walk pulls more than `budget`
  /// entries — a degenerate (tie-heavy / uncorrelated) key
  /// distribution where the threshold bound cannot converge; the
  /// caller finishes with a dense sweep over the cached keys.
  template <typename ValueOf, typename BoundOf>
  double extremum(std::vector<Cursor>& cursors, bool want_max, bool idle_gate, ValueOf value_of,
                  BoundOf bound_of, std::size_t budget, bool& blown);
  /// Pulls until the k-th best exact (value, peer) pair is strictly
  /// better than `bound_of`'s frontier bound; leaves every evaluated
  /// peer in scored_. Same budget/blown contract as extremum().
  template <typename ValueOf, typename BoundOf>
  void top_k(std::vector<Cursor>& cursors, std::size_t k, bool idle_gate, ValueOf value_of,
             BoundOf bound_of, std::size_t budget, bool& blown);
  /// Budget-blown completion: evaluates every eligible indexed peer in
  /// slot order (no cursors, no bounds) into a k-capped heap. O(n)
  /// with a small constant — chains over flush-cached keys, no
  /// estimator or snapshot work — and exact by exhaustion.
  template <typename ValueOf>
  void dense_top_k(std::size_t k, bool idle_gate, ValueOf value_of);
  void emit_scored(std::size_t k, std::vector<PeerId>& out);
  /// Per-walk pull budget before a walk abandons threshold bounds.
  [[nodiscard]] std::size_t pull_budget(std::size_t n_eligible) const noexcept {
    return 64 + n_eligible / 16;
  }

  Config config_;
  Metrics m_;
  const stats::HistoryStore* history_ = nullptr;

  SelectionModel* model_ = nullptr;
  ModelKind kind_ = ModelKind::kNone;
  BlindModel* blind_ = nullptr;
  EconomicSchedulingModel* economic_ = nullptr;
  DataEvaluatorModel* evaluator_ = nullptr;
  UserPreferenceModel* preference_ = nullptr;
  HybridModel* hybrid_ = nullptr;
  /// The evaluator whose cost keys t_eval_ (the evaluator model
  /// itself, or the hybrid's term); null when neither is bound.
  const DataEvaluatorModel* eval_term_ = nullptr;
  /// True when the bound evaluator weights the sliding message window
  /// (the only time-varying criterion) — arms the expiry heap.
  bool window_sensitive_ = false;

  std::vector<Slot> slots_;
  std::unordered_map<PeerId, std::uint32_t> slot_of_;
  std::vector<std::uint32_t> dirty_;
  bool all_dirty_ = false;

  // Order-statistics trees (distinct salts decorrelate treap shapes).
  RankedTree ids_{1};        // all online peers, keyed 0.0 → ordered by id
  RankedTree t_static_{2};   // user-preference base cost
  RankedTree t_eval_{3};     // data-evaluator cost
  RankedTree t_base_{4};     // economic ready time
  RankedTree t_speed_{5};    // historical effective speed (or cpu)
  RankedTree t_rate_{6};     // historical transfer rate (or default)
  RankedTree t_resp_{7};     // mean response time (or 0)
  RankedTree t_price_{8};    // advertised price
  RankedTree t_cpu_{9};      // advertised cpu
  std::size_t online_idle_ = 0;

  std::vector<HeapEntry> live_heap_;
  std::vector<HeapEntry> expiry_heap_;

  // Scratch (reused across selects).
  std::vector<Scored> scored_;
  std::vector<Scored> best_heap_;
  std::vector<Cursor> cursors_;
  std::uint64_t walk_epoch_ = 0;
  std::uint64_t select_epoch_ = 0;
  std::size_t excl_online_ = 0;  // excluded ∩ online, set by mark_excludes
  std::size_t excl_idle_ = 0;    // excluded ∩ online ∩ idle

  std::uint64_t fast_path_ = 0;
  std::uint64_t fallbacks_ = 0;
  std::uint64_t rekeys_ = 0;
  std::uint64_t pulls_ = 0;
  std::uint64_t dense_sweeps_ = 0;
  std::uint64_t rebuilds_ = 0;
};

}  // namespace peerlab::core
