#pragma once

// SelectionModel: the interface the paper's three peer-selection models
// implement (plus the blind baseline). A model ranks candidate peers
// best-first; select() returns the winner. Models must be deterministic
// functions of (candidates, context) and their own configuration — all
// stochastic behaviour lives in the network, never in the policy.
//
// The ranking hook is rank_into(): implementations write the result
// into a caller-provided vector and build every intermediate on the
// model's arena (see peerlab::mem::Arena), so a warmed model answers
// petitions with zero steady-state heap allocations — the petition
// path is the simulator's hottest selection loop (DESIGN.md §13).
// rank()/select()/select_k() are non-virtual conveniences on top.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "peerlab/core/snapshot.hpp"
#include "peerlab/mem/arena.hpp"

namespace peerlab::core {

class SelectionModel {
 public:
  SelectionModel() = default;
  // Movable (factory helpers return models by value); the arena moves
  // with the model, copies make no sense for stateful policies.
  SelectionModel(SelectionModel&&) = default;
  SelectionModel& operator=(SelectionModel&&) = default;
  virtual ~SelectionModel() = default;

  /// Human-readable model name ("economic", "data-evaluator", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Ranks eligible candidates best-first into `out` (cleared first).
  /// Offline peers are never returned; an empty result means no
  /// eligible candidate. Implementations reset and reuse arena() for
  /// every intermediate, so a warmed call does not touch the heap
  /// beyond `out`'s own (reused) capacity.
  virtual void rank_into(std::span<const PeerSnapshot> candidates,
                         const SelectionContext& context, std::vector<PeerId>& out) = 0;

  /// Convenience wrapper allocating a fresh result vector.
  [[nodiscard]] std::vector<PeerId> rank(std::span<const PeerSnapshot> candidates,
                                         const SelectionContext& context) {
    std::vector<PeerId> out;
    rank_into(candidates, context, out);
    return out;
  }

  /// The best candidate, or an invalid id when none is eligible.
  /// Ranks into a reused member buffer: allocation-free once warmed.
  [[nodiscard]] PeerId select(std::span<const PeerSnapshot> candidates,
                              const SelectionContext& context);

  /// The best min(k, eligible) candidates, best-first.
  [[nodiscard]] std::vector<PeerId> select_k(std::span<const PeerSnapshot> candidates,
                                             const SelectionContext& context, std::size_t k);

 protected:
  /// Per-model scratch arena for rank_into() intermediates. Contents
  /// live only for the duration of one call.
  [[nodiscard]] mem::Arena& arena() noexcept { return arena_; }

 private:
  mem::Arena arena_;
  std::vector<PeerId> ranking_;  // reused by select()/select_k()
};

/// Scored ranking helper shared by the models: orders by ascending cost
/// with peer id as the deterministic tiebreak.
struct ScoredPeer {
  PeerId peer;
  double cost = 0.0;
};

/// Sorts `scored` in place by (cost, peer) and appends the peers to
/// `out`. Uses std::sort — peers are distinct per call, so the
/// comparator is a total order and the sorted permutation is unique;
/// stability adds nothing but an allocation.
void append_ranked(std::span<ScoredPeer> scored, std::vector<PeerId>& out);

/// Allocating wrapper kept for tests and one-off callers.
[[nodiscard]] std::vector<PeerId> ranked_by_cost(std::vector<ScoredPeer> scored);

}  // namespace peerlab::core
