#pragma once

// SelectionModel: the interface the paper's three peer-selection models
// implement (plus the blind baseline). A model ranks candidate peers
// best-first; select() returns the winner. Models must be deterministic
// functions of (candidates, context) and their own configuration — all
// stochastic behaviour lives in the network, never in the policy.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "peerlab/core/snapshot.hpp"

namespace peerlab::core {

class SelectionModel {
 public:
  virtual ~SelectionModel() = default;

  /// Human-readable model name ("economic", "data-evaluator", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Ranks eligible candidates best-first. Offline peers are never
  /// returned. An empty result means no eligible candidate.
  [[nodiscard]] virtual std::vector<PeerId> rank(std::span<const PeerSnapshot> candidates,
                                                 const SelectionContext& context) = 0;

  /// The best candidate, or an invalid id when none is eligible.
  [[nodiscard]] PeerId select(std::span<const PeerSnapshot> candidates,
                              const SelectionContext& context);

  /// The best min(k, eligible) candidates, best-first.
  [[nodiscard]] std::vector<PeerId> select_k(std::span<const PeerSnapshot> candidates,
                                             const SelectionContext& context, std::size_t k);
};

/// Scored ranking helper shared by the models: sorts by ascending cost
/// with peer id as the deterministic tiebreak.
struct ScoredPeer {
  PeerId peer;
  double cost = 0.0;
};
[[nodiscard]] std::vector<PeerId> ranked_by_cost(std::vector<ScoredPeer> scored);

}  // namespace peerlab::core
