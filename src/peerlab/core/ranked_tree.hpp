#pragma once

// RankedTree: an order-statistics treap over (double key, PeerId)
// pairs — the per-criterion index structure behind the broker's O(log
// n) candidate fast path (DESIGN.md §15).
//
// Properties the fast path leans on:
//   * total order: entries sort by (key, peer); peers are unique per
//     tree, so every entry is distinct and kth() is well defined;
//   * order statistics: kth(i) returns the i-th smallest entry in
//     O(log n), which is all a Fagin-style threshold cursor needs —
//     ascending or descending iteration without materializing a list;
//   * determinism: node priorities are a pure hash of the peer id and
//     a per-tree salt, so the structure (and more importantly every
//     query answer) is a function of the *content*, never of
//     insertion order or a global RNG;
//   * allocation-free steady state: nodes live in a pooled vector with
//     a free list, so churn (insert/erase on every heartbeat) reuses
//     slots instead of touching the heap.
//
// Keys must not be NaN (the selection estimators never produce one);
// +/-infinity is fine.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "peerlab/common/check.hpp"
#include "peerlab/common/ids.hpp"

namespace peerlab::core {

class RankedTree {
 public:
  struct Entry {
    double key = 0.0;
    PeerId peer;
  };

  explicit RankedTree(std::uint64_t salt = 0) : salt_(salt) {}

  [[nodiscard]] std::size_t size() const noexcept {
    return root_ == kNil ? 0 : nodes_[root_].count;
  }
  [[nodiscard]] bool empty() const noexcept { return root_ == kNil; }

  void clear() {
    nodes_.clear();
    free_.clear();
    root_ = kNil;
  }

  /// Inserts (key, peer). The pair must not already be present (peers
  /// are unique per tree; callers erase the old key before re-keying).
  void insert(double key, PeerId peer) {
    const std::uint32_t n = allocate(key, peer);
    std::uint32_t lo = kNil;
    std::uint32_t hi = kNil;
    split(root_, key, peer, lo, hi);
    root_ = merge(merge(lo, n), hi);
  }

  /// Removes (key, peer); returns false when absent (callers treat
  /// that as "was never indexed", not an error).
  bool erase(double key, PeerId peer) {
    bool erased = false;
    root_ = erase_at(root_, key, peer, erased);
    return erased;
  }

  /// The i-th smallest entry (0-based) by (key, peer). i < size().
  [[nodiscard]] Entry kth(std::size_t i) const {
    PEERLAB_CHECK_MSG(i < size(), "RankedTree::kth out of range");
    std::uint32_t t = root_;
    for (;;) {
      const Node& node = nodes_[t];
      const std::size_t left = node.left == kNil ? 0 : nodes_[node.left].count;
      if (i < left) {
        t = node.left;
      } else if (i == left) {
        return Entry{node.key, node.peer};
      } else {
        i -= left + 1;
        t = node.right;
      }
    }
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffU;

  struct Node {
    double key = 0.0;
    PeerId peer;
    std::uint64_t prio = 0;
    std::uint32_t left = kNil;
    std::uint32_t right = kNil;
    std::uint32_t count = 1;
  };

  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    // splitmix64 finalizer: deterministic, well-spread priorities.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  [[nodiscard]] static bool before(double ka, PeerId pa, double kb, PeerId pb) noexcept {
    if (ka != kb) return ka < kb;
    return pa < pb;
  }

  std::uint32_t allocate(double key, PeerId peer) {
    std::uint32_t n;
    if (!free_.empty()) {
      n = free_.back();
      free_.pop_back();
      nodes_[n] = Node{};
    } else {
      n = static_cast<std::uint32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    Node& node = nodes_[n];
    node.key = key;
    node.peer = peer;
    node.prio = mix(peer.value() ^ salt_);
    return n;
  }

  void update(std::uint32_t t) noexcept {
    Node& node = nodes_[t];
    node.count = 1;
    if (node.left != kNil) node.count += nodes_[node.left].count;
    if (node.right != kNil) node.count += nodes_[node.right].count;
  }

  /// Splits `t` so everything ordered before (key, peer) lands in
  /// `lo`, the rest in `hi`.
  void split(std::uint32_t t, double key, PeerId peer, std::uint32_t& lo, std::uint32_t& hi) {
    if (t == kNil) {
      lo = kNil;
      hi = kNil;
      return;
    }
    Node& node = nodes_[t];
    if (before(node.key, node.peer, key, peer)) {
      split(node.right, key, peer, node.right, hi);
      lo = t;
    } else {
      split(node.left, key, peer, lo, node.left);
      hi = t;
    }
    update(t);
  }

  std::uint32_t merge(std::uint32_t lo, std::uint32_t hi) {
    if (lo == kNil) return hi;
    if (hi == kNil) return lo;
    if (nodes_[lo].prio >= nodes_[hi].prio) {
      nodes_[lo].right = merge(nodes_[lo].right, hi);
      update(lo);
      return lo;
    }
    nodes_[hi].left = merge(lo, nodes_[hi].left);
    update(hi);
    return hi;
  }

  std::uint32_t erase_at(std::uint32_t t, double key, PeerId peer, bool& erased) {
    if (t == kNil) return kNil;
    Node& node = nodes_[t];
    if (node.key == key && node.peer == peer) {
      const std::uint32_t joined = merge(node.left, node.right);
      free_.push_back(t);
      erased = true;
      return joined;
    }
    if (before(key, peer, node.key, node.peer)) {
      node.left = erase_at(node.left, key, peer, erased);
    } else {
      node.right = erase_at(node.right, key, peer, erased);
    }
    update(t);
    return t;
  }

  std::uint64_t salt_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
  std::uint32_t root_ = kNil;
};

}  // namespace peerlab::core
