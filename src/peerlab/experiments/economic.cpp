#include "peerlab/experiments/economic.hpp"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "peerlab/common/check.hpp"
#include "peerlab/core/blind.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/core/hybrid.hpp"
#include "peerlab/core/user_preference.hpp"

namespace peerlab::experiments {

namespace {

using planetlab::Deployment;
using transport::FileTransferConfig;
using transport::TransferResult;

struct EconRunCell {
  econ::Ledger ledger;
  sim::Summary cost;
  sim::Summary completion_time;
};

/// One seeded world, one selection arm, one load level. The same seed
/// builds the same world for every arm, so columns isolate the policy.
EconRunCell economic_run(const RunOptions& options, std::uint64_t seed, int rep, int model,
                         int load) {
  sim::Simulator sim(seed);
  planetlab::DeploymentOptions dep_options;
  // Fast heartbeats for every arm: under heavy load the informed
  // models only spread away from busy peers if the broker's snapshots
  // reflect backlog on the timescale jobs arrive.
  dep_options.client.heartbeat_interval = 5.0;
  const bool engine_on = model != 0;  // blind is the pristine baseline
  if (engine_on) dep_options.broker.econ = economic_engine_config();
  Deployment dep(sim, dep_options);
  obs::MetricRegistry registry;
  if (options.metrics != nullptr) dep.attach_metrics(registry, options.profile);
  TraceSession trace(options, sim, dep, rep,
                     std::string(kEconModelNames[model]) + "." + kEconLoadLabels[load]);
  if (trace.active()) trace.attach_metrics(registry);
  dep.boot();

  // Warm-up: one small transfer + chat per SC, serially, so the
  // estimators (and quick-peer's response-time ranking) have a record
  // for every peer before any contract is issued.
  Seconds at = sim.now() + 10.0;
  for (int i = 1; i <= 8; ++i) {
    sim.schedule_at(at, [&dep, i] {
      FileTransferConfig cfg;
      cfg.file_size = megabytes(2.0);
      cfg.parts = 2;
      dep.control().files().send_file(dep.sc_peer(i), cfg, [](const TransferResult&) {});
      dep.control().messaging().send(dep.sc_peer(i), 0, [](bool, Seconds) {});
    });
    at += 300.0;
  }
  {
    const obs::WallProfiler::Span run_span(dep.profiler(), "run");
    sim.run_until(at + 300.0);
  }

  switch (model) {
    case 1:
      dep.broker().set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
      break;
    case 2: {
      std::vector<PeerId> known;
      for (int i = 1; i <= 8; ++i) known.push_back(dep.sc_peer(i));
      dep.broker().set_selection_model(std::make_unique<core::UserPreferenceModel>(
          core::UserPreferenceModel::quick_peer(dep.broker().history(), known)));
      break;
    }
    case 3:
      dep.broker().set_selection_model(std::make_unique<core::HybridModel>());
      break;
    default:
      // Arms 0 (blind) and 4 (efficiency) both rank blind; arm 4's
      // contracts carry the kEfficiency objective so the engine
      // re-orders the rotation by the Dubey–Tokekar score.
      dep.broker().set_selection_model(std::make_unique<core::BlindModel>());
      break;
  }

  // One quoter prices every arm's picks on the identical schedule the
  // engine-enabled brokers shopped from, so ledger costs compare
  // across arms (including blind, whose broker never quotes at all).
  const econ::EconEngine quoter(economic_engine_config());

  EconRunCell cell;
  int done = 0;
  const Seconds first_launch = sim.now() + 10.0;
  for (int j = 0; j < kEconJobs; ++j) {
    const Seconds launch = first_launch + static_cast<double>(j) * kEconSpacing[load];
    sim.schedule_at(launch, [&, model] {
      const Seconds issued = sim.now();
      core::SelectionContext ctx;
      ctx.now = issued;
      ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
      ctx.payload_size = kEconPayload;
      ctx.deadline = issued + kEconDeadlineSlack;
      ctx.budget = kEconBudget;
      if (model == 4) ctx.objective = core::EconObjective::kEfficiency;
      if (trace.active()) ctx.trace = trace.root();
      dep.control().request_selection(ctx, 1, [&, ctx, issued](std::vector<PeerId> peers) {
        if (peers.empty()) {
          cell.ledger.record({ctx.deadline, ctx.budget, 0.0, 0.0, false});
          ++done;
          return;
        }
        const PeerId winner = peers.front();
        // Price the pick at decision time from the broker's own view.
        double quoted = 0.0;
        for (const auto& snap : dep.broker().snapshot_group()) {
          if (snap.peer == winner) {
            quoted = quoter.appraise(snap, ctx).cost;
            break;
          }
        }
        FileTransferConfig cfg;
        cfg.file_size = kEconPayload;
        cfg.parts = 4;
        cfg.trace = ctx.trace;
        dep.control().files().send_file(
            winner, cfg, [&, ctx, issued, quoted](const TransferResult& result) {
              cell.ledger.record(
                  {ctx.deadline, ctx.budget, result.finished, quoted, result.complete});
              cell.cost.add(quoted);
              if (result.complete) cell.completion_time.add(result.finished - issued);
              ++done;
            });
      });
    });
  }
  {
    const obs::WallProfiler::Span run_span(dep.profiler(), "run");
    sim.run();
  }
  PEERLAB_CHECK_MSG(done == kEconJobs, "economic job never resolved");
  trace.finish();
  merge_metrics(options, registry,
                std::string(".") + kEconModelNames[model] + "." + kEconLoadLabels[load]);
  return cell;
}

}  // namespace

econ::EconConfig economic_engine_config() {
  econ::EconConfig config;
  config.enabled = true;
  return config;
}

EconResult run_bench_economic(const RunOptions& options) {
  using Rep = std::array<std::array<EconRunCell, kEconLoads>, kEconModels>;
  const auto reps =
      run_repetitions<Rep>(options, [&options](std::uint64_t seed, int rep_index) {
        Rep rep;
        for (int m = 0; m < kEconModels; ++m) {
          for (int load = 0; load < kEconLoads; ++load) {
            rep[static_cast<std::size_t>(m)][static_cast<std::size_t>(load)] =
                economic_run(options, seed, rep_index, m, load);
          }
        }
        return rep;
      });

  EconResult result;
  for (const auto& rep : reps) {
    for (std::size_t m = 0; m < kEconModels; ++m) {
      for (std::size_t load = 0; load < kEconLoads; ++load) {
        EconArm& arm = result.cells[m][load];
        const EconRunCell& cell = rep[m][load];
        arm.ledger.merge(cell.ledger);
        arm.cost.merge(cell.cost);
        arm.completion_time.merge(cell.completion_time);
        ++arm.runs;
      }
    }
  }
  return result;
}

}  // namespace peerlab::experiments
