#pragma once

// bench_churn — distribution under node churn. Sweeps the MTTF of an
// exponential crash/restart (MTTF/MTTR renewal) process over the
// client nodes while the control peer scatters a file across
// broker-selected peers, for each of the paper's three selection
// models. Shares that die with their peer fail over: the service backs
// off, re-petitions the broker excluding every peer already used, and
// re-sends the share. Reported per (model, churn level): distribution
// makespan, failovers consumed, crash events applied, and the share
// completion rate (the failover machinery must keep it at 100%).
//
// Every world runs with one standby broker replicating the primary
// (ReplicaSet). Each cell is measured twice from the same seed: the
// baseline arm (clients churn, broker immortal) and the broker-crash
// arm, where the primary is additionally crashed kBrokerCrashDelay
// seconds into the distribution — the standby is elected, the flock
// re-homes, in-flight petitions are re-issued against the replicated
// history, and every share must still complete. The per-seed makespan
// difference is the makespan penalty of broker loss.

#include <array>

#include "peerlab/experiments/figures.hpp"

namespace peerlab::experiments {

/// Churn severities: mean time to failure per client node (seconds);
/// 0 = fault-free baseline. Repair time is kChurnMttr for all levels.
inline constexpr int kChurnLevels = 4;
inline constexpr double kChurnMttf[kChurnLevels] = {0.0, 1200.0, 450.0, 200.0};
inline constexpr const char* kChurnLabels[kChurnLevels] = {"none", "mttf-1200",
                                                           "mttf-450", "mttf-200"};
inline constexpr Seconds kChurnMttr = 120.0;

/// Workload: one file scattered over kChurnFanout broker-selected
/// peers, kChurnParts parts round-robin.
inline constexpr Bytes kChurnFileSize = 32 * kMegabyte;
inline constexpr int kChurnParts = 6;
inline constexpr std::size_t kChurnFanout = 3;

/// Broker-crash arm: the primary dies this long after the distribution
/// starts (mid-flight for churny runs; after completion for fast
/// fault-free ones, where the penalty is then ~0 — broker loss only
/// costs when a selection is needed while the broker is being
/// replaced).
inline constexpr Seconds kBrokerCrashDelay = 30.0;
/// Post-distribution grace run in the broker-crash arm so the failure
/// detector always gets to elect (daemons need the clock to advance).
inline constexpr Seconds kBrokerElectionGrace = 120.0;

struct ChurnCell {
  sim::Summary makespan;   // distribution makespan (seconds)
  sim::Summary failovers;  // replacement petitions consumed per run
  sim::Summary crashes;    // crash events applied during the run
  int complete_runs = 0;   // runs where every share completed
  int runs = 0;

  // Broker-crash arm (same seeds, same client-churn plan, plus the
  // primary broker crashing mid-distribution).
  sim::Summary broker_makespan;
  sim::Summary broker_penalty;    // broker_makespan - makespan, per seed
  sim::Summary broker_elections;  // replica elections per run (>= 1)
  int broker_complete_runs = 0;
  int broker_runs = 0;

  [[nodiscard]] double completion_rate() const noexcept {
    return runs == 0 ? 0.0 : static_cast<double>(complete_runs) / runs;
  }
  [[nodiscard]] double broker_completion_rate() const noexcept {
    return broker_runs == 0 ? 0.0
                            : static_cast<double>(broker_complete_runs) / broker_runs;
  }
};

struct ChurnResult {
  /// [model][churn level]; models as in Figure 6 (economic,
  /// same-priority data evaluator, quick-peer user preference).
  std::array<std::array<ChurnCell, kChurnLevels>, 3> cells;
};

[[nodiscard]] ChurnResult run_bench_churn(const RunOptions& options);

}  // namespace peerlab::experiments
