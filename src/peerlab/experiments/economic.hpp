#pragma once

// bench_economic — deadline/budget-constrained workloads (DESIGN.md
// §17). Every petition carries the same contract (payload, absolute
// deadline, budget) and the bench sweeps selection arms against rising
// load, measuring what the contract pressure does to each:
//
//   blind       econ engine OFF — the pristine round-robin baseline;
//               deadlines and budgets ride the wire but nothing reads
//               them, so this arm shows what contracts cost when the
//               broker ignores economics entirely.
//   economic    the paper's scheduling model under the engine's
//               cost-time objective (Buyya DBC).
//   quick-peer  the user-preference model under cost-time admission.
//   hybrid      the blended model under cost-time admission.
//   efficiency  blind ranking re-ordered purely by the Dubey–Tokekar
//               real-time efficiency score (kEfficiency objective) —
//               isolates what the score alone buys.
//
// Load rises by shrinking the stagger between job launches: at the
// heavy level transfers overlap, shared links and busy peers stretch
// completion times past the estimates, and deadline misses appear.
// Costs are accounted uniformly by one bench-side quoter (the same
// PriceBook + estimators every engine-enabled arm ranks with), so the
// blind arm's ledger prices its round-robin picks on the exact same
// schedule the informed arms shopped from.

#include <array>

#include "peerlab/econ/economy.hpp"
#include "peerlab/experiments/figures.hpp"

namespace peerlab::experiments {

inline constexpr int kEconModels = 5;
inline constexpr const char* kEconModelNames[kEconModels] = {"blind", "economic", "quick-peer",
                                                             "hybrid", "efficiency"};

/// Stagger between job launches per load level.
inline constexpr int kEconLoads = 3;
inline constexpr Seconds kEconSpacing[kEconLoads] = {180.0, 30.0, 0.5};
inline constexpr const char* kEconLoadLabels[kEconLoads] = {"light", "medium", "heavy"};

/// Workload: every job pushes the same file under the same contract.
inline constexpr int kEconJobs = 16;
inline constexpr Bytes kEconPayload = 16 * kMegabyte;
/// Relative deadline (absolute deadline = launch time + slack).
inline constexpr Seconds kEconDeadlineSlack = 45.0;
/// Budget per job, in credits.
inline constexpr double kEconBudget = 60.0;

/// The engine configuration every engine-enabled arm runs (exposed so
/// tests pin exactly what the bench measures). Pricing and estimator
/// knobs are the defaults; only `enabled` is flipped.
[[nodiscard]] econ::EconConfig economic_engine_config();

struct EconArm {
  econ::Ledger ledger;          // outcomes vs contracts, all runs folded
  sim::Summary cost;            // quoted cost per job (credits)
  sim::Summary completion_time; // launch -> finish per completed job (s)
  int runs = 0;
};

struct EconResult {
  /// [model][load]; models as in kEconModelNames.
  std::array<std::array<EconArm, kEconLoads>, kEconModels> cells;
};

[[nodiscard]] EconResult run_bench_economic(const RunOptions& options);

}  // namespace peerlab::experiments
