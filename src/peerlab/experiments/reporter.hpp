#pragma once

// Table/CSV reporting for the figure benches. Each bench prints a
// paper-style table (peers as rows, series as columns), the paper's
// reference numbers where available, and a shape verdict the harness
// can grep.

#include <string>
#include <vector>

namespace peerlab::experiments {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  /// Aligned ASCII rendering (title, header, separator, rows).
  [[nodiscard]] std::string render() const;

  /// Comma-separated rendering (header + rows).
  [[nodiscard]] std::string csv() const;

  /// Writes the CSV next to the binary's working directory.
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision numeric cell.
[[nodiscard]] std::string cell(double value, int precision = 2);

/// A shape assertion with a printed PASS/FAIL verdict. Returns `pass`.
bool shape_check(const std::string& description, bool pass);

/// Banner for a figure bench.
void print_figure_header(const std::string& figure, const std::string& what);

}  // namespace peerlab::experiments
