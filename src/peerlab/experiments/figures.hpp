#pragma once

// One entry point per figure of the paper's evaluation (Section 4).
// Each builds fresh Deployments per repetition (seeded from RunOptions)
// and returns summary statistics; the bench binaries print the tables
// and verify the shapes. See DESIGN.md §5-6 for the experiment index
// and metric notes.

#include <array>

#include "peerlab/experiments/harness.hpp"
#include "peerlab/planetlab/deployment.hpp"

namespace peerlab::experiments {

/// One summary per SimpleClient SC1..SC8.
using PerPeer = std::array<sim::Summary, 8>;

// ---- Figure 2: time for a peer to receive a transfer petition ----
[[nodiscard]] PerPeer run_fig2_petition(const RunOptions& options);

// ---- Figure 3: transmission time of a 50 MB file (single part) ----
[[nodiscard]] PerPeer run_fig3_transfer50(const RunOptions& options);

// ---- Figure 4: time to complete the reception of the last MB ----
[[nodiscard]] PerPeer run_fig4_last_mb(const RunOptions& options);

// ---- Figure 5: 100 MB sent whole vs 4 parts vs 16 parts ----
struct Fig5Result {
  PerPeer whole;    // seconds
  PerPeer four;     // seconds
  PerPeer sixteen;  // seconds
};
[[nodiscard]] Fig5Result run_fig5_granularity(const RunOptions& options);

// ---- Figure 6: selection models x granularity ----
enum class Model : int { kEconomic = 0, kSamePriority = 1, kQuickPeer = 2 };
inline constexpr const char* kModelNames[3] = {"economic", "same-priority", "quick-peer"};

struct Fig6Result {
  /// Mean per-part selection-and-dispatch overhead (seconds); see
  /// DESIGN.md §6 for the metric definition.
  std::array<sim::Summary, 3> four_parts;
  std::array<sim::Summary, 3> sixteen_parts;
};
[[nodiscard]] Fig6Result run_fig6_models(const RunOptions& options);

// ---- Figure 7: just execution vs transmission & execution ----
struct Fig7Result {
  PerPeer just_execution;            // seconds
  PerPeer transmission_execution;    // seconds
};
[[nodiscard]] Fig7Result run_fig7_execution(const RunOptions& options);

// ---- shared workload parameters (the paper's) ----
inline constexpr Bytes kFig3FileSize = 50 * kMegabyte;
inline constexpr Bytes kFig5FileSize = 100 * kMegabyte;
/// Figure 7's processing job: sized so a healthy peer takes a few
/// minutes and SC7 tens of minutes (the paper's y-axis range).
inline constexpr GigaCycles kFig7Work = 300.0;
inline constexpr Bytes kFig7InputSize = 100 * kMegabyte;

}  // namespace peerlab::experiments
