#include "peerlab/experiments/churn.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "peerlab/common/check.hpp"
#include "peerlab/core/data_evaluator.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/core/user_preference.hpp"

namespace peerlab::experiments {

namespace {

using overlay::DistributionOptions;
using overlay::FileService;
using planetlab::Deployment;
using transport::FileTransferConfig;
using transport::TransferResult;

/// Transfer knobs tuned for churn: petitions give up after ~a minute
/// (a dead peer should trigger failover, not a quarter hour of
/// retries) and a part gets a bounded retransmission budget.
FileTransferConfig churn_transfer() {
  FileTransferConfig cfg;
  cfg.petition_retry.initial_timeout = 15.0;
  cfg.petition_retry.backoff = 1.5;
  cfg.petition_retry.max_attempts = 4;
  cfg.confirm_timeout = 30.0;
  cfg.max_confirm_queries = 6;
  cfg.max_part_attempts = 6;
  return cfg;
}

DistributionOptions churn_failover() {
  DistributionOptions options;
  options.max_failovers_per_share = 4;
  options.backoff_initial = 10.0;
  options.backoff_factor = 2.0;
  options.backoff_cap = 120.0;
  return options;
}

struct ChurnRun {
  double makespan = 0.0;
  double failovers = 0.0;
  double crashes = 0.0;
  double elections = 0.0;
  double deltas_streamed = 0.0;
  bool complete = false;
};

/// One seeded world, one model, one churn level: boot, build enough
/// broker history for the history-driven models, arm the churn plan,
/// then scatter the file with failover enabled and run to completion.
/// Every world carries one standby broker replicating the primary;
/// with `crash_broker` the primary is crashed kBrokerCrashDelay after
/// the distribution starts, so completion must come through election +
/// re-homing. With options.metrics set, the run's instruments fold
/// into the shared registry under a per-model (and per-arm) suffix;
/// the churn plan installed mid-run attaches itself through the
/// deployment's remembered registry.
ChurnRun churn_run(const RunOptions& options, std::uint64_t seed, Model model,
                   double mttf, bool crash_broker) {
  sim::Simulator sim(seed);
  planetlab::DeploymentOptions dep_options;
  dep_options.standby_brokers = 1;
  Deployment dep(sim, dep_options);
  obs::MetricRegistry registry;
  if (options.metrics != nullptr) dep.attach_metrics(registry, options.profile);
  dep.boot();

  // Warm-up: one small transfer + chat per SC, serially, so the
  // broker's history ranks every peer (the quick-peer model freezes
  // that impression, the data evaluator keeps updating it).
  Seconds at = sim.now() + 10.0;
  for (int i = 1; i <= 8; ++i) {
    sim.schedule_at(at, [&dep, i] {
      FileTransferConfig cfg = churn_transfer();
      cfg.file_size = megabytes(2.0);
      cfg.parts = 2;
      dep.control().files().send_file(dep.sc_peer(i), cfg, [](const TransferResult&) {});
      dep.control().messaging().send(dep.sc_peer(i), 0, [](bool, Seconds) {});
    });
    at += 300.0;
  }
  {
    const obs::WallProfiler::Span run_span(dep.profiler(), "run");
    sim.run_until(at + 300.0);
  }

  // Both brokers get the model: the standby's copy binds to its own
  // (replicated) history, so a post-failover selection judges peers on
  // the warm-up record the primary streamed over — not on cold state.
  // This matters most for quick-peer, which freezes its ranking at
  // construction from whatever history it is handed.
  const auto set_model = [&](overlay::BrokerPeer& broker) {
    switch (model) {
      case Model::kEconomic:
        broker.set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
        break;
      case Model::kSamePriority:
        broker.set_selection_model(std::make_unique<core::DataEvaluatorModel>(
            core::DataEvaluatorModel::same_priority()));
        break;
      case Model::kQuickPeer: {
        std::vector<PeerId> known;
        for (int i = 1; i <= 8; ++i) known.push_back(dep.sc_peer(i));
        broker.set_selection_model(std::make_unique<core::UserPreferenceModel>(
            core::UserPreferenceModel::quick_peer(broker.history(), known)));
        break;
      }
    }
  };
  set_model(dep.broker());
  set_model(dep.standby_at(0));

  // Churn window: covers selection and the whole distribution. Client
  // nodes churn per the MTTF/MTTR renewal plan; in the broker-crash
  // arm the primary additionally dies for good shortly after the
  // distribution starts (the selection phase below runs a fixed 300 s
  // window, so the distribution start time is deterministic).
  const Seconds distribution_start = sim.now() + 300.0;
  net::FaultPlan plan;
  if (mttf > 0.0) {
    sim::Rng churn_rng = sim.rng().fork(0xC4A54ull);
    plan = net::FaultPlan::random_churn(churn_rng, dep.client_nodes(), mttf, kChurnMttr,
                                        sim.now(), sim.now() + 6000.0);
  }
  if (crash_broker) {
    net::FaultPlan broker_kill;
    broker_kill.crash_forever(distribution_start + kBrokerCrashDelay, dep.broker().node());
    plan.merge(broker_kill);
  }
  if (!plan.empty()) dep.install_faults(std::move(plan));

  // Broker-mediated selection of the initial share holders.
  std::vector<PeerId> selected;
  {
    core::SelectionContext ctx;
    ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
    ctx.payload_size = kChurnFileSize;
    ctx.now = sim.now();
    bool got = false;
    dep.control().request_selection(ctx, kChurnFanout, [&](std::vector<PeerId> peers) {
      selected = std::move(peers);
      got = true;
    });
    {
      const obs::WallProfiler::Span run_span(dep.profiler(), "run");
      sim.run_until(sim.now() + 300.0);
    }
    PEERLAB_CHECK_MSG(got && selected.size() >= 1, "churn selection failed");
    if (selected.size() > kChurnFanout) selected.resize(kChurnFanout);
  }

  ChurnRun run;
  bool done = false;
  dep.control().files().distribute(
      kChurnFileSize, kChurnParts, selected, churn_transfer(),
      [&](const FileService::DistributionResult& result) {
        run.makespan = result.makespan();
        run.failovers = static_cast<double>(result.failovers);
        run.complete = result.complete;
        done = true;
      },
      churn_failover());
  {
    const obs::WallProfiler::Span run_span(dep.profiler(), "run");
    sim.run();
  }
  PEERLAB_CHECK_MSG(done, "churn distribution never resolved");
  if (crash_broker) {
    // A fast distribution can outrun the crash+detection window; keep
    // the clock moving a little so the election always happens and the
    // arm's replica metrics mean the same thing in every cell.
    sim.run_until(sim.now() + kBrokerElectionGrace);
  }
  if (dep.faults() != nullptr) {
    run.crashes = static_cast<double>(dep.faults()->crashes_applied());
  }
  if (dep.replicas() != nullptr) {
    run.elections = static_cast<double>(dep.replicas()->elections());
    run.deltas_streamed = static_cast<double>(dep.replicas()->deltas_streamed());
  }
  merge_metrics(options, registry,
                std::string(".") + kModelNames[static_cast<int>(model)] +
                    (crash_broker ? ".broker-crash" : ""));
  return run;
}

}  // namespace

ChurnResult run_bench_churn(const RunOptions& options) {
  struct CellRuns {
    ChurnRun base;
    ChurnRun broker;
  };
  using Rep = std::array<std::array<CellRuns, kChurnLevels>, 3>;
  const auto reps = run_repetitions<Rep>(options, [&options](std::uint64_t seed, int) {
    Rep rep;
    for (int m = 0; m < 3; ++m) {
      for (int level = 0; level < kChurnLevels; ++level) {
        // Same seed across models, levels and arms: identical worlds
        // and — per level — identical client fault plans, so the two
        // arms only diverge at the broker-crash instant and the
        // per-seed makespan difference isolates the cost of losing
        // the broker.
        auto& cell = rep[static_cast<std::size_t>(m)][static_cast<std::size_t>(level)];
        cell.base = churn_run(options, seed, static_cast<Model>(m), kChurnMttf[level],
                              /*crash_broker=*/false);
        cell.broker = churn_run(options, seed, static_cast<Model>(m), kChurnMttf[level],
                                /*crash_broker=*/true);
      }
    }
    return rep;
  });

  ChurnResult result;
  for (const auto& rep : reps) {
    for (std::size_t m = 0; m < 3; ++m) {
      for (std::size_t level = 0; level < kChurnLevels; ++level) {
        ChurnCell& cell = result.cells[m][level];
        const CellRuns& runs = rep[m][level];
        cell.makespan.add(runs.base.makespan);
        cell.failovers.add(runs.base.failovers);
        cell.crashes.add(runs.base.crashes);
        cell.complete_runs += runs.base.complete ? 1 : 0;
        ++cell.runs;
        cell.broker_makespan.add(runs.broker.makespan);
        cell.broker_penalty.add(runs.broker.makespan - runs.base.makespan);
        cell.broker_elections.add(runs.broker.elections);
        cell.broker_complete_runs += runs.broker.complete ? 1 : 0;
        ++cell.broker_runs;
      }
    }
  }
  return result;
}

}  // namespace peerlab::experiments
