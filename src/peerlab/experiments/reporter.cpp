#include "peerlab/experiments/reporter.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "peerlab/common/check.hpp"

namespace peerlab::experiments {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  PEERLAB_CHECK_MSG(!columns_.empty(), "table needs columns");
}

void Table::add_row(std::vector<std::string> cells) {
  PEERLAB_CHECK_MSG(cells.size() == columns_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  out << title_ << "\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << "\n";
  };
  emit_row(columns_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << row[c];
    }
    out << "\n";
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream file(path);
  PEERLAB_CHECK_MSG(file.good(), "cannot open " + path);
  file << csv();
}

std::string cell(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

bool shape_check(const std::string& description, bool pass) {
  std::printf("  [%s] %s\n", pass ? "PASS" : "FAIL", description.c_str());
  return pass;
}

void print_figure_header(const std::string& figure, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), what.c_str());
  std::printf("================================================================\n");
}

}  // namespace peerlab::experiments
