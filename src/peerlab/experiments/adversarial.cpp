#include "peerlab/experiments/adversarial.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "peerlab/adversary/behavior_plan.hpp"
#include "peerlab/common/check.hpp"
#include "peerlab/core/data_evaluator.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/core/hybrid.hpp"
#include "peerlab/core/user_preference.hpp"

namespace peerlab::experiments {

namespace {

using overlay::DistributionOptions;
using overlay::FileService;
using planetlab::Deployment;
using transport::FileTransferConfig;
using transport::TransferResult;

/// Transfer knobs tuned like bench_churn's: a refusing peer should
/// trigger failover after ~two minutes of petition retries, not a
/// quarter hour.
FileTransferConfig adv_transfer() {
  FileTransferConfig cfg;
  cfg.petition_retry.initial_timeout = 15.0;
  cfg.petition_retry.backoff = 1.5;
  cfg.petition_retry.max_attempts = 4;
  cfg.confirm_timeout = 30.0;
  cfg.max_confirm_queries = 6;
  cfg.max_part_attempts = 6;
  return cfg;
}

DistributionOptions adv_failover() {
  DistributionOptions options;
  options.max_failovers_per_share = 4;
  options.backoff_initial = 10.0;
  options.backoff_factor = 2.0;
  options.backoff_cap = 120.0;
  return options;
}

struct AdvRun {
  double makespan = 0.0;
  double failovers = 0.0;
  double refusals = 0.0;
  double lies = 0.0;
  double quarantines = 0.0;
  bool complete = false;
};

/// One seeded world, one model, one adversary count, one defense
/// posture. Adversaries are armed *before* boot: the leech refuses
/// (and lies) from the first heartbeat, so the warm-up phase below is
/// also the evidence window the defended broker learns from. The
/// adversary subset is drawn from a forked stream, so the same seed
/// scripts the same peers in both arms and the cells differ only in
/// the broker's defense posture.
AdvRun adversarial_run(const RunOptions& options, std::uint64_t seed, int model,
                       int adversaries, bool defended) {
  sim::Simulator sim(seed);
  planetlab::DeploymentOptions dep_options;
  if (defended) dep_options.broker.reputation = adversarial_defense_config();
  Deployment dep(sim, dep_options);
  obs::MetricRegistry registry;
  if (options.metrics != nullptr) dep.attach_metrics(registry, options.profile);

  if (adversaries > 0) {
    std::vector<PeerId> pool;
    for (int i = 1; i <= 8; ++i) pool.push_back(dep.sc_peer(i));
    sim::Rng pick = sim.rng().fork(0x5E1EC7ull);
    pick.shuffle(pool);
    adversary::BehaviorPlan plan;
    for (int i = 0; i < adversaries; ++i) {
      plan.free_rider(pool[static_cast<std::size_t>(i)]);
      plan.stats_liar(pool[static_cast<std::size_t>(i)], kAdvPraisePerHeartbeat,
                      kAdvFabricatedRate);
    }
    dep.install_adversaries(std::move(plan));
  }
  dep.boot();

  // Warm-up: one small transfer + chat per SC, serially, so the broker
  // has a record for every peer. Transfers towards leeches fail here
  // ("petition unanswered"), which is exactly the attributed evidence
  // the defended broker ranks on later.
  Seconds at = sim.now() + 10.0;
  for (int i = 1; i <= 8; ++i) {
    sim.schedule_at(at, [&dep, i] {
      FileTransferConfig cfg = adv_transfer();
      cfg.file_size = megabytes(2.0);
      cfg.parts = 2;
      dep.control().files().send_file(dep.sc_peer(i), cfg, [](const TransferResult&) {});
      dep.control().messaging().send(dep.sc_peer(i), 0, [](bool, Seconds) {});
    });
    at += 300.0;
  }
  {
    const obs::WallProfiler::Span run_span(dep.profiler(), "run");
    sim.run_until(at + 300.0);
  }

  switch (model) {
    case 0:
      dep.broker().set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
      break;
    case 1:
      dep.broker().set_selection_model(std::make_unique<core::DataEvaluatorModel>(
          core::DataEvaluatorModel::same_priority()));
      break;
    case 2: {
      std::vector<PeerId> known;
      for (int i = 1; i <= 8; ++i) known.push_back(dep.sc_peer(i));
      dep.broker().set_selection_model(std::make_unique<core::UserPreferenceModel>(
          core::UserPreferenceModel::quick_peer(dep.broker().history(), known)));
      break;
    }
    default:
      dep.broker().set_selection_model(std::make_unique<core::HybridModel>());
      break;
  }

  // Broker-mediated selection of the initial share holders.
  std::vector<PeerId> selected;
  {
    core::SelectionContext ctx;
    ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
    ctx.payload_size = kAdvFileSize;
    ctx.now = sim.now();
    bool got = false;
    dep.control().request_selection(ctx, kAdvFanout, [&](std::vector<PeerId> peers) {
      selected = std::move(peers);
      got = true;
    });
    {
      const obs::WallProfiler::Span run_span(dep.profiler(), "run");
      sim.run_until(sim.now() + 300.0);
    }
    PEERLAB_CHECK_MSG(got && selected.size() >= 1, "adversarial selection failed");
    if (selected.size() > kAdvFanout) selected.resize(kAdvFanout);
  }

  AdvRun run;
  bool done = false;
  dep.control().files().distribute(
      kAdvFileSize, kAdvParts, selected, adv_transfer(),
      [&](const FileService::DistributionResult& result) {
        run.makespan = result.makespan();
        run.failovers = static_cast<double>(result.failovers);
        run.complete = result.complete;
        done = true;
      },
      adv_failover());
  {
    const obs::WallProfiler::Span run_span(dep.profiler(), "run");
    sim.run();
  }
  PEERLAB_CHECK_MSG(done, "adversarial distribution never resolved");
  if (dep.adversaries() != nullptr) {
    run.refusals = static_cast<double>(dep.adversaries()->refusals_decided());
  }
  if (dep.broker().defenses_enabled()) {
    run.lies = static_cast<double>(dep.broker().reputation().lies_recorded());
    run.quarantines = static_cast<double>(dep.broker().reputation().quarantines_imposed());
  }
  merge_metrics(options, registry,
                std::string(".") + kAdvModelNames[model] + (defended ? ".defended" : ""));
  return run;
}

}  // namespace

overlay::ReputationConfig adversarial_defense_config() {
  overlay::ReputationConfig config;
  config.enabled = true;
  // Warm-up evidence is gathered ~40 simulated minutes before the
  // distribution's selection; a slow decay keeps it ranking, and the
  // quarantine window outlasts the whole run (a leech that lies every
  // heartbeat re-arms it anyway).
  config.decay_half_life = 4.0 * 3600.0;
  config.quarantine_duration = 4.0 * 3600.0;
  return config;
}

AdversarialResult run_bench_adversarial(const RunOptions& options) {
  struct CellRuns {
    AdvRun off;
    AdvRun on;
  };
  using Rep = std::array<std::array<CellRuns, kAdvLevels>, kAdvModels>;
  const auto reps = run_repetitions<Rep>(options, [&options](std::uint64_t seed, int) {
    Rep rep;
    for (int m = 0; m < kAdvModels; ++m) {
      for (int level = 0; level < kAdvLevels; ++level) {
        // Same seed across models, levels and arms: identical worlds
        // and identical adversary subsets, so each pair isolates the
        // defense posture and each column the adversary pressure.
        auto& cell = rep[static_cast<std::size_t>(m)][static_cast<std::size_t>(level)];
        cell.off = adversarial_run(options, seed, m, kAdvCounts[level],
                                   /*defended=*/false);
        cell.on = adversarial_run(options, seed, m, kAdvCounts[level],
                                  /*defended=*/true);
      }
    }
    return rep;
  });

  AdversarialResult result;
  for (const auto& rep : reps) {
    for (std::size_t m = 0; m < kAdvModels; ++m) {
      for (std::size_t level = 0; level < kAdvLevels; ++level) {
        AdversarialCell& cell = result.cells[m][level];
        const CellRuns& runs = rep[m][level];
        const auto fold = [](AdversarialArm& arm, const AdvRun& run) {
          arm.makespan.add(run.makespan);
          arm.failovers.add(run.failovers);
          arm.refusals.add(run.refusals);
          arm.lies_caught.add(run.lies);
          arm.quarantines.add(run.quarantines);
          arm.complete_runs += run.complete ? 1 : 0;
          ++arm.runs;
        };
        fold(cell.undefended, runs.off);
        fold(cell.defended, runs.on);
      }
    }
  }
  return result;
}

}  // namespace peerlab::experiments
