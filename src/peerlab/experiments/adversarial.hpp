#pragma once

// bench_adversarial — scatter distribution against byzantine clients.
// Sweeps the number of SimpleClients running the compound "leech"
// script (refuse every inbound transfer petition while fabricating
// self-praise history each heartbeat) for four selection models, each
// cell measured twice from the same seed: defenses OFF (the broker
// trusts every report and ranks on merit alone) and defenses ON (the
// observed-outcome reputation book vets reports, penalizes ranked
// candidates and quarantines repeat offenders; see
// overlay/reputation.hpp and DESIGN.md §14).
//
// The failover machinery keeps completion at 100% in both arms — a
// refused share backs off and re-petitions the broker for a substitute
// — so the cost of adversaries is makespan: every share that lands on
// a leech burns the petition retry budget before failing over. The
// defended broker learns from the warm-up phase (the leech's refusals
// are attributed failures, its praise is a detected protocol
// violation) and steers the scatter around the adversaries up front.

#include <array>

#include "peerlab/experiments/figures.hpp"
#include "peerlab/overlay/reputation.hpp"

namespace peerlab::experiments {

/// Adversary severities: how many of the 8 SimpleClients run the leech
/// script (~0/10/30/50% of the experiment group).
inline constexpr int kAdvLevels = 4;
inline constexpr int kAdvCounts[kAdvLevels] = {0, 1, 2, 4};
inline constexpr const char* kAdvLabels[kAdvLevels] = {"none", "1-of-8", "2-of-8",
                                                       "4-of-8"};

/// Model sweep: the paper's informed models plus the hybrid blend.
/// (Blind is omitted: it cannot react to evidence by construction, so
/// an adversarial sweep over it only measures the failover machinery.)
inline constexpr int kAdvModels = 4;
inline constexpr const char* kAdvModelNames[kAdvModels] = {"economic", "same-priority",
                                                           "quick-peer", "hybrid"};

/// Workload: the same scatter as bench_churn.
inline constexpr Bytes kAdvFileSize = 32 * kMegabyte;
inline constexpr int kAdvParts = 6;
inline constexpr std::size_t kAdvFanout = 3;

/// What the leech claims per heartbeat (see ClientPeer::MisreportProfile).
inline constexpr int kAdvPraisePerHeartbeat = 2;
inline constexpr MbitPerSec kAdvFabricatedRate = 800.0;

/// The defended arm's reputation knobs: defaults except a slower decay
/// (warm-up evidence must still rank at distribution time, ~40 min
/// later) and a quarantine long enough to cover the whole run. Exposed
/// so tests can assert against exactly what the bench runs.
[[nodiscard]] overlay::ReputationConfig adversarial_defense_config();

struct AdversarialArm {
  sim::Summary makespan;     // distribution makespan (seconds)
  sim::Summary failovers;    // replacement petitions consumed per run
  sim::Summary refusals;     // petitions the adversaries refused
  sim::Summary lies_caught;  // fabricated self-praise deltas detected (0 when off)
  sim::Summary quarantines;  // quarantines imposed by the broker (0 when off)
  int complete_runs = 0;     // runs where every share completed
  int runs = 0;

  [[nodiscard]] double completion_rate() const noexcept {
    return runs == 0 ? 0.0 : static_cast<double>(complete_runs) / runs;
  }
};

struct AdversarialCell {
  AdversarialArm undefended;
  AdversarialArm defended;  // same seeds, same adversaries, defenses on
};

struct AdversarialResult {
  /// [model][adversary level]; models as in kAdvModelNames.
  std::array<std::array<AdversarialCell, kAdvLevels>, kAdvModels> cells;
};

[[nodiscard]] AdversarialResult run_bench_adversarial(const RunOptions& options);

}  // namespace peerlab::experiments
