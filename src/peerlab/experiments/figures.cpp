#include "peerlab/experiments/figures.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>

#include "peerlab/common/check.hpp"
#include "peerlab/core/data_evaluator.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/core/user_preference.hpp"

namespace peerlab::experiments {

namespace {

using overlay::ClientPeer;
using overlay::node_of;
using planetlab::Deployment;
using planetlab::DeploymentOptions;
using transport::FileTransferConfig;
using transport::TransferResult;

/// Transfer config used by the figure workloads: patient petition
/// handshake (SC7 answers after ~27 s) and generous confirmation
/// handling for multi-minute parts.
FileTransferConfig figure_transfer(Bytes size, int parts) {
  FileTransferConfig cfg;
  cfg.file_size = size;
  cfg.parts = parts;
  cfg.petition_retry.initial_timeout = 90.0;
  cfg.petition_retry.max_attempts = 6;
  cfg.confirm_timeout = 60.0;
  cfg.max_confirm_queries = 10;
  cfg.max_part_attempts = 24;
  return cfg;
}

/// Runs one staggered transfer per SC in a fresh world and extracts a
/// per-peer metric from the TransferResult. With options.trace_path
/// set, every transfer rides its own causal chain and the repetition's
/// dump lands under `tag`.
template <typename Extract>
std::array<double, 8> per_peer_transfer_metric(const RunOptions& options,
                                               std::uint64_t seed, int rep,
                                               const std::string& tag, Bytes size,
                                               int parts, Seconds stagger,
                                               Extract extract) {
  sim::Simulator sim(seed);
  Deployment dep(sim);
  obs::MetricRegistry registry;
  if (options.metrics != nullptr) dep.attach_metrics(registry, options.profile);
  TraceSession trace(options, sim, dep, rep, tag);
  if (trace.active()) trace.attach_metrics(registry);
  std::array<double, 8> values{};
  std::array<bool, 8> done{};
  for (int i = 1; i <= 8; ++i) {
    const PeerId dst = dep.sc_peer(i);
    sim.schedule(static_cast<double>(i - 1) * stagger, [&, i, dst] {
      FileTransferConfig cfg = figure_transfer(size, parts);
      if (trace.active()) cfg.trace = trace.root();
      dep.control().files().send_file(dst, cfg,
                                      [&, i](const TransferResult& result) {
                                        PEERLAB_CHECK_MSG(result.complete,
                                                          "figure transfer failed");
                                        values[static_cast<std::size_t>(i - 1)] =
                                            extract(result);
                                        done[static_cast<std::size_t>(i - 1)] = true;
                                      });
    });
  }
  {
    const obs::WallProfiler::Span run_span(dep.profiler(), "run");
    sim.run();
  }
  for (const bool d : done) PEERLAB_CHECK_MSG(d, "transfer never completed");
  trace.finish();
  merge_metrics(options, registry);
  return values;
}

PerPeer merge(const std::vector<std::array<double, 8>>& reps) {
  PerPeer out{};
  for (const auto& rep : reps) {
    for (std::size_t i = 0; i < 8; ++i) out[i].add(rep[i]);
  }
  return out;
}

}  // namespace

PerPeer run_fig2_petition(const RunOptions& options) {
  // The paper measures how long the peer takes to receive the petition
  // for a file transmission. A small probe file keeps the data phase
  // out of the way.
  const auto reps = run_repetitions<std::array<double, 8>>(
      options, [&options](std::uint64_t seed, int rep) {
        return per_peer_transfer_metric(options, seed, rep, "", megabytes(1.0), 1,
                                        /*stagger=*/600.0,
                                        [](const TransferResult& r) {
                                          return r.petition_time();
                                        });
      });
  return merge(reps);
}

PerPeer run_fig3_transfer50(const RunOptions& options) {
  const auto reps = run_repetitions<std::array<double, 8>>(
      options, [&options](std::uint64_t seed, int rep) {
        return per_peer_transfer_metric(options, seed, rep, "", kFig3FileSize, 1,
                                        /*stagger=*/30000.0,
                                        [](const TransferResult& r) {
                                          return r.transmission_time();
                                        });
      });
  return merge(reps);
}

PerPeer run_fig4_last_mb(const RunOptions& options) {
  const auto reps = run_repetitions<std::array<double, 8>>(
      options, [&options](std::uint64_t seed, int rep) {
        return per_peer_transfer_metric(options, seed, rep, "", kFig3FileSize, 1,
                                        /*stagger=*/30000.0,
                                        [](const TransferResult& r) {
                                          return r.last_mb_time();
                                        });
      });
  return merge(reps);
}

Fig5Result run_fig5_granularity(const RunOptions& options) {
  struct Rep {
    std::array<double, 8> whole;
    std::array<double, 8> four;
    std::array<double, 8> sixteen;
  };
  const auto reps = run_repetitions<Rep>(options, [&options](std::uint64_t seed, int n) {
    Rep rep;
    // Distinct sub-seeds per granularity: independent worlds, matching
    // the paper's independently-run configurations.
    rep.whole = per_peer_transfer_metric(options, seed ^ 0x51ull, n, "whole",
                                         kFig5FileSize, 1, 40000.0,
                                         [](const TransferResult& r) {
                                           return r.transmission_time();
                                         });
    rep.four = per_peer_transfer_metric(options, seed ^ 0x52ull, n, "p4",
                                        kFig5FileSize, 4, 40000.0,
                                        [](const TransferResult& r) {
                                          return r.transmission_time();
                                        });
    rep.sixteen = per_peer_transfer_metric(options, seed ^ 0x53ull, n, "p16",
                                           kFig5FileSize, 16, 40000.0,
                                           [](const TransferResult& r) {
                                             return r.transmission_time();
                                           });
    return rep;
  });
  Fig5Result result;
  std::vector<std::array<double, 8>> w, f, s;
  for (const auto& rep : reps) {
    w.push_back(rep.whole);
    f.push_back(rep.four);
    s.push_back(rep.sixteen);
  }
  result.whole = merge(w);
  result.four = merge(f);
  result.sixteen = merge(s);
  return result;
}

namespace {

/// Figure 6 world: boots, runs a warm-up that builds broker history,
/// then saturates two historically-quick peers (SC4, SC8) with
/// background traffic so "current state" and "historical impression"
/// disagree — the axis the three models differ on.
struct Fig6World {
  explicit Fig6World(std::uint64_t seed) : sim(seed), dep(sim) {
    dep.boot();
    warmup();
    start_background();
  }

  void warmup() {
    // Three 4 MB / 4-part transfers plus chats to every SC, serially,
    // so the broker's history knows every peer's petition latency and
    // achieved rate.
    Seconds at = sim.now() + 10.0;
    for (int i = 1; i <= 8; ++i) {
      for (int round = 0; round < 3; ++round) {
        sim.schedule_at(at, [this, i] {
          dep.control().files().send_file(dep.sc_peer(i),
                                          figure_transfer(megabytes(4.0), 4),
                                          [](const TransferResult&) {});
          dep.control().messaging().send(dep.sc_peer(i), 0, [](bool, Seconds) {});
        });
        at += 400.0;
      }
    }
    sim.run_until(at + 400.0);
  }

  void start_background() {
    // Six sustained bulk streams each towards SC4 and SC8: their
    // downlinks saturate and their heartbeats report pending
    // transfers. Each stream re-sends an 8 MB block (high per-flow
    // rate cap, so the access link — not the degradation cap — is the
    // bottleneck) a bounded number of times so the run still drains.
    for (const int busy : {4, 8}) {
      const NodeId dst = dep.sc(busy).node();
      for (int f = 0; f < 6; ++f) {
        background_stream(dst, /*remaining=*/40);
      }
    }
    // Let two heartbeat rounds carry the new pending counts.
    sim.run_until(sim.now() + 65.0);
  }

  void background_stream(NodeId dst, int remaining) {
    if (remaining <= 0) return;
    dep.network().start_message(dep.control().node(), dst, megabytes(8.0),
                                [this, dst, remaining](bool, Seconds) {
                                  background_stream(dst, remaining - 1);
                                });
  }

  /// The user's frozen impression: peers ordered by their historical
  /// quickness — built from broker history, never updated again.
  [[nodiscard]] std::unique_ptr<core::SelectionModel> quick_peer_model() {
    std::vector<PeerId> known;
    for (int i = 1; i <= 8; ++i) known.push_back(dep.sc_peer(i));
    return std::make_unique<core::UserPreferenceModel>(
        core::UserPreferenceModel::quick_peer(dep.broker().history(), known));
  }

  sim::Simulator sim;
  Deployment dep;
};

/// Ideal (uncontended, lossless) duration of `n_parts` sequential
/// parts of `part_size` into `node`: per-part wire time at the
/// degradation-capped nominal rate.
Seconds ideal_parts_time(Deployment& dep, NodeId node, Bytes part_size, int n_parts) {
  const auto& profile = dep.network().topology().node(node).profile();
  const MbitPerSec cap = dep.network().degradation().cap(profile.downlink_mbps, part_size);
  return static_cast<double>(n_parts) * wire_time(part_size, cap);
}

/// Runs the fig6 measurement for one model at one granularity.
/// Returns the mean per-part selection-and-dispatch overhead. With
/// options.metrics set, the run's instruments (selection latency,
/// failovers, transfer counters, ...) are folded into the shared
/// registry under a per-model suffix — attached *after* warmup, so
/// the series cover only the measured workload.
double fig6_overhead(const RunOptions& options, std::uint64_t seed, int rep, Model model,
                     int parts) {
  Fig6World world(seed);
  Deployment& dep = world.dep;
  sim::Simulator& sim = world.sim;
  obs::MetricRegistry registry;
  if (options.metrics != nullptr) dep.attach_metrics(registry, options.profile);
  // Attached after warmup, like the metrics: the traced window is the
  // measured selection + dispatch workload only.
  TraceSession trace(options, sim, dep, rep,
                     std::string(kModelNames[static_cast<int>(model)]) + ".p" +
                         std::to_string(parts));
  if (trace.active()) trace.attach_metrics(registry);

  switch (model) {
    case Model::kEconomic:
      dep.broker().set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
      break;
    case Model::kSamePriority:
      dep.broker().set_selection_model(
          std::make_unique<core::DataEvaluatorModel>(core::DataEvaluatorModel::same_priority()));
      break;
    case Model::kQuickPeer:
      dep.broker().set_selection_model(world.quick_peer_model());
      break;
  }

  const Bytes part_size = kFig5FileSize / parts;

  // 1. Broker-mediated selection over the wire.
  std::vector<PeerId> selected;
  Seconds selection_elapsed = 0.0;
  const obs::trace::TraceContext workload = trace.root();
  {
    core::SelectionContext ctx;
    ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
    ctx.payload_size = kFig5FileSize;
    ctx.now = sim.now();
    ctx.trace = workload;
    const Seconds asked = sim.now();
    bool got = false;
    dep.control().request_selection(ctx, static_cast<std::size_t>(parts),
                                    [&](std::vector<PeerId> peers) {
                                      selected = std::move(peers);
                                      selection_elapsed = sim.now() - asked;
                                      got = true;
                                    });
    {
      const obs::WallProfiler::Span run_span(dep.profiler(), "run");
      sim.run_until(sim.now() + 120.0);
    }
    PEERLAB_CHECK_MSG(got && !selected.empty(), "selection failed");
  }

  // 2. Round-robin the parts over the selected peers and send each
  //    peer its share as one multi-part transfer.
  std::map<PeerId, int> share;
  for (int p = 0; p < parts; ++p) {
    share[selected[static_cast<std::size_t>(p) % selected.size()]] += 1;
  }
  double overhead_sum = selection_elapsed;
  int outstanding = 0;
  for (const auto& [peer, n] : share) {
    ++outstanding;
    const NodeId node = node_of(peer);
    const Seconds ideal = ideal_parts_time(dep, node, part_size, n);
    FileTransferConfig cfg = figure_transfer(part_size * n, n);
    cfg.trace = workload;  // inactive while untraced
    dep.control().files().send_file(
        peer, cfg, [&, ideal](const TransferResult& result) {
          PEERLAB_CHECK_MSG(result.complete, "fig6 transfer failed");
          overhead_sum += result.petition_time();
          overhead_sum += std::max(0.0, result.transmission_time() - ideal);
          --outstanding;
        });
  }
  {
    const obs::WallProfiler::Span run_span(dep.profiler(), "run");
    sim.run();
  }
  PEERLAB_CHECK_MSG(outstanding == 0, "fig6 transfers did not drain");
  trace.finish();
  merge_metrics(options, registry,
                std::string(".") + kModelNames[static_cast<int>(model)]);
  return overhead_sum / static_cast<double>(parts);
}

}  // namespace

Fig6Result run_fig6_models(const RunOptions& options) {
  struct Rep {
    std::array<double, 3> four;
    std::array<double, 3> sixteen;
  };
  const auto reps = run_repetitions<Rep>(options, [&options](std::uint64_t seed, int n) {
    Rep rep;
    for (int m = 0; m < 3; ++m) {
      // Identical world per model (same seed): apples-to-apples.
      rep.four[static_cast<std::size_t>(m)] =
          fig6_overhead(options, seed, n, static_cast<Model>(m), 4);
      rep.sixteen[static_cast<std::size_t>(m)] =
          fig6_overhead(options, seed, n, static_cast<Model>(m), 16);
    }
    return rep;
  });
  Fig6Result result;
  for (const auto& rep : reps) {
    for (std::size_t m = 0; m < 3; ++m) {
      result.four_parts[m].add(rep.four[m]);
      result.sixteen_parts[m].add(rep.sixteen[m]);
    }
  }
  return result;
}

Fig7Result run_fig7_execution(const RunOptions& options) {
  struct Rep {
    std::array<double, 8> just_exec;
    std::array<double, 8> trans_exec;
  };
  const auto reps = run_repetitions<Rep>(options, [&options](std::uint64_t seed, int n) {
    Rep rep{};
    sim::Simulator sim(seed);
    Deployment dep(sim);
    obs::MetricRegistry registry;
    if (options.metrics != nullptr) dep.attach_metrics(registry, options.profile);
    TraceSession trace(options, sim, dep, n);
    if (trace.active()) trace.attach_metrics(registry);
    dep.boot();
    std::array<bool, 8> done_a{}, done_b{};

    // Phase A: just execution (no input payload).
    Seconds at = sim.now() + 10.0;
    for (int i = 1; i <= 8; ++i) {
      const PeerId dst = dep.sc_peer(i);
      sim.schedule_at(at, [&, i, dst] {
        overlay::TaskSubmission sub;
        sub.executor = dst;
        sub.work = kFig7Work;
        dep.control().task_service().submit(sub, [&, i](const overlay::TaskOutcome& o) {
          PEERLAB_CHECK_MSG(o.accepted && o.ok, "fig7 execution failed");
          rep.just_exec[static_cast<std::size_t>(i - 1)] = o.completed - o.offer_acked;
          done_a[static_cast<std::size_t>(i - 1)] = true;
        });
      });
      at += 4000.0;
    }

    // Phase B: ship the 100 MB input (16 parts), then execute.
    at += 4000.0;
    for (int i = 1; i <= 8; ++i) {
      const PeerId dst = dep.sc_peer(i);
      sim.schedule_at(at, [&, i, dst] {
        overlay::TaskSubmission sub;
        sub.executor = dst;
        sub.work = kFig7Work;
        sub.input_size = kFig7InputSize;
        sub.input_parts = 16;
        dep.control().task_service().submit(sub, [&, i](const overlay::TaskOutcome& o) {
          PEERLAB_CHECK_MSG(o.accepted && o.ok, "fig7 transfer+execution failed");
          rep.trans_exec[static_cast<std::size_t>(i - 1)] = o.turnaround();
          done_b[static_cast<std::size_t>(i - 1)] = true;
        });
      });
      at += 6000.0;
    }
    {
      const obs::WallProfiler::Span run_span(dep.profiler(), "run");
      sim.run();
    }
    for (int i = 0; i < 8; ++i) {
      PEERLAB_CHECK_MSG(done_a[static_cast<std::size_t>(i)] && done_b[static_cast<std::size_t>(i)],
                        "fig7 task never finished");
    }
    trace.finish();
    merge_metrics(options, registry);
    return rep;
  });

  Fig7Result result;
  for (const auto& rep : reps) {
    for (std::size_t i = 0; i < 8; ++i) {
      result.just_execution[i].add(rep.just_exec[i]);
      result.transmission_execution[i].add(rep.trans_exec[i]);
    }
  }
  return result;
}

}  // namespace peerlab::experiments
