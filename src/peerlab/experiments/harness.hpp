#pragma once

// Experiment harness: repetition management with thread-level
// parallelism. The paper repeats each experiment 5 times and averages;
// we do the same (configurable), running independent repetitions —
// each with its own Simulator and deployment — on a thread pool.
// Results are collected by repetition index, so parallel and serial
// execution produce byte-identical statistics.

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "peerlab/common/check.hpp"
#include "peerlab/obs/metrics.hpp"
#include "peerlab/obs/trace.hpp"
#include "peerlab/obs/watchdog.hpp"
#include "peerlab/sim/histogram.hpp"

namespace peerlab::planetlab {
class Deployment;
}  // namespace peerlab::planetlab

namespace peerlab::experiments {

struct RunOptions {
  int repetitions = 5;
  std::uint64_t base_seed = 2007;  // the paper's year
  /// 0 = one thread per repetition, capped at hardware concurrency.
  unsigned threads = 0;
  /// When set, each figure driver attaches its per-repetition
  /// deployments to fresh registries and folds them in here (see
  /// merge_metrics); instruments aggregate across repetitions. Must
  /// outlive the run. Null = observability off (the default).
  obs::MetricRegistry* metrics = nullptr;
  /// Wall-clock profiling: attach deployments with wall_profiling on,
  /// so re-level histograms and the obs::WallProfiler span sites
  /// (profile.*) populate. Requires `metrics`; bench runners expose it
  /// as --profile and dump the span table (see bench_common.hpp).
  bool profile = false;
  /// When non-empty, each repetition stands up a TraceSession: a
  /// TraceRecorder + invariant Watchdog attached to the deployment,
  /// workload roots minted per transfer, and a byte-stable JSONL dump
  /// written to `<trace_path>[.<tag>][.rep<N>]` (the rep suffix only
  /// when repetitions > 1) with a postmortem armed at `<dump path>
  /// .postmortem.json`. Empty = tracing off (the default; every emit
  /// site then costs one null test and the figures are byte-identical
  /// to a build without tracing).
  std::string trace_path;
};

/// Seed for repetition `rep` under `options`.
[[nodiscard]] std::uint64_t repetition_seed(const RunOptions& options, int rep);

/// Per-repetition causal tracing bundle (see RunOptions::trace_path).
/// Inert — no recorder, no watchdog, no files — when trace_path is
/// empty, so figure drivers construct one unconditionally. Destroy (or
/// finish()) before the deployment: finish() finalizes the watchdog's
/// liveness sweep, writes the JSONL dump, and detaches the recorder.
class TraceSession {
 public:
  /// `tag` disambiguates several traced worlds within one repetition
  /// (e.g. fig6's model x granularity grid); empty for one-world runs.
  TraceSession(const RunOptions& options, sim::Simulator& sim, planetlab::Deployment& dep,
               int rep, const std::string& tag = "");
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  [[nodiscard]] bool active() const noexcept { return recorder_ != nullptr; }
  [[nodiscard]] obs::trace::TraceRecorder* recorder() noexcept { return recorder_.get(); }
  [[nodiscard]] obs::Watchdog* watchdog() noexcept { return watchdog_.get(); }
  /// Mints a fresh workload root; inactive context while detached.
  [[nodiscard]] obs::trace::TraceContext root();
  /// Registers the trace.* / watchdog.* counters in `registry` and
  /// embeds its snapshot in any postmortem. No-op while detached, so
  /// detached metrics exports stay byte-identical.
  void attach_metrics(obs::MetricRegistry& registry);
  /// Where the dump lands (empty while inactive).
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Finalizes the watchdog, writes the dump, detaches tracing from
  /// the deployment. Returns the violation count. Idempotent.
  std::uint64_t finish();

 private:
  planetlab::Deployment* dep_ = nullptr;
  std::string path_;
  std::unique_ptr<obs::trace::TraceRecorder> recorder_;
  std::unique_ptr<obs::Watchdog> watchdog_;
  bool finished_ = false;
};

/// Folds one repetition's registry into options.metrics — thread-safe
/// across concurrent repetitions, a no-op when metrics is null. A
/// non-empty `suffix` (e.g. ".economic") is appended to every
/// instrument name, giving per-variant series from per-world
/// registries that all use the generic names.
void merge_metrics(const RunOptions& options, const obs::MetricRegistry& rep_registry,
                   const std::string& suffix = "");

/// Runs `body(seed, rep)` once per repetition across a thread pool and
/// returns the results ordered by repetition index. `Result` must be
/// movable; `body` must be thread-safe with respect to *shared* state
/// (each repetition should build its own world).
template <typename Result>
std::vector<Result> run_repetitions(const RunOptions& options,
                                    const std::function<Result(std::uint64_t, int)>& body) {
  PEERLAB_CHECK_MSG(options.repetitions > 0, "need at least one repetition");
  const int reps = options.repetitions;
  std::vector<Result> results(static_cast<std::size_t>(reps));

  unsigned threads = options.threads;
  if (threads == 0) {
    threads = std::min<unsigned>(static_cast<unsigned>(reps),
                                 std::max(1u, std::thread::hardware_concurrency()));
  }
  threads = std::max(1u, std::min<unsigned>(threads, static_cast<unsigned>(reps)));

  if (threads == 1) {
    for (int rep = 0; rep < reps; ++rep) {
      results[static_cast<std::size_t>(rep)] = body(repetition_seed(options, rep), rep);
    }
    return results;
  }

  std::atomic<int> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  std::vector<std::exception_ptr> errors(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      try {
        while (true) {
          const int rep = next.fetch_add(1);
          if (rep >= reps) break;
          results[static_cast<std::size_t>(rep)] = body(repetition_seed(options, rep), rep);
        }
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
  }
  for (auto& worker : pool) worker.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

/// Collapses per-repetition samples of one metric into a Summary.
[[nodiscard]] sim::Summary summarize(const std::vector<double>& samples);

}  // namespace peerlab::experiments
