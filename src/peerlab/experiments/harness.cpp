#include "peerlab/experiments/harness.hpp"

#include <mutex>

#include "peerlab/planetlab/deployment.hpp"

namespace peerlab::experiments {

std::uint64_t repetition_seed(const RunOptions& options, int rep) {
  // Wide spacing so forked per-component streams of adjacent
  // repetitions never collide.
  return options.base_seed + 0x9E3779B9ull * static_cast<std::uint64_t>(rep + 1);
}

TraceSession::TraceSession(const RunOptions& options, sim::Simulator& sim,
                           planetlab::Deployment& dep, int rep, const std::string& tag) {
  if (options.trace_path.empty()) return;
  dep_ = &dep;
  path_ = options.trace_path;
  if (!tag.empty()) path_ += "." + tag;
  if (options.repetitions > 1) path_ += ".rep" + std::to_string(rep);
  recorder_ = std::make_unique<obs::trace::TraceRecorder>(sim);
  watchdog_ = std::make_unique<obs::Watchdog>(*recorder_);
  recorder_->arm_postmortem(path_ + ".postmortem.json");
  dep.attach_tracing(recorder_.get());
}

TraceSession::~TraceSession() {
  if (!finished_) finish();
}

obs::trace::TraceContext TraceSession::root() {
  return recorder_ != nullptr ? recorder_->root() : obs::trace::TraceContext{};
}

void TraceSession::attach_metrics(obs::MetricRegistry& registry) {
  if (recorder_ == nullptr) return;
  recorder_->set_metrics_snapshot(&registry);
  recorder_->attach_metrics(registry);
  watchdog_->attach_metrics(registry);
}

std::uint64_t TraceSession::finish() {
  finished_ = true;
  if (recorder_ == nullptr) return 0;
  watchdog_->finalize();
  recorder_->write_jsonl(path_);
  dep_->attach_tracing(nullptr);
  return watchdog_->violations().size();
}

void merge_metrics(const RunOptions& options, const obs::MetricRegistry& rep_registry,
                   const std::string& suffix) {
  if (options.metrics == nullptr) return;
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  if (suffix.empty()) {
    options.metrics->merge(rep_registry);
    return;
  }
  for (const auto& entry : rep_registry.entries()) {
    const std::string name = entry.name + suffix;
    switch (entry.kind) {
      case obs::InstrumentKind::kCounter:
        options.metrics->counter(name, entry.unit).merge(*entry.counter);
        break;
      case obs::InstrumentKind::kGauge:
        options.metrics->gauge(name, entry.unit).merge(*entry.gauge);
        break;
      case obs::InstrumentKind::kHistogram:
        options.metrics->histogram(name, entry.unit, entry.histogram->options())
            .merge(*entry.histogram);
        break;
    }
  }
}

sim::Summary summarize(const std::vector<double>& samples) {
  sim::Summary summary;
  for (const double x : samples) summary.add(x);
  return summary;
}

}  // namespace peerlab::experiments
