#include "peerlab/experiments/harness.hpp"

namespace peerlab::experiments {

std::uint64_t repetition_seed(const RunOptions& options, int rep) {
  // Wide spacing so forked per-component streams of adjacent
  // repetitions never collide.
  return options.base_seed + 0x9E3779B9ull * static_cast<std::uint64_t>(rep + 1);
}

sim::Summary summarize(const std::vector<double>& samples) {
  sim::Summary summary;
  for (const double x : samples) summary.add(x);
  return summary;
}

}  // namespace peerlab::experiments
