#include "peerlab/experiments/harness.hpp"

#include <mutex>

namespace peerlab::experiments {

std::uint64_t repetition_seed(const RunOptions& options, int rep) {
  // Wide spacing so forked per-component streams of adjacent
  // repetitions never collide.
  return options.base_seed + 0x9E3779B9ull * static_cast<std::uint64_t>(rep + 1);
}

void merge_metrics(const RunOptions& options, const obs::MetricRegistry& rep_registry,
                   const std::string& suffix) {
  if (options.metrics == nullptr) return;
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  if (suffix.empty()) {
    options.metrics->merge(rep_registry);
    return;
  }
  for (const auto& entry : rep_registry.entries()) {
    const std::string name = entry.name + suffix;
    switch (entry.kind) {
      case obs::InstrumentKind::kCounter:
        options.metrics->counter(name, entry.unit).merge(*entry.counter);
        break;
      case obs::InstrumentKind::kGauge:
        options.metrics->gauge(name, entry.unit).merge(*entry.gauge);
        break;
      case obs::InstrumentKind::kHistogram:
        options.metrics->histogram(name, entry.unit, entry.histogram->options())
            .merge(*entry.histogram);
        break;
    }
  }
}

sim::Summary summarize(const std::vector<double>& samples) {
  sim::Summary summary;
  for (const double x : samples) summary.add(x);
  return summary;
}

}  // namespace peerlab::experiments
