#include "peerlab/overlay/task_service.hpp"

#include <utility>

#include "peerlab/common/check.hpp"
#include "peerlab/common/log.hpp"

namespace peerlab::overlay {

namespace {
// The offer's arg carries the task's work demand in megacycles.
constexpr double kMegaPerGiga = 1000.0;

transport::RetryPolicy offer_retry() {
  transport::RetryPolicy p;
  p.initial_timeout = 60.0;  // loaded peers answer slowly (Figure 2)
  p.backoff = 1.5;
  p.max_attempts = 4;
  return p;
}
}  // namespace

TaskService::TaskService(transport::Endpoint& endpoint, tasks::TaskExecutor& executor,
                         FileService& files, Reporter reporter)
    : endpoint_(endpoint),
      executor_(executor),
      files_(files),
      reporter_(std::move(reporter)),
      offer_channel_(endpoint, transport::MessageType::kTaskOffer,
                     transport::MessageType::kTaskAccept, offer_retry()),
      result_channel_(endpoint, transport::MessageType::kTaskResult,
                      transport::MessageType::kTaskResultAck, offer_retry()) {
  PEERLAB_CHECK_MSG(static_cast<bool>(reporter_), "task service needs a reporter");
  offer_channel_.serve([this](const transport::Message& m) { on_offer(m); });
  result_channel_.serve([this](const transport::Message& m) { on_result(m); });
}

TaskService::~TaskService() = default;

TaskId TaskService::submit(const TaskSubmission& submission, Completion done) {
  PEERLAB_CHECK_MSG(submission.executor.valid(), "submission needs an executor peer");
  PEERLAB_CHECK_MSG(submission.work > 0.0, "submission needs positive work");
  PEERLAB_CHECK_MSG(static_cast<bool>(done), "completion callback required");
  PEERLAB_CHECK_MSG(submission.executor != peer_of(endpoint_.node()),
                    "refusing self-submission");

  const TaskId id = task_ids_.next();
  const std::uint64_t corr = task_correlation(endpoint_.node(), id);
  PendingSubmission p;
  p.outcome.id = id;
  p.outcome.executor = submission.executor;
  p.outcome.submitted = sim().now();
  p.submission = submission;
  p.done = std::move(done);
  pending_.emplace(corr, std::move(p));

  if (submission.input_size > 0) {
    transport::FileTransferConfig ft;
    ft.file_size = submission.input_size;
    ft.parts = submission.input_parts;
    files_.send_file(submission.executor, ft,
                     [this, corr](const transport::TransferResult& result) {
                       auto it = pending_.find(corr);
                       if (it == pending_.end()) return;
                       it->second.outcome.input_sent = sim().now();
                       if (!result.complete) {
                         // No input, no task: report as not accepted.
                         it->second.outcome.completed = sim().now();
                         finish(corr);
                         return;
                       }
                       send_offer(corr);
                     });
  } else {
    auto it = pending_.find(corr);
    it->second.outcome.input_sent = it->second.outcome.submitted;
    send_offer(corr);
  }
  return id;
}

void TaskService::send_offer(std::uint64_t correlation) {
  auto it = pending_.find(correlation);
  PEERLAB_CHECK(it != pending_.end());
  const auto work_mega =
      static_cast<std::int64_t>(it->second.submission.work * kMegaPerGiga);
  offer_channel_.request(
      node_of(it->second.submission.executor), correlation, work_mega,
      [this, correlation](const transport::RequestOutcome& outcome) {
        auto pit = pending_.find(correlation);
        if (pit == pending_.end()) return;
        PendingSubmission& p = pit->second;
        p.outcome.offer_acked = sim().now();
        const bool accepted = outcome.ok && outcome.response.arg != 0;
        p.outcome.accepted = accepted;

        // Report what we observed about the executor peer: offer
        // response time and the acceptance decision.
        StatsDelta delta;
        delta.subject = p.submission.executor;
        if (outcome.ok) {
          delta.response_times.push_back(outcome.elapsed);
          (accepted ? delta.task_accept : delta.task_reject) = 1;
        } else {
          delta.msg_fail = 1;  // offer never answered
        }
        reporter_(std::move(delta));

        if (!accepted) {
          p.outcome.completed = sim().now();
          finish(correlation);
        }
        // Otherwise wait for the kTaskResult message.
      });
}

void TaskService::on_offer(const transport::Message& m) {
  // Idempotence: a retransmitted offer must not enqueue a second task.
  static_assert(sizeof(m.correlation) == 8);
  if (const auto seen = seen_offers_.find(m.correlation); seen != seen_offers_.end()) {
    endpoint_.reply(m, transport::MessageType::kTaskAccept, seen->second ? 1 : 0);
    return;
  }
  ++offers_received_;
  tasks::Task task;
  task.id = TaskId(m.correlation & 0xFFFFFFull);
  task.owner = peer_of(m.src);
  task.work = static_cast<double>(m.arg) / kMegaPerGiga;
  task.submitted = sim().now();

  const std::uint64_t corr = m.correlation;
  const NodeId submitter = m.src;
  const bool accepted =
      executor_.submit(task, [this, corr, submitter](const tasks::ExecutionReport& report) {
        if (report.state == tasks::TaskState::kRejected) {
          return;  // rejection was answered synchronously below
        }
        const bool ok = report.state == tasks::TaskState::kCompleted;
        // Report the execution record to the broker (about ourselves).
        StatsDelta delta;
        delta.subject = peer_of(endpoint_.node());
        (ok ? delta.exec_ok : delta.exec_fail) = 1;
        stats::TaskRecord record;
        record.task = report.task.id;
        record.peer = peer_of(endpoint_.node());
        record.submitted = report.accepted_at;
        record.started = report.started_at;
        record.finished = report.finished_at;
        record.ok = ok;
        record.work = report.task.work;
        delta.task_records.push_back(record);
        reporter_(std::move(delta));

        // Ship the result back (reliable).
        ++results_sent_;
        const auto exec_us = static_cast<std::int64_t>(report.execution_time() * 1e6);
        result_channel_.request(submitter, corr, ok ? exec_us : -1,
                                [](const transport::RequestOutcome&) {
                                  // Submitter unreachable: nothing more to do.
                                });
      });
  if (accepted) ++offers_accepted_;
  seen_offers_.emplace(m.correlation, accepted);
  endpoint_.reply(m, transport::MessageType::kTaskAccept, accepted ? 1 : 0);
}

void TaskService::on_result(const transport::Message& m) {
  endpoint_.reply(m, transport::MessageType::kTaskResultAck);
  auto it = pending_.find(m.correlation);
  if (it == pending_.end()) return;  // duplicate result
  PendingSubmission& p = it->second;
  p.outcome.ok = m.arg >= 0;
  p.outcome.completed = sim().now();
  finish(m.correlation);
}

void TaskService::finish(std::uint64_t correlation) {
  auto it = pending_.find(correlation);
  PEERLAB_CHECK(it != pending_.end());
  const TaskOutcome outcome = it->second.outcome;
  Completion done = std::move(it->second.done);
  pending_.erase(it);
  done(outcome);
}

}  // namespace peerlab::overlay
