#include "peerlab/overlay/broker.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "peerlab/common/check.hpp"
#include "peerlab/common/log.hpp"
#include "peerlab/obs/trace.hpp"

namespace peerlab::overlay {

using obs::trace::TraceKind;

BrokerPeer::BrokerPeer(transport::TransportFabric& fabric, NodeId node,
                       OverlayDirectories& directories, BrokerConfig config)
    : endpoint_(fabric.attach(node)),
      node_(node),
      directories_(directories),
      config_(config),
      rendezvous_(fabric.simulator()),
      discovery_(endpoint_, directories.rendezvous, peer_of(node), node),
      membership_(endpoint_, directories.groups, peer_of(node), node),
      history_(config.history_capacity),
      reputation_(config.reputation),
      econ_(config.econ),
      model_(std::make_unique<core::BlindModel>()),
      index_(core::CandidateIndex::Config{config.heartbeat_interval,
                                          config.offline_after_missed,
                                          /*max_inline_excludes=*/64}),
      select_channel_(endpoint_, transport::MessageType::kSelectRequest,
                      transport::MessageType::kSelectResponse) {
  PEERLAB_CHECK_MSG(config_.heartbeat_interval > 0.0, "heartbeat interval must be positive");
  // The index only serves undefended rankings: reputation penalties and
  // quarantine excludes re-order candidates petition by petition, so a
  // defended broker keeps the plain scan (and pays zero index upkeep).
  index_active_ = config_.selection_index && !config_.reputation.enabled;
  if (index_active_) {
    index_.set_history(&history_);
    history_.set_observer([this](PeerId peer) { index_.mark_dirty(peer); });
    index_.bind_model(model_.get());
  }
  directories_.rendezvous.enroll(node_, rendezvous_);
  directories_.groups.enroll(node_, groups_);
  discovery_.serve_rendezvous_queries();
  membership_.serve_registry();
  select_channel_.serve([this](const transport::Message& m) { serve_selection(m); });
  endpoint_.set_handler(transport::MessageType::kHeartbeat,
                        [this](const transport::Message& m) { on_heartbeat(m); });
  endpoint_.set_handler(transport::MessageType::kStatsReport,
                        [this](const transport::Message& m) { on_stats_report(m); });
}

BrokerPeer::~BrokerPeer() {
  directories_.rendezvous.withdraw(node_);
  directories_.groups.withdraw(node_);
  endpoint_.clear_handler(transport::MessageType::kHeartbeat);
  endpoint_.clear_handler(transport::MessageType::kStatsReport);
}

stats::PeerStatistics& BrokerPeer::statistics_for(PeerId peer) {
  auto it = statistics_.find(peer);
  if (it == statistics_.end()) {
    it = statistics_.emplace(peer, stats::PeerStatistics(config_.stats_window)).first;
  }
  // Every statistics mutation funnels through here; telling the index
  // keeps its cached evaluator keys coherent (O(1), re-key is lazy).
  if (index_active_) index_.note_statistics(peer, &it->second);
  return it->second;
}

const stats::PeerStatistics* BrokerPeer::find_statistics(PeerId peer) const {
  const auto it = statistics_.find(peer);
  return it == statistics_.end() ? nullptr : &it->second;
}

const BrokerPeer::ClientRecord* BrokerPeer::client(PeerId peer) const {
  const auto it = clients_.find(peer);
  return it == clients_.end() ? nullptr : &it->second;
}

std::vector<PeerId> BrokerPeer::registered_clients() const {
  std::vector<PeerId> out;
  out.reserve(clients_.size());
  for (const auto& [peer, record] : clients_) out.push_back(peer);
  return out;
}

bool BrokerPeer::online(PeerId peer) const {
  const ClientRecord* record = client(peer);
  if (record == nullptr) return false;
  const Seconds silence = sim().now() - record->last_seen;
  return silence <= config_.heartbeat_interval * config_.offline_after_missed;
}

void BrokerPeer::set_selection_model(std::unique_ptr<core::SelectionModel> model) {
  PEERLAB_CHECK_MSG(model != nullptr, "selection model must not be null");
  model_ = std::move(model);
  if (index_active_) index_.bind_model(model_.get());
}

std::vector<core::PeerSnapshot> BrokerPeer::snapshot_group() const {
  std::vector<core::PeerSnapshot> snapshots;
  snapshots.reserve(clients_.size());
  const auto& topology = endpoint_.fabric().network().topology();
  for (const auto& [peer, record] : clients_) {
    core::PeerSnapshot snap;
    snap.peer = peer;
    snap.node = record.node;
    const auto& profile = topology.node(record.node).profile();
    snap.hostname = profile.hostname;
    snap.cpu_ghz = profile.cpu_ghz;
    snap.price_per_cpu_second = profile.price_per_cpu_second;
    snap.online = online(peer);
    snap.idle = record.idle;
    snap.queued_tasks = record.backlog;
    snap.active_transfers = record.pending_transfers;
    const auto stats_it = statistics_.find(peer);
    snap.statistics = stats_it == statistics_.end() ? nullptr : &stats_it->second;
    snap.history = &history_;
    if (config_.reputation.enabled) {
      snap.reputation = reputation_.score(peer, sim().now());
    }
    snapshots.push_back(std::move(snap));
  }
  return snapshots;
}

PeerId BrokerPeer::select_peer(const core::SelectionContext& context) {
  const obs::WallProfiler::Span span(m_.profiler, m_.rank_site);
  const bool traced = trace_ != nullptr && context.trace.active();
  if (econ_.applies(context)) {
    const auto selected = econ_select(context, 1);
    return selected.empty() ? PeerId() : selected.front();
  }
  if (index_active_ && index_.try_select(context, sim().now(), 1, index_out_)) {
    if (traced) trace_->emit(node_, TraceKind::kIndexPull, context.trace, 1, index_out_.size());
    return index_out_.empty() ? PeerId() : index_out_.front();
  }
  const auto snapshots = snapshot_group();
  if (!config_.reputation.enabled) {
    const PeerId best = model_->select(snapshots, context);
    if (traced) {
      trace_->emit(node_, TraceKind::kSelectRank, context.trace, snapshots.size(),
                   best.valid() ? 1 : 0);
    }
    return best;
  }
  core::SelectionContext defended = context;
  defended.reputation_weight = config_.reputation.rank_penalty_weight;
  const std::size_t base_excludes = defended.exclude.size();
  reputation_.append_quarantined(sim().now(), defended.exclude);
  PeerId best = model_->select(snapshots, defended);
  if (!best.valid() && defended.exclude.size() > base_excludes) {
    // Graceful degradation: a quarantine that empties the candidate set
    // is lifted for this decision — a distrusted peer beats none.
    defended.exclude.resize(base_excludes);
    best = model_->select(snapshots, defended);
  }
  if (traced) {
    trace_->emit(node_, TraceKind::kSelectRank, context.trace, snapshots.size(),
                 best.valid() ? 1 : 0);
  }
  return best;
}

std::vector<PeerId> BrokerPeer::select_peers(const core::SelectionContext& context,
                                             std::size_t k) {
  const obs::WallProfiler::Span span(m_.profiler, m_.rank_site);
  const bool traced = trace_ != nullptr && context.trace.active();
  if (econ_.applies(context)) return econ_select(context, k);
  if (index_active_ && index_.try_select(context, sim().now(), k, index_out_)) {
    if (traced) {
      trace_->emit(node_, TraceKind::kIndexPull, context.trace, k, index_out_.size());
      audit_index_selection(context, k, index_out_);
    }
    return index_out_;
  }
  const auto snapshots = snapshot_group();
  if (!config_.reputation.enabled) {
    auto selected = model_->select_k(snapshots, context, k);
    if (traced) {
      trace_->emit(node_, TraceKind::kSelectRank, context.trace, snapshots.size(),
                   selected.size());
    }
    return selected;
  }
  core::SelectionContext defended = context;
  defended.reputation_weight = config_.reputation.rank_penalty_weight;
  const std::size_t base_excludes = defended.exclude.size();
  reputation_.append_quarantined(sim().now(), defended.exclude);
  if (traced && defended.exclude.size() > base_excludes) {
    trace_->emit(node_, TraceKind::kReputationExclude, context.trace,
                 defended.exclude.size() - base_excludes, 0);
  }
  auto selected = model_->select_k(snapshots, defended, k);
  if (selected.empty() && defended.exclude.size() > base_excludes) {
    defended.exclude.resize(base_excludes);
    selected = model_->select_k(snapshots, defended, k);
  }
  if (traced) {
    trace_->emit(node_, TraceKind::kSelectRank, context.trace, snapshots.size(),
                 selected.size());
  }
  return selected;
}

std::vector<PeerId> BrokerPeer::econ_select(const core::SelectionContext& context,
                                            std::size_t k) {
  // Economically-constrained petitions never take the index fast path:
  // admission needs the model's *full* ranking (the index's threshold
  // walk stops at k), and the index refuses these contexts anyway. The
  // reputation overlay is applied exactly as on the plain scan path so
  // a defended broker defends constrained petitions too.
  const bool traced = trace_ != nullptr && context.trace.active();
  const auto snapshots = snapshot_group();
  core::SelectionContext effective = context;
  const std::size_t base_excludes = effective.exclude.size();
  if (config_.reputation.enabled) {
    effective.reputation_weight = config_.reputation.rank_penalty_weight;
    reputation_.append_quarantined(sim().now(), effective.exclude);
    if (traced && effective.exclude.size() > base_excludes) {
      trace_->emit(node_, TraceKind::kReputationExclude, context.trace,
                   effective.exclude.size() - base_excludes, 0);
    }
  }
  std::vector<PeerId> ranking;
  model_->rank_into(snapshots, effective, ranking);
  if (ranking.empty() && effective.exclude.size() > base_excludes) {
    // Same graceful degradation as the plain path: a quarantine that
    // empties the candidate set is lifted for this decision.
    effective.exclude.resize(base_excludes);
    model_->rank_into(snapshots, effective, ranking);
  }
  const auto verdict = econ_.admit_and_rank(snapshots, effective, ranking);
  if (ranking.size() > k) ranking.resize(k);
  // Optimistic backlog: the answered peers are about to receive work
  // the next heartbeat cannot know about yet. Hint the engine so a
  // burst of constrained petitions spreads instead of piling onto the
  // one peer whose stale snapshot still looks idle.
  for (const PeerId peer : ranking) econ_.note_assignment(peer, sim().now());
  if (traced) {
    trace_->emit(node_, TraceKind::kEconRank, context.trace, verdict.feasible,
                 verdict.exhausted ? 0 : verdict.appraised);
    trace_->emit(node_, TraceKind::kSelectRank, context.trace, snapshots.size(),
                 ranking.size());
  }
  return ranking;
}

void BrokerPeer::audit_index_selection(const core::SelectionContext& context, std::size_t k,
                                       const std::vector<PeerId>& picked) {
  if (config_.selection_audit_period == 0) return;
  // The blind model's shared rotation cursor advances on every ranking;
  // re-running the scan would perturb the very selections under audit.
  // Blind index/scan equivalence is pinned by the differential harness
  // instead (tests/candidate_index_test.cpp).
  if (model_->name() == "blind") return;
  if (++audit_clock_ % config_.selection_audit_period != 0) return;
  const auto scanned = model_->select_k(snapshot_group(), context, k);
  trace_->emit(node_, TraceKind::kIndexAudit, context.trace, k, scanned == picked ? 1 : 0);
}

void BrokerPeer::attach_metrics(obs::MetricRegistry& registry, obs::WallProfiler* profiler) {
  m_.heartbeats = &registry.counter("overlay.heartbeats", "heartbeats");
  m_.stats_reports = &registry.counter("overlay.stats_reports", "reports");
  m_.selections_served = &registry.counter("overlay.selections_served", "selections");
  m_.federated_queries = &registry.counter("overlay.federated_queries", "queries");
  m_.profiler = profiler;
  m_.rank_site = profiler != nullptr ? &profiler->site("selection.rank") : nullptr;
  reputation_.attach_metrics(registry);
  econ_.attach_metrics(registry);
  index_.attach_metrics(registry);
}

void BrokerPeer::attach_trace(obs::trace::TraceRecorder* recorder) {
  trace_ = recorder;
  if (recorder == nullptr) {
    reputation_.set_quarantine_observer(nullptr);
    return;
  }
  reputation_.set_quarantine_observer([this](PeerId peer, Seconds until) {
    trace_->emit_ambient(node_, TraceKind::kQuarantine, peer.value(),
                         static_cast<std::uint64_t>(until));
    // A quarantine is the reputation defenses concluding a peer
    // misbehaved — exactly the moment the flight recorder is for.
    trace_->postmortem("quarantine", to_string(peer).c_str());
  });
}

void BrokerPeer::apply_stats(const StatsDelta& delta) { apply_stats(delta, PeerId()); }

void BrokerPeer::apply_stats(const StatsDelta& delta, PeerId reporter) {
  if (!delta.subject.valid()) return;
  ++reports_;
  if (m_.stats_reports != nullptr) m_.stats_reports->add(1);
  if (trace_ != nullptr && delta.trace.active()) {
    trace_->emit(node_, TraceKind::kStatsApply, delta.trace, delta.subject.value(),
                 reporter.value());
  }
  if (!config_.reputation.enabled) {
    apply_replicated(delta);
    if (delta_observer_) delta_observer_(delta);
    return;
  }
  const Seconds now = sim().now();
  StatsDelta vetted = delta;
  const bool self_report = reporter.valid() && reporter == delta.subject;
  if (self_report && (!delta.transfer_records.empty() || !delta.response_times.empty() ||
                      delta.file_done > 0 || delta.exec_ok > 0 || delta.msg_ok > 0)) {
    // Honest clients self-report only queue samples (outbox/inbox/
    // pending); outcome history about a peer comes from counterparties.
    // A self-report carrying outcome records is fabricated praise:
    // score the lie, drop those fields, keep the queue samples.
    reputation_.record_lie(reporter, now);
    vetted.transfer_records.clear();
    vetted.response_times.clear();
    vetted.file_done = 0;
    vetted.exec_ok = 0;
    vetted.msg_ok = 0;
  }
  if (!self_report) {
    // Counterparty-attributed outcomes feed the reputation score.
    for (int i = 0; i < vetted.file_fail; ++i) reputation_.record_failure(delta.subject, now);
    for (int i = 0; i < vetted.exec_fail; ++i) reputation_.record_failure(delta.subject, now);
    for (int i = 0; i < vetted.msg_fail; ++i) reputation_.record_failure(delta.subject, now);
    for (int i = 0; i < vetted.exec_ok; ++i) reputation_.record_success(delta.subject, now);
    for (const auto& record : vetted.transfer_records) {
      reputation_.record_transfer(delta.subject, record, now);
    }
  }
  apply_replicated(vetted);
  if (delta_observer_) delta_observer_(vetted);
}

void BrokerPeer::apply_replicated(const StatsDelta& delta) {
  if (!delta.subject.valid()) return;
  auto& s = statistics_for(delta.subject);
  const Seconds now = sim().now();
  for (int i = 0; i < delta.msg_ok; ++i) s.record_message(now, true);
  for (int i = 0; i < delta.msg_fail; ++i) s.record_message(now, false);
  for (int i = 0; i < delta.task_accept; ++i) s.record_task_accept(true);
  for (int i = 0; i < delta.task_reject; ++i) s.record_task_accept(false);
  for (int i = 0; i < delta.exec_ok; ++i) s.record_task_execution(true);
  for (int i = 0; i < delta.exec_fail; ++i) s.record_task_execution(false);
  for (int i = 0; i < delta.file_done; ++i) s.record_file(stats::FileOutcome::kCompleted);
  for (int i = 0; i < delta.file_cancel; ++i) s.record_file(stats::FileOutcome::kCancelled);
  for (int i = 0; i < delta.file_fail; ++i) s.record_file(stats::FileOutcome::kFailed);
  if (delta.outbox_sample >= 0.0) s.sample_outbox(delta.outbox_sample);
  if (delta.inbox_sample >= 0.0) s.sample_inbox(delta.inbox_sample);
  if (delta.pending_transfers >= 0) s.set_pending_transfers(delta.pending_transfers);
  for (const Seconds t : delta.response_times) {
    history_.record_response_time(delta.subject, t);
  }
  for (const auto& record : delta.task_records) history_.record_task(record);
  for (const auto& record : delta.transfer_records) history_.record_transfer(record);
}

void BrokerPeer::begin_session() {
  for (auto& [peer, s] : statistics_) s.begin_session();
  if (index_active_) index_.mark_all_dirty();
}

BrokerPeer::ReplicatedState BrokerPeer::export_state() const {
  ReplicatedState state;
  state.clients = clients_;
  state.statistics = statistics_;
  state.history = history_;
  return state;
}

void BrokerPeer::adopt_state(ReplicatedState state) {
  clients_ = std::move(state.clients);
  statistics_ = std::move(state.statistics);
  history_ = std::move(state.history);
  // HistoryStore assignment moves data only — this broker's mutation
  // observer stays installed — but every cached statistics pointer and
  // key is now stale: rebuild the index from the adopted registry.
  if (index_active_) rebuild_index();
}

void BrokerPeer::rebuild_index() {
  index_.clear();
  index_.set_history(&history_);
  history_.set_observer([this](PeerId peer) { index_.mark_dirty(peer); });
  index_.bind_model(model_.get());
  const auto& topology = endpoint_.fabric().network().topology();
  for (const auto& [peer, record] : clients_) {
    const auto& profile = topology.node(record.node).profile();
    const auto stats_it = statistics_.find(peer);
    index_.upsert_peer(peer, record.node, profile.hostname, profile.cpu_ghz,
                       profile.price_per_cpu_second,
                       stats_it == statistics_.end() ? nullptr : &stats_it->second,
                       record.last_seen, record.idle, record.backlog, record.pending_transfers);
  }
}

void BrokerPeer::on_heartbeat(const transport::Message& m) {
  ++heartbeats_;
  if (m_.heartbeats != nullptr) m_.heartbeats->add(1);
  const PeerId peer(m.correlation);
  auto [it, inserted] = clients_.try_emplace(peer);
  ClientRecord& record = it->second;
  if (inserted) {
    record.peer = peer;
    record.node = m.src;
    record.first_seen = sim().now();
    PEERLAB_LOG(kInfo, "broker") << "registered " << to_string(peer) << " on "
                                 << to_string(m.src);
  }
  record.last_seen = sim().now();
  record.backlog = static_cast<int>(m.seq);
  record.pending_transfers = static_cast<int>(m.arg / 2);
  record.idle = (m.arg % 2) == 1;
  if (index_active_) {
    const auto& profile =
        endpoint_.fabric().network().topology().node(record.node).profile();
    const auto stats_it = statistics_.find(peer);
    index_.upsert_peer(peer, record.node, profile.hostname, profile.cpu_ghz,
                       profile.price_per_cpu_second,
                       stats_it == statistics_.end() ? nullptr : &stats_it->second,
                       record.last_seen, record.idle, record.backlog, record.pending_transfers);
  }
}

void BrokerPeer::on_stats_report(const transport::Message& m) {
  const StatsDelta delta =
      directories_.stats_reports.claim(static_cast<std::uint64_t>(m.arg));
  apply_stats(delta, peer_of(m.src));
}

void BrokerPeer::federate_with(NodeId peer_broker) {
  PEERLAB_CHECK_MSG(peer_broker.valid() && peer_broker != node_,
                    "cannot federate with self or nothing");
  if (std::find(peer_brokers_.begin(), peer_brokers_.end(), peer_broker) !=
      peer_brokers_.end()) {
    return;
  }
  peer_brokers_.push_back(peer_broker);
  // Replace the plain local resolver with the federated one (idempotent
  // to re-install on every federate_with call).
  discovery_.serve_rendezvous_queries(
      [this](const jxta::AdvertisementQuery& query, std::int64_t hop,
             std::function<void(std::vector<jxta::Advertisement>)> done) {
        auto local = rendezvous_.query(query);
        // Forwarded queries (hop != 0) must not fan out again.
        if (!local.empty() || hop != 0 || peer_brokers_.empty()) {
          done(std::move(local));
          return;
        }
        ++federated_queries_;
        if (m_.federated_queries != nullptr) m_.federated_queries->add(1);
        forward_query(query, 0, std::make_shared<std::vector<jxta::Advertisement>>(),
                      std::move(done));
      });
}

void BrokerPeer::forward_query(const jxta::AdvertisementQuery& query, std::size_t peer_index,
                               std::shared_ptr<std::vector<jxta::Advertisement>> accumulated,
                               std::function<void(std::vector<jxta::Advertisement>)> done) {
  if (peer_index >= peer_brokers_.size()) {
    done(std::move(*accumulated));
    return;
  }
  // The discovery service's rendezvous pointer is only read while the
  // request is being issued; re-point, fire, restore.
  discovery_.set_rendezvous(peer_brokers_[peer_index]);
  discovery_.query_remote(
      query, /*hop=*/1,
      [this, query, peer_index, accumulated, done](std::vector<jxta::Advertisement> found) {
        for (auto& adv : found) accumulated->push_back(std::move(adv));
        if (!accumulated->empty()) {
          done(std::move(*accumulated));  // first non-empty hop wins
          return;
        }
        forward_query(query, peer_index + 1, accumulated, done);
      });
  discovery_.set_rendezvous(node_);
}

void BrokerPeer::serve_selection(const transport::Message& m) {
  ++selections_served_;
  if (m_.selections_served != nullptr) m_.selections_served->add(1);
  // Peek, not claim: the client's channel may retransmit this request.
  core::SelectionContext context;
  if (const auto* parked = directories_.selection_contexts.peek(m.correlation)) {
    context = *parked;
  }
  const auto k = static_cast<std::size_t>(std::max<std::int64_t>(1, m.arg));
  if (trace_ != nullptr && m.trace.active()) {
    // The broker-side view of the request, one hop downstream of the
    // client's kSelectRequest span (retransmissions repeat this event).
    trace_->emit(node_, TraceKind::kSelectServe, m.trace.hop(), k, m.src.value());
  }
  const auto selected = select_peers(context, k);
  if (auto* tracer = endpoint_.fabric().network().tracer()) {
    tracer->record(sim().now(), sim::TraceCategory::kSelection, "selection-served",
                   model_->name(), k, selected.size());
  }
  const std::uint64_t ticket = directories_.selections.park(selected);
  endpoint_.reply(m, transport::MessageType::kSelectResponse,
                  static_cast<std::int64_t>(ticket));
}

}  // namespace peerlab::overlay
