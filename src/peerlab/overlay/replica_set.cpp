#include "peerlab/overlay/replica_set.hpp"

#include <algorithm>
#include <utility>

#include "peerlab/common/check.hpp"
#include "peerlab/common/log.hpp"
#include "peerlab/obs/trace.hpp"

namespace peerlab::overlay {

using transport::Message;
using transport::MessageType;

ReplicaSet::ReplicaSet(transport::TransportFabric& fabric, ReplicaConfig config)
    : fabric_(fabric), config_(config) {
  PEERLAB_CHECK_MSG(config_.heartbeat_interval > 0.0, "beacon period must be positive");
  PEERLAB_CHECK_MSG(config_.failover_after_missed >= 1.0,
                    "failover threshold below one beacon period");
  PEERLAB_CHECK_MSG(config_.anti_entropy_interval > 0.0,
                    "anti-entropy period must be positive");
}

ReplicaSet::~ReplicaSet() {
  for (auto& member : members_) {
    member->heartbeat_timer.cancel();
    member->anti_entropy_timer.cancel();
    member->detector_timer.cancel();
    member->endpoint->clear_handler(MessageType::kReplicaHeartbeat);
    member->endpoint->clear_handler(MessageType::kReplicaSnapshot);
    member->endpoint->clear_handler(MessageType::kReplicaJoin);
    member->broker->set_delta_observer(nullptr);
  }
}

void ReplicaSet::add_primary(BrokerPeer& broker) {
  PEERLAB_CHECK_MSG(members_.empty(), "primary must be the first member");
  add_member(broker, /*as_primary=*/true);
}

void ReplicaSet::add_standby(BrokerPeer& broker) {
  PEERLAB_CHECK_MSG(!members_.empty(), "add the primary before standbys");
  add_member(broker, /*as_primary=*/false);
}

void ReplicaSet::add_member(BrokerPeer& broker, bool as_primary) {
  PEERLAB_CHECK_MSG(!started_, "membership is fixed once started");
  PEERLAB_CHECK_MSG(find(broker.node()) == nullptr, "broker already a member");
  auto member = std::make_unique<Member>();
  Member* raw = member.get();
  raw->broker = &broker;
  raw->endpoint = &fabric_.attach(broker.node());
  raw->delta_channel = std::make_unique<transport::ReliableChannel>(
      *raw->endpoint, MessageType::kReplicaDelta, MessageType::kReplicaDeltaAck,
      config_.delta_retry);
  raw->delta_channel->serve([this, raw](const Message& m) { on_delta(*raw, m); });
  raw->endpoint->set_handler(MessageType::kReplicaHeartbeat,
                             [this, raw](const Message& m) { on_heartbeat(*raw, m); });
  raw->endpoint->set_handler(MessageType::kReplicaSnapshot,
                             [this, raw](const Message& m) { on_snapshot(*raw, m); });
  raw->endpoint->set_handler(MessageType::kReplicaJoin,
                             [this, raw](const Message& m) { on_join(*raw, m); });
  if (as_primary) primary_index_ = members_.size();
  members_.push_back(std::move(member));
}

void ReplicaSet::start() {
  PEERLAB_CHECK_MSG(!started_, "already started");
  PEERLAB_CHECK_MSG(!members_.empty(), "a replica set needs a primary");
  started_ = true;
  const Seconds now = sim().now();
  for (auto& member : members_) member->primary_last_seen = now;
  Member& primary = current_primary();
  primary.broker->set_delta_observer(
      [this](const StatsDelta& delta) { stream_delta(delta); });
  arm_primary(primary);
  for (auto& member : members_) {
    if (member.get() == &primary) continue;
    Member* raw = member.get();
    raw->detector_timer = sim().schedule_daemon(config_.heartbeat_interval,
                                                [this, raw] { detector_tick(*raw); });
  }
}

BrokerPeer& ReplicaSet::primary() noexcept { return *current_primary().broker; }

NodeId ReplicaSet::primary_node() const noexcept {
  return members_[primary_index_]->broker->node();
}

bool ReplicaSet::is_primary(NodeId node) const noexcept {
  return !members_.empty() && primary_node() == node;
}

bool ReplicaSet::is_member(NodeId node) const noexcept {
  for (const auto& member : members_) {
    if (member->broker->node() == node) return true;
  }
  return false;
}

std::uint64_t ReplicaSet::applied_seq(NodeId node) const noexcept {
  for (const auto& member : members_) {
    if (member->broker->node() == node) return member->applied_seq;
  }
  return 0;
}

ReplicaSet::Member* ReplicaSet::find(NodeId node) noexcept {
  for (auto& member : members_) {
    if (member->broker->node() == node) return member.get();
  }
  return nullptr;
}

void ReplicaSet::attach_metrics(obs::MetricRegistry& registry) {
  m_.deltas_streamed = &registry.counter("overlay.replica.deltas_streamed", "deltas");
  m_.deltas_applied = &registry.counter("overlay.replica.deltas_applied", "deltas");
  m_.snapshots_sent = &registry.counter("overlay.replica.snapshots_sent", "snapshots");
  m_.snapshots_applied =
      &registry.counter("overlay.replica.snapshots_applied", "snapshots");
  m_.elections = &registry.counter("overlay.replica.elections", "elections");
  m_.rejoins = &registry.counter("overlay.replica.rejoins", "rejoins");
  obs::Histogram::Options lag_opts;
  lag_opts.lo = 1.0;  // deltas behind; 0 (fully caught up) underflows
  lag_opts.hi = 1e5;
  m_.lag_deltas = &registry.histogram("overlay.replica.lag_deltas", "deltas", lag_opts);
  obs::Histogram::Options failover_opts;
  failover_opts.lo = 1e-2;  // detection runs a few beacon periods
  failover_opts.hi = 1e4;
  m_.failover_time_s =
      &registry.histogram("overlay.replica.failover_time_s", "s", failover_opts);
  m_.staleness_at_election =
      &registry.histogram("overlay.replica.staleness_at_election", "deltas", lag_opts);
}

// ---- primary role -------------------------------------------------------

void ReplicaSet::stream_delta(const StatsDelta& delta) {
  Member& primary = current_primary();
  if (primary.down) return;
  ++stream_seq_;
  for (auto& member : members_) {
    Member* standby = member.get();
    if (standby == &primary || standby->down) continue;
    // One parked frame per standby: each claim is claim-once, which is
    // what makes retransmitted deltas idempotent at the receiver.
    const std::uint64_t ticket = delta_frames_.park({stream_seq_, delta});
    ++deltas_streamed_;
    if (m_.deltas_streamed != nullptr) m_.deltas_streamed->add(1);
    primary.delta_channel->request(
        standby->broker->node(), /*correlation=*/stream_seq_,
        /*arg=*/static_cast<std::int64_t>(ticket),
        [](const transport::RequestOutcome&) {
          // Lost deltas (retries exhausted against a down standby) are
          // healed by the next anti-entropy snapshot.
        });
  }
}

void ReplicaSet::heartbeat_tick(Member& member) {
  if (&member != &current_primary() || member.down) return;
  for (auto& other : members_) {
    if (other.get() == &member || other->down) continue;
    member.endpoint->send(other->broker->node(), MessageType::kReplicaHeartbeat,
                          /*correlation=*/epoch_, /*seq=*/stream_seq_);
  }
  member.heartbeat_timer = sim().schedule_daemon(config_.heartbeat_interval,
                                                 [this, &member] { heartbeat_tick(member); });
}

void ReplicaSet::anti_entropy_tick(Member& member) {
  if (&member != &current_primary() || member.down) return;
  for (auto& other : members_) {
    if (other.get() == &member || other->down) continue;
    send_snapshot_to(member, *other);
  }
  member.anti_entropy_timer = sim().schedule_daemon(
      config_.anti_entropy_interval, [this, &member] { anti_entropy_tick(member); });
}

void ReplicaSet::send_snapshot_to(Member& from, Member& to) {
  const std::uint64_t ticket =
      snapshot_frames_.park({stream_seq_, from.broker->export_state(), true});
  // Snapshots ride plain datagrams: one lost snapshot is healed by the
  // next interval, so retransmission machinery would buy nothing.
  from.endpoint->send(to.broker->node(), MessageType::kReplicaSnapshot,
                      /*correlation=*/stream_seq_, /*seq=*/0,
                      /*arg=*/static_cast<std::int64_t>(ticket));
  ++snapshots_sent_;
  if (m_.snapshots_sent != nullptr) m_.snapshots_sent->add(1);
}

void ReplicaSet::arm_primary(Member& member) {
  member.heartbeat_timer = sim().schedule_daemon(config_.heartbeat_interval,
                                                 [this, &member] { heartbeat_tick(member); });
  member.anti_entropy_timer = sim().schedule_daemon(
      config_.anti_entropy_interval, [this, &member] { anti_entropy_tick(member); });
}

void ReplicaSet::demote(Member& member) {
  member.heartbeat_timer.cancel();
  member.anti_entropy_timer.cancel();
  member.broker->set_delta_observer(nullptr);
}

// ---- standby role -------------------------------------------------------

void ReplicaSet::detector_tick(Member& member) {
  Member* raw = &member;
  member.detector_timer = sim().schedule_daemon(config_.heartbeat_interval,
                                                [this, raw] { detector_tick(*raw); });
  if (member.down || &member == &current_primary()) return;
  const Seconds silence = sim().now() - member.primary_last_seen;
  if (silence > config_.heartbeat_interval * config_.failover_after_missed) {
    elect(member, silence);
  }
}

void ReplicaSet::elect(Member& trigger, Seconds silence) {
  Member& old_primary = current_primary();
  // The most-caught-up live standby wins; sequence ties break towards
  // the lowest node id (a deterministic rule every member can compute).
  Member* winner = nullptr;
  for (auto& member : members_) {
    Member* candidate = member.get();
    if (candidate == &old_primary || candidate->down) continue;
    if (!fabric_.network().node_up(candidate->broker->node())) continue;
    if (winner == nullptr || candidate->applied_seq > winner->applied_seq ||
        (candidate->applied_seq == winner->applied_seq &&
         candidate->broker->node() < winner->broker->node())) {
      winner = candidate;
    }
  }
  if (winner == nullptr) return;  // nobody electable; retry next tick
  std::uint64_t best_seen = winner->applied_seq;
  for (const auto& member : members_) {
    best_seen = std::max(best_seen, member->primary_seq_seen);
  }
  const std::uint64_t staleness = best_seen - winner->applied_seq;

  const NodeId old_node = old_primary.broker->node();
  demote(old_primary);
  primary_index_ =
      static_cast<std::size_t>(std::find_if(members_.begin(), members_.end(),
                                            [winner](const auto& m) {
                                              return m.get() == winner;
                                            }) -
                               members_.begin());
  winner->detector_timer.cancel();
  winner->broker->set_delta_observer(
      [this](const StatsDelta& delta) { stream_delta(delta); });
  // The new primary continues the stream where its knowledge ends;
  // sequence numbers stay monotonic across the whole set's lifetime.
  stream_seq_ = std::max(stream_seq_, winner->applied_seq);
  ++epoch_;
  arm_primary(*winner);
  for (auto& member : members_) {
    if (member.get() == winner) continue;
    member->primary_last_seen = sim().now();  // grace for the new primary
  }
  ++elections_;
  if (m_.elections != nullptr) m_.elections->add(1);
  if (trace_ != nullptr) {
    trace_->emit_ambient(winner->broker->node(), obs::trace::TraceKind::kFailover,
                         old_node.value(), staleness);
  }
  if (m_.failover_time_s != nullptr) m_.failover_time_s->record(silence);
  if (m_.staleness_at_election != nullptr) {
    m_.staleness_at_election->record(static_cast<double>(staleness));
  }
  PEERLAB_LOG(kInfo, "replica") << "elected " << to_string(winner->broker->node())
                                << " to replace " << to_string(old_node) << " (silence "
                                << silence << " s, staleness " << staleness << ")";
  (void)trigger;
  if (failover_) {
    FailoverEvent event;
    event.old_primary = old_node;
    event.new_primary = winner->broker->node();
    event.at = sim().now();
    event.silence = silence;
    event.staleness = staleness;
    failover_(event);
  }
}

// ---- message handlers ---------------------------------------------------

void ReplicaSet::on_delta(Member& member, const Message& message) {
  if (member.down) return;
  DeltaFrame frame = delta_frames_.claim(static_cast<std::uint64_t>(message.arg));
  if (frame.seq != 0) {  // 0 = duplicate of an already-claimed ticket
    member.broker->apply_replicated(frame.delta);
    member.applied_seq = std::max(member.applied_seq, frame.seq);
    ++deltas_applied_;
    if (m_.deltas_applied != nullptr) m_.deltas_applied->add(1);
  }
  // Restate receiver state (idempotent under retransmission).
  member.endpoint->reply(message, MessageType::kReplicaDeltaAck,
                         static_cast<std::int64_t>(member.applied_seq));
}

void ReplicaSet::on_heartbeat(Member& member, const Message& message) {
  if (member.down) return;
  member.primary_last_seen = sim().now();
  member.primary_seq_seen = std::max(member.primary_seq_seen, message.seq);
  if (m_.lag_deltas != nullptr && message.seq >= member.applied_seq) {
    m_.lag_deltas->record(static_cast<double>(message.seq - member.applied_seq));
  }
}

void ReplicaSet::on_snapshot(Member& member, const Message& message) {
  if (member.down) return;
  SnapshotFrame frame = snapshot_frames_.claim(static_cast<std::uint64_t>(message.arg));
  if (!frame.valid || frame.seq < member.applied_seq) return;  // stale or unknown
  member.broker->adopt_state(std::move(frame.state));
  member.applied_seq = std::max(member.applied_seq, frame.seq);
  ++snapshots_applied_;
  if (m_.snapshots_applied != nullptr) m_.snapshots_applied->add(1);
}

void ReplicaSet::on_join(Member& member, const Message& message) {
  if (member.down || &member != &current_primary()) return;
  Member* joiner = find(message.src);
  if (joiner == nullptr || joiner->down || joiner == &member) return;
  send_snapshot_to(member, *joiner);
}

// ---- fault hooks --------------------------------------------------------

void ReplicaSet::notify_crash(NodeId node) {
  Member* member = find(node);
  if (member == nullptr || member->down) return;
  member->down = true;
  if (member == &current_primary()) {
    // Fencing stand-in: the dead primary's software stops acting at
    // once; standbys still only learn of the loss through silence.
    demote(*member);
  }
}

void ReplicaSet::notify_restart(NodeId node) {
  Member* member = find(node);
  if (member == nullptr || !member->down) return;
  member->down = false;
  member->primary_last_seen = sim().now();  // a stale detector must not fire
  if (member == &current_primary()) {
    // Blip shorter than the detection threshold: no election happened,
    // so the primary simply resumes its duties.
    member->broker->set_delta_observer(
        [this](const StatsDelta& delta) { stream_delta(delta); });
    arm_primary(*member);
    return;
  }
  // Durable state survives a reboot (applied_seq kept); the missed
  // window is healed by an on-demand snapshot from the primary.
  ++rejoins_;
  if (m_.rejoins != nullptr) m_.rejoins->add(1);
  if (started_ && !member->detector_timer.pending()) {
    Member* raw = member;
    raw->detector_timer = sim().schedule_daemon(config_.heartbeat_interval,
                                                [this, raw] { detector_tick(*raw); });
  }
  member->endpoint->send(primary_node(), MessageType::kReplicaJoin,
                         /*correlation=*/epoch_);
}

}  // namespace peerlab::overlay
