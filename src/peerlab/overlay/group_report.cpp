#include "peerlab/overlay/group_report.hpp"

#include <cstdio>
#include <sstream>

#include "peerlab/overlay/broker.hpp"

namespace peerlab::overlay {

GroupReport make_group_report(const BrokerPeer& broker) {
  GroupReport report;
  report.generated_at = broker.now();
  report.broker_node = broker.node();
  report.groups = broker.groups().group_count();
  report.heartbeats = broker.heartbeats_received();
  report.reports = broker.reports_applied();
  report.selections_served = broker.selections_served();

  const auto snapshots = broker.snapshot_group();
  report.registered = snapshots.size();
  for (const auto& snap : snapshots) {
    GroupReport::PeerLine line;
    line.peer = snap.peer;
    line.hostname = snap.hostname;
    line.online = snap.online;
    line.idle = snap.idle;
    line.backlog = snap.queued_tasks;
    line.pending_transfers = snap.active_transfers;
    report.online += snap.online ? 1 : 0;
    if (snap.statistics != nullptr) {
      line.msg_success_pct =
          snap.statistics->value(stats::Criterion::kMsgSuccessTotal, report.generated_at);
      line.task_exec_pct =
          snap.statistics->value(stats::Criterion::kTaskExecSuccessTotal, report.generated_at);
      line.file_sent_pct =
          snap.statistics->value(stats::Criterion::kFileSentTotal, report.generated_at);
    }
    line.mean_execution_time = broker.history().mean_execution_time(snap.peer);
    line.mean_response_time = broker.history().mean_response_time(snap.peer);
    line.mean_transfer_rate = broker.history().mean_transfer_rate(snap.peer);
    report.peers.push_back(std::move(line));
  }
  return report;
}

std::string GroupReport::render() const {
  std::ostringstream out;
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "group report @ t=%.1fs  broker=%s  peers=%zu (%zu online)  groups=%zu\n",
                generated_at, to_string(broker_node).c_str(), registered, online, groups);
  out << buffer;
  std::snprintf(buffer, sizeof(buffer),
                "traffic: %llu heartbeats, %llu stat reports, %llu selections served\n",
                static_cast<unsigned long long>(heartbeats),
                static_cast<unsigned long long>(reports),
                static_cast<unsigned long long>(selections_served));
  out << buffer;
  std::snprintf(buffer, sizeof(buffer), "%-28s %-7s %-5s %-7s %-6s %-6s %-6s %-9s %-9s\n",
                "peer", "online", "busy", "backlog", "msg%", "exec%", "file%", "resp(s)",
                "rate(Mb)");
  out << buffer;
  for (const auto& line : peers) {
    std::snprintf(buffer, sizeof(buffer),
                  "%-28s %-7s %-5s %-7d %-6.1f %-6.1f %-6.1f %-9s %-9s\n",
                  line.hostname.c_str(), line.online ? "yes" : "NO",
                  line.idle ? "no" : "yes", line.backlog, line.msg_success_pct,
                  line.task_exec_pct, line.file_sent_pct,
                  line.mean_response_time ? std::to_string(*line.mean_response_time).substr(0, 6).c_str()
                                          : "-",
                  line.mean_transfer_rate ? std::to_string(*line.mean_transfer_rate).substr(0, 6).c_str()
                                          : "-");
    out << buffer;
  }
  return out.str();
}

}  // namespace peerlab::overlay
