#pragma once

// ReplicaSet — primary/standby broker replication and failover.
//
// The paper's broker is a single point of failure: every selection
// model feeds on broker-kept history and statistics, so a broker crash
// mid-experiment destroys exactly the state that scheduling-based and
// data-evaluator selection need. A ReplicaSet keeps one primary broker
// and any number of standbys in sync over the ordinary control plane:
//
//  * Delta stream — every StatsDelta the primary applies is forwarded
//    to each standby as a sequence-numbered kReplicaDelta on a
//    reliable channel; the standby applies it through
//    BrokerPeer::apply_replicated and acks its cumulative applied
//    sequence.
//  * Anti-entropy — every `anti_entropy_interval` the primary ships a
//    full state snapshot (client registry + statistics + history) as a
//    plain datagram; a standby adopts it when it is at least as fresh
//    as what it has, healing any deltas lost to datagram loss or
//    downtime. A (re)joining standby asks for one immediately with
//    kReplicaJoin.
//  * Failure detection & election — the primary heartbeats its stream
//    sequence every `heartbeat_interval`; a standby silent-counted
//    past `failover_after_missed` intervals triggers an election. The
//    most-caught-up live standby (highest applied sequence, ties to
//    the lowest node id) is promoted: it starts streaming and
//    heartbeating, and the failover callback lets the deployment
//    re-home clients to it.
//
// The ReplicaSet object is an in-process coordinator (like
// OverlayDirectories): promotion atomically demotes the old primary,
// which stands in for the fencing/quorum machinery a real deployment
// would need. Consistency is deliberately best-effort — a standby's
// history may lag the primary by the deltas still in flight, so
// selection immediately after failover is as good as the replicated
// state, not the lost primary's (see DESIGN.md §12).

#include <functional>
#include <memory>
#include <vector>

#include "peerlab/obs/metrics.hpp"
#include "peerlab/overlay/broker.hpp"

namespace peerlab::overlay {

struct ReplicaConfig {
  /// Primary liveness beacon period. Much shorter than the client
  /// heartbeat: broker failover should complete before the file
  /// service's failover backoff gives up on a share.
  Seconds heartbeat_interval = 5.0;
  /// A standby that heard nothing for this many beacon periods starts
  /// an election.
  double failover_after_missed = 3.0;
  /// Full-state snapshot cadence (anti-entropy repair of lost deltas).
  Seconds anti_entropy_interval = 60.0;
  /// Retry policy of the delta stream. Deliberately tighter than the
  /// default control-plane policy: a delta that cannot be delivered in
  /// a few tries will be healed by the next snapshot anyway.
  transport::RetryPolicy delta_retry{/*initial_timeout=*/10.0, /*backoff=*/2.0,
                                     /*max_attempts=*/3};
};

class ReplicaSet {
 public:
  struct FailoverEvent {
    NodeId old_primary;
    NodeId new_primary;
    Seconds at = 0.0;
    /// How long the winner had heard nothing from the old primary.
    Seconds silence = 0.0;
    /// Stream sequences the winner is known to be missing at election.
    std::uint64_t staleness = 0;
  };
  using FailoverCallback = std::function<void(const FailoverEvent&)>;

  ReplicaSet(transport::TransportFabric& fabric, ReplicaConfig config = {});
  ~ReplicaSet();

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  /// Membership is fixed before start(): one primary, then standbys.
  void add_primary(BrokerPeer& broker);
  void add_standby(BrokerPeer& broker);

  /// Arms the daemons (delta observer, heartbeats, anti-entropy,
  /// failure detectors). Call once, after membership is complete.
  void start();

  /// Invoked after every election, once the new primary is serving.
  void set_failover_callback(FailoverCallback callback) {
    failover_ = std::move(callback);
  }

  [[nodiscard]] BrokerPeer& primary() noexcept;
  [[nodiscard]] NodeId primary_node() const noexcept;
  [[nodiscard]] bool is_primary(NodeId node) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool is_member(NodeId node) const noexcept;

  /// Highest delta sequence the primary has streamed.
  [[nodiscard]] std::uint64_t stream_seq() const noexcept { return stream_seq_; }
  /// Highest sequence `node` has applied (0 for non-members).
  [[nodiscard]] std::uint64_t applied_seq(NodeId node) const noexcept;
  [[nodiscard]] std::uint64_t deltas_streamed() const noexcept { return deltas_streamed_; }
  [[nodiscard]] std::uint64_t deltas_applied() const noexcept { return deltas_applied_; }
  [[nodiscard]] std::uint64_t snapshots_sent() const noexcept { return snapshots_sent_; }
  [[nodiscard]] std::uint64_t snapshots_applied() const noexcept {
    return snapshots_applied_;
  }
  [[nodiscard]] std::uint64_t elections() const noexcept { return elections_; }
  [[nodiscard]] std::uint64_t rejoins() const noexcept { return rejoins_; }

  /// Fault hooks (wired by Deployment::install_faults): a crashed
  /// member stops acting (a crashed primary stops streaming — its
  /// silence is what standbys detect); a restarted member rejoins as a
  /// standby and requests an immediate snapshot. If no election
  /// happened during a short primary blip, the restarted primary
  /// simply resumes.
  void notify_crash(NodeId node);
  void notify_restart(NodeId node);

  /// Registers the replication instruments (overlay.replica.*) in
  /// `registry`. Zero-cost when never called.
  void attach_metrics(obs::MetricRegistry& registry);

  /// Attaches (or detaches with nullptr) the causal-trace recorder;
  /// every election then lands as an ambient kFailover event
  /// (node = new primary, a = old primary, b = staleness).
  void set_trace(obs::trace::TraceRecorder* recorder) noexcept { trace_ = recorder; }

 private:
  struct DeltaFrame {
    std::uint64_t seq = 0;  // 0 marks an unknown/duplicate ticket claim
    StatsDelta delta;
  };
  struct SnapshotFrame {
    std::uint64_t seq = 0;
    BrokerPeer::ReplicatedState state;
    bool valid = false;
  };

  struct Member {
    BrokerPeer* broker = nullptr;
    transport::Endpoint* endpoint = nullptr;
    std::unique_ptr<transport::ReliableChannel> delta_channel;
    bool down = false;
    /// Standby view of the stream.
    std::uint64_t applied_seq = 0;
    std::uint64_t primary_seq_seen = 0;
    Seconds primary_last_seen = 0.0;
    /// Primary-role daemons.
    sim::EventHandle heartbeat_timer;
    sim::EventHandle anti_entropy_timer;
    /// Standby-role daemon.
    sim::EventHandle detector_timer;
  };

  /// Cached instrument handles; all null while detached.
  struct Metrics {
    obs::Counter* deltas_streamed = nullptr;
    obs::Counter* deltas_applied = nullptr;
    obs::Counter* snapshots_sent = nullptr;
    obs::Counter* snapshots_applied = nullptr;
    obs::Counter* elections = nullptr;
    obs::Counter* rejoins = nullptr;
    obs::Histogram* lag_deltas = nullptr;
    obs::Histogram* failover_time_s = nullptr;
    obs::Histogram* staleness_at_election = nullptr;
  };

  void add_member(BrokerPeer& broker, bool as_primary);
  [[nodiscard]] Member* find(NodeId node) noexcept;
  [[nodiscard]] Member& current_primary() noexcept { return *members_[primary_index_]; }

  void stream_delta(const StatsDelta& delta);
  void heartbeat_tick(Member& member);
  void anti_entropy_tick(Member& member);
  void detector_tick(Member& member);
  void send_snapshot_to(Member& from, Member& to);
  void elect(Member& trigger, Seconds silence);
  void arm_primary(Member& member);
  void demote(Member& member);

  void on_delta(Member& member, const transport::Message& message);
  void on_heartbeat(Member& member, const transport::Message& message);
  void on_snapshot(Member& member, const transport::Message& message);
  void on_join(Member& member, const transport::Message& message);

  [[nodiscard]] sim::Simulator& sim() noexcept { return fabric_.simulator(); }

  transport::TransportFabric& fabric_;
  ReplicaConfig config_;
  Metrics m_;
  obs::trace::TraceRecorder* trace_ = nullptr;
  std::vector<std::unique_ptr<Member>> members_;
  std::size_t primary_index_ = 0;
  FailoverCallback failover_;
  TicketStore<DeltaFrame> delta_frames_{8192};
  TicketStore<SnapshotFrame> snapshot_frames_{64};
  std::uint64_t stream_seq_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t deltas_streamed_ = 0;
  std::uint64_t deltas_applied_ = 0;
  std::uint64_t snapshots_sent_ = 0;
  std::uint64_t snapshots_applied_ = 0;
  std::uint64_t elections_ = 0;
  std::uint64_t rejoins_ = 0;
  bool started_ = false;
};

}  // namespace peerlab::overlay
