#pragma once

// File sharing & transmission primitive. Wraps the transport-level
// petition/part/confirm protocol and feeds the broker the observations
// the selection models need: per-peer petition times, achieved rates,
// and completed/cancelled/failed outcomes.

#include <functional>

#include "peerlab/overlay/directories.hpp"
#include "peerlab/transport/file_transfer.hpp"

namespace peerlab::overlay {

class FileService {
 public:
  /// `report` sends one StatsDelta towards the broker (the owning
  /// client provides its reporting path).
  using Reporter = std::function<void(StatsDelta)>;

  FileService(transport::Endpoint& endpoint, OverlayDirectories& directories,
              Reporter reporter);

  FileService(const FileService&) = delete;
  FileService& operator=(const FileService&) = delete;

  using Completion = std::function<void(const transport::TransferResult&)>;

  /// Sends a file to another peer; reports the outcome to the broker.
  TransferId send_file(PeerId dst, const transport::FileTransferConfig& config,
                       Completion done);

  /// Cancels an outgoing transfer (recorded as a cancellation).
  void cancel(TransferId id);

  /// Scatter distribution: the file's parts are spread round-robin
  /// over `peers` and each peer's share is sent as one concurrent
  /// multi-part transfer — the workload behind the paper's Figure 6.
  struct DistributionResult {
    bool complete = false;
    Seconds started = 0.0;
    Seconds finished = 0.0;
    struct PeerShare {
      PeerId peer;
      int parts = 0;
      Bytes bytes = 0;
      bool complete = false;
      Seconds petition_time = 0.0;
      Seconds transmission_time = 0.0;
    };
    std::vector<PeerShare> shares;

    [[nodiscard]] Seconds makespan() const noexcept { return finished - started; }
  };
  using DistributionCallback = std::function<void(const DistributionResult&)>;

  /// `base` supplies the protocol knobs; its file_size/parts fields
  /// are overridden per share. `peers` must be non-empty and distinct.
  void distribute(Bytes file_size, int parts, const std::vector<PeerId>& peers,
                  const transport::FileTransferConfig& base, DistributionCallback done);

  [[nodiscard]] transport::FileTransferPeer& transfer_peer() noexcept { return peer_; }
  [[nodiscard]] std::uint64_t transfers_started() const noexcept { return started_; }
  [[nodiscard]] std::uint64_t transfers_completed() const noexcept { return completed_; }

 private:
  transport::FileTransferPeer peer_;
  Reporter reporter_;
  std::set<std::uint64_t> cancelled_;  // TransferId values we cancelled
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace peerlab::overlay
