#pragma once

// File sharing & transmission primitive. Wraps the transport-level
// petition/part/confirm protocol and feeds the broker the observations
// the selection models need: per-peer petition times, achieved rates,
// and completed/cancelled/failed outcomes.
//
// distribute() is the scatter workload behind the paper's Figure 6,
// hardened for churn: when a share fails (petition retries exhausted,
// a part's retransmission budget spent, or the receiver crashing
// mid-transfer), the service asks its replacement provider — wired by
// ClientPeer to a broker re-petition that excludes every peer already
// used — for a substitute and re-sends the share after a capped
// exponential backoff. A share is only reported incomplete once its
// failover budget is spent or the broker has nobody left to offer.

#include <functional>
#include <memory>
#include <span>

#include "peerlab/mem/small_vector.hpp"
#include "peerlab/overlay/directories.hpp"
#include "peerlab/transport/file_transfer.hpp"

namespace peerlab::overlay {

/// Failover policy for FileService::distribute(); the defaults ride
/// out one broker heartbeat-aging period before giving up on a share.
struct DistributionOptions {
  /// Replacement peers a single share may consume before it is
  /// reported incomplete. 0 disables failover.
  int max_failovers_per_share = 3;
  /// Capped exponential backoff before each replacement petition
  /// (gives the broker time to age the dead peer out).
  Seconds backoff_initial = 10.0;
  double backoff_factor = 2.0;
  Seconds backoff_cap = 120.0;
};

class FileService {
 public:
  /// `report` sends one StatsDelta towards the broker (the owning
  /// client provides its reporting path).
  using Reporter = std::function<void(StatsDelta)>;

  FileService(transport::Endpoint& endpoint, OverlayDirectories& directories,
              Reporter reporter);

  FileService(const FileService&) = delete;
  FileService& operator=(const FileService&) = delete;

  using Completion = std::function<void(const transport::TransferResult&)>;

  /// Sends a file to another peer; reports the outcome to the broker.
  TransferId send_file(PeerId dst, const transport::FileTransferConfig& config,
                       Completion done);

  /// Cancels an outgoing transfer (recorded as a cancellation). A no-op
  /// for unknown or already-finished transfers.
  void cancel(TransferId id);

  /// Scatter distribution: the file's parts are spread round-robin
  /// over `peers` and each peer's share is sent as one concurrent
  /// multi-part transfer — the workload behind the paper's Figure 6.
  struct DistributionResult {
    bool complete = false;
    Seconds started = 0.0;
    Seconds finished = 0.0;
    /// Failed shares handed to a replacement peer (0 on a clean run).
    int failovers = 0;
    struct PeerShare {
      /// Peer that finally held (or last attempted) the share.
      PeerId peer;
      /// Peer the share was first assigned to (== peer when no failover).
      PeerId original;
      int parts = 0;
      Bytes bytes = 0;
      bool complete = false;
      /// Replacement attempts consumed by this share.
      int failovers = 0;
      Seconds petition_time = 0.0;
      Seconds transmission_time = 0.0;
    };
    std::vector<PeerShare> shares;

    [[nodiscard]] Seconds makespan() const noexcept { return finished - started; }
  };
  using DistributionCallback = std::function<void(const DistributionResult&)>;

  /// Asks the overlay for a substitute peer able to take a failed
  /// share of `share_bytes`, never one of `exclude`; answers an
  /// invalid PeerId when nobody qualifies. ClientPeer installs a
  /// broker-backed provider; without one, failover is disabled. The
  /// exclusion list is a view into the distribution's bookkeeping —
  /// copy it if the provider needs it past the call. `trace` is the
  /// failed share's causal context (inactive = untraced): the
  /// replacement petition rides the same chain, so a postmortem shows
  /// the failed share AND the selection that re-homed it.
  using ReplacementProvider = std::function<void(
      Bytes share_bytes, std::span<const PeerId> exclude,
      const obs::trace::TraceContext& trace, std::function<void(PeerId)> done)>;
  void set_replacement_provider(ReplacementProvider provider) {
    replacement_ = std::move(provider);
  }

  /// `base` supplies the protocol knobs; its file_size/parts fields
  /// are overridden per share. `peers` must be non-empty and distinct.
  void distribute(Bytes file_size, int parts, const std::vector<PeerId>& peers,
                  const transport::FileTransferConfig& base, DistributionCallback done,
                  DistributionOptions options = DistributionOptions());

  [[nodiscard]] transport::FileTransferPeer& transfer_peer() noexcept { return peer_; }
  [[nodiscard]] std::uint64_t transfers_started() const noexcept { return started_; }
  [[nodiscard]] std::uint64_t transfers_completed() const noexcept { return completed_; }
  /// Shares re-homed to a replacement peer across all distributions.
  [[nodiscard]] std::uint64_t failovers_attempted() const noexcept { return failovers_; }
  /// Outstanding cancellation markers (bounded by in-flight transfers).
  [[nodiscard]] std::size_t pending_cancellations() const noexcept {
    return cancelled_.size();
  }

  /// Registers the distribution instruments (failovers, backoff
  /// retries, per-distribution makespan) in `registry` and the wrapped
  /// transfer peer's counters alongside. Zero-cost when never called.
  void attach_metrics(obs::MetricRegistry& registry);

  /// Attaches (or detaches with nullptr) the causal-trace recorder and
  /// forwards it to the wrapped transfer peer. Every subsequent
  /// distribute() then mints a fresh TraceId and the whole fan-out —
  /// shares, failovers, transfers, stats feedback — rides that chain.
  void attach_trace(obs::trace::TraceRecorder* recorder) noexcept {
    trace_ = recorder;
    peer_.attach_trace(recorder);
  }

 private:
  /// Cached instrument handles; all null while detached.
  struct Metrics {
    obs::Counter* distributions = nullptr;
    obs::Counter* distributions_complete = nullptr;
    obs::Counter* failovers = nullptr;
    obs::Counter* backoff_retries = nullptr;
    obs::Histogram* makespan_s = nullptr;
  };

  struct DistributionState;

  void launch_share(const std::shared_ptr<DistributionState>& state, std::size_t index);
  void share_finished(const std::shared_ptr<DistributionState>& state, std::size_t index,
                      const transport::TransferResult& result);
  void finalize_share(const std::shared_ptr<DistributionState>& state, std::size_t index);

  [[nodiscard]] sim::Simulator& sim() noexcept;
  [[nodiscard]] net::FlowScheduler& flows() noexcept;

  transport::Endpoint& endpoint_;
  transport::FileTransferPeer peer_;
  Metrics m_;
  obs::trace::TraceRecorder* trace_ = nullptr;
  Reporter reporter_;
  ReplacementProvider replacement_;
  std::set<std::uint64_t> cancelled_;  // TransferId values we cancelled
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failovers_ = 0;
};

}  // namespace peerlab::overlay
