#include "peerlab/overlay/client.hpp"

#include <algorithm>
#include <utility>

#include "peerlab/common/check.hpp"
#include "peerlab/obs/trace.hpp"

namespace peerlab::overlay {

using obs::trace::TraceKind;

const char* to_string(ClientKind kind) noexcept {
  switch (kind) {
    case ClientKind::kSimpleClient: return "simpleclient";
    case ClientKind::kGuiClient: return "client";
  }
  return "?";
}

ClientPeer::ClientPeer(transport::TransportFabric& fabric, NodeId node, NodeId broker_node,
                       OverlayDirectories& directories, ClientConfig config)
    : endpoint_(fabric.attach(node)),
      node_(node),
      broker_node_(broker_node),
      directories_(directories),
      config_(config),
      discovery_(endpoint_, directories.rendezvous, peer_of(node), broker_node),
      pipes_(endpoint_, discovery_, directories.pipes),
      membership_(endpoint_, directories.groups, peer_of(node), broker_node),
      executor_(fabric.simulator(), fabric.network().topology().node(node), config.executor),
      select_channel_(endpoint_, transport::MessageType::kSelectRequest,
                      transport::MessageType::kSelectResponse) {
  PEERLAB_CHECK_MSG(config_.heartbeat_interval > 0.0, "heartbeat interval must be positive");
  PEERLAB_CHECK_MSG(node != broker_node, "client must not share the broker's node");
  auto reporter = [this](StatsDelta delta) { report(std::move(delta)); };
  files_ = std::make_unique<FileService>(endpoint_, directories, reporter);
  task_service_ = std::make_unique<TaskService>(endpoint_, executor_, *files_, reporter);
  messaging_ = std::make_unique<MessagingService>(endpoint_, reporter);
  // Failover path: a failed distribution share re-petitions our broker
  // for one substitute, excluding every peer the distribution already
  // touched (and ourselves). Selection requests ride the reliable
  // select channel, so a bounded broker outage only delays the answer.
  files_->set_replacement_provider(
      [this](Bytes share_bytes, std::span<const PeerId> exclude,
             const obs::trace::TraceContext& trace, std::function<void(PeerId)> done) {
        core::SelectionContext context;
        context.now = sim().now();
        context.purpose = core::SelectionContext::Purpose::kFileTransfer;
        context.payload_size = share_bytes;
        context.exclude.assign(exclude.begin(), exclude.end());
        context.exclude.push_back(id());
        // The replacement petition rides the failed share's chain, so
        // one trace id covers the death AND the re-homing.
        context.trace = trace;
        request_selection(context, 1,
                          [done = std::move(done)](std::vector<PeerId> peers) {
                            done(peers.empty() ? PeerId() : peers.front());
                          });
      });
}

ClientPeer::~ClientPeer() { heartbeat_timer_.cancel(); }

void ClientPeer::start() {
  if (started_) return;
  started_ = true;
  heartbeat();
}

void ClientPeer::stop() {
  started_ = false;
  heartbeat_timer_.cancel();
}

void ClientPeer::heartbeat() {
  if (!started_) return;
  ++heartbeats_sent_;
  const auto& flows = endpoint_.fabric().network().flows();
  const int pending = flows.downloads_at(node_);
  const bool idle = executor_.idle();
  int backlog = executor_.backlog();
  double outbox = flows.uploads_at(node_);
  double inbox = pending;
  int pending_report = pending;
  bool idle_report = idle;
  if (misreport_active_) {
    // Under-reporter: the wire carries a scaled-down picture of the
    // true load; the executor and flows underneath stay honest.
    backlog = static_cast<int>(static_cast<double>(backlog) * misreport_.load_factor);
    outbox *= misreport_.load_factor;
    inbox *= misreport_.load_factor;
    pending_report =
        static_cast<int>(static_cast<double>(pending_report) * misreport_.load_factor);
    if (misreport_.always_idle) {
      idle_report = true;
      backlog = 0;
      pending_report = 0;
      outbox = 0.0;
      inbox = 0.0;
    }
    ++misreports_sent_;
    if (m_.misreports != nullptr) m_.misreports->add(1);
  }
  endpoint_.send(broker_node_, transport::MessageType::kHeartbeat,
                 /*correlation=*/id().value(),
                 /*seq=*/static_cast<std::uint64_t>(backlog),
                 /*arg=*/static_cast<std::int64_t>(pending_report) * 2 + (idle_report ? 1 : 0));

  // Self-observed queue pressure rides a stats report.
  StatsDelta self;
  self.subject = id();
  self.outbox_sample = outbox;
  self.inbox_sample = inbox;
  self.pending_transfers = pending_report;
  report(std::move(self));

  if (misreport_active_ && misreport_.fabricate_praise > 0) {
    // Stats liar: a self-praise delta claiming fast completed
    // transfers and instant responses. An undefended broker swallows
    // it into history; a defended one scores it as a protocol
    // violation (honest clients never self-report outcome fields).
    StatsDelta praise;
    praise.subject = id();
    praise.file_done = misreport_.fabricate_praise;
    for (int i = 0; i < misreport_.fabricate_praise; ++i) {
      stats::TransferRecord rec;
      rec.peer = id();
      rec.size = static_cast<Bytes>(kMegabyte);
      rec.duration = 8.0 / std::max(misreport_.fabricated_rate, 1e-6);
      rec.petition_time = 0.01;
      rec.ok = true;
      praise.transfer_records.push_back(rec);
      praise.response_times.push_back(0.01);
    }
    ++misreports_sent_;
    if (m_.misreports != nullptr) m_.misreports->add(1);
    report(std::move(praise));
  }

  publish_advert();
  heartbeat_timer_ =
      sim().schedule_daemon(config_.heartbeat_interval, [this] { heartbeat(); });
}

void ClientPeer::set_misreport_profile(const MisreportProfile& profile) {
  misreport_ = profile;
  misreport_active_ = profile.load_factor != 1.0 || profile.always_idle ||
                      profile.fabricate_praise > 0;
}

void ClientPeer::publish_advert() {
  const auto& profile =
      endpoint_.fabric().network().topology().node(node_).profile();
  jxta::Advertisement adv;
  adv.kind = jxta::AdvertisementKind::kPeer;
  adv.name = profile.hostname;
  adv.home = node_;
  adv.attributes["cpu_ghz"] = std::to_string(profile.cpu_ghz);
  adv.attributes["price"] = std::to_string(profile.price_per_cpu_second);
  adv.attributes["role"] = to_string(config_.kind);
  discovery_.publish(std::move(adv), config_.advert_lifetime);
}

void ClientPeer::rehome(NodeId new_broker) {
  PEERLAB_CHECK_MSG(new_broker.valid() && new_broker != node_,
                    "client must re-home to a different node");
  const NodeId old_broker = broker_node_;
  broker_node_ = new_broker;
  discovery_.set_rendezvous(new_broker);
  membership_.set_broker(new_broker);
  // Announce immediately so the new broker registers us without
  // waiting a full heartbeat period.
  if (started_) {
    heartbeat_timer_.cancel();
    heartbeat();
  }
  // Selection petitions still in flight towards the old broker would
  // otherwise burn their whole retry budget against a dead node; fail
  // them now — request_selection's outcome handler re-issues each one
  // against the new broker (broker_node_ is already updated above).
  if (old_broker != new_broker) {
    if (trace_ != nullptr) {
      trace_->emit_ambient(node_, TraceKind::kRehome, new_broker.value(), old_broker.value());
    }
    select_channel_.fail_pending_to(old_broker);
  }
}

void ClientPeer::attach_trace(obs::trace::TraceRecorder* recorder) noexcept {
  trace_ = recorder;
  files_->attach_trace(recorder);
}

void ClientPeer::attach_metrics(obs::MetricRegistry& registry) {
  m_.selections_requested = &registry.counter("overlay.selections_requested", "requests");
  m_.selection_failures = &registry.counter("overlay.selection_failures", "requests");
  m_.selection_reissues = &registry.counter("overlay.selection_reissues", "requests");
  m_.misreports = &registry.counter("overlay.misreports", "reports");
  obs::Histogram::Options latency_opts;
  latency_opts.lo = 1e-3;  // a selection round trip runs ms .. minutes
  latency_opts.hi = 1e4;
  m_.selection_latency_s =
      &registry.histogram("overlay.selection.latency_s", "s", latency_opts);
  files_->attach_metrics(registry);
}

void ClientPeer::request_selection(const core::SelectionContext& context, std::size_t k,
                                   SelectionCallback done) {
  PEERLAB_CHECK_MSG(static_cast<bool>(done), "selection callback required");
  if (m_.selections_requested != nullptr) m_.selections_requested->add(1);
  const Seconds begun = sim().now();
  const NodeId issued_to = broker_node_;
  // Each issue (and each re-issue after failover) opens its own span on
  // the workload's chain; the broker and the watchdog key on it.
  obs::trace::TraceContext req;
  if (trace_ != nullptr && context.trace.active()) {
    req = trace_->child_of(context.trace);
    trace_->emit(node_, TraceKind::kSelectRequest, req, k, broker_node_.value(),
                 context.trace.span);
  }
  core::SelectionContext parked = context;
  if (req.active()) parked.trace = req;
  const std::uint64_t context_ticket = directories_.selection_contexts.park(std::move(parked));
  select_channel_.request(
      broker_node_, context_ticket, static_cast<std::int64_t>(k), req,
      [this, begun, issued_to, context, k, context_ticket, req,
       done = std::move(done)](const transport::RequestOutcome& outcome) mutable {
        directories_.selection_contexts.release(context_ticket);
        const bool traced = trace_ != nullptr && req.active();
        if (!outcome.ok) {
          if (traced) {
            trace_->emit(node_, TraceKind::kSelectFail, req,
                         static_cast<std::uint64_t>(outcome.attempts), issued_to.value());
          }
          // Broker failover: the petition died against a broker we have
          // since re-homed away from — re-issue it against the current
          // one (selection is served there from replicated history).
          if (broker_node_ != issued_to) {
            ++selection_reissues_;
            if (m_.selection_reissues != nullptr) m_.selection_reissues->add(1);
            if (traced) {
              trace_->emit(node_, TraceKind::kSelectReissue, req, k, broker_node_.value());
            }
            request_selection(context, k, std::move(done));
            return;
          }
          if (m_.selection_failures != nullptr) m_.selection_failures->add(1);
          done({});
          return;
        }
        if (m_.selection_latency_s != nullptr) {
          m_.selection_latency_s->record(sim().now() - begun);
        }
        auto peers = directories_.selections.claim(
            static_cast<std::uint64_t>(outcome.response.arg));
        if (traced) {
          trace_->emit(node_, TraceKind::kSelectDeliver, req, peers.size(),
                       static_cast<std::uint64_t>(outcome.attempts));
        }
        done(std::move(peers));
      });
}

void ClientPeer::report(StatsDelta delta) {
  const obs::trace::TraceContext ctx = delta.trace;
  const PeerId subject = delta.subject;
  const std::uint64_t ticket = directories_.stats_reports.park(std::move(delta));
  if (trace_ != nullptr && ctx.active()) {
    trace_->emit(node_, TraceKind::kStatsReport, ctx, subject.value(), ticket);
  }
  endpoint_.send(broker_node_, transport::MessageType::kStatsReport, /*correlation=*/0, 0,
                 static_cast<std::int64_t>(ticket), ctx);
}

}  // namespace peerlab::overlay
