#pragma once

// ReputationBook — broker-side observed-outcome reputation.
//
// The five selection models trust what peers advertise; a free-rider
// that accepts shares and never confirms them, or a client that
// heartbeats "idle, empty queues" while saturated, games every one of
// them. The book defends with signals the broker can *verify*:
// attributed share failures (failovers, aborted transfers, unanswered
// petitions), attributed successes, measured-vs-track-record transfer
// throughput from sender-verified TransferRecords, and protocol
// violations in the reporting path (a peer praising itself with
// history fields only counterparties may report).
//
// Scores live in [0, 1] (1 = spotless) and decay exponentially toward
// neutral between observations, so a slandered or recovered peer earns
// its way back. A score crossing `quarantine_below` quarantines the
// peer for `quarantine_duration`; expiry lifts the score to a
// probation value rather than full trust. Everything is a
// deterministic function of the observation sequence — no RNG — so
// seeded runs replay bit-for-bit.

#include <unordered_map>
#include <vector>

#include <functional>

#include "peerlab/common/ids.hpp"
#include "peerlab/common/units.hpp"
#include "peerlab/obs/metrics.hpp"
#include "peerlab/stats/history.hpp"

namespace peerlab::overlay {

struct ReputationConfig {
  /// Master defense toggle. Off (the default) means the book is never
  /// updated or consulted: selection, statistics and history behave
  /// bit-identically to a build without the subsystem.
  bool enabled = false;
  /// Score of a never-observed peer.
  double initial = 1.0;
  /// Subtracted on an attributed failure (failed share, failed
  /// message, failed execution).
  double failure_penalty = 0.25;
  /// Added back on an attributed success (completed share/execution).
  double success_reward = 0.05;
  /// Subtracted when a reporter praises itself with counterparty-only
  /// history fields (transfer records, response times, completions).
  double lie_penalty = 0.4;
  /// A completed transfer whose measured rate falls below
  /// `shortfall_threshold` x the peer's own rate track record counts
  /// as a throttle; `shortfall_penalty` is subtracted.
  double shortfall_threshold = 0.5;
  double shortfall_penalty = 0.15;
  /// Quarantine trigger and duration; expiry lifts the score to
  /// `probation_score` (not full trust).
  double quarantine_below = 0.3;
  Seconds quarantine_duration = 900.0;
  double probation_score = 0.5;
  /// Half-life of the decay toward neutral (1.0) between observations;
  /// 0 disables decay.
  Seconds decay_half_life = 3600.0;
  /// The SelectionContext::reputation_weight a defended broker applies
  /// when ranking (see core/snapshot.hpp).
  double rank_penalty_weight = 2.0;
};

class ReputationBook {
 public:
  explicit ReputationBook(ReputationConfig config = {}) : config_(config) {}

  // ---- observation feed ----
  void record_success(PeerId peer, Seconds now);
  void record_failure(PeerId peer, Seconds now);
  /// Protocol violation in the reporting path (self-praise).
  void record_lie(PeerId peer, Seconds now);
  /// Sender-verified transfer outcome: failures penalize, completions
  /// reward — unless the measured rate falls far below the peer's own
  /// track record, which counts as a throttle.
  void record_transfer(PeerId peer, const stats::TransferRecord& record, Seconds now);

  // ---- queries ----
  /// Decayed score at `now`; `initial` for unknown peers.
  [[nodiscard]] double score(PeerId peer, Seconds now) const;
  [[nodiscard]] bool quarantined(PeerId peer, Seconds now) const;
  /// Appends every currently-quarantined peer to `out`.
  void append_quarantined(Seconds now, std::vector<PeerId>& out) const;

  [[nodiscard]] const ReputationConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t failures_recorded() const noexcept { return failures_; }
  [[nodiscard]] std::uint64_t successes_recorded() const noexcept { return successes_; }
  [[nodiscard]] std::uint64_t lies_recorded() const noexcept { return lies_; }
  [[nodiscard]] std::uint64_t shortfalls_recorded() const noexcept { return shortfalls_; }
  [[nodiscard]] std::uint64_t quarantines_imposed() const noexcept { return quarantines_; }

  /// Registers the book's counters in `registry` (shared by name across
  /// brokers of a deployment). Zero-cost when never called.
  void attach_metrics(obs::MetricRegistry& registry);

  /// Observer fired the instant a quarantine is imposed (peer, expiry).
  /// The broker's trace attachment uses this to put the decision on
  /// record and trigger the flight recorder; nullptr detaches.
  using QuarantineObserver = std::function<void(PeerId peer, Seconds until)>;
  void set_quarantine_observer(QuarantineObserver observer) {
    quarantine_observer_ = std::move(observer);
  }

 private:
  struct Entry {
    double value = 1.0;
    Seconds stamp = 0.0;
    /// 0 = never quarantined.
    Seconds quarantine_until = 0.0;
    /// EWMA of measured transfer rates; <= 0 = no observation yet.
    MbitPerSec rate_ewma = 0.0;
  };

  /// Cached instrument handles; all null while detached.
  struct Metrics {
    obs::Counter* failures = nullptr;
    obs::Counter* successes = nullptr;
    obs::Counter* lies = nullptr;
    obs::Counter* shortfalls = nullptr;
    obs::Counter* quarantines = nullptr;
  };

  /// The entry's score projected to `now`: probation lift on
  /// quarantine expiry, then exponential decay toward neutral.
  [[nodiscard]] double projected(const Entry& entry, Seconds now) const;
  /// Decays the entry to `now`, applies `delta`, arms quarantine when
  /// the result crosses the threshold.
  void adjust(PeerId peer, Seconds now, double delta);

  ReputationConfig config_;
  Metrics m_;
  QuarantineObserver quarantine_observer_;
  std::unordered_map<PeerId, Entry> entries_;
  std::uint64_t failures_ = 0;
  std::uint64_t successes_ = 0;
  std::uint64_t lies_ = 0;
  std::uint64_t shortfalls_ = 0;
  std::uint64_t quarantines_ = 0;
};

}  // namespace peerlab::overlay
