#pragma once

// Instant communication primitive (JXTA-Overlay's peer-to-peer chat).
// Reliable at-least-once delivery with app-level ack; outcomes feed the
// broker's "percentage of successfully sent messages" criteria for the
// *destination* peer — an unresponsive peer earns a bad messaging
// record, which the data evaluator then sees.

#include <functional>

#include "peerlab/overlay/directories.hpp"
#include "peerlab/transport/reliable_channel.hpp"

namespace peerlab::overlay {

class MessagingService {
 public:
  using Reporter = std::function<void(StatsDelta)>;
  /// Invoked for every chat that arrives at this peer.
  using Listener = std::function<void(PeerId from, std::int64_t tag)>;

  MessagingService(transport::Endpoint& endpoint, Reporter reporter);

  MessagingService(const MessagingService&) = delete;
  MessagingService& operator=(const MessagingService&) = delete;

  void set_listener(Listener listener) { listener_ = std::move(listener); }

  using SendCallback = std::function<void(bool delivered, Seconds rtt)>;

  /// Sends one instant message; `done` fires once (delivered or not).
  void send(PeerId dst, std::int64_t tag, SendCallback done);

  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t received() const noexcept { return received_; }

 private:
  transport::Endpoint& endpoint_;
  Reporter reporter_;
  transport::ReliableChannel chat_channel_;
  Listener listener_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t received_ = 0;
};

}  // namespace peerlab::overlay
