#pragma once

// Task management primitive: "users/applications on top of the overlay
// submit executable tasks and receive results in turn".
//
// Submission flow (both ends of the wire are TaskService instances):
//
//   submitter                         executor
//   ---------                         --------
//   [input file via FileService]  ->  receives file
//   task offer (reliable)         ->  queue accept/reject
//               <- accept/reject ack
//   ...                               executes (TaskExecutor)
//               <- task result (reliable)
//   reports acceptance + turnaround   reports execution record
//   to broker                         to broker

#include <functional>
#include <map>

#include "peerlab/overlay/file_service.hpp"
#include "peerlab/tasks/executor.hpp"
#include "peerlab/transport/reliable_channel.hpp"

namespace peerlab::overlay {

struct TaskSubmission {
  PeerId executor;
  GigaCycles work = 0.0;
  /// Input payload shipped (16-part granularity) before the offer.
  Bytes input_size = 0;
  /// Parts used for the input transfer.
  int input_parts = 16;
};

struct TaskOutcome {
  TaskId id;
  PeerId executor;
  bool accepted = false;
  bool ok = false;
  Seconds submitted = 0.0;
  Seconds input_sent = 0.0;  // == submitted when no input
  Seconds offer_acked = 0.0;
  Seconds completed = 0.0;

  [[nodiscard]] Seconds turnaround() const noexcept { return completed - submitted; }
  [[nodiscard]] Seconds input_transfer_time() const noexcept { return input_sent - submitted; }
};

class TaskService {
 public:
  using Reporter = std::function<void(StatsDelta)>;

  /// `executor` runs accepted tasks on this node; `files` ships task
  /// inputs; `reporter` is the path to the broker.
  TaskService(transport::Endpoint& endpoint, tasks::TaskExecutor& executor,
              FileService& files, Reporter reporter);
  ~TaskService();

  TaskService(const TaskService&) = delete;
  TaskService& operator=(const TaskService&) = delete;

  using Completion = std::function<void(const TaskOutcome&)>;

  /// Submits a task to the given executor peer. `done` fires exactly
  /// once.
  TaskId submit(const TaskSubmission& submission, Completion done);

  [[nodiscard]] std::uint64_t offers_received() const noexcept { return offers_received_; }
  [[nodiscard]] std::uint64_t offers_accepted() const noexcept { return offers_accepted_; }
  [[nodiscard]] std::uint64_t results_sent() const noexcept { return results_sent_; }

 private:
  struct PendingSubmission {
    TaskOutcome outcome;
    TaskSubmission submission;
    Completion done;
  };

  void send_offer(std::uint64_t correlation);
  void on_offer(const transport::Message& m);
  void on_result(const transport::Message& m);
  void finish(std::uint64_t correlation);

  [[nodiscard]] sim::Simulator& sim() noexcept { return endpoint_.fabric().simulator(); }

  transport::Endpoint& endpoint_;
  tasks::TaskExecutor& executor_;
  FileService& files_;
  Reporter reporter_;
  transport::ReliableChannel offer_channel_;
  transport::ReliableChannel result_channel_;
  IdAllocator<TaskId> task_ids_;
  std::map<std::uint64_t, PendingSubmission> pending_;  // keyed by correlation
  std::map<std::uint64_t, bool> seen_offers_;           // idempotent offer decisions
  std::uint64_t offers_received_ = 0;
  std::uint64_t offers_accepted_ = 0;
  std::uint64_t results_sent_ = 0;
};

/// Correlation encoding for tasks (distinct space from transfers).
[[nodiscard]] constexpr std::uint64_t task_correlation(NodeId node, TaskId task) noexcept {
  return (1ull << 56) | (node.value() << 24) | task.value();
}

}  // namespace peerlab::overlay
