#pragma once

// Primitives — the overlay's public API (Section 3): "peer discovery,
// peer's resources discovery, peer selection, resource allocation,
// file/data sharing, discovery and transmission, instant communication,
// peer group functionalities" plus executable-task management. This is
// the surface applications program against; everything below it
// (broker protocols, JXTA services, the transfer protocol) is plumbing.

#include "peerlab/overlay/client.hpp"

namespace peerlab::overlay {

class Primitives {
 public:
  explicit Primitives(ClientPeer& self) : self_(self) {}

  [[nodiscard]] PeerId self() const noexcept { return self_.id(); }

  // ---- peer & resource discovery ----
  using DiscoverCallback = std::function<void(std::vector<jxta::Advertisement>)>;
  /// Discovers live peers of the group (their advertisements carry the
  /// resource attributes: cpu, price, role).
  void discover_peers(DiscoverCallback done);
  /// Discovers shared content by name.
  void discover_content(const std::string& name, DiscoverCallback done);
  /// Publishes a shared-content advertisement.
  void share_content(const std::string& name, Bytes size, Seconds lifetime = 3600.0);

  // ---- peer selection & resource allocation ----
  /// Asks the broker to select `k` peers for the described work. The
  /// broker applies whichever selection model it is configured with.
  void select_peers(const core::SelectionContext& context, std::size_t k,
                    ClientPeer::SelectionCallback done);

  // ---- file sharing & transmission ----
  TransferId send_file(PeerId dst, Bytes size, int parts, FileService::Completion done);
  void cancel_transfer(TransferId id) { self_.files().cancel(id); }

  /// Broker-assisted scatter: asks the broker to select up to `parts`
  /// peers for the payload, then distributes the file's parts over
  /// them in parallel (the Figure 6 workload as a one-call primitive).
  void distribute_file(Bytes size, int parts, FileService::DistributionCallback done);

  // ---- executable tasks ----
  /// Submits a task to an explicit executor peer.
  TaskId submit_task(PeerId executor, GigaCycles work, Bytes input_size,
                     TaskService::Completion done);
  /// Lets the broker pick the executor first, then submits. The
  /// callback receives an unaccepted outcome when no peer is eligible.
  void submit_task_auto(GigaCycles work, Bytes input_size, TaskService::Completion done);

  // ---- instant communication ----
  void send_message(PeerId dst, std::int64_t tag, MessagingService::SendCallback done) {
    self_.messaging().send(dst, tag, std::move(done));
  }
  void on_message(MessagingService::Listener listener) {
    self_.messaging().set_listener(std::move(listener));
  }

  // ---- peergroups ----
  void join_group(GroupId group, jxta::GroupMembership::JoinCallback done) {
    self_.membership().join(group, std::move(done));
  }
  void leave_group(GroupId group) { self_.membership().leave(group); }

  [[nodiscard]] ClientPeer& peer() noexcept { return self_; }

 private:
  ClientPeer& self_;
};

}  // namespace peerlab::overlay
