#include "peerlab/overlay/reputation.hpp"

#include <algorithm>
#include <cmath>

namespace peerlab::overlay {

double ReputationBook::projected(const Entry& entry, Seconds now) const {
  double value = entry.value;
  Seconds stamp = entry.stamp;
  if (entry.quarantine_until > 0.0 && now >= entry.quarantine_until &&
      value < config_.probation_score) {
    // Quarantine served: the peer re-enters on probation, not in the
    // hole it dug — otherwise a decayed score re-arms quarantine on
    // the next minor slip forever.
    value = config_.probation_score;
    stamp = std::max(stamp, entry.quarantine_until);
  }
  if (config_.decay_half_life > 0.0 && now > stamp) {
    value = 1.0 - (1.0 - value) * std::exp2(-(now - stamp) / config_.decay_half_life);
  }
  return value;
}

double ReputationBook::score(PeerId peer, Seconds now) const {
  const auto it = entries_.find(peer);
  if (it == entries_.end()) return config_.initial;
  return projected(it->second, now);
}

bool ReputationBook::quarantined(PeerId peer, Seconds now) const {
  const auto it = entries_.find(peer);
  return it != entries_.end() && now < it->second.quarantine_until;
}

void ReputationBook::append_quarantined(Seconds now, std::vector<PeerId>& out) const {
  for (const auto& [peer, entry] : entries_) {
    if (now < entry.quarantine_until) out.push_back(peer);
  }
}

void ReputationBook::adjust(PeerId peer, Seconds now, double delta) {
  auto it = entries_.find(peer);
  if (it == entries_.end()) {
    it = entries_.emplace(peer, Entry{config_.initial, now, 0.0, 0.0}).first;
  }
  Entry& entry = it->second;
  const double value = projected(entry, now);
  if (entry.quarantine_until > 0.0 && now >= entry.quarantine_until) {
    entry.quarantine_until = 0.0;  // quarantine served, probation folded in
  }
  entry.value = std::clamp(value + delta, 0.0, 1.0);
  entry.stamp = now;
  if (entry.value < config_.quarantine_below && entry.quarantine_until <= now) {
    entry.quarantine_until = now + config_.quarantine_duration;
    ++quarantines_;
    if (m_.quarantines != nullptr) m_.quarantines->add(1);
    if (quarantine_observer_) quarantine_observer_(peer, entry.quarantine_until);
  }
}

void ReputationBook::record_success(PeerId peer, Seconds now) {
  ++successes_;
  if (m_.successes != nullptr) m_.successes->add(1);
  adjust(peer, now, config_.success_reward);
}

void ReputationBook::record_failure(PeerId peer, Seconds now) {
  ++failures_;
  if (m_.failures != nullptr) m_.failures->add(1);
  adjust(peer, now, -config_.failure_penalty);
}

void ReputationBook::record_lie(PeerId peer, Seconds now) {
  ++lies_;
  if (m_.lies != nullptr) m_.lies->add(1);
  adjust(peer, now, -config_.lie_penalty);
}

void ReputationBook::record_transfer(PeerId peer, const stats::TransferRecord& record,
                                     Seconds now) {
  if (!record.ok) {
    record_failure(peer, now);
    return;
  }
  const MbitPerSec rate = record.achieved_rate();
  auto it = entries_.find(peer);
  const MbitPerSec ewma = it != entries_.end() ? it->second.rate_ewma : 0.0;
  if (ewma > 0.0 && rate < config_.shortfall_threshold * ewma) {
    // Completed but far below the peer's own demonstrated throughput:
    // the signature of a throttling free-rider, not a slow link (the
    // baseline is this peer's history, not the fleet's).
    ++shortfalls_;
    if (m_.shortfalls != nullptr) m_.shortfalls->add(1);
    adjust(peer, now, -config_.shortfall_penalty);
  } else {
    record_success(peer, now);
  }
  auto& entry = entries_[peer];
  entry.rate_ewma = entry.rate_ewma > 0.0 ? 0.7 * entry.rate_ewma + 0.3 * rate : rate;
}

void ReputationBook::attach_metrics(obs::MetricRegistry& registry) {
  m_.failures = &registry.counter("reputation.failures", "events");
  m_.successes = &registry.counter("reputation.successes", "events");
  m_.lies = &registry.counter("reputation.lies", "events");
  m_.shortfalls = &registry.counter("reputation.shortfalls", "events");
  m_.quarantines = &registry.counter("reputation.quarantines", "events");
}

}  // namespace peerlab::overlay
