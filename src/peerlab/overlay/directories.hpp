#pragma once

// Shared in-process registries for one overlay deployment.
//
// The simulated control plane carries routing and small scalars but no
// structured payloads, so structured data (stats deltas, selection
// result lists) travels via parked tickets: the producer parks the
// payload, the datagram carries the ticket, the consumer claims it at
// the arrival instant. OverlayDirectories bundles those stores plus
// the per-subsystem directories the lower layers already use.

#include <deque>
#include <unordered_map>
#include <vector>

#include "peerlab/core/snapshot.hpp"
#include "peerlab/jxta/discovery.hpp"
#include "peerlab/jxta/peergroup.hpp"
#include "peerlab/jxta/pipe.hpp"
#include "peerlab/stats/history.hpp"
#include "peerlab/transport/file_transfer.hpp"

namespace peerlab::overlay {

/// Batched observations a client reports to its broker. `subject` is
/// the peer the observations are about (often not the reporter: the
/// file sender observed the *receiver's* behaviour).
struct StatsDelta {
  PeerId subject;
  int msg_ok = 0;
  int msg_fail = 0;
  int task_accept = 0;
  int task_reject = 0;
  int exec_ok = 0;
  int exec_fail = 0;
  int file_done = 0;
  int file_cancel = 0;
  int file_fail = 0;
  std::vector<Seconds> response_times;
  std::vector<stats::TaskRecord> task_records;
  std::vector<stats::TransferRecord> transfer_records;
  /// Self-reported queue samples; negative = not sampled.
  double outbox_sample = -1.0;
  double inbox_sample = -1.0;
  int pending_transfers = -1;
  /// Causal chain of the workload these observations came from
  /// (inactive = untraced); stamps the broker's kStatsApply event.
  obs::trace::TraceContext trace;
};

/// FIFO-bounded ticket store for one payload type.
template <typename T>
class TicketStore {
 public:
  explicit TicketStore(std::size_t capacity = 4096) : capacity_(capacity) {}

  std::uint64_t park(T payload) {
    const std::uint64_t ticket = ++next_;
    parked_.emplace(ticket, std::move(payload));
    order_.push_back(ticket);
    while (order_.size() > capacity_) {
      parked_.erase(order_.front());
      order_.pop_front();
    }
    return ticket;
  }

  /// Claims and removes; default-constructed T when unknown.
  [[nodiscard]] T claim(std::uint64_t ticket) {
    const auto it = parked_.find(ticket);
    if (it == parked_.end()) return T{};
    T payload = std::move(it->second);
    parked_.erase(it);
    return payload;
  }

  /// Reads without removing (for retransmission-idempotent protocols).
  [[nodiscard]] const T* peek(std::uint64_t ticket) const {
    const auto it = parked_.find(ticket);
    return it == parked_.end() ? nullptr : &it->second;
  }

  void release(std::uint64_t ticket) { parked_.erase(ticket); }

  [[nodiscard]] bool contains(std::uint64_t ticket) const {
    return parked_.count(ticket) > 0;
  }

 private:
  std::size_t capacity_;
  std::unordered_map<std::uint64_t, T> parked_;
  std::deque<std::uint64_t> order_;
  std::uint64_t next_ = 0;
};

struct OverlayDirectories {
  transport::FileTransferDirectory transfers;
  jxta::RendezvousDirectory rendezvous;
  jxta::PipeDirectory pipes;
  jxta::PeerGroupDirectory groups;
  TicketStore<StatsDelta> stats_reports;
  TicketStore<std::vector<PeerId>> selections;
  TicketStore<core::SelectionContext> selection_contexts;
};

/// peerlab convention: exactly one overlay peer per node, with the
/// peer id numerically equal to its node id. Keeps addressing
/// deterministic without a resolution protocol in every code path.
[[nodiscard]] constexpr PeerId peer_of(NodeId node) noexcept { return PeerId(node.value()); }
[[nodiscard]] constexpr NodeId node_of(PeerId peer) noexcept { return NodeId(peer.value()); }

}  // namespace peerlab::overlay
