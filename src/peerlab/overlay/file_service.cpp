#include "peerlab/overlay/file_service.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "peerlab/common/check.hpp"
#include "peerlab/obs/trace.hpp"

namespace peerlab::overlay {

using obs::trace::TraceKind;

FileService::FileService(transport::Endpoint& endpoint, OverlayDirectories& directories,
                         Reporter reporter)
    : endpoint_(endpoint),
      peer_(endpoint, directories.transfers),
      reporter_(std::move(reporter)) {
  PEERLAB_CHECK_MSG(static_cast<bool>(reporter_), "file service needs a reporter");
}

void FileService::attach_metrics(obs::MetricRegistry& registry) {
  m_.distributions = &registry.counter("overlay.distributions", "runs");
  m_.distributions_complete = &registry.counter("overlay.distributions_complete", "runs");
  m_.failovers = &registry.counter("overlay.failovers", "shares");
  m_.backoff_retries = &registry.counter("overlay.backoff_retries", "retries");
  obs::Histogram::Options makespan_opts;
  makespan_opts.lo = 0.1;  // a scatter runs seconds .. hours
  makespan_opts.hi = 1e5;
  m_.makespan_s = &registry.histogram("overlay.distribution.makespan_s", "s", makespan_opts);
  peer_.attach_metrics(registry);
}

sim::Simulator& FileService::sim() noexcept { return endpoint_.fabric().simulator(); }

net::FlowScheduler& FileService::flows() noexcept {
  return endpoint_.fabric().network().flows();
}

TransferId FileService::send_file(PeerId dst, const transport::FileTransferConfig& config,
                                  Completion done) {
  ++started_;
  return peer_.send_file(
      node_of(dst), config, [this, dst, ctx = config.trace, done = std::move(done)](
                                const transport::TransferResult& result) {
        // Erase unconditionally: whatever the outcome, the marker must
        // not outlive the transfer (see cancel()).
        const bool was_cancelled = cancelled_.erase(result.id.value()) > 0;
        StatsDelta delta;
        delta.subject = dst;
        delta.trace = ctx;  // the broker's kStatsApply joins the chain
        if (result.complete) {
          ++completed_;
          delta.file_done = 1;
          stats::TransferRecord record;
          record.transfer = result.id;
          record.peer = dst;
          record.size = 0;
          for (const auto& part : result.parts) record.size += part.size;
          record.duration = result.transmission_time();
          record.petition_time = result.petition_time();
          record.ok = true;
          delta.transfer_records.push_back(record);
          delta.response_times.push_back(result.petition_time());
        } else if (was_cancelled) {
          delta.file_cancel = 1;
        } else {
          delta.file_fail = 1;
        }
        reporter_(std::move(delta));
        if (done) done(result);
      });
}

void FileService::cancel(TransferId id) {
  // Guarding on the transfer still being in flight keeps cancelled_
  // bounded: a marker for a finished (or unknown) transfer would never
  // be erased, because its completion callback has already fired.
  if (!peer_.sending(id)) return;
  cancelled_.insert(id.value());
  peer_.cancel(id);
}

struct FileService::DistributionState {
  transport::FileTransferConfig base;
  DistributionOptions options;
  DistributionCallback done;
  DistributionResult result;

  struct Share {
    PeerId original;
    PeerId current;
    int parts = 0;
    Bytes bytes = 0;
    int failovers = 0;
    /// Share span under the distribution's chain (inactive = untraced).
    obs::trace::TraceContext ctx;
    // Outcome of the latest attempt, copied from its TransferResult so
    // a failed replacement petition can still report the share.
    bool complete = false;
    Bytes bytes_moved = 0;
    Seconds petition_time = 0.0;
    Seconds transmission_time = 0.0;
  };
  // Inline capacity 8: the paper's scatter fans out over SC1..SC8, so
  // the bookkeeping of a typical distribution never leaves this state
  // object's own allocation.
  mem::small_vector<Share, 8> shares;
  /// Every peer ever assigned a share; replacement petitions exclude
  /// all of them so a share never lands on a peer that already failed
  /// (or currently holds) part of this file.
  mem::small_vector<PeerId, 8> used;
  int outstanding = 0;
  /// Root of the distribution's causal chain (inactive = untraced).
  obs::trace::TraceContext ctx;
};

void FileService::distribute(Bytes file_size, int parts, const std::vector<PeerId>& peers,
                             const transport::FileTransferConfig& base,
                             DistributionCallback done, DistributionOptions options) {
  PEERLAB_CHECK_MSG(file_size > 0 && parts >= 1, "distribution needs a file and parts");
  PEERLAB_CHECK_MSG(!peers.empty(), "distribution needs at least one peer");
  PEERLAB_CHECK_MSG(static_cast<bool>(done), "completion callback required");
  PEERLAB_CHECK_MSG(options.max_failovers_per_share >= 0, "failover budget must be >= 0");
  PEERLAB_CHECK_MSG(options.backoff_initial >= 0.0 && options.backoff_cap >= 0.0 &&
                        options.backoff_factor >= 1.0,
                    "backoff must be non-negative and non-shrinking");
  for (std::size_t i = 0; i < peers.size(); ++i) {
    for (std::size_t j = i + 1; j < peers.size(); ++j) {
      PEERLAB_CHECK_MSG(peers[i] != peers[j], "distribution peers must be distinct");
    }
  }

  const Bytes part_size = file_size / parts;
  PEERLAB_CHECK_MSG(part_size > 0, "more parts than bytes");

  auto state = std::make_shared<DistributionState>();
  state->base = base;
  state->options = options;
  state->done = std::move(done);
  state->result.started = std::numeric_limits<Seconds>::infinity();

  // Round-robin part assignment; the last share absorbs the remainder.
  // Peers are distinct (checked above), so each peer's count follows
  // from its position: parts/n plus one for the first parts%n peers.
  // Sorting by peer reproduces the id-ascending share order the
  // std::map this replaces used to iterate in.
  const std::size_t fanout = peers.size();
  mem::small_vector<std::pair<PeerId, int>, 8> share_parts;
  for (std::size_t j = 0; j < fanout && j < static_cast<std::size_t>(parts); ++j) {
    const int count = parts / static_cast<int>(fanout) +
                      (j < static_cast<std::size_t>(parts) % fanout ? 1 : 0);
    share_parts.push_back({peers[j], count});
  }
  std::sort(share_parts.begin(), share_parts.end());
  Bytes assigned = 0;
  for (const auto& [peer, n] : share_parts) {
    DistributionState::Share share;
    share.original = peer;
    share.current = peer;
    share.parts = n;
    share.bytes = static_cast<Bytes>(n) * part_size;
    assigned += share.bytes;
    state->shares.push_back(share);
    state->used.push_back(peer);
  }
  state->shares.back().bytes += file_size - assigned;  // rounding remainder
  state->outstanding = static_cast<int>(state->shares.size());
  if (m_.distributions != nullptr) m_.distributions->add(1);
  if (trace_ != nullptr) {
    // Every distribution mints a fresh TraceId; the whole fan-out —
    // selections, petitions, parts, confirms, failovers, stats — rides
    // this one chain.
    state->ctx = trace_->root();
    trace_->emit(endpoint_.node(), TraceKind::kDistStart, state->ctx,
                 static_cast<std::uint64_t>(file_size), static_cast<std::uint64_t>(parts));
  }

  // One rate recomputation for the whole fan-out, not one per share.
  const auto batch = flows().start_batch();
  for (std::size_t i = 0; i < state->shares.size(); ++i) launch_share(state, i);
}

void FileService::launch_share(const std::shared_ptr<DistributionState>& state,
                               std::size_t index) {
  auto& share = state->shares[index];
  transport::FileTransferConfig cfg = state->base;
  cfg.file_size = share.bytes;
  cfg.parts = share.parts;
  if (trace_ != nullptr && state->ctx.active()) {
    // Fresh span per launch attempt: a failover re-launch is visibly a
    // different leg of the same chain.
    share.ctx = trace_->child_of(state->ctx);
    trace_->emit(endpoint_.node(), TraceKind::kShareLaunch, share.ctx, share.current.value(),
                 static_cast<std::uint64_t>(share.bytes), state->ctx.span);
    cfg.trace = share.ctx;
  }
  send_file(share.current, cfg,
            [this, state, index](const transport::TransferResult& result) {
              share_finished(state, index, result);
            });
}

void FileService::share_finished(const std::shared_ptr<DistributionState>& state,
                                 std::size_t index,
                                 const transport::TransferResult& result) {
  auto& share = state->shares[index];
  state->result.started = std::min(state->result.started, result.started);
  state->result.finished = std::max(state->result.finished, result.finished);
  share.complete = result.complete;
  share.bytes_moved = 0;
  for (const auto& part : result.parts) share.bytes_moved += part.size;
  share.petition_time = result.petition_time();
  share.transmission_time = result.transmission_time();

  if (result.complete || !replacement_ ||
      share.failovers >= state->options.max_failovers_per_share) {
    finalize_share(state, index);
    return;
  }

  // Failed share: back off (capped exponential in the share's failover
  // count), then re-petition the broker for a substitute. The backoff
  // sits *before* the petition so the broker has had silence enough to
  // age the dead peer out of its registry.
  Seconds delay = state->options.backoff_initial;
  for (int i = 0; i < share.failovers; ++i) delay *= state->options.backoff_factor;
  delay = std::min(delay, state->options.backoff_cap);
  ++share.failovers;
  ++state->result.failovers;
  ++failovers_;
  if (m_.backoff_retries != nullptr) m_.backoff_retries->add(1);
  if (trace_ != nullptr && share.ctx.active()) {
    trace_->emit(endpoint_.node(), TraceKind::kShareFailover, share.ctx, share.current.value(),
                 static_cast<std::uint64_t>(share.failovers));
  }

  sim().schedule(delay, [this, state, index] {
    replacement_(state->shares[index].bytes, state->used, state->shares[index].ctx,
                 [this, state, index](PeerId replacement) {
                   if (!replacement.valid()) {
                     // Nobody left to take the share: report it as-is.
                     if (trace_ != nullptr && state->shares[index].ctx.active()) {
                       trace_->emit(endpoint_.node(), TraceKind::kShareGaveUp,
                                    state->shares[index].ctx,
                                    state->shares[index].current.value(),
                                    static_cast<std::uint64_t>(state->shares[index].failovers));
                     }
                     finalize_share(state, index);
                     return;
                   }
                   if (m_.failovers != nullptr) m_.failovers->add(1);
                   state->shares[index].current = replacement;
                   state->used.push_back(replacement);
                   launch_share(state, index);
                 });
  });
}

void FileService::finalize_share(const std::shared_ptr<DistributionState>& state,
                                 std::size_t index) {
  const auto& share = state->shares[index];
  DistributionResult::PeerShare out;
  out.peer = share.current;
  out.original = share.original;
  out.parts = share.parts;
  out.bytes = share.bytes_moved;
  out.complete = share.complete;
  out.failovers = share.failovers;
  out.petition_time = share.petition_time;
  out.transmission_time = share.transmission_time;
  state->result.shares.push_back(out);

  if (--state->outstanding != 0) return;
  state->result.complete = true;
  for (const auto& s : state->result.shares) state->result.complete &= s.complete;
  if (trace_ != nullptr && state->ctx.active()) {
    trace_->emit(endpoint_.node(), TraceKind::kDistDone, state->ctx,
                 state->result.complete ? 1 : 0,
                 static_cast<std::uint64_t>(state->result.failovers));
  }
  // Deterministic share order for consumers (peers are distinct by the
  // exclusion discipline, so the order is total).
  std::sort(state->result.shares.begin(), state->result.shares.end(),
            [](const auto& a, const auto& b) { return a.peer < b.peer; });
  if (m_.makespan_s != nullptr) {
    if (m_.distributions_complete != nullptr && state->result.complete) {
      m_.distributions_complete->add(1);
    }
    m_.makespan_s->record(state->result.makespan());
  }
  state->done(state->result);
}

}  // namespace peerlab::overlay
