#include "peerlab/overlay/file_service.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "peerlab/common/check.hpp"

namespace peerlab::overlay {

FileService::FileService(transport::Endpoint& endpoint, OverlayDirectories& directories,
                         Reporter reporter)
    : peer_(endpoint, directories.transfers), reporter_(std::move(reporter)) {
  PEERLAB_CHECK_MSG(static_cast<bool>(reporter_), "file service needs a reporter");
}

TransferId FileService::send_file(PeerId dst, const transport::FileTransferConfig& config,
                                  Completion done) {
  ++started_;
  return peer_.send_file(
      node_of(dst), config, [this, dst, done = std::move(done)](
                                const transport::TransferResult& result) {
        StatsDelta delta;
        delta.subject = dst;
        if (result.complete) {
          ++completed_;
          delta.file_done = 1;
          stats::TransferRecord record;
          record.transfer = result.id;
          record.peer = dst;
          record.size = 0;
          for (const auto& part : result.parts) record.size += part.size;
          record.duration = result.transmission_time();
          record.petition_time = result.petition_time();
          record.ok = true;
          delta.transfer_records.push_back(record);
          delta.response_times.push_back(result.petition_time());
        } else if (cancelled_.erase(result.id.value()) > 0) {
          delta.file_cancel = 1;
        } else {
          delta.file_fail = 1;
        }
        reporter_(std::move(delta));
        if (done) done(result);
      });
}

void FileService::cancel(TransferId id) {
  cancelled_.insert(id.value());
  peer_.cancel(id);
}

void FileService::distribute(Bytes file_size, int parts, const std::vector<PeerId>& peers,
                             const transport::FileTransferConfig& base,
                             DistributionCallback done) {
  PEERLAB_CHECK_MSG(file_size > 0 && parts >= 1, "distribution needs a file and parts");
  PEERLAB_CHECK_MSG(!peers.empty(), "distribution needs at least one peer");
  PEERLAB_CHECK_MSG(static_cast<bool>(done), "completion callback required");
  for (std::size_t i = 0; i < peers.size(); ++i) {
    for (std::size_t j = i + 1; j < peers.size(); ++j) {
      PEERLAB_CHECK_MSG(peers[i] != peers[j], "distribution peers must be distinct");
    }
  }

  const Bytes part_size = file_size / parts;
  PEERLAB_CHECK_MSG(part_size > 0, "more parts than bytes");

  auto result = std::make_shared<DistributionResult>();
  result->started = std::numeric_limits<Seconds>::infinity();
  // Round-robin part assignment; the last share absorbs the remainder.
  std::map<PeerId, int> share_parts;
  for (int p = 0; p < parts; ++p) {
    share_parts[peers[static_cast<std::size_t>(p) % peers.size()]] += 1;
  }
  Bytes assigned = 0;
  std::vector<std::pair<PeerId, Bytes>> shares;
  for (const auto& [peer, n] : share_parts) {
    shares.emplace_back(peer, static_cast<Bytes>(n) * part_size);
    assigned += static_cast<Bytes>(n) * part_size;
  }
  shares.back().second += file_size - assigned;  // rounding remainder

  auto outstanding = std::make_shared<int>(static_cast<int>(shares.size()));
  auto finish_one = [this, result, outstanding, done](const PeerId peer, int n,
                                                      const transport::TransferResult& r) {
    DistributionResult::PeerShare share;
    share.peer = peer;
    share.parts = n;
    share.bytes = 0;
    for (const auto& part : r.parts) share.bytes += part.size;
    share.complete = r.complete;
    share.petition_time = r.petition_time();
    share.transmission_time = r.transmission_time();
    result->started = std::min(result->started, r.started);
    result->shares.push_back(share);
    if (--*outstanding == 0) {
      result->complete = true;
      for (const auto& s : result->shares) result->complete &= s.complete;
      result->finished = r.finished;
      // Deterministic share order for consumers.
      std::sort(result->shares.begin(), result->shares.end(),
                [](const auto& a, const auto& b) { return a.peer < b.peer; });
      done(*result);
    }
  };

  for (const auto& [peer, bytes] : shares) {
    const int n = share_parts[peer];
    transport::FileTransferConfig cfg = base;
    cfg.file_size = bytes;
    cfg.parts = n;
    send_file(peer, cfg, [peer = peer, n, finish_one](const transport::TransferResult& r) {
      finish_one(peer, n, r);
    });
  }
}

}  // namespace peerlab::overlay
