#pragma once

// BrokerPeer — the "governor of the P2P network" (Section 3).
//
// The broker hosts the JXTA rendezvous index and the peergroup
// registry, keeps the per-peer statistics and the peergroup's
// historical data, tracks client liveness through heartbeats, and
// answers peer-selection requests with whichever SelectionModel is
// plugged in. Clients talk to it exclusively over the simulated
// control plane; structured payloads ride the directories' ticket
// stores.

#include <memory>

#include "peerlab/core/blind.hpp"
#include "peerlab/core/candidate_index.hpp"
#include "peerlab/core/selection_model.hpp"
#include "peerlab/econ/economy.hpp"
#include "peerlab/obs/metrics.hpp"
#include "peerlab/obs/profile.hpp"
#include "peerlab/overlay/directories.hpp"
#include "peerlab/overlay/reputation.hpp"
#include "peerlab/transport/reliable_channel.hpp"

namespace peerlab::overlay {

struct BrokerConfig {
  /// Clients heartbeat at this period; a client silent for
  /// `offline_after_missed` periods is considered offline.
  Seconds heartbeat_interval = 30.0;
  double offline_after_missed = 3.5;
  /// Span of the "last k hours" statistics window.
  Seconds stats_window = 4.0 * 3600.0;
  /// History records kept per peer.
  std::size_t history_capacity = 256;
  /// Observed-outcome reputation defenses (off by default; when off the
  /// broker behaves bit-identically to a build without the subsystem).
  ReputationConfig reputation;
  /// Deadline/budget-constrained economic engine (off by default; when
  /// off — or on but the petition carries no deadline, budget or
  /// objective — selection is bit-identical to a build without the
  /// subsystem). See econ/economy.hpp and DESIGN.md §17.
  econ::EconConfig econ;
  /// O(log n) top-k candidate indexes for the selection fast path
  /// (DESIGN.md §15). Selections stay bit-identical to the scan; the
  /// index deactivates itself while reputation defenses are enabled
  /// (penalties re-order rankings petition by petition).
  bool selection_index = true;
  /// Online index-vs-scan audit: every Nth traced index-served
  /// selection is re-ranked by the fallback scan and compared, with
  /// the verdict emitted as a kIndexAudit trace event the watchdog
  /// checks. Only runs when a trace recorder is attached AND the
  /// request carries an active context AND the model is stateless
  /// (the blind model's rotation cursor would be perturbed by the
  /// second ranking), so detached runs are byte-identical. 0 = off.
  std::uint32_t selection_audit_period = 16;
};

class BrokerPeer {
 public:
  BrokerPeer(transport::TransportFabric& fabric, NodeId node, OverlayDirectories& directories,
             BrokerConfig config = {});
  ~BrokerPeer();

  BrokerPeer(const BrokerPeer&) = delete;
  BrokerPeer& operator=(const BrokerPeer&) = delete;

  [[nodiscard]] PeerId id() const noexcept { return peer_of(node_); }
  [[nodiscard]] NodeId node() const noexcept { return node_; }

  // ---- hosted subsystems ----
  [[nodiscard]] jxta::RendezvousIndex& rendezvous() noexcept { return rendezvous_; }
  [[nodiscard]] jxta::PeerGroupRegistry& groups() noexcept { return groups_; }
  [[nodiscard]] const jxta::PeerGroupRegistry& groups() const noexcept { return groups_; }
  /// Current simulated time as the broker sees it.
  [[nodiscard]] Seconds now() const noexcept { return sim().now(); }
  [[nodiscard]] stats::HistoryStore& history() noexcept { return history_; }
  [[nodiscard]] const stats::HistoryStore& history() const noexcept { return history_; }
  [[nodiscard]] jxta::DiscoveryService& discovery() noexcept { return discovery_; }

  /// Statistics record for a peer (created on first touch).
  [[nodiscard]] stats::PeerStatistics& statistics_for(PeerId peer);
  [[nodiscard]] const stats::PeerStatistics* find_statistics(PeerId peer) const;

  // ---- client registry ----
  struct ClientRecord {
    PeerId peer;
    NodeId node;
    Seconds first_seen = 0.0;
    Seconds last_seen = 0.0;
    int backlog = 0;
    bool idle = true;
    int pending_transfers = 0;
  };
  [[nodiscard]] const ClientRecord* client(PeerId peer) const;
  [[nodiscard]] std::vector<PeerId> registered_clients() const;
  [[nodiscard]] bool online(PeerId peer) const;

  // ---- selection ----
  /// Plugs in a model; the broker starts with the blind baseline.
  void set_selection_model(std::unique_ptr<core::SelectionModel> model);
  [[nodiscard]] core::SelectionModel& selection_model() noexcept { return *model_; }

  /// Materializes the current view of every registered client.
  [[nodiscard]] std::vector<core::PeerSnapshot> snapshot_group() const;

  /// The selection fast-path index (counters are live even when the
  /// index is inactive; they just never move).
  [[nodiscard]] const core::CandidateIndex& candidate_index() const noexcept { return index_; }
  [[nodiscard]] bool index_active() const noexcept { return index_active_; }

  /// Local (zero-latency) selection; the wire path goes through the
  /// kSelectRequest handler.
  [[nodiscard]] PeerId select_peer(const core::SelectionContext& context);
  [[nodiscard]] std::vector<PeerId> select_peers(const core::SelectionContext& context,
                                                 std::size_t k);

  /// Applies one batch of client observations (also invoked directly
  /// by in-process tests). The reporter-attributed overload is the wire
  /// path: with defenses enabled it feeds the reputation book and
  /// discards counterparty-only history fields a peer reports about
  /// itself (self-praise). The reporterless overload trusts the delta
  /// wholesale (in-process tests, pre-defense callers).
  void apply_stats(const StatsDelta& delta);
  void apply_stats(const StatsDelta& delta, PeerId reporter);

  /// The observed-outcome reputation defense state (see reputation.hpp).
  [[nodiscard]] ReputationBook& reputation() noexcept { return reputation_; }
  [[nodiscard]] const ReputationBook& reputation() const noexcept { return reputation_; }
  [[nodiscard]] bool defenses_enabled() const noexcept { return config_.reputation.enabled; }

  /// The deadline/budget-constrained economic engine (see
  /// econ/economy.hpp); idle unless enabled AND the petition is
  /// economically constrained.
  [[nodiscard]] econ::EconEngine& econ_engine() noexcept { return econ_; }
  [[nodiscard]] const econ::EconEngine& econ_engine() const noexcept { return econ_; }

  /// Starts a fresh statistics session for every known peer.
  void begin_session();

  // ---- replication hooks (used by ReplicaSet) ----
  /// Observer invoked after every delta applied through the normal
  /// report path; a primary's ReplicaSet streams these to standbys.
  /// Pass nullptr to detach.
  using DeltaObserver = std::function<void(const StatsDelta&)>;
  void set_delta_observer(DeltaObserver observer) { delta_observer_ = std::move(observer); }

  /// Applies a delta received from the replication stream: same state
  /// mutation as apply_stats, but without bumping the report counters
  /// and without re-triggering the delta observer (no echo loops).
  void apply_replicated(const StatsDelta& delta);

  /// Everything a standby needs to take over selection: the client
  /// registry, per-peer statistics and the history store. Plain data,
  /// copied wholesale by anti-entropy snapshots.
  struct ReplicatedState {
    std::map<PeerId, ClientRecord> clients;
    std::map<PeerId, stats::PeerStatistics> statistics;
    stats::HistoryStore history;
  };
  [[nodiscard]] ReplicatedState export_state() const;
  void adopt_state(ReplicatedState state);

  // ---- broker federation ----
  /// Federates with another broker: discovery queries that miss the
  /// local rendezvous are forwarded one hop to peer brokers and the
  /// first non-empty answer wins. Registration, statistics, groups and
  /// selection remain per-broker (each broker governs its own edge
  /// peers), matching JXTA-Overlay's multiple-broker deployment.
  void federate_with(NodeId peer_broker);
  [[nodiscard]] const std::vector<NodeId>& peer_brokers() const noexcept {
    return peer_brokers_;
  }
  [[nodiscard]] std::uint64_t federated_queries() const noexcept {
    return federated_queries_;
  }

  [[nodiscard]] std::uint64_t heartbeats_received() const noexcept { return heartbeats_; }
  [[nodiscard]] std::uint64_t reports_applied() const noexcept { return reports_; }
  [[nodiscard]] std::uint64_t selections_served() const noexcept { return selections_served_; }

  /// Registers the broker's counters in `registry` (shared by name
  /// across all brokers of a deployment). Zero-cost when never called.
  /// A non-null `profiler` wall-times every selection decision under
  /// the `selection.rank` span.
  void attach_metrics(obs::MetricRegistry& registry, obs::WallProfiler* profiler = nullptr);

  /// Attaches (or detaches with nullptr) the causal-trace recorder.
  /// Traced selection requests then emit kSelectServe/kSelectRank/
  /// kIndexPull (plus sampled kIndexAudit verdicts), traced stats
  /// deltas emit kStatsApply, and imposed quarantines land as ambient
  /// kQuarantine events that trigger the flight recorder.
  void attach_trace(obs::trace::TraceRecorder* recorder);

 private:
  /// Cached instrument handles; all null while detached.
  struct Metrics {
    obs::Counter* heartbeats = nullptr;
    obs::Counter* stats_reports = nullptr;
    obs::Counter* selections_served = nullptr;
    obs::Counter* federated_queries = nullptr;
    obs::WallProfiler* profiler = nullptr;
    obs::WallProfiler::Site* rank_site = nullptr;
  };

  void on_heartbeat(const transport::Message& m);
  void on_stats_report(const transport::Message& m);
  /// Sampled index-vs-scan equivalence check (traced selections only).
  void audit_index_selection(const core::SelectionContext& context, std::size_t k,
                             const std::vector<PeerId>& picked);
  /// Re-registers every client with the index (adopted state).
  void rebuild_index();
  /// The economically-constrained selection path: full model ranking
  /// (reputation overlay included), then engine admission/re-ranking,
  /// truncated to k. Only reached when econ_.applies(context).
  [[nodiscard]] std::vector<PeerId> econ_select(const core::SelectionContext& context,
                                                std::size_t k);
  void serve_selection(const transport::Message& m);
  void forward_query(const jxta::AdvertisementQuery& query, std::size_t peer_index,
                     std::shared_ptr<std::vector<jxta::Advertisement>> accumulated,
                     std::function<void(std::vector<jxta::Advertisement>)> done);

  [[nodiscard]] sim::Simulator& sim() const noexcept { return endpoint_.fabric().simulator(); }

  transport::Endpoint& endpoint_;
  NodeId node_;
  OverlayDirectories& directories_;
  BrokerConfig config_;
  Metrics m_;
  jxta::RendezvousIndex rendezvous_;
  jxta::PeerGroupRegistry groups_;
  jxta::DiscoveryService discovery_;
  jxta::GroupMembership membership_;
  stats::HistoryStore history_;
  ReputationBook reputation_;
  econ::EconEngine econ_;
  std::unique_ptr<core::SelectionModel> model_;
  core::CandidateIndex index_;
  bool index_active_ = false;
  std::vector<PeerId> index_out_;
  transport::ReliableChannel select_channel_;
  obs::trace::TraceRecorder* trace_ = nullptr;
  std::uint64_t audit_clock_ = 0;
  DeltaObserver delta_observer_;
  std::map<PeerId, ClientRecord> clients_;
  std::map<PeerId, stats::PeerStatistics> statistics_;
  std::vector<NodeId> peer_brokers_;
  std::uint64_t federated_queries_ = 0;
  std::uint64_t heartbeats_ = 0;
  std::uint64_t reports_ = 0;
  std::uint64_t selections_served_ = 0;
};

}  // namespace peerlab::overlay
