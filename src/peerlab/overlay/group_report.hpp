#pragma once

// Resource-statistics interface: "statistics about the peers, the
// peergroups, the brokers and the clients" (Section 3). A GroupReport
// is the broker's aggregated view at one instant — the operator-facing
// companion of the per-peer PeerStatistics the selection models read.

#include <optional>
#include <string>
#include <vector>

#include "peerlab/common/ids.hpp"
#include "peerlab/common/units.hpp"

namespace peerlab::overlay {

class BrokerPeer;

struct GroupReport {
  struct PeerLine {
    PeerId peer;
    std::string hostname;
    bool online = false;
    bool idle = true;
    int backlog = 0;
    int pending_transfers = 0;
    double msg_success_pct = 100.0;
    double task_exec_pct = 100.0;
    double file_sent_pct = 100.0;
    std::optional<Seconds> mean_execution_time;
    std::optional<Seconds> mean_response_time;
    std::optional<MbitPerSec> mean_transfer_rate;
  };

  Seconds generated_at = 0.0;
  NodeId broker_node;
  std::size_t registered = 0;
  std::size_t online = 0;
  std::size_t groups = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t reports = 0;
  std::uint64_t selections_served = 0;
  std::vector<PeerLine> peers;

  /// Operator-facing ASCII rendering.
  [[nodiscard]] std::string render() const;
};

/// Builds the report from a broker's current state.
[[nodiscard]] GroupReport make_group_report(const BrokerPeer& broker);

}  // namespace peerlab::overlay
