#include "peerlab/overlay/messaging.hpp"

#include <utility>

#include "peerlab/common/check.hpp"

namespace peerlab::overlay {

namespace {
transport::RetryPolicy chat_retry() {
  transport::RetryPolicy p;
  p.initial_timeout = 20.0;
  p.backoff = 1.5;
  p.max_attempts = 3;
  return p;
}
}  // namespace

MessagingService::MessagingService(transport::Endpoint& endpoint, Reporter reporter)
    : endpoint_(endpoint),
      reporter_(std::move(reporter)),
      chat_channel_(endpoint, transport::MessageType::kChat, transport::MessageType::kChatAck,
                    chat_retry()) {
  PEERLAB_CHECK_MSG(static_cast<bool>(reporter_), "messaging needs a reporter");
  chat_channel_.serve([this](const transport::Message& m) {
    ++received_;
    endpoint_.reply(m, transport::MessageType::kChatAck);
    if (listener_) listener_(peer_of(m.src), m.arg);
  });
}

void MessagingService::send(PeerId dst, std::int64_t tag, SendCallback done) {
  PEERLAB_CHECK_MSG(dst.valid(), "chat needs a destination");
  ++sent_;
  chat_channel_.request(node_of(dst), /*correlation=*/0, tag,
                        [this, dst, done = std::move(done)](
                            const transport::RequestOutcome& outcome) {
                          if (outcome.ok) ++delivered_;
                          StatsDelta delta;
                          delta.subject = dst;
                          (outcome.ok ? delta.msg_ok : delta.msg_fail) = 1;
                          if (outcome.ok) delta.response_times.push_back(outcome.elapsed);
                          reporter_(std::move(delta));
                          if (done) done(outcome.ok, outcome.elapsed);
                        });
}

}  // namespace peerlab::overlay
