#pragma once

// ClientPeer — an edge peer of the overlay (the paper's SimpleClient:
// a client without GUI). Composes every client-side service: JXTA
// discovery/pipes/group membership against its broker, the file
// transfer peer, the task executor and service, instant messaging,
// plus the liveness loop (periodic heartbeat + peer advertisement +
// self queue samples).

#include <memory>

#include "peerlab/obs/metrics.hpp"
#include "peerlab/overlay/directories.hpp"
#include "peerlab/overlay/file_service.hpp"
#include "peerlab/overlay/messaging.hpp"
#include "peerlab/overlay/task_service.hpp"

namespace peerlab::overlay {

/// JXTA-Overlay distinguishes edge peers "either SimpleClient — without
/// GUI, or Client with GUI". The kind is advertised so applications can
/// target headless workers; behaviourally they share the same services.
enum class ClientKind : std::uint8_t { kSimpleClient, kGuiClient };

[[nodiscard]] const char* to_string(ClientKind kind) noexcept;

struct ClientConfig {
  Seconds heartbeat_interval = 30.0;
  /// Peer advertisement lifetime; republished with each heartbeat.
  Seconds advert_lifetime = 120.0;
  ClientKind kind = ClientKind::kSimpleClient;
  tasks::ExecutorConfig executor{};
};

/// Scripted self-reporting misbehaviour (installed by the adversary
/// layer; see peerlab::adversary). Defaults describe an honest client;
/// while no profile is installed the reporting path is bit-identical
/// to a build without the knobs.
struct MisreportProfile {
  /// Multiplier on self-reported load (heartbeat backlog, queue
  /// samples, pending transfers): 0 claims empty queues, 1 is honest.
  double load_factor = 1.0;
  /// Heartbeats always claim the executor is idle.
  bool always_idle = false;
  /// Fabricated self-praise shipped with each heartbeat: this many
  /// fake completed transfers at `fabricated_rate` plus near-zero
  /// response times (the stats-liar behaviour). 0 disables.
  int fabricate_praise = 0;
  MbitPerSec fabricated_rate = 1000.0;
};

class ClientPeer {
 public:
  ClientPeer(transport::TransportFabric& fabric, NodeId node, NodeId broker_node,
             OverlayDirectories& directories, ClientConfig config = {});
  ~ClientPeer();

  ClientPeer(const ClientPeer&) = delete;
  ClientPeer& operator=(const ClientPeer&) = delete;

  [[nodiscard]] PeerId id() const noexcept { return peer_of(node_); }
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] NodeId broker_node() const noexcept { return broker_node_; }

  /// Brings the peer online: first heartbeat goes out immediately
  /// (registering it at the broker) and repeats every interval.
  void start();
  /// Takes the peer offline (churn): heartbeats stop; the broker ages
  /// it out after a few missed intervals.
  void stop();
  [[nodiscard]] bool started() const noexcept { return started_; }
  [[nodiscard]] ClientKind kind() const noexcept { return config_.kind; }

  /// Re-homes the client to a different broker (broker failover): the
  /// next heartbeat registers it there, and discovery/membership/
  /// selection requests follow.
  void rehome(NodeId new_broker);

  // ---- services ----
  [[nodiscard]] FileService& files() noexcept { return *files_; }
  [[nodiscard]] TaskService& task_service() noexcept { return *task_service_; }
  [[nodiscard]] MessagingService& messaging() noexcept { return *messaging_; }
  [[nodiscard]] jxta::DiscoveryService& discovery() noexcept { return discovery_; }
  [[nodiscard]] jxta::PipeService& pipes() noexcept { return pipes_; }
  [[nodiscard]] jxta::GroupMembership& membership() noexcept { return membership_; }
  [[nodiscard]] tasks::TaskExecutor& executor() noexcept { return executor_; }
  [[nodiscard]] transport::Endpoint& endpoint() noexcept { return endpoint_; }

  /// Broker-mediated peer selection over the control plane. The
  /// callback receives the selected peers (empty on failure).
  using SelectionCallback = std::function<void(std::vector<PeerId>)>;
  void request_selection(const core::SelectionContext& context, std::size_t k,
                         SelectionCallback done);

  /// Ships one observation batch to the broker (used by the services;
  /// public so applications can report domain-specific observations).
  void report(StatsDelta delta);

  /// Installs (or, with a default-constructed profile, clears) the
  /// scripted misreporting behaviour applied to every future heartbeat.
  void set_misreport_profile(const MisreportProfile& profile);
  [[nodiscard]] std::uint64_t misreports_sent() const noexcept { return misreports_sent_; }

  [[nodiscard]] std::uint64_t heartbeats_sent() const noexcept { return heartbeats_sent_; }
  /// Selection petitions re-issued against a new broker after rehome.
  [[nodiscard]] std::uint64_t selection_reissues() const noexcept {
    return selection_reissues_;
  }

  /// Registers the client-side selection instruments in `registry`:
  /// the client-observed selection latency histogram (request issued →
  /// peers delivered, virtual time — the broker-selection latency the
  /// paper's models are compared on) plus request/failure counters,
  /// and forwards to the file service's distribution instruments.
  /// Zero-cost when never called.
  void attach_metrics(obs::MetricRegistry& registry);

  /// Attaches (or detaches with nullptr) the causal-trace recorder and
  /// forwards it to the file service (and its transfer peer). Traced
  /// selection requests then emit kSelectRequest/kSelectDeliver/
  /// kSelectFail/kSelectReissue spans, traced stats reports emit
  /// kStatsReport, and re-homing lands as an ambient kRehome event.
  void attach_trace(obs::trace::TraceRecorder* recorder) noexcept;

 private:
  /// Cached instrument handles; all null while detached.
  struct Metrics {
    obs::Counter* selections_requested = nullptr;
    obs::Counter* selection_failures = nullptr;
    obs::Counter* selection_reissues = nullptr;
    obs::Counter* misreports = nullptr;
    obs::Histogram* selection_latency_s = nullptr;
  };

  void heartbeat();
  void publish_advert();

  [[nodiscard]] sim::Simulator& sim() noexcept { return endpoint_.fabric().simulator(); }

  transport::Endpoint& endpoint_;
  NodeId node_;
  NodeId broker_node_;
  OverlayDirectories& directories_;
  ClientConfig config_;
  jxta::DiscoveryService discovery_;
  jxta::PipeService pipes_;
  jxta::GroupMembership membership_;
  tasks::TaskExecutor executor_;
  std::unique_ptr<FileService> files_;
  std::unique_ptr<TaskService> task_service_;
  std::unique_ptr<MessagingService> messaging_;
  transport::ReliableChannel select_channel_;
  Metrics m_;
  obs::trace::TraceRecorder* trace_ = nullptr;
  sim::EventHandle heartbeat_timer_;
  bool started_ = false;
  MisreportProfile misreport_;
  /// True only while a non-honest profile is installed, so the honest
  /// path never even reads the profile.
  bool misreport_active_ = false;
  std::uint64_t heartbeats_sent_ = 0;
  std::uint64_t selection_reissues_ = 0;
  std::uint64_t misreports_sent_ = 0;
};

}  // namespace peerlab::overlay
