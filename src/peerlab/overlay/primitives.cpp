#include "peerlab/overlay/primitives.hpp"

#include <utility>

#include "peerlab/common/check.hpp"

namespace peerlab::overlay {

void Primitives::discover_peers(DiscoverCallback done) {
  jxta::AdvertisementQuery query;
  query.kind = jxta::AdvertisementKind::kPeer;
  self_.discovery().query_remote(query, std::move(done));
}

void Primitives::discover_content(const std::string& name, DiscoverCallback done) {
  jxta::AdvertisementQuery query;
  query.kind = jxta::AdvertisementKind::kContent;
  query.name = name;
  self_.discovery().query_remote(query, std::move(done));
}

void Primitives::share_content(const std::string& name, Bytes size, Seconds lifetime) {
  jxta::Advertisement adv;
  adv.kind = jxta::AdvertisementKind::kContent;
  adv.name = name;
  adv.home = self_.node();
  adv.attributes["bytes"] = std::to_string(size);
  self_.discovery().publish(std::move(adv), lifetime);
}

void Primitives::select_peers(const core::SelectionContext& context, std::size_t k,
                              ClientPeer::SelectionCallback done) {
  self_.request_selection(context, k, std::move(done));
}

TransferId Primitives::send_file(PeerId dst, Bytes size, int parts,
                                 FileService::Completion done) {
  transport::FileTransferConfig config;
  config.file_size = size;
  config.parts = parts;
  return self_.files().send_file(dst, config, std::move(done));
}

void Primitives::distribute_file(Bytes size, int parts,
                                 FileService::DistributionCallback done) {
  PEERLAB_CHECK_MSG(static_cast<bool>(done), "completion callback required");
  core::SelectionContext context;
  context.purpose = core::SelectionContext::Purpose::kFileTransfer;
  context.payload_size = size;
  self_.request_selection(
      context, static_cast<std::size_t>(parts),
      [this, size, parts, done = std::move(done)](std::vector<PeerId> selected) {
        std::erase(selected, self_.id());
        if (selected.empty()) {
          FileService::DistributionResult result;
          result.complete = false;
          done(result);
          return;
        }
        transport::FileTransferConfig base;
        self_.files().distribute(size, parts, selected, base, done);
      });
}

TaskId Primitives::submit_task(PeerId executor, GigaCycles work, Bytes input_size,
                               TaskService::Completion done) {
  TaskSubmission submission;
  submission.executor = executor;
  submission.work = work;
  submission.input_size = input_size;
  return self_.task_service().submit(submission, std::move(done));
}

void Primitives::submit_task_auto(GigaCycles work, Bytes input_size,
                                  TaskService::Completion done) {
  PEERLAB_CHECK_MSG(static_cast<bool>(done), "completion callback required");
  core::SelectionContext context;
  context.purpose = core::SelectionContext::Purpose::kTaskExecution;
  context.work = work;
  context.payload_size = input_size;
  self_.request_selection(
      context, 1,
      [this, work, input_size, done = std::move(done)](std::vector<PeerId> selected) {
        // Never pick ourselves (the broker may know us as a candidate).
        std::erase(selected, self_.id());
        if (selected.empty()) {
          TaskOutcome outcome;
          outcome.accepted = false;
          outcome.ok = false;
          done(outcome);
          return;
        }
        submit_task(selected.front(), work, input_size, done);
      });
}

}  // namespace peerlab::overlay
