#pragma once

// Background cross-traffic generator. PlanetLab access links were
// never idle: other slices' flows came and went continuously. This
// generator injects bulk messages between random node pairs with
// Poisson arrivals and heavy-tailed sizes, stealing bandwidth from the
// overlay's transfers exactly the way co-located slivers did. Used by
// the cross-traffic ablation and available to any experiment that
// wants a noisier substrate.

#include "peerlab/net/network.hpp"

namespace peerlab::net {

struct BackgroundTrafficConfig {
  /// Mean seconds between flow arrivals (Poisson process).
  Seconds mean_interarrival = 30.0;
  /// Bounded-Pareto flow sizes (heavy-tailed, like real transfers).
  Bytes min_size = 256 * kKilobyte;
  Bytes max_size = 64 * kMegabyte;
  double size_alpha = 1.3;
  /// Generator stops spawning after this many flows (0 = unlimited —
  /// only sensible under run_until).
  std::uint64_t max_flows = 0;
};

class BackgroundTraffic {
 public:
  /// Draws node pairs from the network's whole topology. The generator
  /// is a daemon: it never keeps a run() alive by itself, but flows it
  /// has already launched complete as normal work.
  BackgroundTraffic(Network& network, BackgroundTrafficConfig config = {});

  BackgroundTraffic(const BackgroundTraffic&) = delete;
  BackgroundTraffic& operator=(const BackgroundTraffic&) = delete;

  /// Starts (or restarts) the arrival process.
  void start();
  /// Stops spawning; in-flight flows drain naturally.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] std::uint64_t flows_started() const noexcept { return started_; }
  [[nodiscard]] std::uint64_t flows_finished() const noexcept { return finished_; }
  [[nodiscard]] Bytes bytes_injected() const noexcept { return bytes_; }

 private:
  void arm();
  void spawn();

  Network& network_;
  BackgroundTrafficConfig config_;
  sim::Rng rng_;
  sim::EventHandle timer_;
  bool running_ = false;
  std::uint64_t started_ = 0;
  std::uint64_t finished_ = 0;
  Bytes bytes_ = 0;
};

}  // namespace peerlab::net
