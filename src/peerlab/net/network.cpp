#include "peerlab/net/network.hpp"

#include <algorithm>

#include "peerlab/common/check.hpp"

namespace peerlab::net {

Network::Network(sim::Simulator& sim, Topology topology, NetworkConfig config)
    : sim_(sim),
      topology_(std::move(topology)),
      config_(config),
      flows_(sim, topology_, config.flows),
      loss_rng_(sim.rng().fork(0x10055ull)) {
  PEERLAB_CHECK_MSG(config_.datagram_loss >= 0.0 && config_.datagram_loss < 1.0,
                    "datagram_loss must be in [0, 1)");
}

Seconds Network::sample_control_delay(NodeId src, NodeId dst) {
  return topology_.propagation(src, dst) + topology_.node(dst).sample_control_delay() +
         config_.datagram_serialization;
}

void Network::send_datagram(NodeId src, NodeId dst, Bytes size,
                            std::function<void()> on_delivered) {
  PEERLAB_CHECK_MSG(size >= 0, "datagram size must be non-negative");
  ++datagrams_sent_;
  const double p_deliver =
      (1.0 - config_.datagram_loss) * topology_.node(dst).delivery_probability(size);
  if (!loss_rng_.bernoulli(p_deliver)) {
    ++datagrams_lost_;
    if (tracer_ != nullptr) {
      tracer_->record(sim_.now(), sim::TraceCategory::kNetwork, "datagram-lost",
                      to_string(src) + "->" + to_string(dst), src.value(), dst.value());
    }
    return;  // silently dropped; sender's timer handles it
  }
  const Seconds delay = sample_control_delay(src, dst);
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), sim::TraceCategory::kNetwork, "datagram-sent",
                    to_string(src) + "->" + to_string(dst), src.value(), dst.value());
  }
  sim_.schedule(delay, [cb = std::move(on_delivered)] {
    if (cb) cb();
  });
}

FlowId Network::start_message(NodeId src, NodeId dst, Bytes size,
                              std::function<void(bool, Seconds)> on_done) {
  PEERLAB_CHECK_MSG(size > 0, "bulk message size must be positive");
  ++messages_started_;
  const Seconds begun = sim_.now();

  const auto& src_profile = topology_.node(src).profile();
  const MbitPerSec nominal =
      std::min(src_profile.uplink_mbps, topology_.node(dst).profile().downlink_mbps);
  const MbitPerSec cap = config_.degradation.cap(nominal, size);

  // Whole-message loss: decide up-front whether this copy survives; a
  // lost copy burns a random fraction of its wire time first.
  const double p_deliver = topology_.node(dst).delivery_probability(size);
  const bool survives = loss_rng_.bernoulli(p_deliver);
  Bytes flow_size = size;
  if (!survives) {
    ++messages_lost_;
    const double fraction = loss_rng_.uniform(0.15, 0.95);
    flow_size = std::max<Bytes>(1, static_cast<Bytes>(static_cast<double>(size) * fraction));
  }

  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), sim::TraceCategory::kNetwork, "message-start",
                    to_string(src) + "->" + to_string(dst),
                    static_cast<std::uint64_t>(size), survives ? 1 : 0);
  }
  FlowSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.size = flow_size;
  spec.rate_cap = cap;
  spec.on_complete = [this, begun, survives, src, dst, size,
                      cb = std::move(on_done)](Seconds /*flow_duration*/) {
    const Seconds elapsed = sim_.now() - begun + topology_.propagation(src, dst);
    if (tracer_ != nullptr) {
      tracer_->record(sim_.now(), sim::TraceCategory::kNetwork,
                      survives ? "message-delivered" : "message-lost",
                      to_string(src) + "->" + to_string(dst),
                      static_cast<std::uint64_t>(size), 0);
    }
    if (cb) cb(survives, elapsed);
  };
  return flows_.start(std::move(spec));
}

}  // namespace peerlab::net
