#include "peerlab/net/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "peerlab/common/check.hpp"
#include "peerlab/obs/trace.hpp"

namespace peerlab::net {

using obs::trace::TraceKind;

Network::Network(sim::Simulator& sim, Topology topology, NetworkConfig config)
    : sim_(sim),
      topology_(std::move(topology)),
      config_(config),
      flows_(sim, topology_, config.flows),
      loss_rng_(sim.rng().fork(0x10055ull)) {
  PEERLAB_CHECK_MSG(config_.datagram_loss >= 0.0 && config_.datagram_loss < 1.0,
                    "datagram_loss must be in [0, 1)");
  PEERLAB_CHECK_MSG(
      config_.datagram_duplication >= 0.0 && config_.datagram_duplication < 1.0,
      "datagram_duplication must be in [0, 1)");
}

void Network::attach_metrics(obs::MetricRegistry& registry, bool wall_profiling,
                             obs::WallProfiler* profiler) {
  m_.datagrams_sent = &registry.counter("net.datagrams.sent", "datagrams");
  m_.datagrams_lost = &registry.counter("net.datagrams.lost", "datagrams");
  m_.datagrams_blocked = &registry.counter("net.datagrams.blocked", "datagrams");
  m_.datagrams_duplicated = &registry.counter("net.datagrams.duplicated", "datagrams");
  m_.messages_started = &registry.counter("net.messages.started", "messages");
  m_.messages_lost = &registry.counter("net.messages.lost", "messages");
  m_.messages_blocked = &registry.counter("net.messages.blocked", "messages");
  m_.messages_aborted = &registry.counter("net.messages.aborted", "messages");
  m_.brownout_seconds = &registry.gauge("net.brownout_seconds", "s");
  obs::Histogram::Options delay_opts;
  delay_opts.lo = 1e-4;  // control delays run 1 ms .. tens of seconds
  delay_opts.hi = 1e3;
  m_.datagram_delay_s = &registry.histogram("net.datagram_delay_s", "s", delay_opts);
  flows_.attach_metrics(registry, wall_profiling, profiler);
}

void Network::account_brownout(NodeId node, double new_factor) {
  if (m_.brownout_seconds == nullptr) return;
  if (brownout_since_.size() <= node.value()) {
    brownout_since_.resize(topology_.size() + 1,
                           std::numeric_limits<Seconds>::quiet_NaN());
  }
  Seconds& since = brownout_since_[node.value()];
  // Close the running degraded interval (a factor change ends one
  // segment and may start another), then open a new one unless the
  // node is back to nominal.
  if (!std::isnan(since)) {
    m_.brownout_seconds->add(sim_.now() - since);
    since = std::numeric_limits<Seconds>::quiet_NaN();
  }
  if (new_factor < 1.0) since = sim_.now();
}

bool Network::node_up(NodeId node) const noexcept {
  const std::uint64_t i = node.value();
  return i >= node_down_.size() || node_down_[i] == 0;
}

void Network::crash_node(NodeId node) {
  PEERLAB_CHECK_MSG(topology_.contains(node), "crash target must exist");
  if (!node_up(node)) return;
  if (node_down_.size() <= node.value()) node_down_.resize(topology_.size() + 1, 0);
  node_down_[node.value()] = 1;
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), sim::TraceCategory::kNetwork, "node-crash", to_string(node),
                    node.value(), 0);
  }
  // All in-flight messages touching the node die together: the batch
  // guard coalesces the dirty components so each survivor component
  // re-levels exactly once, then every victim's failure callback fires
  // (spec.on_abort, wired in start_message).
  const auto batch = flows_.start_batch();
  const std::size_t aborted = flows_.abort_touching(node);
  messages_aborted_ += aborted;
  if (m_.messages_aborted != nullptr) m_.messages_aborted->add(aborted);
}

void Network::set_capacity_factor(NodeId node, double factor) {
  account_brownout(node, factor);
  flows_.set_capacity_factor(node, factor);
  // Brownouts are faults like crashes and partitions: record them so a
  // trace of a degraded run explains its throughput dips.
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), sim::TraceCategory::kNetwork, "node-brownout",
                    to_string(node), node.value(),
                    static_cast<std::uint64_t>(factor * 100.0));
  }
}

void Network::restore_node(NodeId node) {
  PEERLAB_CHECK_MSG(topology_.contains(node), "restore target must exist");
  if (node.value() < node_down_.size()) node_down_[node.value()] = 0;
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), sim::TraceCategory::kNetwork, "node-restart", to_string(node),
                    node.value(), 0);
  }
}

void Network::partition(NodeId a, NodeId b) {
  PEERLAB_CHECK_MSG(topology_.contains(a) && topology_.contains(b) && a != b,
                    "partition needs two distinct existing nodes");
  if (!partitions_.emplace(std::min(a.value(), b.value()), std::max(a.value(), b.value()))
           .second) {
    return;
  }
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), sim::TraceCategory::kNetwork, "link-partition",
                    to_string(a) + "-" + to_string(b), a.value(), b.value());
  }
  const std::size_t aborted = flows_.abort_between(a, b);
  messages_aborted_ += aborted;
  if (m_.messages_aborted != nullptr) m_.messages_aborted->add(aborted);
}

void Network::heal(NodeId a, NodeId b) {
  partitions_.erase({std::min(a.value(), b.value()), std::max(a.value(), b.value())});
}

bool Network::partitioned(NodeId a, NodeId b) const noexcept {
  return partitions_.count({std::min(a.value(), b.value()), std::max(a.value(), b.value())}) >
         0;
}

Seconds Network::sample_control_delay(NodeId src, NodeId dst) {
  return topology_.propagation(src, dst) + topology_.node(dst).sample_control_delay() +
         config_.datagram_serialization;
}

void Network::send_datagram(NodeId src, NodeId dst, Bytes size,
                            std::function<void()> on_delivered) {
  PEERLAB_CHECK_MSG(size >= 0, "datagram size must be non-negative");
  ++datagrams_sent_;
  if (m_.datagrams_sent != nullptr) m_.datagrams_sent->add(1);
  if (!reachable(src, dst)) {
    ++datagrams_lost_;
    ++datagrams_blocked_;
    if (m_.datagrams_lost != nullptr) {
      m_.datagrams_lost->add(1);
      m_.datagrams_blocked->add(1);
    }
    if (tracer_ != nullptr) {
      tracer_->record(sim_.now(), sim::TraceCategory::kNetwork, "datagram-blocked",
                      to_string(src) + "->" + to_string(dst), src.value(), dst.value());
    }
    return;  // dead/partitioned endpoint; sender's timer handles it
  }
  const double p_deliver =
      (1.0 - config_.datagram_loss) * topology_.node(dst).delivery_probability(size);
  if (!loss_rng_.bernoulli(p_deliver)) {
    ++datagrams_lost_;
    if (m_.datagrams_lost != nullptr) m_.datagrams_lost->add(1);
    if (tracer_ != nullptr) {
      tracer_->record(sim_.now(), sim::TraceCategory::kNetwork, "datagram-lost",
                      to_string(src) + "->" + to_string(dst), src.value(), dst.value());
    }
    return;  // silently dropped; sender's timer handles it
  }
  const Seconds delay = sample_control_delay(src, dst);
  if (m_.datagram_delay_s != nullptr) m_.datagram_delay_s->record(delay);
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), sim::TraceCategory::kNetwork, "datagram-sent",
                    to_string(src) + "->" + to_string(dst), src.value(), dst.value());
  }
  // A crash between send and arrival kills the destination's software
  // before the datagram lands, so deliverability is re-checked at the
  // arrival instant.
  auto arrival = [this, dst, cb = std::move(on_delivered)] {
    if (!node_up(dst)) {
      ++datagrams_lost_;
      ++datagrams_blocked_;
      if (m_.datagrams_lost != nullptr) {
        m_.datagrams_lost->add(1);
        m_.datagrams_blocked->add(1);
      }
      return;
    }
    if (cb) cb();
  };
  // The duplication decision draws only when the knob is armed, so the
  // default configuration consumes an identical RNG sequence.
  if (config_.datagram_duplication > 0.0 &&
      loss_rng_.bernoulli(config_.datagram_duplication)) {
    ++datagrams_duplicated_;
    if (m_.datagrams_duplicated != nullptr) m_.datagrams_duplicated->add(1);
    if (tracer_ != nullptr) {
      tracer_->record(sim_.now(), sim::TraceCategory::kNetwork, "datagram-duplicated",
                      to_string(src) + "->" + to_string(dst), src.value(), dst.value());
    }
    // The copy rides an independently sampled delay: it may land before
    // or after the original, exercising responder idempotency both ways.
    sim_.schedule(sample_control_delay(src, dst), arrival);
  }
  sim_.schedule(delay, std::move(arrival));
}

FlowId Network::start_message(NodeId src, NodeId dst, Bytes size,
                              std::function<void(bool, Seconds)> on_done) {
  return start_message(src, dst, size, obs::trace::TraceContext{}, std::move(on_done));
}

FlowId Network::start_message(NodeId src, NodeId dst, Bytes size,
                              const obs::trace::TraceContext& trace,
                              std::function<void(bool, Seconds)> on_done) {
  PEERLAB_CHECK_MSG(size > 0, "bulk message size must be positive");
  ++messages_started_;
  if (m_.messages_started != nullptr) m_.messages_started->add(1);
  const Seconds begun = sim_.now();

  if (!reachable(src, dst)) {
    // The destination is dead or unreachable: no bytes move; the
    // sender's transport notices after a connect-timeout-ish stall.
    ++messages_lost_;
    ++messages_blocked_;
    if (m_.messages_lost != nullptr) {
      m_.messages_lost->add(1);
      m_.messages_blocked->add(1);
    }
    if (tracer_ != nullptr) {
      tracer_->record(sim_.now(), sim::TraceCategory::kNetwork, "message-blocked",
                      to_string(src) + "->" + to_string(dst),
                      static_cast<std::uint64_t>(size), 0);
    }
    if (trace_ != nullptr && trace.active()) {
      // No flow ever starts; the chain records the immediate abort.
      trace_->emit(src, TraceKind::kFlowAbort, trace, 0, static_cast<std::uint64_t>(size));
    }
    sim_.schedule(config_.fault_stall, [this, begun, cb = std::move(on_done)] {
      if (cb) cb(false, sim_.now() - begun);
    });
    return FlowId();
  }

  const auto& src_profile = topology_.node(src).profile();
  const MbitPerSec nominal =
      std::min(src_profile.uplink_mbps, topology_.node(dst).profile().downlink_mbps);
  const MbitPerSec cap = config_.degradation.cap(nominal, size);

  // Whole-message loss: decide up-front whether this copy survives; a
  // lost copy burns a random fraction of its wire time first.
  const double p_deliver = topology_.node(dst).delivery_probability(size);
  const bool survives = loss_rng_.bernoulli(p_deliver);
  Bytes flow_size = size;
  if (!survives) {
    ++messages_lost_;
    if (m_.messages_lost != nullptr) m_.messages_lost->add(1);
    const double fraction = loss_rng_.uniform(0.15, 0.95);
    flow_size = std::max<Bytes>(1, static_cast<Bytes>(static_cast<double>(size) * fraction));
  }

  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), sim::TraceCategory::kNetwork, "message-start",
                    to_string(src) + "->" + to_string(dst),
                    static_cast<std::uint64_t>(size), survives ? 1 : 0);
  }
  FlowSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.size = flow_size;
  spec.rate_cap = cap;
  // Completion and fault-abort share the caller's callback; exactly one
  // of the two paths ever fires (the scheduler drops both closures when
  // the flow leaves).
  auto shared_cb = std::make_shared<std::function<void(bool, Seconds)>>(std::move(on_done));
  spec.on_complete = [this, begun, survives, src, dst, size, trace,
                      shared_cb](Seconds /*flow_duration*/) {
    const Seconds elapsed = sim_.now() - begun + topology_.propagation(src, dst);
    if (tracer_ != nullptr) {
      tracer_->record(sim_.now(), sim::TraceCategory::kNetwork,
                      survives ? "message-delivered" : "message-lost",
                      to_string(src) + "->" + to_string(dst),
                      static_cast<std::uint64_t>(size), 0);
    }
    if (trace_ != nullptr && trace.active()) {
      trace_->emit(dst, TraceKind::kFlowFinish, trace, static_cast<std::uint64_t>(size),
                   survives ? 1 : 0);
    }
    if (*shared_cb) (*shared_cb)(survives, elapsed);
  };
  spec.on_abort = [this, begun, src, dst, size, trace, shared_cb](Seconds /*elapsed*/) {
    if (tracer_ != nullptr) {
      tracer_->record(sim_.now(), sim::TraceCategory::kNetwork, "message-aborted",
                      to_string(src) + "->" + to_string(dst),
                      static_cast<std::uint64_t>(size), 0);
    }
    if (trace_ != nullptr && trace.active()) {
      trace_->emit(src, TraceKind::kFlowAbort, trace, 0, static_cast<std::uint64_t>(size));
    }
    if (*shared_cb) (*shared_cb)(false, sim_.now() - begun);
  };
  const FlowId id = flows_.start(std::move(spec));
  if (trace_ != nullptr && trace.active()) {
    trace_->emit(src, TraceKind::kFlowStart, trace, id.value(), static_cast<std::uint64_t>(size));
  }
  return id;
}

}  // namespace peerlab::net
