#pragma once

// Fault injection: deterministic schedules of node crash/restart, link
// partition and bandwidth-brownout events, applied to a Network.
//
// A FaultPlan is pure data — scripted directly (crash/partition/
// brownout) or generated from a seeded RNG (random_churn: alternating
// exponential up/down times per node, the classic MTTF/MTTR renewal
// model). A FaultInjector schedules the plan's events on the
// simulator and applies each one to the network at its instant; hooks
// let the overlay layer co-simulate the software side of a fault
// (stop a crashed peer's heartbeat loop, restart it on recovery).
// Everything is a deterministic function of the plan, so a seeded
// churn run replays bit-for-bit.

#include <functional>
#include <vector>

#include "peerlab/net/network.hpp"
#include "peerlab/sim/rng.hpp"

namespace peerlab::net {

enum class FaultKind : std::uint8_t { kCrash, kRestart, kPartition, kHeal, kBrownout };

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

struct FaultEvent {
  Seconds at = 0.0;
  FaultKind kind = FaultKind::kCrash;
  /// Crash/restart/brownout target; one side of a partition.
  NodeId node;
  /// The other side of a partition (unused otherwise).
  NodeId peer;
  /// Brownout capacity multiplier in (0, 1]; 1 restores nominal.
  double factor = 1.0;
};

class FaultPlan {
 public:
  /// Node goes down at `at` and comes back `downtime` later.
  void crash(Seconds at, NodeId node, Seconds downtime);
  /// Node goes down at `at` and never returns.
  void crash_forever(Seconds at, NodeId node);
  /// The a<->b link is cut at `at` and healed `duration` later.
  void partition(Seconds at, NodeId a, NodeId b, Seconds duration);
  /// Node's access capacity is scaled by `factor` for `duration`.
  void brownout(Seconds at, NodeId node, double factor, Seconds duration);
  /// Raw event append for custom schedules.
  void add(FaultEvent event);
  /// Appends every event of `other`: composes scripted faults (e.g. a
  /// broker crash) with a generated churn schedule into one plan.
  void merge(const FaultPlan& other);

  /// MTTF/MTTR renewal churn: each node alternates exponential
  /// up-times (mean `mttf`) and down-times (mean `mttr`), first crash
  /// no earlier than `start`, no event at or beyond `horizon` (every
  /// crash before the horizon still gets its restart, so no node is
  /// left down forever). Deterministic in the RNG state and node order.
  [[nodiscard]] static FaultPlan random_churn(sim::Rng& rng, const std::vector<NodeId>& nodes,
                                              Seconds mttf, Seconds mttr, Seconds start,
                                              Seconds horizon);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept { return events_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;
};

class FaultInjector {
 public:
  struct Hooks {
    /// Fires right after the network marks the node down (its flows
    /// already aborted); stop the node's overlay software here.
    std::function<void(NodeId)> on_crash;
    /// Fires right after the network marks the node up; restart the
    /// node's overlay software here (re-registration et al.).
    std::function<void(NodeId)> on_restart;
  };

  /// Schedules every event of `plan` on the network's simulator. All
  /// event times must be >= now. The injector must outlive the run.
  FaultInjector(Network& network, FaultPlan plan, Hooks hooks = {});

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] std::uint64_t crashes_applied() const noexcept { return crashes_; }
  [[nodiscard]] std::uint64_t restarts_applied() const noexcept { return restarts_; }
  [[nodiscard]] std::uint64_t partitions_applied() const noexcept { return partitions_; }
  [[nodiscard]] std::uint64_t brownouts_applied() const noexcept { return brownouts_; }

  /// Registers per-kind fault counters in `registry`; each applied
  /// event then also bumps its counter. Zero-cost when never called.
  void attach_metrics(obs::MetricRegistry& registry);

  /// Attaches (or detaches with nullptr) the causal-trace recorder;
  /// applied faults then land as ambient kCrash/kRestart/
  /// kPartitionCut/kPartitionHeal/kBrownout events, giving chains
  /// their environmental context.
  void set_trace(obs::trace::TraceRecorder* recorder) noexcept { trace_ = recorder; }

 private:
  /// Cached instrument handles; all null while detached.
  struct Metrics {
    obs::Counter* crashes = nullptr;
    obs::Counter* restarts = nullptr;
    obs::Counter* partitions = nullptr;
    obs::Counter* heals = nullptr;
    obs::Counter* brownouts = nullptr;
  };

  void apply(const FaultEvent& event);

  Network& network_;
  FaultPlan plan_;
  Hooks hooks_;
  Metrics m_;
  obs::trace::TraceRecorder* trace_ = nullptr;
  std::uint64_t crashes_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t partitions_ = 0;
  std::uint64_t brownouts_ = 0;
};

}  // namespace peerlab::net
