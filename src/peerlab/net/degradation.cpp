#include "peerlab/net/degradation.hpp"

#include <cmath>

namespace peerlab::net {

double DegradationModel::factor(Bytes size) const noexcept {
  if (size <= control_exempt_below || s0 <= 0) {
    return 1.0;
  }
  const double ratio = static_cast<double>(size) / static_cast<double>(s0);
  return 1.0 / (1.0 + std::pow(ratio, alpha));
}

MbitPerSec DegradationModel::cap(MbitPerSec nominal, Bytes size) const noexcept {
  return nominal * factor(size);
}

}  // namespace peerlab::net
