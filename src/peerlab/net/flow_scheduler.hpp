#pragma once

// Fluid-flow bandwidth model with progressive max-min fair sharing.
//
// Every bulk transfer is a "flow" with a remaining byte count. Flow
// rates are the max-min fair allocation subject to (a) each node's
// uplink/downlink capacity and (b) an optional per-flow rate cap (the
// JXTA large-message degradation). Whenever the flow set changes, all
// flows are advanced to the current instant at their old rates, rates
// are recomputed by water-filling, and the next completion event is
// rescheduled. This is the classic fluid approximation used by
// simulators like SimGrid: it captures the first-order effect that
// matters for peer selection — concurrent transfers share a peer's
// access link — without packet-level cost.
//
// Performance layout (see DESIGN.md §13 "Memory & layout"): per-flow
// state is structure-of-arrays. Each scan touches only the slabs it
// reads — advance streams remaining+rate, reschedule streams
// rate+remaining, the water-fill streams its own pending slabs — so
// the hot-loop stride is 8 bytes per field instead of one fat record.
// Slots are recycled through a free list and looked up through a small
// open-addressed SlotIndex; `active_` lists occupied slots in FlowId
// order so water-filling iteration (and therefore floating-point
// accumulation order) is deterministic and matches the retained
// reference implementation bit for bit. Node-link capacities and user
// counts are dense arrays indexed by node-id × direction, per-node
// upload/download counts are maintained incrementally (O(1) queries),
// and every water-filling round runs over scratch slabs owned by the
// scheduler — steady-state recomputation performs zero heap
// allocations.
//
// Re-levelling is *incremental*: max-min fairness decomposes by the
// connected components of the flow/resource sharing graph (flows are
// adjacent when they share an uplink or downlink), so a transition —
// start, finish, cancel, abort, brownout — only perturbs the component
// of the flows it touches. Every flow sits on two intrusive lists (one
// per endpoint resource); transitions mark their resources dirty, and
// settle() flood-fills from the dirty set to collect exactly the
// affected component(s), water-filling those flows in FlowId order
// while every untouched component keeps its rates byte-for-byte (see
// DESIGN.md for the equivalence argument). Batches coalesce dirty
// resources across all deferred transitions and re-level once at the
// outermost guard close.

#include <cstdint>
#include <functional>
#include <vector>

#include "peerlab/common/ids.hpp"
#include "peerlab/common/slot_index.hpp"
#include "peerlab/common/units.hpp"
#include "peerlab/net/topology.hpp"
#include "peerlab/obs/metrics.hpp"
#include "peerlab/obs/profile.hpp"
#include "peerlab/sim/simulator.hpp"

namespace peerlab::obs::trace {
class TraceRecorder;
}  // namespace peerlab::obs::trace

namespace peerlab::net {

struct FlowSpec {
  NodeId src;
  NodeId dst;
  Bytes size = 0;
  /// Per-flow rate ceiling (degradation cap); <= 0 means uncapped.
  MbitPerSec rate_cap = 0.0;
  /// Invoked at completion with the flow's total duration.
  std::function<void(Seconds duration)> on_complete;
  /// Invoked (with the flow's elapsed time) when the flow is torn down
  /// by a fault — abort_touching()/abort_between() — as opposed to
  /// cancel(), which stays silent. Optional.
  std::function<void(Seconds elapsed)> on_abort;
};

struct FlowSchedulerConfig {
  /// Fraction of nominal access capacity available to the overlay
  /// (the rest is other slivers' cross traffic).
  double capacity_scale = 1.0;
};

class FlowScheduler {
 public:
  FlowScheduler(sim::Simulator& sim, const Topology& topo, FlowSchedulerConfig config = {});

  FlowScheduler(const FlowScheduler&) = delete;
  FlowScheduler& operator=(const FlowScheduler&) = delete;

  /// Starts a flow; completion fires through the simulator. The spec's
  /// size must be positive and both endpoints must exist.
  FlowId start(FlowSpec spec);

  /// Cancels a flow; its on_complete is never invoked. No-op if the
  /// flow already completed.
  void cancel(FlowId id);

  /// Scoped batch: while at least one Batch is alive, start()/cancel()/
  /// abort_*() defer the rate recomputation and the completion-timer
  /// reschedule; a single recompute runs when the last Batch closes.
  /// No virtual time passes inside a batch (a Batch lives within one
  /// simulator event), so the resulting rates are identical to the
  /// one-recompute-per-change sequence.
  class Batch {
   public:
    explicit Batch(FlowScheduler& scheduler) : scheduler_(scheduler) {
      ++scheduler_.batch_depth_;
    }
    ~Batch() { scheduler_.end_batch(); }
    Batch(const Batch&) = delete;
    Batch& operator=(const Batch&) = delete;

   private:
    FlowScheduler& scheduler_;
  };
  [[nodiscard]] Batch start_batch() { return Batch(*this); }

  /// Aborts every active flow with an endpoint at `node` (a node
  /// crash). All removals share one recomputation; each aborted flow's
  /// on_abort then fires with its elapsed time, after the scheduler is
  /// consistent again. Returns the number of flows aborted.
  std::size_t abort_touching(NodeId node);

  /// Aborts active flows between `a` and `b`, either direction (a link
  /// partition). Same batching and callback semantics as above.
  std::size_t abort_between(NodeId a, NodeId b);

  /// Scales `node`'s uplink+downlink capacity by `factor` in (0, 1] —
  /// the bandwidth-brownout fault. Factor 1 restores the profile's
  /// nominal capacity; active flows re-level immediately.
  void set_capacity_factor(NodeId node, double factor);
  [[nodiscard]] double capacity_factor(NodeId node) const noexcept;

  [[nodiscard]] bool active(FlowId id) const noexcept {
    return index_.find(id.value()) != nullptr;
  }
  [[nodiscard]] std::size_t active_flows() const noexcept { return active_.size(); }

  /// Current fair-share rate of a flow (0 if unknown).
  [[nodiscard]] MbitPerSec current_rate(FlowId id) const noexcept;

  /// Remaining bytes of a flow (0 if unknown).
  [[nodiscard]] Bytes remaining_bytes(FlowId id) const noexcept;

  /// Number of active uploads leaving `node` (outbox pressure signal).
  /// Incrementally maintained: O(1).
  [[nodiscard]] int uploads_at(NodeId node) const noexcept;
  /// Number of active downloads entering `node` (inbox pressure signal).
  /// Incrementally maintained: O(1).
  [[nodiscard]] int downloads_at(NodeId node) const noexcept;

  /// Registers this scheduler's instruments in `registry` and starts
  /// recording into them; zero-cost when never called (every record
  /// site is one null test, like Network::set_tracer). With
  /// `wall_profiling` the re-level path also times itself with the
  /// steady clock into `net.flows.relevel_wall_s` — re-levels run
  /// within one sim instant, so only wall time can profile them. A
  /// non-null `profiler` additionally opens nested self/total spans
  /// (`flows.relevel` with child `flows.waterfill`) per pass.
  void attach_metrics(obs::MetricRegistry& registry, bool wall_profiling = false,
                      obs::WallProfiler* profiler = nullptr);
  void detach_metrics() noexcept { m_ = Metrics(); }

  /// Attaches (or detaches with nullptr) the causal-trace recorder;
  /// every re-level pass then records an ambient kRelevel event
  /// (a = components releveled, b = flows releveled). One null test
  /// per pass when detached.
  void set_trace(obs::trace::TraceRecorder* recorder) noexcept { trace_ = recorder; }

 private:
  /// Intrusive membership in the two per-resource flow lists (dir 0 =
  /// the source's uplink, dir 1 = the destination's downlink). Kept out
  /// of the hot scan slabs: only settle-time flood fill walks these.
  /// `key` caches the flow's two resource keys and `mark` carries the
  /// flood-fill epoch stamp, so discovering a flow touches exactly one
  /// 32-byte record (two per cache line, never straddling) instead of
  /// the flow's scan slabs plus side arrays. The keys double as the
  /// flow's endpoints (node id = key >> 1), so no separate src/dst
  /// array exists at all.
  struct Links {
    std::uint32_t next[2] = {kNilSlot, kNilSlot};
    std::uint32_t prev[2] = {kNilSlot, kNilSlot};
    std::uint32_t key[2] = {0, 0};
    std::uint64_t mark = 0;
  };
  static_assert(sizeof(Links) == 32, "Links must stay two-per-cache-line");
  static_assert(alignof(Links) == 8);
  /// Cold per-slot state, touched only at start/finish/abort.
  struct Callbacks {
    std::function<void(Seconds)> on_complete;
    std::function<void(Seconds)> on_abort;
  };
  struct Completion {
    Seconds duration = 0.0;
    std::function<void(Seconds)> callback;
  };

  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  void advance_to_now();
  /// Flood-fills the connected component(s) reachable from the dirty
  /// resource set and water-fills exactly those flows (in FlowId
  /// order); every other flow's rate is left untouched.
  void relevel_dirty();
  /// Water-fills `flows` (slot indices, FlowId-ascending). The rates of
  /// flows outside the set — and the capacities they consume — never
  /// enter the computation: max-min is component-local.
  void waterfill(const std::vector<std::uint32_t>& flows);
  void reschedule();
  void on_timer();
  /// relevel_dirty() + reschedule(), unless a batch is open (then the
  /// work is deferred to the last Batch's close).
  void settle();
  void end_batch();
  template <typename Pred>
  std::size_t abort_where(Pred pred);

  void mark_dirty(std::uint32_t key);
  void link_into(std::uint32_t slot, int dir, std::uint32_t key);
  void unlink_from(std::uint32_t slot, int dir, std::uint32_t key) noexcept;

  std::uint32_t acquire_slot();
  /// Pre-sizes every per-flow slab and water-fill scratch buffer for
  /// `flows` concurrent flows in one pass, so a cold scheduler's first
  /// transitions do not pay one geometric-growth allocation per slab.
  void reserve_flows(std::size_t flows);
  /// Unlinks the flow in `slot` (index, active list, resource lists,
  /// per-node counts), marks its resources dirty and recycles the slot.
  /// `active_pos` is its position in `active_`.
  void remove_flow(std::size_t active_pos);
  /// Position of `slot` in `active_` via binary search on flow id.
  [[nodiscard]] std::size_t active_position(std::uint32_t slot) const noexcept;
  void ensure_node_arrays();

  /// Source / destination node id of the flow in `slot`, decoded from
  /// its cached resource keys (valid while the flow is linked).
  [[nodiscard]] std::uint64_t src_of(std::uint32_t slot) const noexcept {
    return links_[slot].key[0] >> 1;
  }
  [[nodiscard]] std::uint64_t dst_of(std::uint32_t slot) const noexcept {
    return links_[slot].key[1] >> 1;
  }

  sim::Simulator& sim_;
  const Topology& topo_;
  FlowSchedulerConfig config_;

  // ---- per-flow SoA slabs, parallel by slot ----
  // Hot scans touch exactly the slabs they read: advance streams
  // f_remaining_+f_rate_, reschedule the same two, the water-fill seed
  // reads f_cap_ and writes f_rate_, sorting and lookup read f_id_.
  std::vector<double> f_remaining_;       // bits left
  std::vector<double> f_rate_;            // current fair share, Mbit/s
  std::vector<double> f_cap_;             // per-flow ceiling, +inf = uncapped
  std::vector<double> f_started_;         // start instant, s
  std::vector<std::uint64_t> f_id_;       // flow id, 0 = slot free
  std::vector<Callbacks> callbacks_;      // cold, parallel to the slabs
  std::vector<Links> links_;              // parallel to the slabs
  std::vector<std::uint32_t> free_slots_;  // capacity kept >= slot count
  std::vector<std::uint32_t> active_;      // occupied slots, FlowId-ascending
  SlotIndex index_;                        // flow id -> slot

  // Component tracking. `res_head_`/`res_tail_` bound the intrusive
  // flow list of each resource key; flows are appended at the tail, so
  // each list stays in ascending-FlowId order (ids are monotonic) and
  // the flood fill usually emits components already sorted.
  // `dirty_res_` accumulates the resources touched since the last
  // re-level (duplicates allowed, deduped by the epoch stamps during
  // the flood fill). `comp_flows_` / `res_stack_` are the flood-fill
  // scratch, reused across settles.
  std::vector<std::uint32_t> res_head_;
  std::vector<std::uint32_t> res_tail_;
  std::vector<std::uint32_t> dirty_res_;
  std::vector<std::uint64_t> res_mark_;  // per resource key
  std::vector<std::uint32_t> comp_flows_;
  std::vector<std::uint32_t> res_stack_;
  std::uint64_t epoch_ = 0;
  // True while the active flows are known to form a single connected
  // component (every start since attached to existing structure, no
  // removals since the last full fill). Lets relevel_dirty() water-fill
  // `active_` directly, skipping discovery — dense single-bottleneck
  // workloads hit this on every transition. Cleared conservatively on
  // any removal (the component may have split) and re-derived whenever
  // a flood fill finds one component spanning all active flows.
  bool mono_ = false;

  // Dense per-node incremental counters (index = node id).
  std::vector<int> uploads_;
  std::vector<int> downloads_;

  // Scaled per-link capacity by resource key, filled once per node when
  // the topology grows (profiles are immutable after add_node) and
  // re-derived for a node when its brownout factor changes.
  std::vector<double> link_capacity_;
  // Brownout factor per node id (1.0 = nominal).
  std::vector<double> capacity_factor_;
  // Water-filling scratch, reused across recomputations. Resource key =
  // node id * 2 + (0 = uplink, 1 = downlink).
  std::vector<double> wf_capacity_;
  std::vector<int> wf_users_;
  // Per-round cache of each resource's fair share. A shared resource is
  // consulted once per flow touching it; the cached divide is the same
  // expression evaluated once, so results are bit-identical. The round
  // stamp (`wf_round_`, monotonic) invalidates lazily.
  std::vector<double> wf_fair_;
  std::vector<std::uint64_t> wf_fair_round_;
  // Stamp that folds the per-round user-count zeroing into the counting
  // pass itself: a resource's first touch under a fresh stamp resets
  // its count instead of a separate zeroing sweep.
  std::vector<std::uint64_t> wf_user_round_;
  std::uint64_t wf_round_ = 0;
  // Pending-flow SoA slabs for the water-fill (parallel by pending
  // index): the not-yet-frozen set is compacted in place each round,
  // frozen entries are staged into the fr_* slabs in discovery order.
  // `wf_level_` caches each pending's min(fair(up), fair(down)) for the
  // round so the freeze partition re-reads a dense double slab instead
  // of chasing the per-resource cache again.
  std::vector<std::uint32_t> wf_slot_;
  std::vector<std::uint32_t> wf_up_;
  std::vector<std::uint32_t> wf_down_;
  std::vector<double> wf_flow_cap_;
  std::vector<double> wf_level_;
  std::vector<std::uint32_t> fr_slot_;
  std::vector<std::uint32_t> fr_up_;
  std::vector<std::uint32_t> fr_down_;
  std::vector<double> fr_cap_;
  std::vector<Completion> done_;  // completion staging, reused

  /// Cached instrument handles; all null while detached.
  struct Metrics {
    obs::Counter* flows_started = nullptr;
    obs::Counter* flows_completed = nullptr;
    obs::Counter* flows_aborted = nullptr;
    obs::Counter* flows_cancelled = nullptr;
    obs::Counter* relevels = nullptr;
    obs::Counter* components_releveled = nullptr;
    obs::Counter* flows_releveled = nullptr;
    obs::Histogram* relevel_wall_s = nullptr;
    obs::WallProfiler* profiler = nullptr;
    obs::WallProfiler::Site* relevel_site = nullptr;
    obs::WallProfiler::Site* waterfill_site = nullptr;
  };
  Metrics m_;
  obs::trace::TraceRecorder* trace_ = nullptr;

  IdAllocator<FlowId> ids_;
  sim::EventHandle timer_;
  Seconds last_advance_ = 0.0;
  int batch_depth_ = 0;
  bool batch_dirty_ = false;
};

}  // namespace peerlab::net
