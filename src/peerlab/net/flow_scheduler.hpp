#pragma once

// Fluid-flow bandwidth model with progressive max-min fair sharing.
//
// Every bulk transfer is a "flow" with a remaining byte count. Flow
// rates are the max-min fair allocation subject to (a) each node's
// uplink/downlink capacity and (b) an optional per-flow rate cap (the
// JXTA large-message degradation). Whenever the flow set changes, all
// flows are advanced to the current instant at their old rates, rates
// are recomputed by water-filling, and the next completion event is
// rescheduled. This is the classic fluid approximation used by
// simulators like SimGrid: it captures the first-order effect that
// matters for peer selection — concurrent transfers share a peer's
// access link — without packet-level cost.

#include <functional>
#include <map>

#include "peerlab/common/ids.hpp"
#include "peerlab/common/units.hpp"
#include "peerlab/net/topology.hpp"
#include "peerlab/sim/simulator.hpp"

namespace peerlab::net {

struct FlowSpec {
  NodeId src;
  NodeId dst;
  Bytes size = 0;
  /// Per-flow rate ceiling (degradation cap); <= 0 means uncapped.
  MbitPerSec rate_cap = 0.0;
  /// Invoked at completion with the flow's total duration.
  std::function<void(Seconds duration)> on_complete;
};

struct FlowSchedulerConfig {
  /// Fraction of nominal access capacity available to the overlay
  /// (the rest is other slivers' cross traffic).
  double capacity_scale = 1.0;
};

class FlowScheduler {
 public:
  FlowScheduler(sim::Simulator& sim, const Topology& topo, FlowSchedulerConfig config = {});

  FlowScheduler(const FlowScheduler&) = delete;
  FlowScheduler& operator=(const FlowScheduler&) = delete;

  /// Starts a flow; completion fires through the simulator. The spec's
  /// size must be positive and both endpoints must exist.
  FlowId start(FlowSpec spec);

  /// Cancels a flow; its on_complete is never invoked. No-op if the
  /// flow already completed.
  void cancel(FlowId id);

  [[nodiscard]] bool active(FlowId id) const noexcept { return flows_.count(id) > 0; }
  [[nodiscard]] std::size_t active_flows() const noexcept { return flows_.size(); }

  /// Current fair-share rate of a flow (0 if unknown).
  [[nodiscard]] MbitPerSec current_rate(FlowId id) const noexcept;

  /// Remaining bytes of a flow (0 if unknown).
  [[nodiscard]] Bytes remaining_bytes(FlowId id) const noexcept;

  /// Number of active uploads leaving `node` (outbox pressure signal).
  [[nodiscard]] int uploads_at(NodeId node) const noexcept;
  /// Number of active downloads entering `node` (inbox pressure signal).
  [[nodiscard]] int downloads_at(NodeId node) const noexcept;

 private:
  struct Flow {
    FlowSpec spec;
    double remaining_bits = 0.0;
    MbitPerSec rate = 0.0;
    Seconds started = 0.0;
  };

  void advance_to_now();
  void recompute_rates();
  void reschedule();
  void on_timer();

  sim::Simulator& sim_;
  const Topology& topo_;
  FlowSchedulerConfig config_;
  std::map<FlowId, Flow> flows_;  // ordered => deterministic water-filling
  IdAllocator<FlowId> ids_;
  sim::EventHandle timer_;
  Seconds last_advance_ = 0.0;
};

}  // namespace peerlab::net
