#include "peerlab/net/topology.hpp"

#include <utility>

#include "peerlab/common/check.hpp"
#include "peerlab/net/geo.hpp"

namespace peerlab::net {

NodeId Topology::add_node(NodeProfile profile) {
  const NodeId id = ids_.next();
  PEERLAB_CHECK_MSG(by_hostname_.find(profile.hostname) == by_hostname_.end(),
                    "duplicate hostname: " + profile.hostname);
  by_hostname_.emplace(profile.hostname, id);
  nodes_.push_back(std::make_unique<Node>(id, std::move(profile), rng_.fork(id.value())));
  return id;
}

Node& Topology::node(NodeId id) {
  PEERLAB_CHECK_MSG(contains(id), "unknown " + to_string(id));
  return *nodes_[id.value() - 1];
}

const Node& Topology::node(NodeId id) const {
  PEERLAB_CHECK_MSG(contains(id), "unknown " + to_string(id));
  return *nodes_[id.value() - 1];
}

bool Topology::contains(NodeId id) const noexcept {
  return id.valid() && id.value() <= nodes_.size();
}

std::vector<NodeId> Topology::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& n : nodes_) ids.push_back(n->id());
  return ids;
}

NodeId Topology::find_by_hostname(const std::string& hostname) const noexcept {
  const auto it = by_hostname_.find(hostname);
  return it == by_hostname_.end() ? NodeId{} : it->second;
}

Seconds Topology::propagation(NodeId a, NodeId b) const {
  if (a == b) {
    return 0.0002;  // loopback through the local stack
  }
  return propagation_delay(node(a).profile().location, node(b).profile().location);
}

}  // namespace peerlab::net
