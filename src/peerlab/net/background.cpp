#include "peerlab/net/background.hpp"

#include "peerlab/common/check.hpp"

namespace peerlab::net {

BackgroundTraffic::BackgroundTraffic(Network& network, BackgroundTrafficConfig config)
    : network_(network),
      config_(config),
      rng_(network.simulator().rng().fork(0xBEEFull)) {
  PEERLAB_CHECK_MSG(config_.mean_interarrival > 0.0, "interarrival must be positive");
  PEERLAB_CHECK_MSG(config_.min_size > 0 && config_.max_size > config_.min_size,
                    "bad size bounds");
  PEERLAB_CHECK_MSG(config_.size_alpha > 0.0, "size alpha must be positive");
  PEERLAB_CHECK_MSG(network_.topology().size() >= 2, "need at least two nodes");
}

void BackgroundTraffic::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void BackgroundTraffic::stop() {
  running_ = false;
  timer_.cancel();
}

void BackgroundTraffic::arm() {
  if (!running_) return;
  if (config_.max_flows != 0 && started_ >= config_.max_flows) {
    running_ = false;
    return;
  }
  const Seconds wait = rng_.exponential(config_.mean_interarrival);
  timer_ = network_.simulator().schedule_daemon(wait, [this] {
    spawn();
    arm();
  });
}

void BackgroundTraffic::spawn() {
  const auto n = static_cast<std::int64_t>(network_.topology().size());
  const NodeId src(static_cast<std::uint64_t>(rng_.uniform_int(1, n)));
  NodeId dst = src;
  while (dst == src) {
    dst = NodeId(static_cast<std::uint64_t>(rng_.uniform_int(1, n)));
  }
  const auto size = static_cast<Bytes>(rng_.pareto(static_cast<double>(config_.min_size),
                                                   static_cast<double>(config_.max_size),
                                                   config_.size_alpha));
  ++started_;
  bytes_ += size;
  network_.start_message(src, dst, size, [this](bool, Seconds) { ++finished_; });
}

}  // namespace peerlab::net
