#include "peerlab/net/fault_plan.hpp"

#include <algorithm>
#include <utility>

#include "peerlab/common/check.hpp"
#include "peerlab/obs/trace.hpp"

namespace peerlab::net {

using obs::trace::TraceKind;

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHeal: return "heal";
    case FaultKind::kBrownout: return "brownout";
  }
  return "?";
}

void FaultPlan::crash(Seconds at, NodeId node, Seconds downtime) {
  PEERLAB_CHECK_MSG(downtime > 0.0, "crash downtime must be positive");
  add(FaultEvent{at, FaultKind::kCrash, node, NodeId(), 1.0});
  add(FaultEvent{at + downtime, FaultKind::kRestart, node, NodeId(), 1.0});
}

void FaultPlan::crash_forever(Seconds at, NodeId node) {
  add(FaultEvent{at, FaultKind::kCrash, node, NodeId(), 1.0});
}

void FaultPlan::partition(Seconds at, NodeId a, NodeId b, Seconds duration) {
  PEERLAB_CHECK_MSG(duration > 0.0, "partition duration must be positive");
  add(FaultEvent{at, FaultKind::kPartition, a, b, 1.0});
  add(FaultEvent{at + duration, FaultKind::kHeal, a, b, 1.0});
}

void FaultPlan::brownout(Seconds at, NodeId node, double factor, Seconds duration) {
  PEERLAB_CHECK_MSG(factor > 0.0 && factor < 1.0, "brownout factor must be in (0, 1)");
  PEERLAB_CHECK_MSG(duration > 0.0, "brownout duration must be positive");
  add(FaultEvent{at, FaultKind::kBrownout, node, NodeId(), factor});
  add(FaultEvent{at + duration, FaultKind::kBrownout, node, NodeId(), 1.0});
}

void FaultPlan::add(FaultEvent event) {
  PEERLAB_CHECK_MSG(event.at >= 0.0, "fault time must be non-negative");
  PEERLAB_CHECK_MSG(event.node.valid(), "fault target must be a node");
  events_.push_back(event);
}

void FaultPlan::merge(const FaultPlan& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
}

FaultPlan FaultPlan::random_churn(sim::Rng& rng, const std::vector<NodeId>& nodes,
                                  Seconds mttf, Seconds mttr, Seconds start,
                                  Seconds horizon) {
  PEERLAB_CHECK_MSG(mttf > 0.0 && mttr > 0.0, "MTTF and MTTR must be positive");
  PEERLAB_CHECK_MSG(horizon > start, "churn horizon must lie beyond its start");
  FaultPlan plan;
  for (const NodeId node : nodes) {
    Seconds t = start + rng.exponential(mttf);
    while (t < horizon) {
      // Floor the outage at one second: a sub-second "crash" is not a
      // fault any protocol timer could even observe.
      const Seconds down = std::max(1.0, rng.exponential(mttr));
      plan.crash(t, node, down);
      t += down + rng.exponential(mttf);
    }
  }
  return plan;
}

FaultInjector::FaultInjector(Network& network, FaultPlan plan, Hooks hooks)
    : network_(network), plan_(std::move(plan)), hooks_(std::move(hooks)) {
  sim::Simulator& sim = network_.simulator();
  for (const FaultEvent& event : plan_.events()) {
    PEERLAB_CHECK_MSG(event.at >= sim.now(), "fault plan reaches into the past");
    // Daemon events: a pending restart must not keep an otherwise
    // drained run alive, but a bounded run_until still applies it.
    sim.schedule_daemon(event.at - sim.now(), [this, &event] { apply(event); });
  }
}

void FaultInjector::attach_metrics(obs::MetricRegistry& registry) {
  m_.crashes = &registry.counter("faults.crashes", "events");
  m_.restarts = &registry.counter("faults.restarts", "events");
  m_.partitions = &registry.counter("faults.partitions", "events");
  m_.heals = &registry.counter("faults.heals", "events");
  m_.brownouts = &registry.counter("faults.brownouts", "events");
}

void FaultInjector::apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kCrash:
      ++crashes_;
      if (m_.crashes != nullptr) m_.crashes->add(1);
      if (trace_ != nullptr) trace_->emit_ambient(event.node, TraceKind::kCrash);
      network_.crash_node(event.node);
      if (hooks_.on_crash) hooks_.on_crash(event.node);
      break;
    case FaultKind::kRestart:
      ++restarts_;
      if (m_.restarts != nullptr) m_.restarts->add(1);
      if (trace_ != nullptr) trace_->emit_ambient(event.node, TraceKind::kRestart);
      network_.restore_node(event.node);
      if (hooks_.on_restart) hooks_.on_restart(event.node);
      break;
    case FaultKind::kPartition:
      ++partitions_;
      if (m_.partitions != nullptr) m_.partitions->add(1);
      if (trace_ != nullptr) {
        trace_->emit_ambient(event.node, TraceKind::kPartitionCut, event.peer.value());
      }
      network_.partition(event.node, event.peer);
      break;
    case FaultKind::kHeal:
      if (m_.heals != nullptr) m_.heals->add(1);
      if (trace_ != nullptr) {
        trace_->emit_ambient(event.node, TraceKind::kPartitionHeal, event.peer.value());
      }
      network_.heal(event.node, event.peer);
      break;
    case FaultKind::kBrownout:
      ++brownouts_;
      if (m_.brownouts != nullptr) m_.brownouts->add(1);
      if (trace_ != nullptr) {
        // Factor carried as per-mille so the record stays integral.
        trace_->emit_ambient(event.node, TraceKind::kBrownout,
                             static_cast<std::uint64_t>(event.factor * 1000.0 + 0.5));
      }
      network_.set_capacity_factor(event.node, event.factor);
      break;
  }
}

}  // namespace peerlab::net
