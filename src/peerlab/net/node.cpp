#include "peerlab/net/node.hpp"

#include <algorithm>
#include <cmath>

#include "peerlab/common/check.hpp"

namespace peerlab::net {

Node::Node(NodeId id, NodeProfile profile, sim::Rng rng)
    : id_(id), profile_(std::move(profile)), rng_(rng) {
  PEERLAB_CHECK_MSG(profile_.cpu_ghz > 0.0, "node needs positive cpu speed");
  PEERLAB_CHECK_MSG(profile_.uplink_mbps > 0.0 && profile_.downlink_mbps > 0.0,
                    "node needs positive access bandwidth");
  PEERLAB_CHECK_MSG(profile_.control_delay_mean > 0.0, "control delay mean must be positive");
}

Seconds Node::sample_control_delay() {
  return rng_.lognormal_mean(profile_.control_delay_mean, profile_.control_delay_sigma);
}

double Node::sample_load() {
  const double load = profile_.base_load + rng_.normal(0.0, profile_.load_jitter);
  return std::clamp(load, 0.0, 0.97);
}

GigaHertz Node::sample_effective_speed() {
  const double available = 1.0 - sample_load();
  return profile_.cpu_ghz * std::max(available, 0.03);
}

double Node::delivery_probability(Bytes size) const noexcept {
  const double mb = to_megabytes(size);
  const double survive = std::pow(1.0 - std::clamp(profile_.loss_per_megabyte, 0.0, 0.999), mb);
  return std::clamp(survive, 0.0, 1.0);
}

}  // namespace peerlab::net
