#pragma once

// Topology: the set of nodes plus pairwise propagation delays. The
// wide-area path between two PlanetLab sites is modelled as
// access-link -> long-haul fiber -> access-link; the shared-capacity
// part (the access links) lives in FlowScheduler, the distance part
// here.

#include <memory>
#include <unordered_map>
#include <vector>

#include "peerlab/common/ids.hpp"
#include "peerlab/net/node.hpp"
#include "peerlab/sim/rng.hpp"

namespace peerlab::net {

class Topology {
 public:
  /// `rng` seeds the per-node streams (stream key = node id), so node
  /// draws are independent and insertion-order stable.
  explicit Topology(const sim::Rng& rng) : rng_(rng) {}

  /// Adds a host; returns its id. Ids are dense and start at 1.
  NodeId add_node(NodeProfile profile);

  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] bool contains(NodeId id) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::vector<NodeId> node_ids() const;

  /// Looks a node up by hostname; invalid id when absent.
  [[nodiscard]] NodeId find_by_hostname(const std::string& hostname) const noexcept;

  /// One-way propagation delay between the two nodes' sites.
  [[nodiscard]] Seconds propagation(NodeId a, NodeId b) const;

 private:
  sim::Rng rng_;
  IdAllocator<NodeId> ids_;
  std::vector<std::unique_ptr<Node>> nodes_;  // index = id - 1
  std::unordered_map<std::string, NodeId> by_hostname_;
};

}  // namespace peerlab::net
