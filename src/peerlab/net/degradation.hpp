#pragma once

// JXTA large-message degradation model.
//
// JXTA pipes serialize a whole message in memory and relay it
// store-and-forward; past a few megabytes per message the effective
// throughput collapses (the paper's Figure 5: sending a 100 MB file as
// one message is "not worth it" versus 16 parts of 6.25 MB). We model
// the effect as a per-flow rate cap
//
//     bw_eff(S) = bw_nominal / (1 + (S / S0)^alpha)
//
// With the defaults S0 = 8 MB, alpha = 1.2: a 6.25 MB part keeps ~74%
// of nominal rate, a 25 MB part ~17%, a 100 MB message ~4.6% — which
// reproduces the paper's whole-vs-16-parts gap of roughly 20x.

#include "peerlab/common/units.hpp"

namespace peerlab::net {

struct DegradationModel {
  Bytes s0 = 8 * kMegabyte;
  double alpha = 1.2;
  /// Messages at or below this size (control traffic) are exempt.
  Bytes control_exempt_below = 64 * kKilobyte;

  /// Effective rate cap for a message of `size` on a link of `nominal`.
  [[nodiscard]] MbitPerSec cap(MbitPerSec nominal, Bytes size) const noexcept;

  /// Multiplier in (0, 1] applied to the nominal rate.
  [[nodiscard]] double factor(Bytes size) const noexcept;
};

}  // namespace peerlab::net
