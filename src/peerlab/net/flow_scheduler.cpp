#include "peerlab/net/flow_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "peerlab/common/check.hpp"

namespace peerlab::net {

namespace {
constexpr double kEpsBits = 1.0;        // flows within 1 bit are done
constexpr double kEpsRate = 1e-12;      // Mbit/s comparison slack
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

FlowScheduler::FlowScheduler(sim::Simulator& sim, const Topology& topo,
                             FlowSchedulerConfig config)
    : sim_(sim), topo_(topo), config_(config) {
  PEERLAB_CHECK_MSG(config_.capacity_scale > 0.0 && config_.capacity_scale <= 1.0,
                    "capacity_scale must be in (0, 1]");
}

FlowId FlowScheduler::start(FlowSpec spec) {
  PEERLAB_CHECK_MSG(spec.size > 0, "flow size must be positive");
  PEERLAB_CHECK_MSG(topo_.contains(spec.src) && topo_.contains(spec.dst),
                    "flow endpoints must exist");
  advance_to_now();
  const FlowId id = ids_.next();
  Flow flow;
  flow.remaining_bits = static_cast<double>(spec.size) * 8.0;
  flow.started = sim_.now();
  flow.spec = std::move(spec);
  flows_.emplace(id, std::move(flow));
  recompute_rates();
  reschedule();
  return id;
}

void FlowScheduler::cancel(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;
  advance_to_now();
  flows_.erase(it);
  recompute_rates();
  reschedule();
}

MbitPerSec FlowScheduler::current_rate(FlowId id) const noexcept {
  const auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

Bytes FlowScheduler::remaining_bytes(FlowId id) const noexcept {
  const auto it = flows_.find(id);
  return it == flows_.end() ? 0 : static_cast<Bytes>(it->second.remaining_bits / 8.0);
}

int FlowScheduler::uploads_at(NodeId node) const noexcept {
  int n = 0;
  for (const auto& [id, f] : flows_) {
    n += (f.spec.src == node) ? 1 : 0;
  }
  return n;
}

int FlowScheduler::downloads_at(NodeId node) const noexcept {
  int n = 0;
  for (const auto& [id, f] : flows_) {
    n += (f.spec.dst == node) ? 1 : 0;
  }
  return n;
}

void FlowScheduler::advance_to_now() {
  const Seconds now = sim_.now();
  const Seconds dt = now - last_advance_;
  last_advance_ = now;
  if (dt <= 0.0) return;
  for (auto& [id, f] : flows_) {
    f.remaining_bits = std::max(0.0, f.remaining_bits - f.rate * 1e6 * dt);
  }
}

void FlowScheduler::recompute_rates() {
  if (flows_.empty()) return;

  // Resource = one direction of one node's access link. Key layout:
  // node id * 2 + (0 = uplink, 1 = downlink).
  std::map<std::uint64_t, double> capacity;
  for (const auto& [id, f] : flows_) {
    const auto& src = topo_.node(f.spec.src).profile();
    const auto& dst = topo_.node(f.spec.dst).profile();
    capacity.emplace(f.spec.src.value() * 2, src.uplink_mbps * config_.capacity_scale);
    capacity.emplace(f.spec.dst.value() * 2 + 1, dst.downlink_mbps * config_.capacity_scale);
  }

  struct Pending {
    FlowId id;
    std::uint64_t up_key;
    std::uint64_t down_key;
    double cap;  // per-flow ceiling (kInf when uncapped)
  };
  std::vector<Pending> unfrozen;
  unfrozen.reserve(flows_.size());
  for (const auto& [id, f] : flows_) {
    unfrozen.push_back(Pending{id, f.spec.src.value() * 2, f.spec.dst.value() * 2 + 1,
                               f.spec.rate_cap > 0.0 ? f.spec.rate_cap : kInf});
  }

  // Progressive water-filling: each round freezes at least one flow,
  // either at its own cap or at a bottleneck resource's fair share.
  // The freeze set is decided entirely from the round-start snapshot;
  // capacities are only reduced afterwards — mutating them mid-round
  // would freeze flows against stale user counts and strand capacity.
  while (!unfrozen.empty()) {
    std::map<std::uint64_t, int> users;
    for (const auto& p : unfrozen) {
      ++users[p.up_key];
      ++users[p.down_key];
    }
    const auto fair = [&](std::uint64_t key) {
      return std::max(0.0, capacity[key]) / static_cast<double>(users[key]);
    };
    double share = kInf;
    for (const auto& [key, n] : users) {
      share = std::min(share, fair(key));
    }
    double min_cap = kInf;
    for (const auto& p : unfrozen) min_cap = std::min(min_cap, p.cap);
    const double level = std::min(share, min_cap);

    std::vector<Pending> still;
    std::vector<Pending> frozen;
    still.reserve(unfrozen.size());
    for (const auto& p : unfrozen) {
      const bool at_cap = p.cap <= level + kEpsRate;
      const bool at_bottleneck = fair(p.up_key) <= level + kEpsRate ||
                                 fair(p.down_key) <= level + kEpsRate;
      if (at_cap || at_bottleneck) {
        frozen.push_back(p);
      } else {
        still.push_back(p);
      }
    }
    PEERLAB_CHECK_MSG(!frozen.empty(), "water-filling failed to make progress");
    for (const auto& p : frozen) {
      const double rate = std::min(level, p.cap);
      flows_.at(p.id).rate = rate;
      capacity[p.up_key] -= rate;
      capacity[p.down_key] -= rate;
    }
    unfrozen = std::move(still);
  }
}

void FlowScheduler::reschedule() {
  timer_.cancel();
  if (flows_.empty()) return;
  double eta = kInf;
  for (const auto& [id, f] : flows_) {
    if (f.rate <= kEpsRate) continue;
    eta = std::min(eta, f.remaining_bits / (f.rate * 1e6));
  }
  PEERLAB_CHECK_MSG(std::isfinite(eta), "active flows but no finite completion time");
  timer_ = sim_.schedule(std::max(0.0, eta), [this] { on_timer(); });
}

void FlowScheduler::on_timer() {
  advance_to_now();

  // Collect completions first; callbacks may start new flows, so the
  // scheduler must be consistent before any callback runs.
  std::vector<std::pair<Seconds, std::function<void(Seconds)>>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining_bits <= kEpsBits) {
      done.emplace_back(sim_.now() - it->second.started, std::move(it->second.spec.on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  recompute_rates();
  reschedule();
  for (auto& [duration, callback] : done) {
    if (callback) callback(duration);
  }
}

}  // namespace peerlab::net
