#include "peerlab/net/flow_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "peerlab/common/check.hpp"
#include "peerlab/obs/span.hpp"
#include "peerlab/obs/trace.hpp"

namespace peerlab::net {

namespace {
constexpr double kEpsBits = 1.0;        // flows within 1 bit are done
constexpr double kEpsRate = 1e-12;      // Mbit/s comparison slack
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

FlowScheduler::FlowScheduler(sim::Simulator& sim, const Topology& topo,
                             FlowSchedulerConfig config)
    : sim_(sim), topo_(topo), config_(config) {
  PEERLAB_CHECK_MSG(config_.capacity_scale > 0.0 && config_.capacity_scale <= 1.0,
                    "capacity_scale must be in (0, 1]");
  // Size the per-node arrays to the topology as it stands; nodes added
  // later are picked up lazily. Doing it here keeps the first start()
  // on the same allocation-free path as every later one.
  ensure_node_arrays();
  // The SoA layout splits what used to be one slot vector across many
  // parallel slabs; seed them together so a cold scheduler's first
  // flows don't pay one growth allocation per slab per doubling.
  reserve_flows(64);
}

void FlowScheduler::reserve_flows(std::size_t flows) {
  f_remaining_.reserve(flows);
  f_rate_.reserve(flows);
  f_cap_.reserve(flows);
  f_started_.reserve(flows);
  f_id_.reserve(flows);
  callbacks_.reserve(flows);
  links_.reserve(flows);
  free_slots_.reserve(flows);
  active_.reserve(flows);
  comp_flows_.reserve(flows);
  res_stack_.reserve(flows * 2);
  dirty_res_.reserve(flows * 2);
  wf_slot_.reserve(flows);
  wf_up_.reserve(flows);
  wf_down_.reserve(flows);
  wf_flow_cap_.reserve(flows);
  wf_level_.reserve(flows);
  fr_slot_.reserve(flows);
  fr_up_.reserve(flows);
  fr_down_.reserve(flows);
  fr_cap_.reserve(flows);
  done_.reserve(flows);
}

void FlowScheduler::attach_metrics(obs::MetricRegistry& registry, bool wall_profiling,
                                   obs::WallProfiler* profiler) {
  m_.flows_started = &registry.counter("net.flows.started", "flows");
  m_.flows_completed = &registry.counter("net.flows.completed", "flows");
  m_.flows_aborted = &registry.counter("net.flows.aborted", "flows");
  m_.flows_cancelled = &registry.counter("net.flows.cancelled", "flows");
  m_.relevels = &registry.counter("net.flows.relevels", "transitions");
  m_.components_releveled = &registry.counter("net.flows.components_releveled", "components");
  m_.flows_releveled = &registry.counter("net.flows.flows_releveled", "flows");
  if (wall_profiling) {
    obs::Histogram::Options opts;
    opts.lo = 1e-9;  // nanosecond resolution: re-levels are sub-microsecond
    opts.hi = 1.0;
    m_.relevel_wall_s = &registry.histogram("net.flows.relevel_wall_s", "s", opts);
  } else {
    m_.relevel_wall_s = nullptr;
  }
  m_.profiler = profiler;
  if (profiler != nullptr) {
    m_.relevel_site = &profiler->site("flows.relevel");
    m_.waterfill_site = &profiler->site("flows.waterfill");
  } else {
    m_.relevel_site = nullptr;
    m_.waterfill_site = nullptr;
  }
}

FlowId FlowScheduler::start(FlowSpec spec) {
  PEERLAB_CHECK_MSG(spec.size > 0, "flow size must be positive");
  PEERLAB_CHECK_MSG(topo_.contains(spec.src) && topo_.contains(spec.dst),
                    "flow endpoints must exist");
  advance_to_now();
  const FlowId id = ids_.next();
  const std::uint32_t slot = acquire_slot();
  f_remaining_[slot] = static_cast<double>(spec.size) * 8.0;
  f_rate_[slot] = 0.0;
  // Canonicalise "uncapped" to +inf here so the water-fill compares the
  // stored value directly instead of re-testing the sentinel per round.
  f_cap_[slot] = spec.rate_cap > 0.0 ? spec.rate_cap : kInf;
  f_started_[slot] = sim_.now();
  f_id_[slot] = id.value();
  callbacks_[slot].on_complete = std::move(spec.on_complete);
  callbacks_[slot].on_abort = std::move(spec.on_abort);

  ensure_node_arrays();
  ++uploads_[spec.src.value()];
  ++downloads_[spec.dst.value()];
  // Fresh ids are strictly increasing, so appending keeps `active_`
  // FlowId-sorted (removal is order-preserving).
  active_.push_back(slot);
  index_.insert(id.value(), slot);
  const auto up_key = static_cast<std::uint32_t>(spec.src.value() * 2);
  const auto down_key = static_cast<std::uint32_t>(spec.dst.value() * 2 + 1);
  const bool attaches =
      res_head_[up_key] != kNilSlot || res_head_[down_key] != kNilSlot;
  link_into(slot, 0, up_key);
  link_into(slot, 1, down_key);
  mark_dirty(up_key);
  mark_dirty(down_key);
  // A sole flow is trivially one component; a flow touching existing
  // structure can only merge components, so single stays single. Only
  // an isolated new pair can break the invariant.
  if (active_.size() == 1) {
    mono_ = true;
  } else if (!attaches) {
    mono_ = false;
  }

  if (m_.flows_started != nullptr) m_.flows_started->add(1);
  settle();
  return id;
}

void FlowScheduler::cancel(FlowId id) {
  const std::uint32_t* slot = index_.find(id.value());
  if (slot == nullptr) return;
  advance_to_now();
  remove_flow(active_position(*slot));
  if (m_.flows_cancelled != nullptr) m_.flows_cancelled->add(1);
  settle();
}

void FlowScheduler::settle() {
  if (batch_depth_ > 0) {
    batch_dirty_ = true;
    return;
  }
  relevel_dirty();
  reschedule();
}

void FlowScheduler::end_batch() {
  if (--batch_depth_ > 0) return;
  if (!batch_dirty_) return;
  batch_dirty_ = false;
  advance_to_now();
  relevel_dirty();
  reschedule();
}

template <typename Pred>
std::size_t FlowScheduler::abort_where(Pred pred) {
  advance_to_now();
  // Collect the victims' callbacks first: an on_abort may start new
  // flows (failover), so the scheduler must be consistent — removals
  // done, survivors re-levelled — before any callback runs. The local
  // staging vector (not a reused member) keeps re-entrant aborts safe.
  std::vector<Completion> aborted;
  for (std::size_t i = 0; i < active_.size();) {
    const std::uint32_t slot = active_[i];
    if (pred(slot)) {
      aborted.push_back(Completion{sim_.now() - f_started_[slot],
                                   std::move(callbacks_[slot].on_abort)});
      remove_flow(i);
    } else {
      ++i;
    }
  }
  if (!aborted.empty()) {
    if (m_.flows_aborted != nullptr) m_.flows_aborted->add(aborted.size());
    settle();
  }
  for (Completion& c : aborted) {
    if (c.callback) c.callback(c.duration);
  }
  return aborted.size();
}

std::size_t FlowScheduler::abort_touching(NodeId node) {
  const std::uint64_t id = node.value();
  return abort_where(
      [this, id](std::uint32_t slot) { return src_of(slot) == id || dst_of(slot) == id; });
}

std::size_t FlowScheduler::abort_between(NodeId a, NodeId b) {
  const std::uint64_t ia = a.value();
  const std::uint64_t ib = b.value();
  return abort_where([this, ia, ib](std::uint32_t slot) {
    const std::uint64_t src = src_of(slot);
    const std::uint64_t dst = dst_of(slot);
    return (src == ia && dst == ib) || (src == ib && dst == ia);
  });
}

void FlowScheduler::set_capacity_factor(NodeId node, double factor) {
  PEERLAB_CHECK_MSG(topo_.contains(node), "brownout target must exist");
  PEERLAB_CHECK_MSG(factor > 0.0 && factor <= 1.0, "capacity factor must be in (0, 1]");
  advance_to_now();
  ensure_node_arrays();
  const std::size_t id = node.value();
  capacity_factor_[id] = factor;
  const auto& profile = topo_.node(node).profile();
  link_capacity_[id * 2] = profile.uplink_mbps * config_.capacity_scale * factor;
  link_capacity_[id * 2 + 1] = profile.downlink_mbps * config_.capacity_scale * factor;
  // The node's uplink users and downlink users may sit in two different
  // components; both re-level.
  mark_dirty(static_cast<std::uint32_t>(id * 2));
  mark_dirty(static_cast<std::uint32_t>(id * 2 + 1));
  settle();
}

double FlowScheduler::capacity_factor(NodeId node) const noexcept {
  const std::uint64_t i = node.value();
  return i < capacity_factor_.size() ? capacity_factor_[i] : 1.0;
}

MbitPerSec FlowScheduler::current_rate(FlowId id) const noexcept {
  const std::uint32_t* slot = index_.find(id.value());
  return slot == nullptr ? 0.0 : f_rate_[*slot];
}

Bytes FlowScheduler::remaining_bytes(FlowId id) const noexcept {
  const std::uint32_t* slot = index_.find(id.value());
  return slot == nullptr ? 0 : static_cast<Bytes>(f_remaining_[*slot] / 8.0);
}

int FlowScheduler::uploads_at(NodeId node) const noexcept {
  const std::uint64_t i = node.value();
  return i < uploads_.size() ? uploads_[i] : 0;
}

int FlowScheduler::downloads_at(NodeId node) const noexcept {
  const std::uint64_t i = node.value();
  return i < downloads_.size() ? downloads_[i] : 0;
}

void FlowScheduler::advance_to_now() {
  const Seconds now = sim_.now();
  const Seconds dt = now - last_advance_;
  last_advance_ = now;
  if (dt <= 0.0) return;
  // Streams exactly two double slabs (16 bytes per flow); the cold
  // callback/link state never enters the cache here. The sweep is
  // dense over the whole slab rather than gathered through `active_`:
  // free slots hold rate 0 / remaining 0 (zeroed on release), so they
  // fold to max(0, 0) and the contiguous loop vectorizes. Each live
  // flow sees exactly the arithmetic the gathered loop did, and the
  // expression must stay (rate * 1e6) * dt — hoisting 1e6 * dt changes
  // the rounding and breaks bit-identity with the reference oracle.
  const std::size_t n = f_remaining_.size();
  double* const remaining = f_remaining_.data();
  const double* const rate = f_rate_.data();
  for (std::size_t i = 0; i < n; ++i) {
    remaining[i] = std::max(0.0, remaining[i] - rate[i] * 1e6 * dt);
  }
}

void FlowScheduler::mark_dirty(std::uint32_t key) { dirty_res_.push_back(key); }

void FlowScheduler::link_into(std::uint32_t slot, int dir, std::uint32_t key) {
  // Append at the tail: FlowIds are allocated monotonically, so the
  // list stays in ascending-id order, which lets relevel_dirty() skip
  // the component sort in the common case.
  Links& l = links_[slot];
  l.key[dir] = key;
  l.next[dir] = kNilSlot;
  l.prev[dir] = res_tail_[key];
  if (res_tail_[key] != kNilSlot) {
    links_[res_tail_[key]].next[dir] = slot;
  } else {
    res_head_[key] = slot;
  }
  res_tail_[key] = slot;
}

void FlowScheduler::unlink_from(std::uint32_t slot, int dir, std::uint32_t key) noexcept {
  Links& l = links_[slot];
  if (l.prev[dir] != kNilSlot) {
    links_[l.prev[dir]].next[dir] = l.next[dir];
  } else {
    res_head_[key] = l.next[dir];
  }
  if (l.next[dir] != kNilSlot) {
    links_[l.next[dir]].prev[dir] = l.prev[dir];
  } else {
    res_tail_[key] = l.prev[dir];
  }
  l.next[dir] = kNilSlot;
  l.prev[dir] = kNilSlot;
}

void FlowScheduler::relevel_dirty() {
  if (dirty_res_.empty()) return;
  ensure_node_arrays();
  const obs::WallSpan wall_span(m_.relevel_wall_s);
  const obs::WallProfiler::Span span(m_.profiler, m_.relevel_site);
  if (m_.relevels != nullptr) m_.relevels->add(1);
  // Single known component: it necessarily contains every dirty
  // resource that has flows at all, so the flood fill below would just
  // rediscover `active_`. Fill it directly.
  if (mono_) {
    if (m_.components_releveled != nullptr) {
      m_.components_releveled->add(1);
      m_.flows_releveled->add(active_.size());
    }
    if (trace_ != nullptr) {
      trace_->emit_ambient(NodeId(), obs::trace::TraceKind::kRelevel, 1, active_.size());
    }
    waterfill(active_);
    dirty_res_.clear();
    return;
  }
  // Flood fill outward from each dirty resource: a resource reaches the
  // flows on its list, a flow reaches its other resource. The wavefront
  // stops exactly at the boundary of the affected connected component;
  // everything outside keeps its current rate. Each component is
  // water-filled on its own — never the union of the dirty components —
  // because the freeze tolerance (kEpsRate) would otherwise couple
  // near-tied levels of *independent* components, making rates depend
  // on which components happen to re-level together.
  ++epoch_;
  std::size_t comps = 0;
  std::size_t flows_touched = 0;
  bool spans_all = false;
  for (std::size_t d = 0; d < dirty_res_.size(); ++d) {
    const std::uint32_t seed = dirty_res_[d];
    if (res_mark_[seed] == epoch_) continue;  // already in a levelled component
    res_mark_[seed] = epoch_;
    comp_flows_.clear();
    res_stack_.clear();
    res_stack_.push_back(seed);
    while (!res_stack_.empty()) {
      const std::uint32_t key = res_stack_.back();
      res_stack_.pop_back();
      const int dir = static_cast<int>(key & 1u);
      for (std::uint32_t slot = res_head_[key]; slot != kNilSlot;
           slot = links_[slot].next[dir]) {
        Links& l = links_[slot];
        if (l.mark == epoch_) continue;
        l.mark = epoch_;
        comp_flows_.push_back(slot);
        const int odir = 1 - dir;
        const std::uint32_t other = l.key[odir];
        if (l.next[odir] == kNilSlot && l.prev[odir] == kNilSlot) {
          // This flow is alone on its other resource: nothing new is
          // reachable through it. Mark it settled (so a dirty seed for
          // it doesn't re-level this component) but skip the visit.
          res_mark_[other] = epoch_;
        } else if (res_mark_[other] != epoch_) {
          res_mark_[other] = epoch_;
          res_stack_.push_back(other);
        }
      }
    }
    if (comp_flows_.empty()) continue;
    ++comps;
    flows_touched += comp_flows_.size();
    if (m_.components_releveled != nullptr) {
      m_.components_releveled->add(1);
      m_.flows_releveled->add(comp_flows_.size());
    }
    // Water-filling must accumulate floating point in FlowId order to
    // stay bit-identical to the reference; the flood fill discovers
    // flows in adjacency order. When the component spans every active
    // flow, `active_` (kept FlowId-ascending) IS the sorted component.
    // Otherwise the per-resource lists' id-ascending order means the
    // fill usually arrives sorted — check before paying for the sort
    // (in place — no allocation).
    if (comp_flows_.size() == active_.size()) {
      spans_all = true;
      waterfill(active_);
      continue;
    }
    const auto id_less = [this](std::uint32_t a, std::uint32_t b) {
      return f_id_[a] < f_id_[b];
    };
    if (!std::is_sorted(comp_flows_.begin(), comp_flows_.end(), id_less)) {
      std::sort(comp_flows_.begin(), comp_flows_.end(), id_less);
    }
    waterfill(comp_flows_);
  }
  if (trace_ != nullptr && comps != 0) {
    trace_->emit_ambient(NodeId(), obs::trace::TraceKind::kRelevel, comps, flows_touched);
  }
  // The fill just proved single-component-ness (or not) for the dirty
  // region; remember it so the next relevel can skip discovery.
  mono_ = comps == 1 && spans_all;
  dirty_res_.clear();
}

void FlowScheduler::waterfill(const std::vector<std::uint32_t>& flows) {
  const obs::WallProfiler::Span span(m_.profiler, m_.waterfill_site);
  // Seed per-resource capacities and the pending set into the SoA
  // slabs. Iteration is in FlowId order throughout, so every
  // floating-point accumulation below happens in the same order as the
  // reference implementation.
  wf_slot_.clear();
  wf_up_.clear();
  wf_down_.clear();
  wf_flow_cap_.clear();
  // Stamp-reset counting folds the zero-then-increment pair into one
  // pass: a resource's first touch under the current stamp resets its
  // count to 1, later touches increment. Counts are integers, so the
  // fold cannot perturb any floating-point result.
  const auto count_user = [&](std::uint32_t key, std::uint64_t stamp) {
    if (wf_user_round_[key] != stamp) {
      wf_user_round_[key] = stamp;
      wf_users_[key] = 1;
    } else {
      ++wf_users_[key];
    }
  };
  const std::uint64_t seed_stamp = ++wf_round_;
  for (const std::uint32_t slot : flows) {
    const std::uint32_t up_key = links_[slot].key[0];
    const std::uint32_t down_key = links_[slot].key[1];
    wf_capacity_[up_key] = link_capacity_[up_key];
    wf_capacity_[down_key] = link_capacity_[down_key];
    count_user(up_key, seed_stamp);
    count_user(down_key, seed_stamp);
    wf_slot_.push_back(slot);
    wf_up_.push_back(up_key);
    wf_down_.push_back(down_key);
    wf_flow_cap_.push_back(f_cap_[slot]);
  }
  wf_level_.resize(wf_slot_.size());

  // Progressive water-filling: each round freezes at least one flow,
  // either at its own cap or at a bottleneck resource's fair share.
  // The freeze set is decided entirely from the round-start snapshot;
  // capacities are only reduced afterwards — mutating them mid-round
  // would freeze flows against stale user counts and strand capacity.
  std::size_t n = wf_slot_.size();
  bool counted = true;  // seeding already counted users for round 1
  while (n > 0) {
    if (!counted) {
      const std::uint64_t stamp = ++wf_round_;
      for (std::size_t i = 0; i < n; ++i) {
        count_user(wf_up_[i], stamp);
        count_user(wf_down_[i], stamp);
      }
    }
    counted = false;
    // Capacities are stable for the whole round (deductions happen only
    // after the freeze set is fixed), so each resource's fair share is
    // computed once and reused — the same divide, evaluated once, keeps
    // every consumer bit-identical to recomputing it. The per-flow
    // minimum of its two shares is cached in `wf_level_` so the freeze
    // partition below re-reads one dense double slab.
    ++wf_round_;
    const auto fair = [&](std::uint32_t key) {
      if (wf_fair_round_[key] != wf_round_) {
        wf_fair_round_[key] = wf_round_;
        wf_fair_[key] =
            std::max(0.0, wf_capacity_[key]) / static_cast<double>(wf_users_[key]);
      }
      return wf_fair_[key];
    };
    double share = kInf;
    double min_cap = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      const double bound = std::min(fair(wf_up_[i]), fair(wf_down_[i]));
      wf_level_[i] = bound;
      share = std::min(share, bound);
      min_cap = std::min(min_cap, wf_flow_cap_[i]);
    }
    const double level = std::min(share, min_cap);

    // Fast path: a single-bottleneck component (the dominant churn
    // shape — one shared uplink fanning out) freezes *every* pending
    // flow in this round. Probe for that with a prefix scan that
    // assigns final rates as it goes; the rates are the same
    // min(level, cap) the staged path would assign, and the capacity
    // deductions it skips are only ever read by later rounds, which
    // don't happen. Bails to the staged partition on the first
    // still-pending entry (the prefix's assignments are then
    // re-assigned identically by the staged pass).
    std::size_t probe = 0;
    for (; probe < n; ++probe) {
      if (wf_flow_cap_[probe] > level + kEpsRate && wf_level_[probe] > level + kEpsRate) {
        break;
      }
      f_rate_[wf_slot_[probe]] = std::min(level, wf_flow_cap_[probe]);
    }
    if (probe == n) break;

    // Partition in place: still-pending entries compact to the slab
    // prefix, frozen ones stage into fr_*. Both keep FlowId-ascending
    // order, so the capacity deductions below run in reference order.
    // A flow freezes at its own cap or at a bottleneck resource; the
    // cached `wf_level_` is min(fair_up, fair_down), and min <= x
    // exactly when either share is <= x (fair values are never NaN:
    // max(0, cap) / users with users >= 1).
    fr_slot_.clear();
    fr_up_.clear();
    fr_down_.clear();
    fr_cap_.clear();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (wf_flow_cap_[i] <= level + kEpsRate || wf_level_[i] <= level + kEpsRate) {
        fr_slot_.push_back(wf_slot_[i]);
        fr_up_.push_back(wf_up_[i]);
        fr_down_.push_back(wf_down_[i]);
        fr_cap_.push_back(wf_flow_cap_[i]);
      } else {
        wf_slot_[kept] = wf_slot_[i];
        wf_up_[kept] = wf_up_[i];
        wf_down_[kept] = wf_down_[i];
        wf_flow_cap_[kept] = wf_flow_cap_[i];
        ++kept;
      }
    }
    PEERLAB_CHECK_MSG(!fr_slot_.empty(), "water-filling failed to make progress");
    for (std::size_t k = 0; k < fr_slot_.size(); ++k) {
      const double rate = std::min(level, fr_cap_[k]);
      f_rate_[fr_slot_[k]] = rate;
      wf_capacity_[fr_up_[k]] -= rate;
      wf_capacity_[fr_down_[k]] -= rate;
    }
    n = kept;
  }
}

void FlowScheduler::reschedule() {
  if (active_.empty()) {
    timer_.cancel();
    return;
  }
  // Dense sweep over the whole slab, mirroring advance_to_now(): free
  // and stalled slots carry rate == 0, fold to kInf and drop out of the
  // min. A live slot's divide has exactly the operands the old gathered
  // loop used, and min is order-independent, so eta is bit-identical to
  // the gathered version. (A two-pass divide-then-blend formulation
  // does vectorize under -fno-trapping-math, but its scratch traffic
  // measured slower than this branchy single pass on the target.)
  const std::size_t n = f_remaining_.size();
  const double* __restrict const remaining = f_remaining_.data();
  const double* __restrict const rate = f_rate_.data();
  double eta = kInf;
  for (std::size_t i = 0; i < n; ++i) {
    const double denom = rate[i] > kEpsRate ? rate[i] * 1e6 : 1.0;
    const double q = remaining[i] / denom;
    eta = std::min(eta, rate[i] > kEpsRate ? q : kInf);
  }
  PEERLAB_CHECK_MSG(std::isfinite(eta), "active flows but no finite completion time");
  if (timer_.pending()) {
    // Settling re-arms the standing timer in place: same slot and
    // action, fresh sequence number, so firing order is exactly what
    // cancel + schedule would give — minus the slot recycling and
    // closure churn (see EventQueue::rearm).
    sim_.reschedule(timer_, std::max(0.0, eta));
  } else {
    timer_ = sim_.schedule(std::max(0.0, eta), [this] { on_timer(); });
  }
}

void FlowScheduler::on_timer() {
  advance_to_now();

  // Collect completions first; callbacks may start new flows, so the
  // scheduler must be consistent before any callback runs.
  done_.clear();
  for (std::size_t i = 0; i < active_.size();) {
    const std::uint32_t slot = active_[i];
    if (f_remaining_[slot] <= kEpsBits) {
      done_.push_back(Completion{sim_.now() - f_started_[slot],
                                 std::move(callbacks_[slot].on_complete)});
      remove_flow(i);
    } else {
      ++i;
    }
  }
  if (m_.flows_completed != nullptr) m_.flows_completed->add(done_.size());
  relevel_dirty();
  reschedule();
  for (Completion& c : done_) {
    if (c.callback) c.callback(c.duration);
  }
}

std::uint32_t FlowScheduler::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(f_id_.size());
  f_remaining_.push_back(0.0);
  f_rate_.push_back(0.0);
  f_cap_.push_back(kInf);
  f_started_.push_back(0.0);
  f_id_.push_back(0);
  callbacks_.emplace_back();
  links_.emplace_back();
  // Keep the free list's capacity ahead of the slot count so releasing
  // a slot on the noexcept removal path never allocates. Track the slot
  // vector's *capacity*, not its size, so growth stays amortized.
  if (free_slots_.capacity() < f_id_.size()) {
    free_slots_.reserve(f_id_.capacity());
  }
  return slot;
}

void FlowScheduler::remove_flow(std::size_t active_pos) {
  const std::uint32_t slot = active_[active_pos];
  --uploads_[src_of(slot)];
  --downloads_[dst_of(slot)];
  const std::uint32_t up_key = links_[slot].key[0];
  const std::uint32_t down_key = links_[slot].key[1];
  unlink_from(slot, 0, up_key);
  unlink_from(slot, 1, down_key);
  // The departure may have split the component; rediscover at the next
  // flood fill rather than tracking splits exactly.
  mono_ = false;
  // The departed flow's capacity redistributes over whatever is still
  // connected to its resources (the component may have split; the fill
  // reaches every part from these two seeds).
  mark_dirty(up_key);
  mark_dirty(down_key);
  index_.erase(f_id_[slot]);
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(active_pos));
  callbacks_[slot].on_complete = nullptr;  // release captured resources
  callbacks_[slot].on_abort = nullptr;
  f_id_[slot] = 0;
  // Dense slab sweeps (advance_to_now, reschedule) visit free slots;
  // zeroed rate/remaining make those visits identity operations.
  f_rate_[slot] = 0.0;
  f_remaining_[slot] = 0.0;
  free_slots_.push_back(slot);
}

std::size_t FlowScheduler::active_position(std::uint32_t slot) const noexcept {
  const std::uint64_t id = f_id_[slot];
  const auto it = std::lower_bound(
      active_.begin(), active_.end(), id,
      [this](std::uint32_t s, std::uint64_t key) { return f_id_[s] < key; });
  return static_cast<std::size_t>(it - active_.begin());
}

void FlowScheduler::ensure_node_arrays() {
  const std::size_t nodes = topo_.size() + 1;  // ids are dense, starting at 1
  if (uploads_.size() < nodes) {
    uploads_.resize(nodes, 0);
    downloads_.resize(nodes, 0);
  }
  if (capacity_factor_.size() < nodes) {
    capacity_factor_.resize(nodes, 1.0);
  }
  if (wf_capacity_.size() < nodes * 2) {
    const std::size_t first_new = link_capacity_.size() / 2;
    wf_capacity_.resize(nodes * 2, 0.0);
    wf_users_.resize(nodes * 2, 0);
    link_capacity_.resize(nodes * 2, 0.0);
    res_head_.resize(nodes * 2, kNilSlot);
    res_tail_.resize(nodes * 2, kNilSlot);
    res_mark_.resize(nodes * 2, 0);
    wf_fair_.resize(nodes * 2, 0.0);
    wf_fair_round_.resize(nodes * 2, 0);
    wf_user_round_.resize(nodes * 2, 0);
    // Profiles are immutable once added, so the scaled link capacities
    // can be computed once per node instead of per recomputation (and
    // re-derived only when a brownout factor changes).
    for (std::size_t id = std::max<std::size_t>(first_new, 1); id < nodes; ++id) {
      const auto& profile = topo_.node(NodeId(id)).profile();
      link_capacity_[id * 2] =
          profile.uplink_mbps * config_.capacity_scale * capacity_factor_[id];
      link_capacity_[id * 2 + 1] =
          profile.downlink_mbps * config_.capacity_scale * capacity_factor_[id];
    }
  }
}

}  // namespace peerlab::net
