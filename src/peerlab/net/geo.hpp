#pragma once

// Geography: PlanetLab sites are real places, and wide-area propagation
// delay is dominated by distance. We place each Table-1 site at its
// campus coordinates and derive propagation delay from great-circle
// distance at 2/3 c (light in fiber), plus a fixed per-path router
// processing allowance.

#include "peerlab/common/units.hpp"

namespace peerlab::net {

struct GeoPoint {
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
};

/// Great-circle distance (haversine), kilometres.
[[nodiscard]] double great_circle_km(GeoPoint a, GeoPoint b) noexcept;

/// One-way propagation delay between two sites: distance / (2/3 c) plus
/// `router_overhead` for queueing/serialization along the path.
[[nodiscard]] Seconds propagation_delay(GeoPoint a, GeoPoint b,
                                        Seconds router_overhead = 0.004) noexcept;

}  // namespace peerlab::net
