#pragma once

// Network facade: the two planes the overlay sees.
//
//  * Control plane — send_datagram(): small advisory messages
//    (petitions, confirmations, heartbeats, adverts). Delay is
//    propagation + the *destination's* control-plane responsiveness
//    (the quantity the paper's Figure 2 measures per peer: a loaded
//    PlanetLab sliver takes seconds to react). Datagrams can be lost;
//    callers that need reliability run a timer (ReliableChannel).
//
//  * Data plane — start_message(): one bulk JXTA message moved by the
//    fluid FlowScheduler, rate-capped by the large-message degradation
//    model, and subject to whole-message loss: a lost message wastes a
//    random fraction of its transfer time before failing, which is why
//    retransmitting a 100 MB monolith is so much worse than a 6.25 MB
//    part.

#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "peerlab/common/ids.hpp"
#include "peerlab/common/units.hpp"
#include "peerlab/net/degradation.hpp"
#include "peerlab/net/flow_scheduler.hpp"
#include "peerlab/net/topology.hpp"
#include "peerlab/obs/trace_context.hpp"
#include "peerlab/sim/simulator.hpp"
#include "peerlab/sim/trace.hpp"

namespace peerlab::obs::trace {
class TraceRecorder;
}  // namespace peerlab::obs::trace

namespace peerlab::net {

struct NetworkConfig {
  FlowSchedulerConfig flows{};
  DegradationModel degradation{};
  /// Floor loss probability for any datagram, on top of size-dependent
  /// loss (models UDP-ish advisory traffic over the wide area).
  double datagram_loss = 0.001;
  /// Probability that a delivered datagram arrives twice (the mirror
  /// knob of datagram_loss: wide-area paths and retransmitting relays
  /// duplicate as well as drop). The copy takes an independently
  /// sampled control delay, so duplicates can arrive out of order.
  /// Responders must be idempotent (see ReliableChannel); this knob
  /// exists to regression-test that property. 0 (the default) draws
  /// nothing from the loss RNG, leaving seeded runs bit-identical.
  double datagram_duplication = 0.0;
  /// Serialization allowance per control datagram.
  Seconds datagram_serialization = 0.001;
  /// How long a bulk send towards a crashed or partitioned endpoint
  /// stalls before its failure callback fires (the sender's transport
  /// noticing the dead peer; a TCP-connect-timeout stand-in).
  Seconds fault_stall = 5.0;
};

class Network {
 public:
  Network(sim::Simulator& sim, Topology topology, NetworkConfig config = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] Topology& topology() noexcept { return topology_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] FlowScheduler& flows() noexcept { return flows_; }
  [[nodiscard]] const FlowScheduler& flows() const noexcept { return flows_; }
  [[nodiscard]] const DegradationModel& degradation() const noexcept {
    return config_.degradation;
  }
  [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }

  /// Sends a control datagram. `on_delivered` fires at the arrival
  /// instant, or never if the datagram is lost.
  void send_datagram(NodeId src, NodeId dst, Bytes size, std::function<void()> on_delivered);

  /// Moves one bulk message. `on_done(ok, elapsed)` fires when the
  /// message lands (ok = true) or when a loss aborts it part-way
  /// (ok = false); `elapsed` is measured from this call either way.
  /// Returns the flow id for cancellation; the id refers to the
  /// underlying flow once it starts.
  FlowId start_message(NodeId src, NodeId dst, Bytes size,
                       std::function<void(bool ok, Seconds elapsed)> on_done);

  /// As above, but the bulk message rides `trace`'s causal chain: with
  /// a trace recorder attached and an active context, the flow's
  /// start/finish/abort land on the chain as kFlowStart/kFlowFinish/
  /// kFlowAbort events.
  FlowId start_message(NodeId src, NodeId dst, Bytes size, const obs::trace::TraceContext& trace,
                       std::function<void(bool ok, Seconds elapsed)> on_done);

  /// Cancels an in-flight message; its callback never fires.
  void cancel_message(FlowId id) { flows_.cancel(id); }

  // ---- fault surface (driven by FaultInjector; see DESIGN.md §10) ----

  [[nodiscard]] bool node_up(NodeId node) const noexcept;
  /// Both endpoints up and no partition between them.
  [[nodiscard]] bool reachable(NodeId src, NodeId dst) const noexcept {
    return node_up(src) && node_up(dst) && !partitioned(src, dst);
  }

  /// Takes a node down (crash): every in-flight bulk message touching
  /// it aborts atomically — one batched rate recomputation — with each
  /// message's on_done(false, ...) firing; datagrams from/to the node
  /// are dropped until restore_node(). Idempotent.
  void crash_node(NodeId node);
  void restore_node(NodeId node);

  /// Cuts / heals the bidirectional link between two nodes. A cut
  /// aborts in-flight bulk messages between them and drops datagrams
  /// either way until healed.
  void partition(NodeId a, NodeId b);
  void heal(NodeId a, NodeId b);
  [[nodiscard]] bool partitioned(NodeId a, NodeId b) const noexcept;

  /// Bandwidth brownout: scales the node's access capacity by `factor`
  /// in (0, 1]; 1 restores nominal. Only the flow components touching
  /// the node re-level; everything else keeps its rates.
  void set_capacity_factor(NodeId node, double factor);

  /// Samples the end-to-end delay of one control datagram without
  /// sending (used by models estimating responsiveness).
  [[nodiscard]] Seconds sample_control_delay(NodeId src, NodeId dst);

  /// Attaches (or detaches with nullptr) an event tracer; the network
  /// records datagram and bulk-message milestones while one is set.
  void set_tracer(sim::Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] sim::Tracer* tracer() const noexcept { return tracer_; }

  /// Attaches (or detaches with nullptr) the causal-trace recorder.
  /// Traced bulk messages then emit flow lifecycle events and the flow
  /// scheduler records ambient re-levels. One pointer test per site
  /// when detached (the sim::Tracer attachment rule).
  void set_trace(obs::trace::TraceRecorder* recorder) noexcept {
    trace_ = recorder;
    flows_.set_trace(recorder);
  }
  [[nodiscard]] obs::trace::TraceRecorder* trace() const noexcept { return trace_; }

  /// Registers the network's instruments (datagram/message counters,
  /// control-delay histogram, accumulated brownout seconds) in
  /// `registry` and the flow scheduler's alongside; zero-cost when
  /// never called. `wall_profiling` forwards to the scheduler's
  /// re-level wall-clock histogram; a non-null `profiler` adds nested
  /// re-level/water-fill spans (see obs::WallProfiler).
  void attach_metrics(obs::MetricRegistry& registry, bool wall_profiling = false,
                      obs::WallProfiler* profiler = nullptr);
  void detach_metrics() noexcept {
    m_ = Metrics();
    flows_.detach_metrics();
  }

  /// Statistics for tests and reporting.
  [[nodiscard]] std::uint64_t datagrams_sent() const noexcept { return datagrams_sent_; }
  [[nodiscard]] std::uint64_t datagrams_lost() const noexcept { return datagrams_lost_; }
  /// Datagrams delivered a second time by the duplication knob.
  [[nodiscard]] std::uint64_t datagrams_duplicated() const noexcept {
    return datagrams_duplicated_;
  }
  [[nodiscard]] std::uint64_t messages_started() const noexcept { return messages_started_; }
  [[nodiscard]] std::uint64_t messages_lost() const noexcept { return messages_lost_; }
  /// Datagrams dropped and bulk messages failed because an endpoint was
  /// down or partitioned (subset of the lost counters above).
  [[nodiscard]] std::uint64_t datagrams_blocked() const noexcept { return datagrams_blocked_; }
  [[nodiscard]] std::uint64_t messages_blocked() const noexcept { return messages_blocked_; }
  /// Bulk messages torn down mid-flight by a crash or partition.
  [[nodiscard]] std::uint64_t messages_aborted() const noexcept { return messages_aborted_; }

 private:
  /// Cached instrument handles; all null while detached.
  struct Metrics {
    obs::Counter* datagrams_sent = nullptr;
    obs::Counter* datagrams_lost = nullptr;
    obs::Counter* datagrams_blocked = nullptr;
    obs::Counter* datagrams_duplicated = nullptr;
    obs::Counter* messages_started = nullptr;
    obs::Counter* messages_lost = nullptr;
    obs::Counter* messages_blocked = nullptr;
    obs::Counter* messages_aborted = nullptr;
    obs::Gauge* brownout_seconds = nullptr;
    obs::Histogram* datagram_delay_s = nullptr;
  };

  /// Closes the open brownout interval of `node` (if any) into the
  /// brownout-seconds gauge; called on every factor change.
  void account_brownout(NodeId node, double new_factor);

  sim::Simulator& sim_;
  Topology topology_;
  NetworkConfig config_;
  FlowScheduler flows_;
  sim::Rng loss_rng_;
  sim::Tracer* tracer_ = nullptr;
  obs::trace::TraceRecorder* trace_ = nullptr;
  Metrics m_;
  /// Start time of each node's ongoing brownout; NaN = not degraded.
  std::vector<Seconds> brownout_since_;
  std::vector<std::uint8_t> node_down_;  // index = node id; 1 = down
  std::set<std::pair<std::uint64_t, std::uint64_t>> partitions_;  // (min, max) node ids
  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t datagrams_lost_ = 0;
  std::uint64_t datagrams_duplicated_ = 0;
  std::uint64_t messages_started_ = 0;
  std::uint64_t messages_lost_ = 0;
  std::uint64_t datagrams_blocked_ = 0;
  std::uint64_t messages_blocked_ = 0;
  std::uint64_t messages_aborted_ = 0;
};

}  // namespace peerlab::net
