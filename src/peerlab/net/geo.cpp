#include "peerlab/net/geo.hpp"

#include <cmath>

namespace peerlab::net {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kPi = 3.14159265358979323846;
// Light in fiber: ~2e5 km/s.
constexpr double kFiberKmPerSec = 200000.0;

double radians(double deg) noexcept { return deg * kPi / 180.0; }
}  // namespace

double great_circle_km(GeoPoint a, GeoPoint b) noexcept {
  const double lat1 = radians(a.latitude_deg);
  const double lat2 = radians(b.latitude_deg);
  const double dlat = lat2 - lat1;
  const double dlon = radians(b.longitude_deg - a.longitude_deg);
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(std::min(1.0, h)));
}

Seconds propagation_delay(GeoPoint a, GeoPoint b, Seconds router_overhead) noexcept {
  return great_circle_km(a, b) / kFiberKmPerSec + router_overhead;
}

}  // namespace peerlab::net
