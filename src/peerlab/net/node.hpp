#pragma once

// Simulated wide-area hosts (our stand-in for PlanetLab nodes).
//
// A NodeProfile captures everything the experiments need about a host:
// where it is (for propagation delay), how responsive its control plane
// is (PlanetLab slivers share a machine with ~100 others, so petition
// handling can take seconds on a loaded node), its access bandwidth,
// compute speed under background load, loss behaviour and its advertised
// price for the economic selection model.

#include <string>

#include "peerlab/common/ids.hpp"
#include "peerlab/common/units.hpp"
#include "peerlab/net/geo.hpp"
#include "peerlab/sim/rng.hpp"

namespace peerlab::net {

struct NodeProfile {
  std::string hostname;
  std::string site;
  std::string country;
  GeoPoint location{};

  /// Nominal clock of the sliver's share of the machine.
  GigaHertz cpu_ghz = 1.0;
  /// Concurrent task slots (PlanetLab-era nodes were single/dual core).
  int cpu_slots = 1;
  /// Mean fraction of the CPU eaten by co-located slivers.
  double base_load = 0.2;
  /// Std-dev of the load fluctuation sampled per task.
  double load_jitter = 0.1;

  MbitPerSec uplink_mbps = 10.0;
  MbitPerSec downlink_mbps = 10.0;

  /// Mean time for the node's overlay daemon to notice and answer a
  /// control-plane request (a transfer petition, a task offer). This is
  /// the quantity Figure 2 of the paper measures per peer.
  Seconds control_delay_mean = 0.05;
  /// Lognormal sigma of the control-plane delay.
  double control_delay_sigma = 0.35;

  /// Per-megabyte Bernoulli loss folded over a message: a message of m
  /// megabytes survives with probability (1 - loss)^m. Models JXTA
  /// relay drops and sliver restarts.
  double loss_per_megabyte = 0.002;

  /// Price per CPU-second the peer advertises (economic model input).
  double price_per_cpu_second = 1.0;
};

/// A live node: profile plus its private random stream, so per-node
/// stochastic draws never interleave across nodes.
class Node {
 public:
  Node(NodeId id, NodeProfile profile, sim::Rng rng);

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const NodeProfile& profile() const noexcept { return profile_; }

  /// Samples the time the node takes to react to one control message.
  [[nodiscard]] Seconds sample_control_delay();

  /// Samples the instantaneous background load in [0, 0.97].
  [[nodiscard]] double sample_load();

  /// Samples the effective compute speed for one task execution.
  [[nodiscard]] GigaHertz sample_effective_speed();

  /// Survival probability of a `size`-byte message on this destination.
  [[nodiscard]] double delivery_probability(Bytes size) const noexcept;

  [[nodiscard]] sim::Rng& rng() noexcept { return rng_; }

 private:
  NodeId id_;
  NodeProfile profile_;
  sim::Rng rng_;
};

}  // namespace peerlab::net
