#pragma once

// Per-node task execution engine. Execution time is work divided by
// the node's sampled effective speed (nominal GHz minus the background
// load other PlanetLab slivers impose at that moment), so the same task
// takes visibly longer on an SC7-class node — the effect Figure 7
// reports. Executions can fail (sliver killed, process crash) with a
// configurable probability.

#include <functional>
#include <unordered_map>

#include "peerlab/net/node.hpp"
#include "peerlab/sim/simulator.hpp"
#include "peerlab/sim/trace.hpp"
#include "peerlab/tasks/queue.hpp"

namespace peerlab::tasks {

struct ExecutorConfig {
  /// Concurrent executions (PlanetLab-era nodes: 1).
  int slots = 1;
  /// Queue capacity behind the slots.
  std::size_t queue_capacity = 16;
  /// Probability one execution fails.
  double failure_rate = 0.0;
};

struct ExecutionReport {
  Task task;
  TaskState state = TaskState::kFailed;
  Seconds accepted_at = 0.0;
  Seconds started_at = 0.0;
  Seconds finished_at = 0.0;
  /// Effective speed the execution saw (GHz).
  GigaHertz effective_speed = 0.0;

  [[nodiscard]] Seconds execution_time() const noexcept { return finished_at - started_at; }
  [[nodiscard]] Seconds queueing_time() const noexcept { return started_at - accepted_at; }
};

class TaskExecutor {
 public:
  TaskExecutor(sim::Simulator& sim, net::Node& node, ExecutorConfig config = {});

  TaskExecutor(const TaskExecutor&) = delete;
  TaskExecutor& operator=(const TaskExecutor&) = delete;

  using Completion = std::function<void(const ExecutionReport&)>;

  /// Offers a task. Returns false (and reports kRejected through the
  /// callback) when the queue is full; otherwise the callback fires at
  /// completion or failure.
  bool submit(const Task& task, Completion done);

  [[nodiscard]] bool idle() const noexcept { return running_ == 0 && queue_.empty(); }
  [[nodiscard]] int running() const noexcept { return running_; }
  /// Queued + running — the backlog a broker sees.
  [[nodiscard]] int backlog() const noexcept {
    return running_ + static_cast<int>(queue_.depth());
  }
  [[nodiscard]] const TaskQueue& queue() const noexcept { return queue_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t failed() const noexcept { return failed_; }

  /// Optional event tracing (execution start/finish milestones).
  void set_tracer(sim::Tracer* tracer) noexcept { tracer_ = tracer; }

 private:
  void maybe_start();
  void finish(const Task& task, Seconds accepted_at, Seconds started_at,
              GigaHertz speed, Completion done);

  sim::Simulator& sim_;
  net::Node& node_;
  ExecutorConfig config_;
  sim::Tracer* tracer_ = nullptr;
  TaskQueue queue_;
  std::unordered_map<std::uint64_t, std::pair<Seconds, Completion>> pending_;  // accepted_at
  int running_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace peerlab::tasks
