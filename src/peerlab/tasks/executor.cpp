#include "peerlab/tasks/executor.hpp"

#include <utility>

#include "peerlab/common/check.hpp"

namespace peerlab::tasks {

TaskExecutor::TaskExecutor(sim::Simulator& sim, net::Node& node, ExecutorConfig config)
    : sim_(sim), node_(node), config_(config), queue_(config.queue_capacity) {
  PEERLAB_CHECK_MSG(config_.slots > 0, "executor needs at least one slot");
  PEERLAB_CHECK_MSG(config_.failure_rate >= 0.0 && config_.failure_rate < 1.0,
                    "failure rate must be in [0, 1)");
}

bool TaskExecutor::submit(const Task& task, Completion done) {
  PEERLAB_CHECK_MSG(task.work > 0.0, "task needs positive work");
  PEERLAB_CHECK_MSG(static_cast<bool>(done), "completion callback required");
  if (!queue_.offer(task)) {
    ExecutionReport report;
    report.task = task;
    report.state = TaskState::kRejected;
    report.accepted_at = sim_.now();
    report.finished_at = sim_.now();
    done(report);
    return false;
  }
  pending_.emplace(task.id.value(), std::make_pair(sim_.now(), std::move(done)));
  maybe_start();
  return true;
}

void TaskExecutor::maybe_start() {
  while (running_ < config_.slots) {
    auto next = queue_.pop();
    if (!next) return;
    auto it = pending_.find(next->id.value());
    PEERLAB_CHECK(it != pending_.end());
    const Seconds accepted_at = it->second.first;
    Completion done = std::move(it->second.second);
    pending_.erase(it);

    ++running_;
    const GigaHertz speed = node_.sample_effective_speed();
    const Seconds duration = next->work / speed;
    const Seconds started_at = sim_.now();
    const Task task = *next;
    if (tracer_ != nullptr) {
      tracer_->record(sim_.now(), sim::TraceCategory::kTask, "exec-start",
                      to_string(node_.id()), task.id.value(),
                      static_cast<std::uint64_t>(task.work));
    }
    sim_.schedule(duration, [this, task, accepted_at, started_at, speed,
                             done = std::move(done)]() mutable {
      finish(task, accepted_at, started_at, speed, std::move(done));
    });
  }
}

void TaskExecutor::finish(const Task& task, Seconds accepted_at, Seconds started_at,
                          GigaHertz speed, Completion done) {
  --running_;
  ExecutionReport report;
  report.task = task;
  report.accepted_at = accepted_at;
  report.started_at = started_at;
  report.finished_at = sim_.now();
  report.effective_speed = speed;
  const bool failed = node_.rng().bernoulli(config_.failure_rate);
  report.state = failed ? TaskState::kFailed : TaskState::kCompleted;
  if (failed) {
    ++failed_;
  } else {
    ++completed_;
  }
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), sim::TraceCategory::kTask,
                    failed ? "exec-failed" : "exec-done", to_string(node_.id()),
                    task.id.value(), 0);
  }
  // Start the next task before delivering the report so a re-submitting
  // callback sees a consistent backlog.
  maybe_start();
  done(report);
}

}  // namespace peerlab::tasks
