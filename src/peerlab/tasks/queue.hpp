#pragma once

// Bounded FIFO task queue with an acceptance decision — the peer-side
// half of "percentage of tasks accepted by the peer for execution": a
// peer whose queue is full rejects new work, and that rejection feeds
// the statistics the data evaluator reads.

#include <deque>
#include <optional>

#include "peerlab/tasks/task.hpp"

namespace peerlab::tasks {

class TaskQueue {
 public:
  /// `capacity` bounds queued-but-not-running tasks.
  explicit TaskQueue(std::size_t capacity = 16);

  /// Accepts the task unless the queue is full. Returns the decision.
  [[nodiscard]] bool offer(const Task& task);

  /// Next task in FIFO order.
  [[nodiscard]] std::optional<Task> pop();

  [[nodiscard]] std::size_t depth() const noexcept { return queue_.size(); }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t offered() const noexcept { return offered_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }

 private:
  std::size_t capacity_;
  std::deque<Task> queue_;
  std::uint64_t offered_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace peerlab::tasks
