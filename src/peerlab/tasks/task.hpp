#pragma once

// Executable tasks — the workload unit of the overlay's task
// management primitives: "users/applications on top of the overlay
// submit executable tasks and receive results in turn". The paper's
// validating application processes large files of a virtual campus, so
// a task carries compute work plus optional input/output payloads.

#include "peerlab/common/ids.hpp"
#include "peerlab/common/units.hpp"

namespace peerlab::tasks {

struct Task {
  TaskId id;
  /// The submitting peer (who gets the result).
  PeerId owner;
  /// Compute demand.
  GigaCycles work = 0.0;
  /// Input file shipped to the executing peer before it can start.
  Bytes input_size = 0;
  /// Result payload shipped back.
  Bytes output_size = 0;
  Seconds submitted = 0.0;
};

enum class TaskState : std::uint8_t {
  kQueued,
  kRunning,
  kCompleted,
  kFailed,
  kRejected,
};

[[nodiscard]] const char* to_string(TaskState state) noexcept;

}  // namespace peerlab::tasks
