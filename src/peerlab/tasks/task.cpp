#include "peerlab/tasks/task.hpp"

namespace peerlab::tasks {

const char* to_string(TaskState state) noexcept {
  switch (state) {
    case TaskState::kQueued: return "queued";
    case TaskState::kRunning: return "running";
    case TaskState::kCompleted: return "completed";
    case TaskState::kFailed: return "failed";
    case TaskState::kRejected: return "rejected";
  }
  return "?";
}

}  // namespace peerlab::tasks
