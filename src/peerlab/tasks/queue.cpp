#include "peerlab/tasks/queue.hpp"

#include "peerlab/common/check.hpp"

namespace peerlab::tasks {

TaskQueue::TaskQueue(std::size_t capacity) : capacity_(capacity) {
  PEERLAB_CHECK_MSG(capacity_ > 0, "task queue needs capacity");
}

bool TaskQueue::offer(const Task& task) {
  ++offered_;
  if (queue_.size() >= capacity_) {
    ++rejected_;
    return false;
  }
  queue_.push_back(task);
  return true;
}

std::optional<Task> TaskQueue::pop() {
  if (queue_.empty()) return std::nullopt;
  Task task = queue_.front();
  queue_.pop_front();
  return task;
}

}  // namespace peerlab::tasks
