#include "peerlab/stats/window.hpp"

#include "peerlab/common/check.hpp"

namespace peerlab::stats {

OutcomeWindow::OutcomeWindow(Seconds span) : span_(span) {
  PEERLAB_CHECK_MSG(span > 0.0, "window span must be positive");
}

void OutcomeWindow::record(Seconds now, bool ok) {
  PEERLAB_CHECK_MSG(events_.empty() || now >= events_.back().first,
                    "window records must be time-ordered");
  events_.emplace_back(now, ok);
  ok_ += ok ? 1u : 0u;
  evict(now);
}

void OutcomeWindow::evict(Seconds now) const {
  const Seconds horizon = now - span_;
  while (!events_.empty() && events_.front().first <= horizon) {
    ok_ -= events_.front().second ? 1u : 0u;
    events_.pop_front();
  }
}

double OutcomeWindow::percent(Seconds now, double when_empty) const {
  evict(now);
  if (events_.empty()) return when_empty;
  return 100.0 * static_cast<double>(ok_) / static_cast<double>(events_.size());
}

std::size_t OutcomeWindow::count(Seconds now) const {
  evict(now);
  return events_.size();
}

}  // namespace peerlab::stats
