#include "peerlab/stats/peer_statistics.hpp"

#include "peerlab/common/check.hpp"

namespace peerlab::stats {

const char* to_string(Criterion c) noexcept {
  switch (c) {
    case Criterion::kMsgSuccessSession: return "msg-success-session";
    case Criterion::kMsgSuccessTotal: return "msg-success-total";
    case Criterion::kMsgSuccessWindow: return "msg-success-window";
    case Criterion::kOutboxNow: return "outbox-now";
    case Criterion::kOutboxAvg: return "outbox-avg";
    case Criterion::kInboxNow: return "inbox-now";
    case Criterion::kInboxAvg: return "inbox-avg";
    case Criterion::kTaskExecSuccessSession: return "task-exec-success-session";
    case Criterion::kTaskExecSuccessTotal: return "task-exec-success-total";
    case Criterion::kTaskAcceptSession: return "task-accept-session";
    case Criterion::kTaskAcceptTotal: return "task-accept-total";
    case Criterion::kFileSentSession: return "file-sent-session";
    case Criterion::kFileSentTotal: return "file-sent-total";
    case Criterion::kFileCancelSession: return "file-cancel-session";
    case Criterion::kFileCancelTotal: return "file-cancel-total";
    case Criterion::kPendingTransfers: return "pending-transfers";
    case Criterion::kCount: break;
  }
  return "?";
}

bool higher_is_better(Criterion c) noexcept {
  switch (c) {
    case Criterion::kMsgSuccessSession:
    case Criterion::kMsgSuccessTotal:
    case Criterion::kMsgSuccessWindow:
    case Criterion::kTaskExecSuccessSession:
    case Criterion::kTaskExecSuccessTotal:
    case Criterion::kTaskAcceptSession:
    case Criterion::kTaskAcceptTotal:
    case Criterion::kFileSentSession:
    case Criterion::kFileSentTotal:
      return true;
    case Criterion::kOutboxNow:
    case Criterion::kOutboxAvg:
    case Criterion::kInboxNow:
    case Criterion::kInboxAvg:
    case Criterion::kFileCancelSession:
    case Criterion::kFileCancelTotal:
    case Criterion::kPendingTransfers:
      return false;
    case Criterion::kCount:
      break;
  }
  return true;
}

PeerStatistics::PeerStatistics(Seconds window_span) : msg_window_(window_span) {}

void PeerStatistics::record_message(Seconds now, bool ok) {
  msg_session_.record(ok);
  msg_total_.record(ok);
  msg_window_.record(now, ok);
}

void PeerStatistics::record_task_accept(bool accepted) {
  accept_session_.record(accepted);
  accept_total_.record(accepted);
}

void PeerStatistics::record_task_execution(bool ok) {
  exec_session_.record(ok);
  exec_total_.record(ok);
}

void PeerStatistics::record_file(FileOutcome::Value outcome) {
  const bool completed = outcome == FileOutcome::kCompleted;
  const bool cancelled = outcome == FileOutcome::kCancelled;
  file_session_.record(completed);
  file_total_.record(completed);
  cancel_session_.record(cancelled);
  cancel_total_.record(cancelled);
}

void PeerStatistics::sample_outbox(double length) {
  PEERLAB_DCHECK(length >= 0.0);
  outbox_.sample(length);
}

void PeerStatistics::sample_inbox(double length) {
  PEERLAB_DCHECK(length >= 0.0);
  inbox_.sample(length);
}

void PeerStatistics::set_pending_transfers(int pending) {
  PEERLAB_DCHECK(pending >= 0);
  pending_transfers_ = pending;
}

void PeerStatistics::begin_session() {
  msg_session_.reset();
  accept_session_.reset();
  exec_session_.reset();
  file_session_.reset();
  cancel_session_.reset();
}

double PeerStatistics::value(Criterion c, Seconds now) const {
  switch (c) {
    case Criterion::kMsgSuccessSession: return msg_session_.percent();
    case Criterion::kMsgSuccessTotal: return msg_total_.percent();
    case Criterion::kMsgSuccessWindow: return msg_window_.percent(now);
    case Criterion::kOutboxNow: return outbox_.last();
    case Criterion::kOutboxAvg: return outbox_.mean();
    case Criterion::kInboxNow: return inbox_.last();
    case Criterion::kInboxAvg: return inbox_.mean();
    case Criterion::kTaskExecSuccessSession: return exec_session_.percent();
    case Criterion::kTaskExecSuccessTotal: return exec_total_.percent();
    case Criterion::kTaskAcceptSession: return accept_session_.percent();
    case Criterion::kTaskAcceptTotal: return accept_total_.percent();
    case Criterion::kFileSentSession: return file_session_.percent();
    case Criterion::kFileSentTotal: return file_total_.percent();
    case Criterion::kFileCancelSession: return cancel_session_.percent(0.0);
    case Criterion::kFileCancelTotal: return cancel_total_.percent(0.0);
    case Criterion::kPendingTransfers: return pending_transfers_;
    case Criterion::kCount: break;
  }
  PEERLAB_CHECK_MSG(false, "unknown criterion");
  return 0.0;
}

}  // namespace peerlab::stats
