#include "peerlab/stats/history.hpp"

#include <algorithm>
#include <utility>

#include "peerlab/common/check.hpp"

namespace peerlab::stats {

MbitPerSec TransferRecord::achieved_rate() const noexcept {
  return rate_for(size, duration);
}

HistoryStore::HistoryStore(std::size_t per_peer_capacity) : capacity_(per_peer_capacity) {
  PEERLAB_CHECK_MSG(capacity_ > 0, "history needs capacity");
}

HistoryStore::HistoryStore(const HistoryStore& other)
    : capacity_(other.capacity_),
      tasks_(other.tasks_),
      transfers_(other.transfers_),
      responses_(other.responses_) {}

HistoryStore& HistoryStore::operator=(const HistoryStore& other) {
  capacity_ = other.capacity_;
  tasks_ = other.tasks_;
  transfers_ = other.transfers_;
  responses_ = other.responses_;
  return *this;  // observer_ untouched: bound to this instance
}

HistoryStore::HistoryStore(HistoryStore&& other) noexcept
    : capacity_(other.capacity_),
      tasks_(std::move(other.tasks_)),
      transfers_(std::move(other.transfers_)),
      responses_(std::move(other.responses_)) {}

HistoryStore& HistoryStore::operator=(HistoryStore&& other) noexcept {
  capacity_ = other.capacity_;
  tasks_ = std::move(other.tasks_);
  transfers_ = std::move(other.transfers_);
  responses_ = std::move(other.responses_);
  return *this;  // observer_ untouched: bound to this instance
}

void HistoryStore::record_task(const TaskRecord& record) {
  PEERLAB_CHECK_MSG(record.peer.valid(), "task record needs a peer");
  PEERLAB_CHECK_MSG(record.finished >= record.started && record.started >= record.submitted,
                    "task record times out of order");
  auto& records = tasks_[record.peer];
  records.push_back(record);
  bound(records);
  notify(record.peer);
}

void HistoryStore::record_transfer(const TransferRecord& record) {
  PEERLAB_CHECK_MSG(record.peer.valid(), "transfer record needs a peer");
  auto& records = transfers_[record.peer];
  records.push_back(record);
  bound(records);
  notify(record.peer);
}

void HistoryStore::record_response_time(PeerId peer, Seconds elapsed) {
  PEERLAB_CHECK_MSG(peer.valid() && elapsed >= 0.0, "bad response-time record");
  auto& records = responses_[peer];
  records.push_back(elapsed);
  bound(records);
  notify(peer);
}

namespace {
/// Averages f over the last `last_n` entries of `records` that satisfy
/// `use`; nullopt when none qualify.
template <typename T, typename Use, typename Extract>
std::optional<double> tail_mean(const std::deque<T>& records, std::size_t last_n, Use use,
                                Extract extract) {
  double sum = 0.0;
  std::size_t n = 0;
  for (auto it = records.rbegin(); it != records.rend() && n < last_n; ++it) {
    if (!use(*it)) continue;
    sum += extract(*it);
    ++n;
  }
  if (n == 0) return std::nullopt;
  return sum / static_cast<double>(n);
}
}  // namespace

std::optional<Seconds> HistoryStore::mean_execution_time(PeerId peer, std::size_t last_n) const {
  const auto it = tasks_.find(peer);
  if (it == tasks_.end()) return std::nullopt;
  return tail_mean(
      it->second, last_n, [](const TaskRecord& r) { return r.ok; },
      [](const TaskRecord& r) { return r.execution_time(); });
}

std::optional<GigaHertz> HistoryStore::mean_effective_speed(PeerId peer,
                                                            std::size_t last_n) const {
  const auto it = tasks_.find(peer);
  if (it == tasks_.end()) return std::nullopt;
  return tail_mean(
      it->second, last_n,
      [](const TaskRecord& r) { return r.ok && r.execution_time() > 0.0 && r.work > 0.0; },
      [](const TaskRecord& r) { return r.work / r.execution_time(); });
}

std::optional<MbitPerSec> HistoryStore::mean_transfer_rate(PeerId peer,
                                                           std::size_t last_n) const {
  const auto it = transfers_.find(peer);
  if (it == transfers_.end()) return std::nullopt;
  return tail_mean(
      it->second, last_n,
      [](const TransferRecord& r) { return r.ok && r.duration > 0.0; },
      [](const TransferRecord& r) { return r.achieved_rate(); });
}

std::optional<Seconds> HistoryStore::mean_response_time(PeerId peer, std::size_t last_n) const {
  const auto it = responses_.find(peer);
  if (it == responses_.end()) return std::nullopt;
  return tail_mean(
      it->second, last_n, [](Seconds) { return true; }, [](Seconds s) { return s; });
}

double HistoryStore::task_success_rate(PeerId peer) const {
  const auto it = tasks_.find(peer);
  if (it == tasks_.end() || it->second.empty()) return 1.0;
  const auto ok = std::count_if(it->second.begin(), it->second.end(),
                                [](const TaskRecord& r) { return r.ok; });
  return static_cast<double>(ok) / static_cast<double>(it->second.size());
}

std::vector<TaskRecord> HistoryStore::tasks_for(PeerId peer) const {
  const auto it = tasks_.find(peer);
  if (it == tasks_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<TransferRecord> HistoryStore::transfers_for(PeerId peer) const {
  const auto it = transfers_.find(peer);
  if (it == transfers_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::size_t HistoryStore::task_count(PeerId peer) const {
  const auto it = tasks_.find(peer);
  return it == tasks_.end() ? 0 : it->second.size();
}

std::vector<PeerId> HistoryStore::known_peers() const {
  std::vector<PeerId> peers;
  auto add = [&peers](PeerId p) {
    if (std::find(peers.begin(), peers.end(), p) == peers.end()) peers.push_back(p);
  };
  for (const auto& [peer, records] : tasks_) add(peer);
  for (const auto& [peer, records] : transfers_) add(peer);
  for (const auto& [peer, records] : responses_) add(peer);
  std::sort(peers.begin(), peers.end());
  return peers;
}

}  // namespace peerlab::stats
