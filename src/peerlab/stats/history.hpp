#pragma once

// Historical data kept by broker peers for their peergroup — the input
// to the scheduling-based (economic) selection model: "the estimated
// [ready] time is computed by the broker peers based on historical data
// kept for the peergroup", and to the user-preference model's notion of
// which peers were quick in past submissions.

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "peerlab/common/ids.hpp"
#include "peerlab/common/units.hpp"

namespace peerlab::stats {

struct TaskRecord {
  TaskId task;
  PeerId peer;
  Seconds submitted = 0.0;
  Seconds started = 0.0;
  Seconds finished = 0.0;
  bool ok = false;
  GigaCycles work = 0.0;

  [[nodiscard]] Seconds execution_time() const noexcept { return finished - started; }
  [[nodiscard]] Seconds turnaround() const noexcept { return finished - submitted; }
};

struct TransferRecord {
  TransferId transfer;
  PeerId peer;
  Bytes size = 0;
  Seconds duration = 0.0;
  Seconds petition_time = 0.0;
  bool ok = false;

  [[nodiscard]] MbitPerSec achieved_rate() const noexcept;
};

class HistoryStore {
 public:
  /// Bounds the per-peer record deques (oldest evicted first).
  HistoryStore() : HistoryStore(256) {}
  explicit HistoryStore(std::size_t per_peer_capacity);

  // Copies and moves transfer *data only*: the mutation observer is
  // bound to the store instance, never to its contents. A replicated
  // snapshot copy must not ship the primary's observer to a standby
  // (it would dangle once the primary dies), and adopting replicated
  // state must not silently disconnect the adopter's own index hook.
  HistoryStore(const HistoryStore& other);
  HistoryStore& operator=(const HistoryStore& other);
  HistoryStore(HistoryStore&& other) noexcept;
  HistoryStore& operator=(HistoryStore&& other) noexcept;

  /// Called after every record_* mutation with the peer touched. One
  /// observer at most (the owning broker's candidate index); pass an
  /// empty function to detach.
  using MutationObserver = std::function<void(PeerId)>;
  void set_observer(MutationObserver observer) { observer_ = std::move(observer); }

  void record_task(const TaskRecord& record);
  void record_transfer(const TransferRecord& record);
  /// Control-plane responsiveness observation (petition/offer RTTs).
  void record_response_time(PeerId peer, Seconds elapsed);

  // ---- estimators ----
  /// Mean execution time of the peer's last `last_n` successful tasks;
  /// nullopt when the peer has no successful history.
  [[nodiscard]] std::optional<Seconds> mean_execution_time(PeerId peer,
                                                           std::size_t last_n = 16) const;
  /// Mean effective compute speed (work / execution time) of the
  /// peer's successful tasks.
  [[nodiscard]] std::optional<GigaHertz> mean_effective_speed(PeerId peer,
                                                              std::size_t last_n = 16) const;
  /// Mean achieved transfer rate towards the peer.
  [[nodiscard]] std::optional<MbitPerSec> mean_transfer_rate(PeerId peer,
                                                             std::size_t last_n = 16) const;
  /// Mean petition/response latency of the peer.
  [[nodiscard]] std::optional<Seconds> mean_response_time(PeerId peer,
                                                          std::size_t last_n = 16) const;
  /// Fraction of the peer's recorded tasks that succeeded (1 when no
  /// history — benefit of the doubt, matching RatioCounter).
  [[nodiscard]] double task_success_rate(PeerId peer) const;

  [[nodiscard]] std::vector<TaskRecord> tasks_for(PeerId peer) const;
  [[nodiscard]] std::vector<TransferRecord> transfers_for(PeerId peer) const;
  [[nodiscard]] std::size_t task_count(PeerId peer) const;

  /// Every peer that appears anywhere in the history.
  [[nodiscard]] std::vector<PeerId> known_peers() const;

 private:
  template <typename T>
  void bound(std::deque<T>& records) {
    while (records.size() > capacity_) records.pop_front();
  }

  void notify(PeerId peer) const {
    if (observer_) observer_(peer);
  }

  std::size_t capacity_;
  std::unordered_map<PeerId, std::deque<TaskRecord>> tasks_;
  std::unordered_map<PeerId, std::deque<TransferRecord>> transfers_;
  std::unordered_map<PeerId, std::deque<Seconds>> responses_;
  MutationObserver observer_;
};

}  // namespace peerlab::stats
