#pragma once

// Per-peer resource statistics — Section 2.2's criterion catalogue.
//
// The broker keeps one PeerStatistics per peer in its group. Overlay
// services feed it (message outcomes, task outcomes, transfer outcomes,
// queue samples); the data-evaluator selection model reads it through
// the Criterion enum, so the model's weight vector and this storage
// stay in one-to-one correspondence with the paper's list:
//
//   global criteria      — successfully sent messages (session/total/
//                          last k hours), outbox queue now/avg, inbox
//                          queue now/avg
//   task criteria        — successfully executed tasks (session/total),
//                          tasks accepted for execution (session/total)
//   file criteria        — sent files (session/total), cancelled
//                          transfers (session/total), pending transfers

#include <array>
#include <string>

#include "peerlab/stats/counters.hpp"
#include "peerlab/stats/window.hpp"

namespace peerlab::stats {

enum class Criterion : std::uint8_t {
  kMsgSuccessSession = 0,
  kMsgSuccessTotal,
  kMsgSuccessWindow,
  kOutboxNow,
  kOutboxAvg,
  kInboxNow,
  kInboxAvg,
  kTaskExecSuccessSession,
  kTaskExecSuccessTotal,
  kTaskAcceptSession,
  kTaskAcceptTotal,
  kFileSentSession,
  kFileSentTotal,
  kFileCancelSession,
  kFileCancelTotal,
  kPendingTransfers,
  kCount,  // sentinel
};

inline constexpr std::size_t kCriterionCount = static_cast<std::size_t>(Criterion::kCount);

[[nodiscard]] const char* to_string(Criterion c) noexcept;

/// True when larger values of the criterion indicate a *better* peer
/// (success percentages); false when smaller is better (queue lengths,
/// cancellation percentages, pending transfers).
[[nodiscard]] bool higher_is_better(Criterion c) noexcept;

struct FileOutcome {
  enum Value : std::uint8_t { kCompleted, kCancelled, kFailed };
};

class PeerStatistics {
 public:
  /// `window_span` is the k-hours lookback for windowed criteria
  /// (default: 4 hours).
  explicit PeerStatistics(Seconds window_span = 4.0 * 3600.0);

  // ---- mutation (fed by overlay services) ----
  void record_message(Seconds now, bool ok);
  void record_task_accept(bool accepted);
  void record_task_execution(bool ok);
  void record_file(FileOutcome::Value outcome);
  void sample_outbox(double length);
  void sample_inbox(double length);
  void set_pending_transfers(int pending);

  /// Starts a new session: session-scoped counters reset, totals and
  /// the time window survive (the paper distinguishes exactly these).
  void begin_session();

  // ---- criterion read API (what the data evaluator consumes) ----
  /// Raw value of a criterion at `now`. Percent criteria are in
  /// [0, 100]; queue criteria are lengths; pending is a count.
  [[nodiscard]] double value(Criterion c, Seconds now) const;

  // ---- direct accessors for tests and reporting ----
  [[nodiscard]] const RatioCounter& messages_session() const noexcept { return msg_session_; }
  [[nodiscard]] const RatioCounter& messages_total() const noexcept { return msg_total_; }
  [[nodiscard]] const RatioCounter& tasks_exec_total() const noexcept { return exec_total_; }
  [[nodiscard]] const RatioCounter& files_total() const noexcept { return file_total_; }
  [[nodiscard]] int pending_transfers() const noexcept { return pending_transfers_; }
  /// The sliding message-success window — read-only; the candidate
  /// index uses oldest_event()/span() to schedule cached-cost expiry.
  [[nodiscard]] const OutcomeWindow& message_window() const noexcept { return msg_window_; }

 private:
  RatioCounter msg_session_, msg_total_;
  OutcomeWindow msg_window_;
  SampledAverage outbox_, inbox_;
  RatioCounter accept_session_, accept_total_;
  RatioCounter exec_session_, exec_total_;
  RatioCounter file_session_, file_total_;        // completed vs all
  RatioCounter cancel_session_, cancel_total_;    // cancelled vs all
  int pending_transfers_ = 0;
};

}  // namespace peerlab::stats
