#include "peerlab/stats/counters.hpp"

// Header-only arithmetic; this translation unit anchors the library.
