#pragma once

// Counter primitives behind the paper's data-evaluator criteria:
// success ratios ("percentage of successfully sent messages"), and
// running averages ("average number of messages in the outbox queue").

#include <cstdint>

namespace peerlab::stats {

/// Success/total ratio reported as a percentage. A peer with no
/// history yet reports the caller-provided neutral value so brand-new
/// peers are neither favoured nor punished by cost models.
class RatioCounter {
 public:
  void record(bool ok) noexcept {
    ++total_;
    ok_ += ok ? 1u : 0u;
  }

  void reset() noexcept { ok_ = total_ = 0; }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t successes() const noexcept { return ok_; }

  [[nodiscard]] double percent(double when_empty = 100.0) const noexcept {
    if (total_ == 0) return when_empty;
    return 100.0 * static_cast<double>(ok_) / static_cast<double>(total_);
  }

 private:
  std::uint64_t ok_ = 0;
  std::uint64_t total_ = 0;
};

/// Streaming mean of sampled values (queue lengths at observation
/// instants). Also remembers the latest sample ("now" criteria).
class SampledAverage {
 public:
  void sample(double value) noexcept {
    last_ = value;
    ++count_;
    mean_ += (value - mean_) / static_cast<double>(count_);
  }

  void reset() noexcept {
    last_ = 0.0;
    mean_ = 0.0;
    count_ = 0;
  }

  [[nodiscard]] double last() const noexcept { return last_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  double last_ = 0.0;
  double mean_ = 0.0;
  std::uint64_t count_ = 0;
};

}  // namespace peerlab::stats
