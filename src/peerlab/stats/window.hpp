#pragma once

// Sliding time window over boolean outcomes — the "during the last
// k hours" flavour of the paper's criteria. Events older than the span
// are evicted lazily on access.

#include <cstdint>
#include <deque>
#include <optional>

#include "peerlab/common/units.hpp"

namespace peerlab::stats {

class OutcomeWindow {
 public:
  /// `span` is the k-hours lookback (seconds of simulated time).
  explicit OutcomeWindow(Seconds span);

  void record(Seconds now, bool ok);

  /// Percentage of successful outcomes inside (now - span, now].
  [[nodiscard]] double percent(Seconds now, double when_empty = 100.0) const;

  [[nodiscard]] std::size_t count(Seconds now) const;
  [[nodiscard]] Seconds span() const noexcept { return span_; }

  /// Timestamp of the oldest retained event, without evicting. Lets a
  /// caller schedule the next moment percent() can change value (the
  /// broker's candidate index arms its expiry heap with front + span).
  [[nodiscard]] std::optional<Seconds> oldest_event() const {
    if (events_.empty()) return std::nullopt;
    return events_.front().first;
  }

 private:
  void evict(Seconds now) const;

  Seconds span_;
  mutable std::deque<std::pair<Seconds, bool>> events_;
  mutable std::uint64_t ok_ = 0;
};

}  // namespace peerlab::stats
