#pragma once

// Wall-clock span profiler over the metrics registry.
//
// A WallProfiler names a fixed set of *sites* (run, flows.relevel,
// selection.rank, ...). Each site owns two registry instruments so
// per-repetition registries merge like every other metric:
//
//   profile.<site>.wall_s  histogram  inclusive wall time per entry
//   profile.<site>.self_s  gauge      exclusive time (children deducted)
//
// Spans nest: a Span pushes itself on the profiler's (single-threaded)
// stack at construction and, at destruction, charges its inclusive
// elapsed to its site's histogram, its exclusive elapsed (inclusive
// minus the time spent in child spans) to the self gauge, and reports
// its inclusive time up to the parent span. Self time is what a flat
// profile ranks by — it answers "where do the cycles go" without
// double-counting nested sites.
//
// Zero-cost when detached, like every obs hook: a Span built with a
// null profiler reads no clock and touches no state, so hot paths gate
// on one pointer test. Sites are registered at attach time (not lazily
// on first entry), keeping the registry inventory — and therefore
// docs/METRICS.md — independent of which paths a run happens to
// exercise.

#include <chrono>
#include <map>
#include <string>
#include <string_view>

#include "peerlab/obs/metrics.hpp"

namespace peerlab::obs {

class WallProfiler {
 public:
  struct Site {
    Histogram* wall = nullptr;
    Gauge* self = nullptr;
  };

  explicit WallProfiler(MetricRegistry& registry) noexcept : registry_(&registry) {}

  WallProfiler(const WallProfiler&) = delete;
  WallProfiler& operator=(const WallProfiler&) = delete;

  /// Registers (idempotently) the site's two instruments and returns a
  /// handle stable for the profiler's lifetime.
  Site& site(std::string_view name);

  /// RAII nested span. Null profiler → fully inert (no clock read).
  class Span {
   public:
    Span(WallProfiler* profiler, Site* site) noexcept : profiler_(profiler), site_(site) {
      if (profiler_ != nullptr) {
        parent_ = profiler_->current_;
        profiler_->current_ = this;
        begin_ = std::chrono::steady_clock::now();
      }
    }

    /// Resolves the site by name; inert when `profiler` is null.
    Span(WallProfiler* profiler, std::string_view name)
        : Span(profiler, profiler != nullptr ? &profiler->site(name) : nullptr) {}

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    ~Span() {
      if (profiler_ == nullptr) return;
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - begin_;
      const double inclusive = elapsed.count();
      site_->wall->record(inclusive);
      site_->self->add(inclusive - child_s_);
      if (parent_ != nullptr) parent_->child_s_ += inclusive;
      profiler_->current_ = parent_;
    }

   private:
    WallProfiler* profiler_;
    Site* site_;
    Span* parent_ = nullptr;
    double child_s_ = 0.0;  // inclusive time of direct children
    std::chrono::steady_clock::time_point begin_;
  };

 private:
  MetricRegistry* registry_;
  std::map<std::string, Site, std::less<>> sites_;  // node addresses are stable
  Span* current_ = nullptr;
};

/// Renders the flat profile recorded in `registry` (every
/// profile.<site>.wall_s / .self_s pair) as an aligned text table —
/// site, entry count, inclusive total, exclusive self, mean and p99
/// per entry — sorted by self time descending. Empty string when the
/// registry holds no profile instruments.
[[nodiscard]] std::string profile_table(const MetricRegistry& registry);

}  // namespace peerlab::obs
