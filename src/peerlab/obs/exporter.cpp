#include "peerlab/obs/exporter.hpp"

#include <fstream>
#include <sstream>

#include "peerlab/common/check.hpp"
#include "peerlab/sim/trace.hpp"

namespace peerlab::obs {

SnapshotExporter::SnapshotExporter(sim::Simulator& sim, const MetricRegistry& registry)
    : SnapshotExporter(sim, registry, Options()) {}

SnapshotExporter::SnapshotExporter(sim::Simulator& sim, const MetricRegistry& registry,
                                   Options options)
    : sim_(sim), registry_(registry), options_(options) {
  PEERLAB_CHECK_MSG(options_.period > 0.0, "snapshot period must be positive");
  arm();
}

SnapshotExporter::~SnapshotExporter() { timer_.cancel(); }

void SnapshotExporter::arm() {
  timer_ = sim_.schedule_daemon(options_.period, [this] {
    snapshot_now();
    arm();
  });
}

void SnapshotExporter::track_tracer(const sim::Tracer& tracer, MetricRegistry& registry) {
  tracer_ = &tracer;
  tracer_drops_ = &registry.counter("trace.dropped", "events");
  tracer_drops_seen_ = 0;
  sync_tracer();
}

void SnapshotExporter::sync_tracer() const {
  if (tracer_ == nullptr) return;
  const std::uint64_t total = tracer_->dropped();
  if (total > tracer_drops_seen_) {
    tracer_drops_->add(total - tracer_drops_seen_);
    tracer_drops_seen_ = total;
  }
}

void SnapshotExporter::snapshot_now() {
  sync_tracer();
  const Seconds now = sim_.now();
  for (const MetricRegistry::Entry& e : registry_.entries()) {
    switch (e.kind) {
      case InstrumentKind::kCounter:
        rows_.push_back({now, e.name, "value", static_cast<double>(e.counter->value())});
        break;
      case InstrumentKind::kGauge:
        rows_.push_back({now, e.name, "value", e.gauge->value()});
        break;
      case InstrumentKind::kHistogram: {
        const Histogram& h = *e.histogram;
        rows_.push_back({now, e.name, "count", static_cast<double>(h.count())});
        rows_.push_back({now, e.name, "mean", h.mean()});
        rows_.push_back({now, e.name, "p50", h.quantile(0.50)});
        rows_.push_back({now, e.name, "p90", h.quantile(0.90)});
        rows_.push_back({now, e.name, "p99", h.quantile(0.99)});
        rows_.push_back({now, e.name, "min", h.min()});
        rows_.push_back({now, e.name, "max", h.max()});
        break;
      }
    }
  }
  ++snapshots_;
}

namespace {

// RFC-4180: quote a field when it contains a comma, quote or newline;
// double any embedded quotes.
void csv_field(std::ostream& out, const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) {
    out << s;
    return;
  }
  out << '"';
  for (char c : s) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

std::string SnapshotExporter::csv() const {
  std::ostringstream out;
  out.precision(17);
  out << "time,metric,stat,value\n";
  for (const Row& row : rows_) {
    out << row.time << ',';
    csv_field(out, row.metric);
    out << ',' << row.stat << ',' << row.value << '\n';
  }
  return out.str();
}

void SnapshotExporter::write_csv(const std::string& path) const {
  std::ofstream out(path);
  PEERLAB_CHECK_MSG(out.good(), "cannot open snapshot CSV output path");
  out << csv();
}

std::string SnapshotExporter::json(std::string_view label) const {
  sync_tracer();
  std::string out = registry_.json(label);
  if (tracer_ != nullptr && tracer_->dropped() > 0) {
    // Splice a warnings array before the closing brace so ring
    // overflow is impossible to miss in bench artifacts.
    const std::size_t brace = out.rfind("\n}");
    PEERLAB_CHECK_MSG(brace != std::string::npos, "registry json missing closing brace");
    std::ostringstream warning;
    warning << ",\n  \"warnings\": [\n    \"sim::Tracer ring overflowed: "
            << tracer_->dropped() << " events dropped (of " << tracer_->recorded()
            << " recorded); raise the Tracer capacity to keep full traces\"\n  ]";
    out.insert(brace, warning.str());
  }
  return out;
}

void SnapshotExporter::write_json(const std::string& path, std::string_view label) const {
  std::ofstream out(path);
  PEERLAB_CHECK_MSG(out.good(), "cannot open metrics JSON output path");
  out << json(label);
}

}  // namespace peerlab::obs
