#pragma once

// SnapshotExporter: periodic time-series dumps of a MetricRegistry.
//
// A daemon event snapshots every instrument each `period` of virtual
// time (daemon, so exporting never keeps a simulation alive). Rows
// accumulate in memory as `time,metric,stat,value` and can be written
// as CSV at the end; the final JSON summary is the registry's own
// json() (bench_compare-compatible).

#include <string>
#include <string_view>
#include <vector>

#include "peerlab/common/units.hpp"
#include "peerlab/obs/metrics.hpp"
#include "peerlab/sim/simulator.hpp"

namespace peerlab::sim {
class Tracer;
}  // namespace peerlab::sim

namespace peerlab::obs {

class SnapshotExporter {
 public:
  struct Options {
    Seconds period = 10.0;  // virtual seconds between snapshots
  };

  /// Schedules the first snapshot `period` from now. The registry and
  /// simulator must outlive the exporter; the exporter must be
  /// destroyed (or the sim drained) before the registry dies.
  SnapshotExporter(sim::Simulator& sim, const MetricRegistry& registry);
  SnapshotExporter(sim::Simulator& sim, const MetricRegistry& registry, Options options);

  SnapshotExporter(const SnapshotExporter&) = delete;
  SnapshotExporter& operator=(const SnapshotExporter&) = delete;
  ~SnapshotExporter();

  /// Appends one snapshot of every instrument at the current virtual
  /// time (also called by the periodic daemon).
  void snapshot_now();

  /// Mirrors `tracer.dropped()` into the `trace.dropped` counter of
  /// `registry` (updated on every snapshot and at json()/csv() time),
  /// and makes json() flag nonzero drops in a "warnings" array —
  /// silent sim::Tracer ring overflow becomes visible in bench
  /// artifacts. The tracer must outlive the exporter.
  void track_tracer(const sim::Tracer& tracer, MetricRegistry& registry);

  struct Row {
    Seconds time;
    std::string metric;
    std::string stat;  // "value" | "count" | "mean" | "p50" | "p90" | "p99" | "min" | "max"
    double value;
  };
  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t snapshots_taken() const noexcept { return snapshots_; }

  /// Time-series CSV: header `time,metric,stat,value`, one row per
  /// instrument stat per snapshot. Metric names are RFC-4180 quoted.
  [[nodiscard]] std::string csv() const;
  void write_csv(const std::string& path) const;

  /// Final JSON summary: MetricRegistry::json, plus a "warnings"
  /// array when a tracked sim::Tracer overflowed its ring.
  [[nodiscard]] std::string json(std::string_view label = "") const;
  void write_json(const std::string& path, std::string_view label = "") const;

 private:
  void arm();
  /// Folds the tracked tracer's drop total into trace.dropped.
  void sync_tracer() const;

  sim::Simulator& sim_;
  const MetricRegistry& registry_;
  Options options_;
  sim::EventHandle timer_;
  std::vector<Row> rows_;
  std::size_t snapshots_ = 0;
  const sim::Tracer* tracer_ = nullptr;
  Counter* tracer_drops_ = nullptr;  // registered by track_tracer
  mutable std::uint64_t tracer_drops_seen_ = 0;
};

}  // namespace peerlab::obs
