#include "peerlab/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "peerlab/common/check.hpp"

namespace peerlab::obs {

namespace {

// Octave index of v relative to lo: floor(log2(v / lo)). Computed via
// frexp to stay exact at power-of-two boundaries where log2() rounding
// could misplace a sample by one octave.
int octave_of(double v, double lo) noexcept {
  int ev = 0;
  int el = 0;
  const double mv = std::frexp(v, &ev);
  const double ml = std::frexp(lo, &el);
  int oct = ev - el;
  if (mv < ml) --oct;  // same exponent but smaller mantissa → previous octave
  return oct;
}

}  // namespace

Histogram::Histogram() : Histogram(Options()) {}

Histogram::Histogram(Options options) : options_(options) {
  PEERLAB_CHECK_MSG(options_.lo > 0.0 && options_.hi > options_.lo,
                    "histogram bounds must satisfy 0 < lo < hi");
  PEERLAB_CHECK_MSG(options_.sub_buckets >= 1, "histogram needs >= 1 sub-bucket per octave");
  octaves_ = octave_of(std::nextafter(options_.hi, 0.0), options_.lo) + 1;
  if (octaves_ < 1) octaves_ = 1;
  // [underflow] [octaves * sub_buckets] [overflow]
  counts_.assign(2 + static_cast<std::size_t>(octaves_) *
                         static_cast<std::size_t>(options_.sub_buckets),
                 0);
}

std::size_t Histogram::bucket_index(double v) const noexcept {
  if (!(v >= options_.lo)) return 0;  // underflow; NaN also lands here
  if (v >= options_.hi) return counts_.size() - 1;
  const int oct = octave_of(v, options_.lo);
  const double base = std::ldexp(options_.lo, oct);
  int sub = static_cast<int>((v / base - 1.0) * options_.sub_buckets);
  sub = std::clamp(sub, 0, options_.sub_buckets - 1);
  std::size_t idx = 1 + static_cast<std::size_t>(oct) *
                            static_cast<std::size_t>(options_.sub_buckets) +
                    static_cast<std::size_t>(sub);
  if (idx >= counts_.size() - 1) idx = counts_.size() - 2;
  return idx;
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  if (i == 0) return 0.0;
  if (i >= counts_.size() - 1) return options_.hi;
  const std::size_t linear = i - 1;
  const std::size_t oct = linear / static_cast<std::size_t>(options_.sub_buckets);
  const std::size_t sub = linear % static_cast<std::size_t>(options_.sub_buckets);
  const double base = std::ldexp(options_.lo, static_cast<int>(oct));
  return base * (1.0 + static_cast<double>(sub) / options_.sub_buckets);
}

double Histogram::bucket_hi(std::size_t i) const noexcept {
  if (i == 0) return options_.lo;
  if (i >= counts_.size() - 1) return options_.hi;  // conceptually +inf; hi for display
  const std::size_t linear = i - 1;
  const std::size_t oct = linear / static_cast<std::size_t>(options_.sub_buckets);
  const std::size_t sub = linear % static_cast<std::size_t>(options_.sub_buckets);
  const double base = std::ldexp(options_.lo, static_cast<int>(oct));
  return base * (1.0 + static_cast<double>(sub + 1) / options_.sub_buckets);
}

void Histogram::record(double v) noexcept {
  ++counts_[bucket_index(v)];
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; q=0 → first sample, q=1 → last.
  const double rank = 1.0 + q * static_cast<double>(count_ - 1);
  double seen = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double in_bucket = static_cast<double>(counts_[i]);
    if (seen + in_bucket >= rank) {
      const double frac = (rank - seen - 1.0) / in_bucket;  // position inside bucket
      // Clamp interpolation to the exact observed extremes so
      // quantiles never stray outside [min, max].
      double lo = std::max(bucket_lo(i), min_);
      double hi = std::min(bucket_hi(i), max_);
      if (hi < lo) hi = lo;
      return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
    }
    seen += in_bucket;
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  PEERLAB_CHECK_MSG(other.options_.lo == options_.lo && other.options_.hi == options_.hi &&
                        other.options_.sub_buckets == options_.sub_buckets,
                    "histogram merge requires identical bucket geometry");
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

const char* to_string(InstrumentKind kind) noexcept {
  switch (kind) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "unknown";
}

MetricRegistry::Slot& MetricRegistry::slot_for(std::string_view name, std::string_view unit,
                                               InstrumentKind kind) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    PEERLAB_CHECK_MSG(it->second.kind == kind,
                      "metric re-registered as a different instrument kind");
    return it->second;
  }
  Slot slot;
  slot.name = std::string(name);
  slot.unit = std::string(unit);
  slot.kind = kind;
  auto [pos, inserted] = by_name_.emplace(slot.name, std::move(slot));
  order_.push_back(&pos->second);
  return pos->second;
}

Counter& MetricRegistry::counter(std::string_view name, std::string_view unit) {
  Slot& slot = slot_for(name, unit, InstrumentKind::kCounter);
  if (slot.index == kUnassigned) {
    slot.index = counters_.size();
    counters_.push_back(std::make_unique<Counter>());
  }
  return *counters_[slot.index];
}

Gauge& MetricRegistry::gauge(std::string_view name, std::string_view unit) {
  Slot& slot = slot_for(name, unit, InstrumentKind::kGauge);
  if (slot.index == kUnassigned) {
    slot.index = gauges_.size();
    gauges_.push_back(std::make_unique<Gauge>());
  }
  return *gauges_[slot.index];
}

Histogram& MetricRegistry::histogram(std::string_view name, std::string_view unit,
                                     Histogram::Options options) {
  Slot& slot = slot_for(name, unit, InstrumentKind::kHistogram);
  if (slot.index == kUnassigned) {
    slot.index = histograms_.size();
    histograms_.push_back(std::make_unique<Histogram>(options));
  }
  return *histograms_[slot.index];
}

const Counter* MetricRegistry::find_counter(std::string_view name) const noexcept {
  auto it = by_name_.find(name);
  if (it == by_name_.end() || it->second.kind != InstrumentKind::kCounter) return nullptr;
  return counters_[it->second.index].get();
}

const Gauge* MetricRegistry::find_gauge(std::string_view name) const noexcept {
  auto it = by_name_.find(name);
  if (it == by_name_.end() || it->second.kind != InstrumentKind::kGauge) return nullptr;
  return gauges_[it->second.index].get();
}

const Histogram* MetricRegistry::find_histogram(std::string_view name) const noexcept {
  auto it = by_name_.find(name);
  if (it == by_name_.end() || it->second.kind != InstrumentKind::kHistogram) return nullptr;
  return histograms_[it->second.index].get();
}

void MetricRegistry::merge(const MetricRegistry& other) {
  for (const Slot* slot : other.order_) {
    switch (slot->kind) {
      case InstrumentKind::kCounter:
        counter(slot->name, slot->unit).merge(*other.counters_[slot->index]);
        break;
      case InstrumentKind::kGauge:
        gauge(slot->name, slot->unit).merge(*other.gauges_[slot->index]);
        break;
      case InstrumentKind::kHistogram: {
        const Histogram& src = *other.histograms_[slot->index];
        histogram(slot->name, slot->unit, src.options()).merge(src);
        break;
      }
    }
  }
}

std::vector<MetricRegistry::Entry> MetricRegistry::entries() const {
  std::vector<Entry> out;
  out.reserve(order_.size());
  for (const Slot* slot : order_) {
    Entry e;
    e.name = slot->name;
    e.unit = slot->unit;
    e.kind = slot->kind;
    switch (slot->kind) {
      case InstrumentKind::kCounter: e.counter = counters_[slot->index].get(); break;
      case InstrumentKind::kGauge: e.gauge = gauges_[slot->index].get(); break;
      case InstrumentKind::kHistogram: e.histogram = histograms_[slot->index].get(); break;
    }
    out.push_back(std::move(e));
  }
  return out;
}

namespace {

void json_escape(std::ostream& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
}

void json_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "0";
    return;
  }
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  out << tmp.str();
}

}  // namespace

std::string MetricRegistry::describe() const {
  std::string out;
  for (const Slot* slot : order_) {
    out += slot->name;
    out += '\t';
    out += to_string(slot->kind);
    out += '\t';
    out += slot->unit;
    out += '\n';
  }
  return out;
}

std::string MetricRegistry::json(std::string_view label) const {
  std::ostringstream out;
  // Versioned export: consumers (scripts/bench_compare.py) key on the
  // schema string instead of guessing the layout from present fields.
  out << "{\n  \"schema\": \"peerlab.metrics/1\",\n  \"label\": \"";
  json_escape(out, label);
  out << "\",\n  \"metrics\": {";
  bool first = true;
  auto key = [&](const std::string& name, const char* suffix) {
    out << (first ? "\n" : ",\n") << "    \"";
    json_escape(out, name);
    out << suffix << "\": ";
    first = false;
  };
  for (const Slot* slot : order_) {
    switch (slot->kind) {
      case InstrumentKind::kCounter:
        key(slot->name, "");
        out << counters_[slot->index]->value();
        break;
      case InstrumentKind::kGauge:
        key(slot->name, "");
        json_number(out, gauges_[slot->index]->value());
        break;
      case InstrumentKind::kHistogram: {
        const Histogram& h = *histograms_[slot->index];
        key(slot->name, ".count");
        out << h.count();
        key(slot->name, ".mean");
        json_number(out, h.mean());
        key(slot->name, ".p50");
        json_number(out, h.quantile(0.50));
        key(slot->name, ".p90");
        json_number(out, h.quantile(0.90));
        key(slot->name, ".p99");
        json_number(out, h.quantile(0.99));
        key(slot->name, ".min");
        json_number(out, h.min());
        key(slot->name, ".max");
        json_number(out, h.max());
        break;
      }
    }
  }
  out << "\n  },\n  \"instruments\": {";
  first = true;
  for (const Slot* slot : order_) {
    out << (first ? "\n" : ",\n") << "    \"";
    json_escape(out, slot->name);
    out << "\": {\"kind\": \"" << to_string(slot->kind) << "\", \"unit\": \"";
    json_escape(out, slot->unit);
    out << "\"}";
    first = false;
  }
  out << "\n  }\n}\n";
  return out.str();
}

void MetricRegistry::write_json(const std::string& path, std::string_view label) const {
  std::ofstream out(path);
  PEERLAB_CHECK_MSG(out.good(), "cannot open metrics JSON output path");
  out << json(label);
}

}  // namespace peerlab::obs
