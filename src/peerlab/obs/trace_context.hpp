#pragma once

// TraceContext: the compact causal-tracing header carried by transport
// datagrams and protocol state (DESIGN.md §16). A context names the
// trace (one petition / distribution chain), the span under which new
// work nests, and how many node hops the context has crossed. The
// default-constructed context is inactive (trace id 0): untraced runs
// carry all-zero contexts whose copies cost a few stores and change no
// behaviour, which is what keeps the tracing layer zero-perturbation
// when no obs::trace::TraceRecorder is attached.
//
// Contexts are minted by obs::trace::TraceRecorder (deterministic
// sequential ids, so same-seed runs mint identical chains); this header
// stays dependency-free so transport/message.hpp can embed the struct.

#include <cstdint>

namespace peerlab::obs::trace {

struct TraceContext {
  /// Trace id; 0 means "not traced". All events of one causal chain
  /// (petition -> ranking -> transfer -> stats feedback) share it.
  std::uint64_t id = 0;
  /// Span the carrying operation runs under (0 = trace root).
  std::uint32_t span = 0;
  /// Node hops this context has crossed (incremented per delivery).
  std::uint32_t hops = 0;

  [[nodiscard]] constexpr bool active() const noexcept { return id != 0; }

  /// The context as seen after one more network hop.
  [[nodiscard]] constexpr TraceContext hop() const noexcept { return {id, span, hops + 1}; }

  friend constexpr bool operator==(const TraceContext& a, const TraceContext& b) noexcept {
    return a.id == b.id && a.span == b.span && a.hops == b.hops;
  }
  friend constexpr bool operator!=(const TraceContext& a, const TraceContext& b) noexcept {
    return !(a == b);
  }
};

}  // namespace peerlab::obs::trace
