#pragma once

// Scoped timers feeding obs::Histogram.
//
// ScopedSpan measures elapsed *virtual* time — the quantity the paper
// reports (petition latency, transfer time). WallSpan measures
// wall-clock time with steady_clock for profiling engine hot paths
// (FlowScheduler re-levels run within a single sim instant, so their
// virtual elapsed is always zero). Both are zero-cost when detached:
// constructed with a null histogram they read no clock and record
// nothing, mirroring the `if (tracer_)` idiom.
//
// The event loop itself cannot be instrumented from inside sim (obs
// sits above sim in the layer graph), so run_profiled() drives a
// simulator externally in wall-timed batches.

#include <chrono>

#include "peerlab/common/units.hpp"
#include "peerlab/obs/metrics.hpp"
#include "peerlab/sim/simulator.hpp"

namespace peerlab::obs {

/// RAII timer over virtual time: records now() − start into the
/// histogram at destruction. Null histogram → no-op.
class ScopedSpan {
 public:
  ScopedSpan(Histogram* hist, const sim::Simulator& sim) noexcept
      : hist_(hist), sim_(&sim), begin_(hist != nullptr ? sim.now() : 0.0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (hist_ != nullptr) hist_->record(sim_->now() - begin_);
  }

  /// Records now and disarms, for spans that end before scope exit.
  void finish() noexcept {
    if (hist_ != nullptr) hist_->record(sim_->now() - begin_);
    hist_ = nullptr;
  }

  /// Disarms without recording (e.g. the measured operation failed and
  /// its latency should not pollute the success distribution).
  void cancel() noexcept { hist_ = nullptr; }

 private:
  Histogram* hist_;
  const sim::Simulator* sim_;
  Seconds begin_;
};

/// RAII timer over wall-clock time (seconds), for profiling engine
/// internals. Null histogram → the clock is never read.
class WallSpan {
 public:
  explicit WallSpan(Histogram* hist) noexcept : hist_(hist) {
    if (hist_ != nullptr) begin_ = std::chrono::steady_clock::now();
  }

  WallSpan(const WallSpan&) = delete;
  WallSpan& operator=(const WallSpan&) = delete;

  ~WallSpan() {
    if (hist_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - begin_;
      hist_->record(std::chrono::duration<double>(elapsed).count());
    }
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point begin_;
};

/// Runs the simulator to completion, recording wall-clock seconds per
/// `batch` executed events into `hist` (null → plain sim.run()).
/// Returns total events executed. This is the EventQueue hot-path
/// profiler: batching keeps the clock reads off the per-event path.
inline std::uint64_t run_profiled(sim::Simulator& sim, Histogram* hist,
                                  std::uint64_t batch = 1024) {
  if (hist == nullptr) return sim.run();
  std::uint64_t total = 0;
  // step() fires daemon events too, so the loop must use run()'s exit
  // condition (non-daemon work remains), not queue emptiness —
  // heartbeat daemons reschedule themselves forever.
  while (sim.has_pending_work()) {
    std::uint64_t executed = 0;
    {
      WallSpan span(hist);
      executed = sim.step(batch);
    }
    total += executed;
    if (executed == 0) break;
  }
  return total;
}

}  // namespace peerlab::obs
