#include "peerlab/obs/watchdog.hpp"

#include "peerlab/obs/metrics.hpp"

namespace peerlab::obs {

const char* to_string(Watchdog::ViolationKind kind) noexcept {
  switch (kind) {
    case Watchdog::ViolationKind::kUnterminatedPetition: return "unterminated-petition";
    case Watchdog::ViolationKind::kUnterminatedSelection: return "unterminated-selection";
    case Watchdog::ViolationKind::kConfirmWithoutPetition: return "confirm-without-petition";
    case Watchdog::ViolationKind::kDoubleReissue: return "double-reissue";
    case Watchdog::ViolationKind::kIndexMismatch: return "index-mismatch";
  }
  return "unknown";
}

Watchdog::Watchdog(trace::TraceRecorder& recorder) : recorder_(recorder) {
  recorder_.set_subscriber(this);
}

Watchdog::~Watchdog() { recorder_.set_subscriber(nullptr); }

std::uint64_t Watchdog::count(ViolationKind kind) const noexcept {
  std::uint64_t n = 0;
  for (const Violation& v : violations_) {
    if (v.kind == kind) ++n;
  }
  return n;
}

void Watchdog::attach_metrics(MetricRegistry& registry) {
  checks_counter_ = &registry.counter("watchdog.checks", "events");
  violations_counter_ = &registry.counter("watchdog.violations", "violations");
  traces_counter_ = &registry.counter("watchdog.traces", "traces");
}

void Watchdog::raise(ViolationKind kind, const trace::TraceRecord& at) {
  violations_.push_back({kind, at.time, at.trace, at.a, at.b});
  if (violations_counter_ != nullptr) violations_counter_->add();
  if (raising_) return;
  raising_ = true;
  // Put the verdict on the chain itself (a = violation kind) and give
  // the flight recorder its shot; both are no-ops beyond counters when
  // nothing downstream is armed.
  recorder_.emit(at.node, trace::TraceKind::kViolation, {at.trace, at.span, 0},
                 static_cast<std::uint64_t>(kind), at.a);
  std::vector<std::uint64_t> implicated;
  if (at.trace != 0) implicated.push_back(at.trace);
  recorder_.postmortem("watchdog", to_string(kind), implicated);
  raising_ = false;
}

void Watchdog::on_trace(const trace::TraceRecord& record) {
  using trace::TraceKind;
  if (record.kind == TraceKind::kViolation) return;  // our own echo
  if (record.trace == 0) return;                     // ambient events carry no chain state
  ++checks_;
  if (checks_counter_ != nullptr) checks_counter_->add();

  auto [it, fresh] = traces_.try_emplace(record.trace);
  if (fresh && traces_counter_ != nullptr) traces_counter_->add();
  TraceState& state = it->second;

  switch (record.kind) {
    case TraceKind::kPetitionSend:
      state.petitions.try_emplace(record.a);
      break;
    case TraceKind::kTransferDone:
    case TraceKind::kTransferFail:
    case TraceKind::kTransferCancel:
      state.petitions[record.a].terminal = true;
      break;
    case TraceKind::kConfirmRecv:
      if (state.petitions.find(record.a) == state.petitions.end()) {
        raise(ViolationKind::kConfirmWithoutPetition, record);
      }
      break;
    case TraceKind::kSelectRequest:
      state.selections.try_emplace(record.span);
      break;
    case TraceKind::kSelectDeliver:
    case TraceKind::kSelectFail:
      state.selections[record.span].open = false;
      break;
    case TraceKind::kSelectReissue: {
      SelectionState& sel = state.selections[record.span];
      ++sel.reissues;
      // A re-issue is legitimate exactly once, and only after the
      // original request failed (ReplicaSet failover re-homing).
      if (sel.open || sel.reissues > 1) raise(ViolationKind::kDoubleReissue, record);
      break;
    }
    case TraceKind::kIndexAudit:
      if (record.b == 0) raise(ViolationKind::kIndexMismatch, record);
      break;
    default:
      break;
  }
}

void Watchdog::finalize() {
  const Seconds now = recorder_.now();
  for (const auto& [trace, state] : traces_) {
    for (const auto& [correlation, petition] : state.petitions) {
      ++checks_;
      if (checks_counter_ != nullptr) checks_counter_->add();
      if (!petition.terminal) {
        trace::TraceRecord record;
        record.time = now;
        record.trace = trace;
        record.a = correlation;
        raise(ViolationKind::kUnterminatedPetition, record);
      }
    }
    for (const auto& [span, selection] : state.selections) {
      ++checks_;
      if (checks_counter_ != nullptr) checks_counter_->add();
      if (selection.open) {
        trace::TraceRecord record;
        record.time = now;
        record.trace = trace;
        record.span = span;
        record.a = span;
        raise(ViolationKind::kUnterminatedSelection, record);
      }
    }
  }
}

}  // namespace peerlab::obs
