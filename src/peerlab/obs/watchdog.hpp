#pragma once

// Invariant watchdog (DESIGN.md §16): an online consumer of the causal
// trace stream that checks cross-subsystem liveness/consistency
// invariants while the run executes, raising structured violations
// instead of letting corruption age into wrong figures:
//
//  * terminal-state liveness — every petition (kPetitionSend) and every
//    selection request reaches a terminal event before finalize();
//  * confirm-requires-petition — a kConfirmRecv for a (trace,
//    correlation) pair that never emitted kPetitionSend is forged,
//    misrouted, or duplicated across a restart;
//  * re-issue exactly-once — a failed selection span is re-issued to
//    the new primary at most once (ReplicaSet failover re-homing);
//  * index-vs-scan agreement — sampled kIndexAudit events from the
//    broker must report a match between the CandidateIndex fast path
//    and the fallback dense scan.
//
// Violations bump watchdog.violations, are re-emitted onto the trace
// stream as kViolation events, and trigger the recorder's flight
// recorder (postmortem JSON) when one is armed.

#include <cstdint>
#include <map>
#include <vector>

#include "peerlab/obs/trace.hpp"

namespace peerlab::obs {

class Watchdog final : public trace::TraceRecorder::Subscriber {
 public:
  enum class ViolationKind : std::uint8_t {
    kUnterminatedPetition,   // petition never reached a terminal event
    kUnterminatedSelection,  // selection request still open at finalize
    kConfirmWithoutPetition, // confirm received for an unknown petition
    kDoubleReissue,          // failed selection span re-issued twice
    kIndexMismatch,          // index fast path disagreed with the scan
  };

  struct Violation {
    ViolationKind kind;
    Seconds time = 0.0;
    std::uint64_t trace = 0;
    std::uint64_t a = 0;  // kind-specific: correlation / span / audit serial
    std::uint64_t b = 0;
  };

  /// Subscribes to `recorder`; unsubscribes on destruction.
  explicit Watchdog(trace::TraceRecorder& recorder);
  ~Watchdog() override;

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void on_trace(const trace::TraceRecord& record) override;

  /// End-of-run liveness sweep: every still-open petition or selection
  /// becomes a violation. Call once the run has drained.
  void finalize();

  [[nodiscard]] const std::vector<Violation>& violations() const noexcept { return violations_; }
  [[nodiscard]] std::uint64_t checks() const noexcept { return checks_; }
  [[nodiscard]] std::uint64_t count(ViolationKind kind) const noexcept;

  /// Registers watchdog.* instruments.
  void attach_metrics(MetricRegistry& registry);

 private:
  struct PetitionState {
    bool terminal = false;
  };
  struct SelectionState {
    bool open = true;
    std::uint32_t reissues = 0;
  };
  struct TraceState {
    std::map<std::uint64_t, PetitionState> petitions;   // by correlation
    std::map<std::uint32_t, SelectionState> selections; // by request span
  };

  void raise(ViolationKind kind, const trace::TraceRecord& at);

  trace::TraceRecorder& recorder_;
  std::map<std::uint64_t, TraceState> traces_;
  std::vector<Violation> violations_;
  std::uint64_t checks_ = 0;
  bool raising_ = false;  // kViolation re-emission must not recurse
  Counter* checks_counter_ = nullptr;
  Counter* violations_counter_ = nullptr;
  Counter* traces_counter_ = nullptr;
};

[[nodiscard]] const char* to_string(Watchdog::ViolationKind kind) noexcept;

}  // namespace peerlab::obs
