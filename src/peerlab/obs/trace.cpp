#include "peerlab/obs/trace.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <unordered_set>

#include "peerlab/common/check.hpp"
#include "peerlab/obs/metrics.hpp"
#include "peerlab/sim/simulator.hpp"

namespace peerlab::obs::trace {

const char* to_string(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kDistStart: return "dist-start";
    case TraceKind::kDistDone: return "dist-done";
    case TraceKind::kShareLaunch: return "share-launch";
    case TraceKind::kShareFailover: return "share-failover";
    case TraceKind::kShareGaveUp: return "share-gave-up";
    case TraceKind::kSelectRequest: return "select-request";
    case TraceKind::kSelectServe: return "select-serve";
    case TraceKind::kSelectRank: return "select-rank";
    case TraceKind::kIndexPull: return "index-pull";
    case TraceKind::kIndexAudit: return "index-audit";
    case TraceKind::kReputationExclude: return "reputation-exclude";
    case TraceKind::kEconRank: return "econ-rank";
    case TraceKind::kSelectDeliver: return "select-deliver";
    case TraceKind::kSelectFail: return "select-fail";
    case TraceKind::kSelectReissue: return "select-reissue";
    case TraceKind::kPetitionSend: return "petition-send";
    case TraceKind::kPetitionRecv: return "petition-recv";
    case TraceKind::kPetitionRefuse: return "petition-refuse";
    case TraceKind::kPetitionAck: return "petition-ack";
    case TraceKind::kPartSend: return "part-send";
    case TraceKind::kPartLost: return "part-lost";
    case TraceKind::kPartDelivered: return "part-delivered";
    case TraceKind::kConfirmSend: return "confirm-send";
    case TraceKind::kConfirmWithheld: return "confirm-withheld";
    case TraceKind::kConfirmDelayed: return "confirm-delayed";
    case TraceKind::kConfirmRecv: return "confirm-recv";
    case TraceKind::kConfirmQuery: return "confirm-query";
    case TraceKind::kTransferDone: return "transfer-done";
    case TraceKind::kTransferFail: return "transfer-fail";
    case TraceKind::kTransferCancel: return "transfer-cancel";
    case TraceKind::kStatsReport: return "stats-report";
    case TraceKind::kStatsApply: return "stats-apply";
    case TraceKind::kMsgSend: return "msg-send";
    case TraceKind::kMsgDeliver: return "msg-deliver";
    case TraceKind::kFlowStart: return "flow-start";
    case TraceKind::kFlowFinish: return "flow-finish";
    case TraceKind::kFlowAbort: return "flow-abort";
    case TraceKind::kRelevel: return "relevel";
    case TraceKind::kCrash: return "crash";
    case TraceKind::kRestart: return "restart";
    case TraceKind::kPartitionCut: return "partition-cut";
    case TraceKind::kPartitionHeal: return "partition-heal";
    case TraceKind::kBrownout: return "brownout";
    case TraceKind::kRehome: return "rehome";
    case TraceKind::kFailover: return "failover";
    case TraceKind::kQuarantine: return "quarantine";
    case TraceKind::kViolation: return "violation";
  }
  return "unknown";
}

TransferFailure transfer_failure_code(const std::string& failure) noexcept {
  if (failure.empty()) return TransferFailure::kNone;
  if (failure == "petition unanswered") return TransferFailure::kPetitionUnanswered;
  if (failure == "part retransmission limit") return TransferFailure::kPartRetransmission;
  if (failure == "confirmation lost") return TransferFailure::kConfirmationLost;
  if (failure == "cancelled by sender") return TransferFailure::kCancelled;
  return TransferFailure::kOther;
}

namespace {

void append_json_escaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[20];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(res.ptr - buf));
}

// Fixed 9-decimal sim time (sim times are non-negative and well below
// the 2^53-ns double-exactness horizon); fixed field order and fixed
// time width keep same-seed dumps byte-identical. ~10x cheaper than
// snprintf's %.9f, which dominated dump writing at tens of thousands
// of records.
void append_time(std::string& out, Seconds t) {
  const std::uint64_t ns = static_cast<std::uint64_t>(t * 1e9 + 0.5);
  append_u64(out, ns / 1000000000ull);
  out += '.';
  char frac[9];
  std::uint64_t rem = ns % 1000000000ull;
  for (int i = 8; i >= 0; --i) {
    frac[i] = static_cast<char>('0' + rem % 10);
    rem /= 10;
  }
  out.append(frac, sizeof(frac));
}

void append_record_json(std::string& out, const TraceRecord& r) {
  out += "{\"seq\":";
  append_u64(out, r.seq);
  out += ",\"t\":";
  append_time(out, r.time);
  out += ",\"node\":";
  append_u64(out, r.node.value());
  out += ",\"kind\":\"";
  out += to_string(r.kind);
  out += "\",\"trace\":";
  append_u64(out, r.trace);
  out += ",\"span\":";
  append_u64(out, r.span);
  out += ",\"parent\":";
  append_u64(out, r.parent);
  out += ",\"a\":";
  append_u64(out, r.a);
  out += ",\"b\":";
  append_u64(out, r.b);
  out += '}';
}

void check_observer_trampoline(void* state, const char* what) {
  static_cast<TraceRecorder*>(state)->postmortem("assertion", what);
}

}  // namespace

TraceRecorder::TraceRecorder(sim::Simulator& sim) : TraceRecorder(sim, Options()) {}

TraceRecorder::TraceRecorder(sim::Simulator& sim, Options options)
    : sim_(sim), options_(options) {}

TraceRecorder::~TraceRecorder() { clear_check_observer(this); }

Seconds TraceRecorder::now() const { return sim_.now(); }

TraceContext TraceRecorder::root() noexcept {
  if (trace_counter_ != nullptr) trace_counter_->add();
  return {mint(), new_span(), 0};
}

TraceContext TraceRecorder::child_of(const TraceContext& parent) noexcept {
  return {parent.id, new_span(), parent.hops};
}

TraceRecorder::Ring& TraceRecorder::ring_for(NodeId node) {
  const std::size_t index = static_cast<std::size_t>(node.value());
  if (index >= rings_.size()) rings_.resize(index + 1);
  if (rings_[index] == nullptr) {
    rings_[index] = std::make_unique<Ring>();
    rings_[index]->slots.resize(std::min<std::size_t>(64, options_.ring_capacity));
  }
  return *rings_[index];
}

void TraceRecorder::store(const TraceRecord& record) {
  Ring& ring = ring_for(record.node);
  if (ring.size == ring.slots.size() && ring.size < options_.ring_capacity) {
    ring.slots.resize(std::min(ring.size * 2, options_.ring_capacity));
  }
  if (ring.size < ring.slots.size()) {
    ring.slots[ring.size++] = record;
  } else {
    ring.slots[ring.head] = record;
    ring.head = (ring.head + 1) % ring.slots.size();
    ++dropped_;
    if (drop_counter_ != nullptr) drop_counter_->add();
  }
  ++recorded_;
  if (events_counter_ != nullptr) events_counter_->add();
  if (subscriber_ != nullptr) subscriber_->on_trace(record);
}

void TraceRecorder::emit(NodeId node, TraceKind kind, const TraceContext& ctx, std::uint64_t a,
                         std::uint64_t b, std::uint32_t parent) {
  TraceRecord record;
  record.time = sim_.now();
  record.seq = ++seq_;
  record.trace = ctx.id;
  record.a = a;
  record.b = b;
  record.node = node;
  record.span = ctx.span;
  record.parent = parent;
  record.kind = kind;
  store(record);
}

void TraceRecorder::emit_ambient(NodeId node, TraceKind kind, std::uint64_t a, std::uint64_t b) {
  emit(node, kind, TraceContext{}, a, b, 0);
}

void TraceRecorder::attach_metrics(MetricRegistry& registry) {
  events_counter_ = &registry.counter("trace.events", "events");
  drop_counter_ = &registry.counter("trace.ring_dropped", "events");
  trace_counter_ = &registry.counter("trace.traces", "traces");
}

std::vector<TraceRecord> TraceRecorder::events() const {
  std::vector<TraceRecord> out;
  out.reserve(recorded_ - dropped_);
  for (const auto& ring : rings_) {
    if (ring == nullptr) continue;
    for (std::size_t i = 0; i < ring->size; ++i) {
      out.push_back(ring->slots[(ring->head + i) % ring->size]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& x, const TraceRecord& y) { return x.seq < y.seq; });
  return out;
}

std::vector<TraceRecord> TraceRecorder::chain(std::uint64_t trace) const {
  std::vector<TraceRecord> all = events();
  std::vector<TraceRecord> out;
  for (const TraceRecord& r : all) {
    if (r.trace == trace) out.push_back(r);
  }
  return out;
}

std::string TraceRecorder::jsonl() const {
  std::string out;
  out.reserve((recorded_ - dropped_ + 1) * 140);
  char header[160];
  std::snprintf(header, sizeof(header),
                "{\"schema\":\"peerlab.trace/1\",\"recorded\":%llu,\"dropped\":%llu,"
                "\"traces\":%llu}\n",
                static_cast<unsigned long long>(recorded_),
                static_cast<unsigned long long>(dropped_),
                static_cast<unsigned long long>(last_trace_));
  out += header;
  for (const TraceRecord& r : events()) {
    append_record_json(out, r);
    out += '\n';
  }
  return out;
}

void TraceRecorder::write_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  PEERLAB_CHECK_MSG(out.good(), "cannot open trace dump path " + path);
  out << jsonl();
}

void TraceRecorder::arm_postmortem(std::string path) {
  postmortem_path_ = std::move(path);
  postmortem_armed_ = true;
  postmortem_written_ = false;
  set_check_observer(&check_observer_trampoline, this);
}

void TraceRecorder::postmortem(const char* reason, const char* detail,
                               const std::vector<std::uint64_t>& traces) {
  ++postmortems_;
  // The earliest failure is the interesting one; later triggers during
  // the same run (cascading faults, unwinding destructors) only count.
  if (!postmortem_armed_ || postmortem_written_) return;
  postmortem_written_ = true;

  std::vector<TraceRecord> all = events();
  std::vector<TraceRecord> picked;
  if (traces.empty()) {
    picked = std::move(all);
  } else {
    // Implicated chains plus ambient events (faults, elections) — the
    // environment a chain failed in is part of the story.
    const std::unordered_set<std::uint64_t> wanted(traces.begin(), traces.end());
    for (const TraceRecord& r : all) {
      if (r.trace == 0 || wanted.count(r.trace) != 0) picked.push_back(r);
    }
  }
  if (picked.size() > options_.postmortem_events) {
    picked.erase(picked.begin(),
                 picked.end() - static_cast<std::ptrdiff_t>(options_.postmortem_events));
  }

  std::string out = "{\n  \"schema\": \"peerlab.postmortem/1\",\n  \"reason\": \"";
  append_json_escaped(out, reason);
  out += "\",\n  \"detail\": \"";
  append_json_escaped(out, detail);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\",\n  \"time\": %.9f,\n  \"traces\": [", sim_.now());
  out += buf;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (i != 0) out += ", ";
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(traces[i]));
    out += buf;
  }
  out += "],\n  \"events\": [\n";
  for (std::size_t i = 0; i < picked.size(); ++i) {
    out += "    ";
    append_record_json(out, picked[i]);
    out += i + 1 < picked.size() ? ",\n" : "\n";
  }
  out += "  ]";
  if (snapshot_ != nullptr) {
    out += ",\n  \"metrics\": ";
    out += snapshot_->json("postmortem");
  }
  out += "\n}\n";

  std::ofstream file(postmortem_path_, std::ios::binary);
  if (file.good()) file << out;
}

}  // namespace peerlab::obs::trace
