#include "peerlab/obs/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace peerlab::obs {

WallProfiler::Site& WallProfiler::site(std::string_view name) {
  auto it = sites_.find(name);
  if (it != sites_.end()) return it->second;
  Histogram::Options opts;
  opts.lo = 1e-9;  // spans range from sub-microsecond re-levels to whole runs
  opts.hi = 1e3;
  Site s;
  s.wall = &registry_->histogram("profile." + std::string(name) + ".wall_s", "s", opts);
  s.self = &registry_->gauge("profile." + std::string(name) + ".self_s", "s");
  return sites_.emplace(std::string(name), s).first->second;
}

std::string profile_table(const MetricRegistry& registry) {
  struct Row {
    std::string site;
    std::uint64_t count = 0;
    double total_s = 0.0;
    double self_s = 0.0;
    double mean_s = 0.0;
    double p99_s = 0.0;
  };
  constexpr std::string_view kPrefix = "profile.";
  constexpr std::string_view kWall = ".wall_s";
  std::vector<Row> rows;
  for (const MetricRegistry::Entry& e : registry.entries()) {
    if (e.kind != InstrumentKind::kHistogram) continue;
    if (e.name.rfind(kPrefix, 0) != 0) continue;
    // Accept `profile.<site>.wall_s` and the merged per-variant form
    // `profile.<site>.wall_s<suffix>` that experiments::merge_metrics
    // produces (e.g. `...wall_s.economic`); the suffix stays part of
    // the displayed site so per-variant rows remain distinct.
    const std::size_t wall_pos = e.name.find(kWall, kPrefix.size());
    if (wall_pos == std::string::npos) continue;
    const std::string site = e.name.substr(kPrefix.size(), wall_pos - kPrefix.size());
    const std::string suffix = e.name.substr(wall_pos + kWall.size());
    if (site.empty() || (!suffix.empty() && suffix.front() != '.')) continue;
    Row row;
    row.site = site + suffix;
    row.count = e.histogram->count();
    row.total_s = e.histogram->sum();
    row.mean_s = e.histogram->mean();
    row.p99_s = e.histogram->quantile(0.99);
    const Gauge* self =
        registry.find_gauge(std::string(kPrefix) + site + ".self_s" + suffix);
    row.self_s = self != nullptr ? self->value() : row.total_s;
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return "";
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.self_s > b.self_s; });

  std::size_t width = 4;  // "site"
  for (const Row& r : rows) width = std::max(width, r.site.size());
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-*s %12s %12s %12s %12s %12s\n",
                static_cast<int>(width), "site", "count", "total_s", "self_s",
                "mean_us", "p99_us");
  out += line;
  for (const Row& r : rows) {
    std::snprintf(line, sizeof(line), "%-*s %12llu %12.6f %12.6f %12.3f %12.3f\n",
                  static_cast<int>(width), r.site.c_str(),
                  static_cast<unsigned long long>(r.count), r.total_s, r.self_s,
                  r.mean_s * 1e6, r.p99_s * 1e6);
    out += line;
  }
  return out;
}

}  // namespace peerlab::obs
