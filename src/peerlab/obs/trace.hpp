#pragma once

// Causal petition tracing (DESIGN.md §16). A TraceRecorder collects
// structured, sim-time-stamped TraceRecords into per-node rings so a
// whole causal chain — petition minted by FileService, broker ranking,
// candidate-index pulls, confirms/refusals, flow lifecycle, failover
// re-homing, stats feedback — can be reconstructed for one TraceId.
//
// The design extends sim::Tracer's bounded-ring discipline to
// structured, join-able records:
//  * per-node rings of POD TraceRecords, preallocated on first use per
//    node and then alloc-free: emit() is a couple of stores plus the
//    global sequence increment, never a heap touch;
//  * one global monotonic sequence number totally orders the merged
//    stream, which (with the deterministic sequential trace/span ids)
//    makes same-seed trace dumps byte-identical;
//  * detached recorders cost one pointer test at every site, matching
//    the MetricRegistry attachment rule, so untraced figure runs stay
//    byte-identical to pristine builds.
//
// The recorder doubles as a flight recorder: arm_postmortem() names a
// JSON path, and on crash, quarantine, watchdog violation, or any
// fired PEERLAB_CHECK the last N retained events (filtered to the
// implicated trace ids when known) are dumped beside the metrics
// snapshot. scripts/trace_analyze.py consumes both the JSONL dump and
// the postmortem file.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "peerlab/common/ids.hpp"
#include "peerlab/common/units.hpp"
#include "peerlab/obs/trace_context.hpp"

namespace peerlab::sim {
class Simulator;
}  // namespace peerlab::sim

namespace peerlab::obs {
class Counter;
class MetricRegistry;
}  // namespace peerlab::obs

namespace peerlab::obs::trace {

/// Stage markers on the causal chain. Stable names (to_string) are the
/// dump/analyzer contract; renames are schema changes.
enum class TraceKind : std::uint8_t {
  // Distribution lifecycle (FileService).
  kDistStart,
  kDistDone,
  kShareLaunch,
  kShareFailover,
  kShareGaveUp,
  // Selection path (client <-> broker).
  kSelectRequest,
  kSelectServe,
  kSelectRank,
  kIndexPull,
  kIndexAudit,
  kReputationExclude,
  /// Econ engine admission verdict: value = feasible candidates, aux =
  /// candidates appraised (0 when the petition was exhausted — every
  /// candidate blew its deadline or budget).
  kEconRank,
  kSelectDeliver,
  kSelectFail,
  kSelectReissue,
  // Transfer protocol (FileTransferPeer).
  kPetitionSend,
  kPetitionRecv,
  kPetitionRefuse,
  kPetitionAck,
  kPartSend,
  kPartLost,
  kPartDelivered,
  kConfirmSend,
  kConfirmWithheld,
  kConfirmDelayed,
  kConfirmRecv,
  kConfirmQuery,
  kTransferDone,
  kTransferFail,
  kTransferCancel,
  // Stats feedback (client -> broker reputation/registry).
  kStatsReport,
  kStatsApply,
  // Transport datagrams carrying an active context.
  kMsgSend,
  kMsgDeliver,
  // Flow lifecycle and scheduler re-levels (ambient: a = flow id).
  kFlowStart,
  kFlowFinish,
  kFlowAbort,
  kRelevel,
  // Faults and membership (ambient).
  kCrash,
  kRestart,
  kPartitionCut,
  kPartitionHeal,
  kBrownout,
  kRehome,
  kFailover,
  kQuarantine,
  // Watchdog verdicts.
  kViolation,
};

[[nodiscard]] const char* to_string(TraceKind kind) noexcept;

/// Failure codes carried in TraceRecord::b by terminal transfer events,
/// mapping FileTransferPeer's failure strings to stable numbers.
enum class TransferFailure : std::uint8_t {
  kNone = 0,
  kPetitionUnanswered = 1,
  kPartRetransmission = 2,
  kConfirmationLost = 3,
  kCancelled = 4,
  kOther = 5,
};

[[nodiscard]] TransferFailure transfer_failure_code(const std::string& failure) noexcept;

/// One event. POD; rings store these by value.
struct TraceRecord {
  Seconds time = 0.0;
  std::uint64_t seq = 0;    // global emission order (deterministic)
  std::uint64_t trace = 0;  // 0 = ambient event
  std::uint64_t a = 0;      // kind-specific (correlation, peer, flow...)
  std::uint64_t b = 0;      // kind-specific (part index, size, code...)
  NodeId node;
  std::uint32_t span = 0;
  std::uint32_t parent = 0;  // parent span (0 = root / unknown)
  TraceKind kind = TraceKind::kDistStart;
};

class TraceRecorder {
 public:
  struct Options {
    /// Per-node ring capacity (records). A node's ring starts small
    /// and doubles up to this cap as it fills (amortized O(1) per
    /// emit, so a mostly-idle node never pays for the full ring);
    /// at capacity, emits overwrite oldest-first and count as drops.
    std::size_t ring_capacity = 8192;
    /// Events (merged, newest-first window) included in a postmortem.
    std::size_t postmortem_events = 256;
  };

  explicit TraceRecorder(sim::Simulator& sim);
  TraceRecorder(sim::Simulator& sim, Options options);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // --- id minting (deterministic: n-th mint is always n) ------------
  [[nodiscard]] std::uint64_t mint() noexcept { return ++last_trace_; }
  [[nodiscard]] std::uint32_t new_span() noexcept { return ++last_span_; }
  /// Fresh root context: new trace, new root span, zero hops.
  [[nodiscard]] TraceContext root() noexcept;
  /// Child context: same trace, fresh span, same hop count.
  [[nodiscard]] TraceContext child_of(const TraceContext& parent) noexcept;

  // --- emission -----------------------------------------------------
  /// Records an event on `ctx`'s chain. `parent` is the parent span id
  /// when the caller just opened a child span (0 otherwise).
  void emit(NodeId node, TraceKind kind, const TraceContext& ctx, std::uint64_t a = 0,
            std::uint64_t b = 0, std::uint32_t parent = 0);
  /// Records an event outside any chain (faults, re-levels, elections).
  void emit_ambient(NodeId node, TraceKind kind, std::uint64_t a = 0, std::uint64_t b = 0);

  /// Online consumer (the invariant watchdog). Called synchronously
  /// after each record is stored; at most one subscriber.
  class Subscriber {
   public:
    virtual ~Subscriber() = default;
    virtual void on_trace(const TraceRecord& record) = 0;
  };
  void set_subscriber(Subscriber* subscriber) noexcept { subscriber_ = subscriber; }

  /// Current sim time (convenience for subscribers).
  [[nodiscard]] Seconds now() const;

  // --- accounting ---------------------------------------------------
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t traces_minted() const noexcept { return last_trace_; }

  /// Registers trace.* instruments; emission then also bumps them.
  void attach_metrics(MetricRegistry& registry);

  // --- inspection / dumps -------------------------------------------
  /// All retained records, merged across node rings in emission order.
  [[nodiscard]] std::vector<TraceRecord> events() const;
  /// Retained records of one trace, in emission order.
  [[nodiscard]] std::vector<TraceRecord> chain(std::uint64_t trace) const;

  /// Byte-stable JSONL dump: a schema header line, then one record per
  /// line in emission order. Same-seed runs produce identical bytes.
  [[nodiscard]] std::string jsonl() const;
  void write_jsonl(const std::string& path) const;

  // --- flight recorder ----------------------------------------------
  /// Arms postmortem dumping: the first trigger writes `path`; later
  /// triggers are counted but do not overwrite the earliest failure.
  /// Also installs the PEERLAB_CHECK failure observer so any fired
  /// assertion dumps before the InvariantError unwinds.
  void arm_postmortem(std::string path);
  /// Metrics registry whose snapshot is embedded in postmortems.
  void set_metrics_snapshot(const MetricRegistry* registry) noexcept { snapshot_ = registry; }
  /// Dumps the last postmortem_events retained events — filtered to
  /// `traces` when non-empty — with `reason`/`detail` and the metrics
  /// snapshot. No-op (beyond counting) when unarmed or already fired.
  void postmortem(const char* reason, const char* detail = "",
                  const std::vector<std::uint64_t>& traces = {});
  [[nodiscard]] std::uint64_t postmortems() const noexcept { return postmortems_; }
  [[nodiscard]] const std::string& postmortem_path() const noexcept { return postmortem_path_; }

 private:
  struct Ring {
    std::vector<TraceRecord> slots;  // sized to capacity at creation
    std::size_t size = 0;
    std::size_t head = 0;  // oldest slot once full
  };

  Ring& ring_for(NodeId node);
  void store(const TraceRecord& record);

  sim::Simulator& sim_;
  Options options_;
  std::vector<std::unique_ptr<Ring>> rings_;  // indexed by node id value
  Subscriber* subscriber_ = nullptr;
  std::uint64_t last_trace_ = 0;
  std::uint32_t last_span_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  // Metrics handles (null until attach_metrics).
  Counter* events_counter_ = nullptr;
  Counter* drop_counter_ = nullptr;
  Counter* trace_counter_ = nullptr;
  // Flight recorder.
  std::string postmortem_path_;
  bool postmortem_armed_ = false;
  bool postmortem_written_ = false;
  std::uint64_t postmortems_ = 0;
  const MetricRegistry* snapshot_ = nullptr;
};

}  // namespace peerlab::obs::trace
