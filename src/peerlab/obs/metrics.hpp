#pragma once

// Unified metrics: a MetricRegistry owning typed instruments.
//
// Subsystems register an instrument once by name/unit and keep the
// returned handle (a stable pointer); the hot-path update is then an
// array increment with no lookup. Attachment follows the same
// zero-cost-when-detached rule as Network::set_tracer: an instrumented
// subsystem holds null handles until a registry is attached, and every
// record site is gated on one pointer test.
//
// Instruments:
//  * Counter   — monotonic 64-bit count (datagrams sent, failovers).
//  * Gauge     — last-written double plus a running sum, for level
//                quantities (brownout seconds, active flows).
//  * Histogram — log-bucketed distribution with a *fixed* bucket array
//                (HDR-style: power-of-two octaves split into linear
//                sub-buckets), exact count/sum/min/max and
//                p50/p90/p99 readout. record() never allocates.
//
// The registry is single-threaded like the simulation that feeds it;
// cross-repetition aggregation goes through merge() under the caller's
// lock (see experiments::harness).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace peerlab::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void merge(const Counter& other) noexcept { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double v) noexcept { value_ += v; }
  [[nodiscard]] double value() const noexcept { return value_; }
  /// Cross-run aggregation sums: gauges in this codebase are
  /// accumulated level-seconds (brownout time), not instantaneous
  /// readings, so the sum is the meaningful combination.
  void merge(const Gauge& other) noexcept { value_ += other.value_; }

 private:
  double value_ = 0.0;
};

/// Log-bucketed histogram. Buckets cover [lo, hi): each power-of-two
/// octave starting at `lo` is split into `sub_buckets` linear
/// sub-buckets, so relative resolution is ~1/sub_buckets everywhere.
/// Samples below `lo` land in a dedicated underflow bucket; samples at
/// or above `hi` in an overflow bucket — totals are conserved. The
/// bucket array is sized once at construction; record() is a couple of
/// flops plus an array increment.
class Histogram {
 public:
  struct Options {
    double lo = 1e-6;     // smallest resolvable value (first octave base)
    double hi = 1e6;      // values >= hi clamp into the overflow bucket
    int sub_buckets = 8;  // linear sub-buckets per octave
  };

  Histogram();
  explicit Histogram(Options options);

  void record(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

  /// Quantile estimate, q in [0, 1]: finds the bucket holding the
  /// q-th sample and interpolates linearly inside it. Exact for the
  /// min (q where the first sample sits) up to bucket resolution;
  /// returns 0 for an empty histogram.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Merges another histogram recorded with the same Options; checked.
  void merge(const Histogram& other);

  // Bucket introspection (tests, exporters). Index 0 is the underflow
  // bucket (< lo); the last index is the overflow bucket (>= hi).
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept { return counts_[i]; }
  /// Index of the bucket `v` lands in.
  [[nodiscard]] std::size_t bucket_index(double v) const noexcept;
  /// Inclusive lower / exclusive upper value bound of bucket `i`.
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bucket_hi(std::size_t i) const noexcept;

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
  int octaves_ = 0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

enum class InstrumentKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(InstrumentKind kind) noexcept;

/// Owns every instrument of one measured world. Instruments are
/// registered once by name (re-requesting the same name returns the
/// same instrument; requesting it as a different kind is an invariant
/// error) and live at stable addresses for the registry's lifetime.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& counter(std::string_view name, std::string_view unit = "");
  Gauge& gauge(std::string_view name, std::string_view unit = "");
  Histogram& histogram(std::string_view name, std::string_view unit = "",
                       Histogram::Options options = Histogram::Options());

  /// Lookup without creating; nullptr when absent or a different kind.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const noexcept;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const noexcept;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const noexcept;

  /// Folds another registry in: same-named instruments combine
  /// (counters/gauges add, histograms merge), unseen ones are created.
  /// This is how per-repetition registries aggregate into one.
  void merge(const MetricRegistry& other);

  struct Entry {
    std::string name;
    std::string unit;
    InstrumentKind kind;
    // Exactly one of these is non-null, matching `kind`.
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };
  /// Entries in registration order (deterministic export layout).
  [[nodiscard]] std::vector<Entry> entries() const;
  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }

  /// Final summary as JSON: a flat "metrics" map (counters and gauges
  /// by name; histograms expanded to name.count/.mean/.p50/.p90/.p99/
  /// .min/.max) compatible with scripts/bench_compare.py snapshots,
  /// plus a "histograms" object with the full readout per histogram.
  [[nodiscard]] std::string json(std::string_view label = "") const;
  void write_json(const std::string& path, std::string_view label = "") const;

  /// Plain-text instrument inventory, one "name<TAB>kind<TAB>unit"
  /// line per instrument in registration order. docs/METRICS.md is
  /// diffed against this dump (tests/obs/metrics_doc_test), so the
  /// catalogue cannot silently drift from the code.
  [[nodiscard]] std::string describe() const;

 private:
  static constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

  struct Slot {
    std::string name;
    std::string unit;
    InstrumentKind kind;
    std::size_t index = kUnassigned;  // into the per-kind storage below
  };

  Slot& slot_for(std::string_view name, std::string_view unit, InstrumentKind kind);

  std::map<std::string, Slot, std::less<>> by_name_;
  std::vector<const Slot*> order_;
  // Stable storage: unique_ptr per instrument so handles never move.
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

}  // namespace peerlab::obs
