#pragma once

// peerlab::econ — deadline/budget-constrained economic workloads.
//
// The paper's "economic" model is economic in name only: no budget or
// deadline ever binds in the PlanetLab experiments. This subsystem adds
// the missing pressure, after Buyya, Abramson & Giddy's deadline/
// budget-constrained (DBC) scheduling from the Nimrod-G resource
// broker:
//
//   * PriceBook — seeded, deterministic per-peer price schedules. A
//     peer's unit price is a pure function of (pricing seed, peer id,
//     advertised CPU, observed load, reputation), so repeated quotes
//     for an unchanged peer are identical and seeded runs replay
//     bit for bit.
//   * EconEngine — appraises every candidate the selection model
//     ranked (ready/service-time estimators shared with the core
//     economic model, cost from the price book), filters by the
//     petition's deadline and budget, and re-ranks the feasible set by
//     a DBC objective: cost-optimise, time-optimise, cost-time, or a
//     Dubey–Tokekar real-time efficiency score (latency + capability
//     + availability).
//   * Ledger — bench-side accounting of deadline misses and budget
//     violations against actual outcomes.
//
// Layering contract: the engine acts only on petitions that carry an
// economic constraint (SelectionContext::econ_constrained()); every
// other petition takes the pristine selection path bit for bit, and a
// broker with `enabled = false` never consults the engine at all. The
// engine re-orders the model's ranking but never invents candidates
// and never refuses service — when every candidate is infeasible the
// model's own order stands (the paper's broker always answers) and the
// petition is counted as exhausted.

#include <cstdint>
#include <span>
#include <vector>

#include "peerlab/common/ids.hpp"
#include "peerlab/common/units.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/core/snapshot.hpp"
#include "peerlab/obs/metrics.hpp"

namespace peerlab::econ {

struct PricingConfig {
  /// Seed for the per-peer base price draw. Changing it re-rolls every
  /// peer's price; the same seed always yields the same schedule.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  /// Base unit price (credits per charged second) is drawn uniformly
  /// from [base_min, base_max] per peer.
  double base_min = 0.5;
  double base_max = 2.0;
  /// Fraction of the price that scales with advertised CPU relative to
  /// `reference_cpu_ghz` (fast peers charge more): 0 = flat pricing,
  /// 1 = fully CPU-proportional.
  double cpu_coupling = 0.5;
  GigaHertz reference_cpu_ghz = 1.0;
  /// Congestion surcharge per queued task / inbound transfer: a busy
  /// peer quotes `1 + busy_surcharge * backlog` times its base price.
  double busy_surcharge = 0.1;
  /// Reputation scaling (needs the PR 7 ReputationBook feeding
  /// snapshots): a distrusted peer discounts to stay attractive,
  /// `1 - reputation_discount * (1 - reputation)` of its price. 0 (the
  /// default) ignores reputation exactly.
  double reputation_discount = 0.0;
};

/// Deterministic per-peer price schedule. Stateless — every query is a
/// pure function of the config and the snapshot.
class PriceBook {
 public:
  explicit PriceBook(PricingConfig config = {}) : config_(config) {}

  /// Credits per charged second for this peer right now.
  [[nodiscard]] double unit_price(const core::PeerSnapshot& peer) const noexcept;

  /// The seeded base draw alone (no CPU / load / reputation scaling).
  [[nodiscard]] double base_price(PeerId peer) const noexcept;

  [[nodiscard]] const PricingConfig& config() const noexcept { return config_; }

 private:
  PricingConfig config_;
};

struct EconConfig {
  /// Master toggle. Off (the default) means the broker never consults
  /// the engine: selection is bit-identical to a build without the
  /// subsystem, even for petitions that carry deadlines or budgets.
  bool enabled = false;
  /// Objective applied when the petition says kBrokerDefault.
  core::EconObjective default_objective = core::EconObjective::kCostTime;
  PricingConfig pricing;
  /// Feeds the shared ready/service-time estimators (history depth,
  /// no-history fallbacks, transfer drain).
  core::EconomicConfig estimator;
  /// Dubey–Tokekar efficiency weights: responsiveness (1 / (1 + mean
  /// response time)), capability (CPU normalized over the candidate
  /// set), availability (idle, discounted by backlog).
  double efficiency_latency_weight = 0.4;
  double efficiency_capability_weight = 0.3;
  double efficiency_availability_weight = 0.3;
  /// How long an assignment the broker just handed out keeps counting
  /// as backlog on the assigned peer. Broker snapshots only refresh on
  /// heartbeats, so without this hint a burst of petitions all see the
  /// same stale "idle" peer and pile onto it; with it, each assignment
  /// immediately raises the peer's appraised queue (and price
  /// surcharge) until either the hold expires or the real heartbeat
  /// catches up. 0 disables the hints.
  Seconds assignment_hold = 30.0;
};

/// One candidate's economic appraisal for one petition.
struct Appraisal {
  Seconds ready = 0.0;       ///< queue drain before work can start
  Seconds service = 0.0;     ///< expected execution / transfer time
  Seconds completion = 0.0;  ///< absolute predicted finish (context.now + ready + service)
  double cost = 0.0;         ///< quoted charge for the whole job
  bool meets_deadline = true;
  bool within_budget = true;

  [[nodiscard]] bool feasible() const noexcept { return meets_deadline && within_budget; }
};

class EconEngine {
 public:
  explicit EconEngine(EconConfig config = {});

  /// True only for an enabled engine seeing an economically-constrained
  /// petition — the exact gate the broker keys its econ path on.
  [[nodiscard]] bool applies(const core::SelectionContext& context) const noexcept {
    return config_.enabled && context.econ_constrained();
  }

  /// Appraise one candidate against one petition.
  [[nodiscard]] Appraisal appraise(const core::PeerSnapshot& peer,
                                   const core::SelectionContext& context) const;

  /// Dubey–Tokekar real-time efficiency score in [0, 1]; `max_cpu` is
  /// the fastest advertised CPU in the candidate set (capability is
  /// set-normalized).
  [[nodiscard]] double efficiency_score(const core::PeerSnapshot& peer, GigaHertz max_cpu) const;

  struct Verdict {
    std::size_t appraised = 0;  ///< candidates considered
    std::size_t feasible = 0;   ///< candidates meeting deadline and budget
    /// No candidate was feasible: the model's own order was left
    /// untouched (least-bad service, never a refusal).
    bool exhausted = false;
  };

  /// Re-orders `ranking` (the model's output over `candidates`) in
  /// place: feasible candidates first, sorted by the petition's
  /// objective with the model's order breaking ties, then infeasible
  /// candidates in model order. `ranking` must only contain peers
  /// present in `candidates`.
  Verdict admit_and_rank(std::span<const core::PeerSnapshot> candidates,
                         const core::SelectionContext& context,
                         std::vector<PeerId>& ranking);

  /// The effective objective for a petition (kBrokerDefault resolves
  /// to the configured default).
  [[nodiscard]] core::EconObjective objective_for(
      const core::SelectionContext& context) const noexcept;

  /// Records that the broker just assigned work to `peer`. Until
  /// `now + assignment_hold` the peer appraises as one job busier than
  /// its (heartbeat-stale) snapshot claims. Called by the broker after
  /// each econ selection; no-op when `assignment_hold` is 0.
  void note_assignment(PeerId peer, Seconds now);

  /// Unexpired assignment hints against `peer` at `now`.
  [[nodiscard]] int pending_assignments(PeerId peer, Seconds now) const noexcept;

  /// The snapshot the engine actually appraises: the broker's view
  /// plus any unexpired assignment hints folded into the backlog.
  [[nodiscard]] core::PeerSnapshot loaded_view(const core::PeerSnapshot& peer,
                                               Seconds now) const;

  [[nodiscard]] const EconConfig& config() const noexcept { return config_; }
  [[nodiscard]] const PriceBook& prices() const noexcept { return prices_; }

  [[nodiscard]] std::uint64_t petitions() const noexcept { return petitions_; }
  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] std::uint64_t exhausted() const noexcept { return exhausted_; }

  /// Registers the engine's instruments (shared by name across brokers
  /// of a deployment). Zero-cost when never called; instruments exist
  /// even for a disabled engine so dashboards read zeros, not holes.
  void attach_metrics(obs::MetricRegistry& registry);

 private:
  struct Metrics {
    obs::Counter* petitions = nullptr;
    obs::Counter* admitted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* exhausted = nullptr;
    obs::Histogram* quoted_cost = nullptr;
    obs::Histogram* predicted_completion = nullptr;
  };

  EconConfig config_;
  PriceBook prices_;
  /// Ready/service-time estimators shared with the paper's economic
  /// model — never used for ranking, only for appraisal.
  core::EconomicSchedulingModel estimators_;
  Metrics m_;
  std::uint64_t petitions_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t exhausted_ = 0;

  /// Scratch reused across petitions (single-threaded broker).
  struct Entry {
    PeerId peer;
    std::size_t model_rank = 0;
    Appraisal appraisal;
    double efficiency = 0.0;
  };
  std::vector<Entry> entries_;

  /// Outstanding assignment hints, pruned lazily on each note.
  struct Hint {
    PeerId peer;
    Seconds expires = 0.0;
  };
  std::vector<Hint> hints_;
};

/// Bench-side accounting of actual outcomes against the contract each
/// petition carried. Pure arithmetic — unit-testable without a
/// deployment.
class Ledger {
 public:
  struct Job {
    Seconds deadline = 0.0;  ///< absolute; 0 = unconstrained
    double budget = 0.0;     ///< 0 = unconstrained
    Seconds finished = 0.0;  ///< absolute completion time (if completed)
    double cost = 0.0;       ///< what was actually charged
    bool completed = false;
  };

  void record(const Job& job);

  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }
  [[nodiscard]] std::size_t completions() const noexcept { return completions_; }
  [[nodiscard]] std::size_t deadline_jobs() const noexcept { return deadline_jobs_; }
  [[nodiscard]] std::size_t deadline_misses() const noexcept { return deadline_misses_; }
  [[nodiscard]] std::size_t budget_jobs() const noexcept { return budget_jobs_; }
  [[nodiscard]] std::size_t budget_violations() const noexcept { return budget_violations_; }
  [[nodiscard]] double total_cost() const noexcept { return total_cost_; }

  /// Misses over deadline-carrying jobs (an incomplete job with a
  /// deadline is a miss); 0 when no job carried a deadline.
  [[nodiscard]] double deadline_miss_rate() const noexcept;
  /// Violations over budget-carrying jobs; 0 when no job carried one.
  [[nodiscard]] double budget_violation_rate() const noexcept;
  [[nodiscard]] double completion_rate() const noexcept;
  [[nodiscard]] double mean_cost() const noexcept;

  void merge(const Ledger& other);

 private:
  std::size_t jobs_ = 0;
  std::size_t completions_ = 0;
  std::size_t deadline_jobs_ = 0;
  std::size_t deadline_misses_ = 0;
  std::size_t budget_jobs_ = 0;
  std::size_t budget_violations_ = 0;
  double total_cost_ = 0.0;
};

}  // namespace peerlab::econ
