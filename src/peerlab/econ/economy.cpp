#include "peerlab/econ/economy.hpp"

#include <algorithm>
#include <unordered_map>

#include "peerlab/common/check.hpp"

namespace peerlab::econ {

namespace {

/// splitmix64 — the standard seeded scramble; full-period, so distinct
/// peer ids never collide on the base draw for a fixed pricing seed.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits.
double unit_uniform(std::uint64_t bits) noexcept {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

// ---- PriceBook ---------------------------------------------------------

double PriceBook::base_price(PeerId peer) const noexcept {
  const double u = unit_uniform(splitmix64(config_.seed ^ peer.value()));
  return config_.base_min + u * (config_.base_max - config_.base_min);
}

double PriceBook::unit_price(const core::PeerSnapshot& peer) const noexcept {
  double price = base_price(peer.peer);
  if (config_.cpu_coupling > 0.0 && config_.reference_cpu_ghz > 0.0) {
    const double ratio = peer.cpu_ghz / config_.reference_cpu_ghz;
    price *= (1.0 - config_.cpu_coupling) + config_.cpu_coupling * ratio;
  }
  if (config_.busy_surcharge > 0.0) {
    const int backlog = std::max(0, peer.queued_tasks) + std::max(0, peer.active_transfers);
    price *= 1.0 + config_.busy_surcharge * static_cast<double>(backlog);
  }
  if (config_.reputation_discount > 0.0) {
    // A distrusted peer discounts to stay attractive; clamp so a
    // pathological config cannot quote a negative price.
    const double factor = 1.0 - config_.reputation_discount * (1.0 - peer.reputation);
    price *= std::max(0.0, factor);
  }
  return price;
}

// ---- EconEngine --------------------------------------------------------

EconEngine::EconEngine(EconConfig config)
    : config_(config), prices_(config.pricing), estimators_(config.estimator) {}

core::EconObjective EconEngine::objective_for(
    const core::SelectionContext& context) const noexcept {
  return context.objective == core::EconObjective::kBrokerDefault ? config_.default_objective
                                                                  : context.objective;
}

void EconEngine::note_assignment(PeerId peer, Seconds now) {
  if (config_.assignment_hold <= 0.0) return;
  hints_.erase(std::remove_if(hints_.begin(), hints_.end(),
                              [now](const Hint& h) { return h.expires <= now; }),
               hints_.end());
  hints_.push_back({peer, now + config_.assignment_hold});
}

int EconEngine::pending_assignments(PeerId peer, Seconds now) const noexcept {
  int pending = 0;
  for (const Hint& hint : hints_) {
    if (hint.peer == peer && hint.expires > now) ++pending;
  }
  return pending;
}

core::PeerSnapshot EconEngine::loaded_view(const core::PeerSnapshot& peer, Seconds now) const {
  const int pending = pending_assignments(peer.peer, now);
  if (pending == 0) return peer;
  core::PeerSnapshot view = peer;
  view.idle = false;
  view.queued_tasks += pending;
  view.active_transfers += pending;
  return view;
}

Appraisal EconEngine::appraise(const core::PeerSnapshot& peer,
                               const core::SelectionContext& context) const {
  const core::PeerSnapshot view = loaded_view(peer, context.now);
  Appraisal a;
  a.ready = estimators_.estimate_ready_time(view);
  a.service = estimators_.estimate_service_time(view, context);
  a.completion = context.now + a.ready + a.service;
  // Fixed-price contract at admission (DBC style): the quote charges
  // the *expected* service seconds at the peer's current unit price,
  // so under-estimates show up as deadline misses, never as surprise
  // charges.
  a.cost = prices_.unit_price(view) * a.service;
  a.meets_deadline = context.deadline <= 0.0 || a.completion <= context.deadline;
  a.within_budget = context.budget <= 0.0 || a.cost <= context.budget;
  return a;
}

double EconEngine::efficiency_score(const core::PeerSnapshot& peer, GigaHertz max_cpu) const {
  // Dubey & Tokekar's real-time efficient-peer identification:
  // responsiveness, capability and availability, each in [0, 1].
  double responsiveness = 0.5;  // neutral when the peergroup has no history
  if (peer.history != nullptr) {
    if (const auto mean = peer.history->mean_response_time(peer.peer,
                                                           config_.estimator.history_depth)) {
      responsiveness = 1.0 / (1.0 + std::max(0.0, *mean));
    }
  }
  const double capability = max_cpu > 0.0 ? peer.cpu_ghz / max_cpu : 1.0;
  const int backlog = std::max(0, peer.queued_tasks) + std::max(0, peer.active_transfers);
  const double availability =
      peer.idle && backlog == 0 ? 1.0 : 1.0 / (1.0 + static_cast<double>(backlog));
  const double total = config_.efficiency_latency_weight + config_.efficiency_capability_weight +
                       config_.efficiency_availability_weight;
  if (total <= 0.0) return 0.0;
  return (config_.efficiency_latency_weight * responsiveness +
          config_.efficiency_capability_weight * capability +
          config_.efficiency_availability_weight * availability) /
         total;
}

EconEngine::Verdict EconEngine::admit_and_rank(std::span<const core::PeerSnapshot> candidates,
                                               const core::SelectionContext& context,
                                               std::vector<PeerId>& ranking) {
  Verdict verdict;
  ++petitions_;
  if (m_.petitions != nullptr) m_.petitions->add(1);
  if (ranking.empty()) {
    verdict.exhausted = true;
    ++exhausted_;
    if (m_.exhausted != nullptr) m_.exhausted->add(1);
    return verdict;
  }

  std::unordered_map<PeerId, const core::PeerSnapshot*> by_peer;
  by_peer.reserve(candidates.size());
  for (const auto& snap : candidates) by_peer.emplace(snap.peer, &snap);

  const core::EconObjective objective = objective_for(context);
  GigaHertz max_cpu = 0.0;

  entries_.clear();
  entries_.reserve(ranking.size());
  for (std::size_t rank = 0; rank < ranking.size(); ++rank) {
    const auto it = by_peer.find(ranking[rank]);
    PEERLAB_CHECK_MSG(it != by_peer.end(), "ranked peer missing from candidate set");
    Entry entry;
    entry.peer = ranking[rank];
    entry.model_rank = rank;
    entry.appraisal = appraise(*it->second, context);
    entries_.push_back(entry);
    max_cpu = std::max(max_cpu, it->second->cpu_ghz);
  }
  if (objective == core::EconObjective::kEfficiency) {
    for (Entry& entry : entries_) {
      // Availability must see the same assignment hints the appraisal
      // priced in, or a burst of petitions all crown the same peer.
      entry.efficiency =
          efficiency_score(loaded_view(*by_peer.at(entry.peer), context.now), max_cpu);
    }
  }

  // Stable partition: feasible candidates first, both halves still in
  // model order (model_rank is the universal tiebreak below).
  const auto mid = std::stable_partition(entries_.begin(), entries_.end(),
                                         [](const Entry& e) { return e.appraisal.feasible(); });
  verdict.appraised = entries_.size();
  verdict.feasible = static_cast<std::size_t>(mid - entries_.begin());
  if (verdict.feasible == 0) {
    // Every candidate blows the deadline or the budget. The broker
    // never refuses service: leave the model's least-bad order intact.
    verdict.exhausted = true;
    ++exhausted_;
    rejected_ += verdict.appraised;
    if (m_.exhausted != nullptr) m_.exhausted->add(1);
    if (m_.rejected != nullptr) m_.rejected->add(verdict.appraised);
    return verdict;
  }

  std::sort(entries_.begin(), mid, [objective](const Entry& a, const Entry& b) {
    const Appraisal& aa = a.appraisal;
    const Appraisal& ab = b.appraisal;
    switch (objective) {
      case core::EconObjective::kCostOptimise:
        if (aa.cost != ab.cost) return aa.cost < ab.cost;
        break;
      case core::EconObjective::kTimeOptimise:
        if (aa.completion != ab.completion) return aa.completion < ab.completion;
        break;
      case core::EconObjective::kEfficiency:
        if (a.efficiency != b.efficiency) return a.efficiency > b.efficiency;
        break;
      case core::EconObjective::kCostTime:
      case core::EconObjective::kBrokerDefault:  // resolved by objective_for
        if (aa.cost != ab.cost) return aa.cost < ab.cost;
        if (aa.completion != ab.completion) return aa.completion < ab.completion;
        break;
    }
    return a.model_rank < b.model_rank;
  });

  ranking.clear();
  for (const Entry& entry : entries_) ranking.push_back(entry.peer);

  admitted_ += verdict.feasible;
  rejected_ += verdict.appraised - verdict.feasible;
  if (m_.admitted != nullptr) m_.admitted->add(verdict.feasible);
  if (m_.rejected != nullptr) m_.rejected->add(verdict.appraised - verdict.feasible);
  const Appraisal& winner = entries_.front().appraisal;
  if (m_.quoted_cost != nullptr) m_.quoted_cost->record(winner.cost);
  if (m_.predicted_completion != nullptr) {
    m_.predicted_completion->record(winner.completion - context.now);
  }
  return verdict;
}

void EconEngine::attach_metrics(obs::MetricRegistry& registry) {
  m_.petitions = &registry.counter("econ.petitions", "petitions");
  m_.admitted = &registry.counter("econ.admitted", "candidates");
  m_.rejected = &registry.counter("econ.rejected", "candidates");
  m_.exhausted = &registry.counter("econ.exhausted", "petitions");
  obs::Histogram::Options cost_opts;
  cost_opts.lo = 0.01;  // quotes run fractions of a credit .. thousands
  cost_opts.hi = 1e4;
  m_.quoted_cost = &registry.histogram("econ.quoted_cost", "credits", cost_opts);
  obs::Histogram::Options completion_opts;
  completion_opts.lo = 0.1;  // predicted time-to-complete, seconds .. hours
  completion_opts.hi = 1e5;
  m_.predicted_completion = &registry.histogram("econ.predicted_completion_s", "s",
                                                completion_opts);
}

// ---- Ledger ------------------------------------------------------------

void Ledger::record(const Job& job) {
  ++jobs_;
  if (job.completed) ++completions_;
  total_cost_ += job.cost;
  if (job.deadline > 0.0) {
    ++deadline_jobs_;
    // An incomplete job with a deadline missed it by definition.
    if (!job.completed || job.finished > job.deadline) ++deadline_misses_;
  }
  if (job.budget > 0.0) {
    ++budget_jobs_;
    if (job.cost > job.budget) ++budget_violations_;
  }
}

double Ledger::deadline_miss_rate() const noexcept {
  return deadline_jobs_ == 0
             ? 0.0
             : static_cast<double>(deadline_misses_) / static_cast<double>(deadline_jobs_);
}

double Ledger::budget_violation_rate() const noexcept {
  return budget_jobs_ == 0
             ? 0.0
             : static_cast<double>(budget_violations_) / static_cast<double>(budget_jobs_);
}

double Ledger::completion_rate() const noexcept {
  return jobs_ == 0 ? 0.0 : static_cast<double>(completions_) / static_cast<double>(jobs_);
}

double Ledger::mean_cost() const noexcept {
  return jobs_ == 0 ? 0.0 : total_cost_ / static_cast<double>(jobs_);
}

void Ledger::merge(const Ledger& other) {
  jobs_ += other.jobs_;
  completions_ += other.completions_;
  deadline_jobs_ += other.deadline_jobs_;
  deadline_misses_ += other.deadline_misses_;
  budget_jobs_ += other.budget_jobs_;
  budget_violations_ += other.budget_violations_;
  total_cost_ += other.total_cost_;
}

}  // namespace peerlab::econ
