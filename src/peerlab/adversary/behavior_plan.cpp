#include "peerlab/adversary/behavior_plan.hpp"

#include <algorithm>
#include <utility>

#include "peerlab/common/check.hpp"
#include "peerlab/common/log.hpp"
#include "peerlab/overlay/file_service.hpp"

namespace peerlab::adversary {

const char* to_string(BehaviorKind kind) noexcept {
  switch (kind) {
    case BehaviorKind::kFreeRider: return "free-rider";
    case BehaviorKind::kUnderReporter: return "under-reporter";
    case BehaviorKind::kStatsLiar: return "stats-liar";
    case BehaviorKind::kFlapper: return "flapper";
  }
  return "?";
}

void BehaviorPlan::free_rider(PeerId peer, Seconds from, double intensity) {
  BehaviorSpec spec;
  spec.peer = peer;
  spec.kind = BehaviorKind::kFreeRider;
  spec.from = from;
  spec.intensity = intensity;
  add(spec);
}

void BehaviorPlan::throttler(PeerId peer, Seconds delay, Seconds from) {
  PEERLAB_CHECK_MSG(delay > 0.0, "a throttler needs a positive delay");
  BehaviorSpec spec;
  spec.peer = peer;
  spec.kind = BehaviorKind::kFreeRider;
  spec.from = from;
  spec.throttle_delay = delay;
  add(spec);
}

void BehaviorPlan::flapper(PeerId peer, int accept_parts, Seconds from, double intensity) {
  PEERLAB_CHECK_MSG(accept_parts >= 0, "accept_parts must be non-negative");
  BehaviorSpec spec;
  spec.peer = peer;
  spec.kind = BehaviorKind::kFlapper;
  spec.from = from;
  spec.intensity = intensity;
  spec.accept_parts = accept_parts;
  add(spec);
}

void BehaviorPlan::under_reporter(PeerId peer, double load_factor, Seconds from) {
  PEERLAB_CHECK_MSG(load_factor >= 0.0 && load_factor < 1.0,
                    "an under-reporter reports less than the truth");
  BehaviorSpec spec;
  spec.peer = peer;
  spec.kind = BehaviorKind::kUnderReporter;
  spec.from = from;
  spec.load_factor = load_factor;
  add(spec);
}

void BehaviorPlan::stats_liar(PeerId peer, int praise, MbitPerSec rate, Seconds from) {
  PEERLAB_CHECK_MSG(praise > 0, "a stats liar needs something to brag about");
  BehaviorSpec spec;
  spec.peer = peer;
  spec.kind = BehaviorKind::kStatsLiar;
  spec.from = from;
  spec.praise_per_heartbeat = praise;
  spec.fabricated_rate = rate;
  add(spec);
}

void BehaviorPlan::add(BehaviorSpec spec) {
  PEERLAB_CHECK_MSG(spec.peer.valid(), "behavior spec needs a target peer");
  PEERLAB_CHECK_MSG(spec.intensity >= 0.0 && spec.intensity <= 1.0,
                    "intensity is a probability");
  specs_.push_back(spec);
}

void BehaviorPlan::merge(const BehaviorPlan& other) {
  specs_.insert(specs_.end(), other.specs_.begin(), other.specs_.end());
}

BehaviorPlan BehaviorPlan::random_adversaries(sim::Rng& rng, const std::vector<PeerId>& peers,
                                              double fraction, BehaviorKind kind,
                                              Seconds from) {
  PEERLAB_CHECK_MSG(fraction >= 0.0 && fraction <= 1.0, "fraction must be in [0, 1]");
  BehaviorPlan plan;
  const auto count = static_cast<std::size_t>(
      fraction * static_cast<double>(peers.size()) + 0.5);
  if (count == 0) return plan;
  // Partial Fisher-Yates: the first `count` slots end up holding a
  // uniform sample without replacement, in a draw order deterministic
  // in (rng state, peer order).
  std::vector<PeerId> pool = peers;
  for (std::size_t i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(pool.size()) - 1));
    std::swap(pool[i], pool[j]);
    BehaviorSpec spec;
    spec.peer = pool[i];
    spec.kind = kind;
    spec.from = from;
    plan.add(spec);
  }
  return plan;
}

BehaviorEngine::BehaviorEngine(sim::Simulator& sim, BehaviorPlan plan, sim::Rng rng)
    : sim_(sim), plan_(std::move(plan)), base_rng_(rng) {}

sim::Rng& BehaviorEngine::rng_for(PeerId peer) {
  auto it = rngs_.find(peer);
  if (it == rngs_.end()) {
    it = rngs_.emplace(peer, base_rng_.fork(peer.value())).first;
  }
  return it->second;
}

void BehaviorEngine::bind(overlay::ClientPeer& client) {
  for (const BehaviorSpec& spec : plan_.specs()) {
    if (spec.peer != client.id()) continue;
    const Seconds delay = std::max(0.0, spec.from - sim_.now());
    // The engine outlives the run (like FaultInjector), so capturing
    // the client reference is safe: clients live on the deployment.
    sim_.schedule(delay, [this, &client, spec] { activate(client, spec); });
  }
}

void BehaviorEngine::activate(overlay::ClientPeer& client, const BehaviorSpec& spec) {
  ++activations_;
  if (m_.activations != nullptr) m_.activations->add(1);
  PEERLAB_LOG(kInfo, "adversary") << to_string(spec.peer) << " turns "
                                  << to_string(spec.kind);
  switch (spec.kind) {
    case BehaviorKind::kUnderReporter: {
      overlay::MisreportProfile profile;
      profile.load_factor = spec.load_factor;
      profile.always_idle = spec.load_factor <= 0.0;
      client.set_misreport_profile(profile);
      return;
    }
    case BehaviorKind::kStatsLiar: {
      overlay::MisreportProfile profile;
      profile.fabricate_praise = spec.praise_per_heartbeat;
      profile.fabricated_rate = spec.fabricated_rate;
      client.set_misreport_profile(profile);
      return;
    }
    case BehaviorKind::kFreeRider:
    case BehaviorKind::kFlapper: {
      sim::Rng* rng = &rng_for(spec.peer);
      client.files().transfer_peer().set_inbound_policy(
          [this, spec, rng](NodeId /*sender*/, std::uint64_t /*correlation*/) {
            transport::InboundDecision d;
            // intensity == 1 short-circuits so the all-in adversary
            // consumes no draws (fully scripted determinism).
            const bool act = spec.intensity >= 1.0 || rng->bernoulli(spec.intensity);
            if (!act) return d;
            if (spec.kind == BehaviorKind::kFlapper) {
              d.confirm_at_most = spec.accept_parts;
              ++aborts_;
              if (m_.aborts != nullptr) m_.aborts->add(1);
            } else if (spec.throttle_delay > 0.0) {
              d.confirm_delay = spec.throttle_delay;
              ++throttles_;
              if (m_.throttles != nullptr) m_.throttles->add(1);
            } else {
              d.refuse_petition = true;
              ++refusals_;
              if (m_.refusals != nullptr) m_.refusals->add(1);
            }
            return d;
          });
      return;
    }
  }
}

void BehaviorEngine::attach_metrics(obs::MetricRegistry& registry) {
  m_.activations = &registry.counter("adversary.activations", "behaviors");
  m_.refusals = &registry.counter("adversary.refusals", "transfers");
  m_.aborts = &registry.counter("adversary.aborts", "transfers");
  m_.throttles = &registry.counter("adversary.throttles", "transfers");
}

}  // namespace peerlab::adversary
