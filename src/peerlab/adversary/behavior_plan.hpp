#pragma once

// Adversarial peer behaviour: deterministic schedules of scripted
// misbehaviour, applied to a deployment's clients — the byzantine
// sibling of net::FaultPlan/FaultInjector (which only models *honest*
// failures).
//
// A BehaviorPlan is pure data — scripted directly (free_rider /
// throttler / flapper / under_reporter / stats_liar) or generated from
// a seeded RNG (random_adversaries: a fixed fraction of the peer
// population, sampled by partial Fisher-Yates). A BehaviorEngine arms
// the plan against live clients: upload misbehaviour actuates through
// transport::FileTransferPeer's inbound policy (refusals, withheld and
// delayed confirmations), reporting misbehaviour through
// overlay::ClientPeer's misreport profile (scaled-down load echoes,
// fabricated self-praise history). Per-peer decisions draw from
// per-peer forked RNG streams, so a seeded adversarial run replays
// bit-for-bit and adding an adversary never perturbs another's
// sequence.

#include <unordered_map>
#include <vector>

#include "peerlab/obs/metrics.hpp"
#include "peerlab/overlay/client.hpp"
#include "peerlab/sim/rng.hpp"
#include "peerlab/sim/simulator.hpp"

namespace peerlab::adversary {

enum class BehaviorKind : std::uint8_t {
  /// Refuses uploads outright (petition silence) or throttles them
  /// (delayed confirmations) — Christin & Chuang's cost-dodger.
  kFreeRider,
  /// Statistics echoes report a fraction of the true load.
  kUnderReporter,
  /// Fabricates inflated self-history (fast fake transfers, instant
  /// responses) with every heartbeat.
  kStatsLiar,
  /// Accepts a share, confirms a few parts, then goes silent.
  kFlapper,
};

[[nodiscard]] const char* to_string(BehaviorKind kind) noexcept;

struct BehaviorSpec {
  PeerId peer;
  BehaviorKind kind = BehaviorKind::kFreeRider;
  /// Behaviour activates at this instant (0 = before the run starts).
  Seconds from = 0.0;
  /// kFreeRider/kFlapper: probability an inbound transfer is targeted;
  /// 1 targets every transfer without consuming an RNG draw.
  double intensity = 1.0;
  /// kFlapper: parts confirmed before going silent.
  int accept_parts = 1;
  /// kFreeRider: >0 switches from hard refusal to throttling — every
  /// confirmation limps back this late.
  Seconds throttle_delay = 0.0;
  /// kUnderReporter: multiplier on reported load (0 = "always empty").
  double load_factor = 0.25;
  /// kStatsLiar: fabricated completions per heartbeat and their
  /// claimed throughput.
  int praise_per_heartbeat = 2;
  MbitPerSec fabricated_rate = 800.0;
};

class BehaviorPlan {
 public:
  /// Peer goes silent on inbound petitions from `from` on; `intensity`
  /// < 1 refuses only that fraction of transfers.
  void free_rider(PeerId peer, Seconds from = 0.0, double intensity = 1.0);
  /// Free-rider variant that accepts but throttles: every part
  /// confirmation is delayed by `delay`.
  void throttler(PeerId peer, Seconds delay, Seconds from = 0.0);
  /// Accept-then-abort: confirms `accept_parts` parts then stonewalls.
  void flapper(PeerId peer, int accept_parts = 1, Seconds from = 0.0, double intensity = 1.0);
  /// Load echoes report `load_factor` of the truth (0 = always idle).
  void under_reporter(PeerId peer, double load_factor = 0.25, Seconds from = 0.0);
  /// Ships `praise` fabricated completions per heartbeat at `rate`.
  void stats_liar(PeerId peer, int praise = 2, MbitPerSec rate = 800.0, Seconds from = 0.0);
  /// Raw append for custom schedules.
  void add(BehaviorSpec spec);
  /// Appends every spec of `other` (composes scripted populations).
  void merge(const BehaviorPlan& other);

  /// Samples floor(fraction * peers + 0.5) distinct peers by partial
  /// Fisher-Yates and scripts `kind` on each from `from`. Deterministic
  /// in the RNG state and peer order.
  [[nodiscard]] static BehaviorPlan random_adversaries(sim::Rng& rng,
                                                       const std::vector<PeerId>& peers,
                                                       double fraction, BehaviorKind kind,
                                                       Seconds from = 0.0);

  [[nodiscard]] const std::vector<BehaviorSpec>& specs() const noexcept { return specs_; }
  [[nodiscard]] bool empty() const noexcept { return specs_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return specs_.size(); }

 private:
  std::vector<BehaviorSpec> specs_;
};

class BehaviorEngine {
 public:
  /// `rng` seeds the per-peer decision streams (forked by peer id, so
  /// adversaries never perturb each other). The engine must outlive
  /// the run; bind() arms the plan's specs against a live client.
  BehaviorEngine(sim::Simulator& sim, BehaviorPlan plan, sim::Rng rng);

  BehaviorEngine(const BehaviorEngine&) = delete;
  BehaviorEngine& operator=(const BehaviorEngine&) = delete;

  /// Schedules every spec targeting `client`'s peer id (activation at
  /// spec.from, or immediately when already past). Specs for other
  /// peers are ignored; call once per client.
  void bind(overlay::ClientPeer& client);

  [[nodiscard]] const BehaviorPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] std::uint64_t activations() const noexcept { return activations_; }
  [[nodiscard]] std::uint64_t refusals_decided() const noexcept { return refusals_; }
  [[nodiscard]] std::uint64_t aborts_decided() const noexcept { return aborts_; }
  [[nodiscard]] std::uint64_t throttles_decided() const noexcept { return throttles_; }

  /// Registers the per-act decision counters in `registry`; every
  /// activation and inbound-transfer decision then also bumps its
  /// counter. Zero-cost when never called.
  void attach_metrics(obs::MetricRegistry& registry);

 private:
  /// Cached instrument handles; all null while detached.
  struct Metrics {
    obs::Counter* activations = nullptr;
    obs::Counter* refusals = nullptr;
    obs::Counter* aborts = nullptr;
    obs::Counter* throttles = nullptr;
  };

  void activate(overlay::ClientPeer& client, const BehaviorSpec& spec);
  [[nodiscard]] sim::Rng& rng_for(PeerId peer);

  sim::Simulator& sim_;
  BehaviorPlan plan_;
  sim::Rng base_rng_;
  Metrics m_;
  std::unordered_map<PeerId, sim::Rng> rngs_;
  std::uint64_t activations_ = 0;
  std::uint64_t refusals_ = 0;
  std::uint64_t aborts_ = 0;
  std::uint64_t throttles_ = 0;
};

}  // namespace peerlab::adversary
