#!/usr/bin/env python3
"""Microbenchmark regression harness.

Runs the google-benchmark binaries (bench_micro_engine,
bench_micro_overlay, bench_micro_selection), distils them into a small
set of headline throughput metrics, and diffs the result against the
newest committed BENCH_<N>.json snapshot:

  * events_per_s              geomean items/s of BM_EventQueuePushPop
  * sim_hops_per_s            geomean items/s of BM_SimulatorEventChain
  * flow_transitions_per_s    geomean items/s of BM_FlowSchedulerChurn
  * flow_locality_transitions_per_s
                              geomean items/s of BM_FlowSchedulerLocality
  * sim_events_per_s          geomean of the overlay "sim_events/s" counters
  * selection_decisions_per_s geomean items/s of bench_micro_selection

Typical use:

  scripts/bench_compare.py --emit                # run, diff, write BENCH_<N+1>.json
  scripts/bench_compare.py                       # run + diff only, no snapshot
  scripts/bench_compare.py --threshold 0.10      # tolerate 10% regression
  scripts/bench_compare.py --from-json a.json b.json --emit
                                                 # distil saved runs instead of executing

Exits nonzero when any headline metric regresses by more than the
threshold relative to the previous snapshot, or when a metric present
in the baseline is missing from the candidate run entirely (a deleted
or renamed benchmark must be an explicit decision, not a silent pass);
that is what makes it usable as a CI tripwire.

The script can additionally diff observability exports (the
<bench>.metrics.json files the figure benches write via peerlab::obs):

  scripts/bench_compare.py --obs-json bench_fig6_models.metrics.json \
                           --obs-baseline saved/bench_fig6_models.metrics.json

Only the selected headline series (per-model selection-latency
quantiles, failover/backoff counters, datagram totals, fault counts)
are shown. Obs diffs are always advisory: they never affect the exit
code, because counter totals shift legitimately with workload edits —
the table exists so a reviewer sees the shift, not so CI blocks on it.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

BENCH_BINARIES = ["bench_micro_engine", "bench_micro_overlay", "bench_micro_selection"]

# metric name -> (benchmark-name regex, JSON field)
METRICS = {
    "events_per_s": (r"^BM_EventQueuePushPop/", "items_per_second"),
    "sim_hops_per_s": (r"^BM_SimulatorEventChain/", "items_per_second"),
    "flow_transitions_per_s": (r"^BM_FlowSchedulerChurn/", "items_per_second"),
    "flow_locality_transitions_per_s": (r"^BM_FlowSchedulerLocality/", "items_per_second"),
    "sim_events_per_s": (r"^BM_(FileTransferRoundTrip|SimulatedHourOfHeartbeats)", "sim_events/s"),
    "selection_decisions_per_s": (r"^BM_Select", "items_per_second"),
}


# Observability series worth a reviewer's eye in a diff; everything
# else in the export is noise at review granularity.
OBS_SELECTED = [
    r"^overlay\.selection\.latency_s(\.[\w-]+)?\.(count|p50|p99)$",
    r"^overlay\.(failovers|backoff_retries)(\.[\w-]+)?$",
    r"^overlay\.selections_requested(\.[\w-]+)?$",
    r"^net\.datagrams\.(sent|lost)(\.[\w-]+)?$",
    r"^net\.messages\.aborted(\.[\w-]+)?$",
    r"^faults\.[\w]+(\.[\w-]+)?$",
]


def geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


OBS_SCHEMA = "peerlab.metrics/1"


def load_obs_metrics(paths: list[pathlib.Path]) -> dict[str, float]:
    """Merges the flat "metrics" maps of peerlab::obs JSON exports.

    Validates the export's schema tag first: a missing or mismatched
    tag fails with a clear message (the export predates the tag, or
    was produced by an incompatible build) instead of surfacing later
    as a confusing KeyError / empty diff.
    """
    merged: dict[str, float] = {}
    for path in paths:
        export = json.loads(path.read_text())
        schema = export.get("schema")
        if schema != OBS_SCHEMA:
            sys.exit(f"bench_compare: {path}: unsupported metrics schema "
                     f"{schema!r} (this script reads {OBS_SCHEMA!r}); "
                     f"re-generate the export with a matching build")
        if "metrics" not in export:
            sys.exit(f"bench_compare: {path}: schema tag present but no "
                     f"'metrics' map — truncated or hand-edited export?")
        merged.update(export["metrics"])
    return merged


def diff_obs_metrics(current_paths: list[pathlib.Path],
                     baseline_path: pathlib.Path | None) -> None:
    """Prints the advisory observability table. Never fails the run."""
    current = load_obs_metrics(current_paths)
    baseline = load_obs_metrics([baseline_path]) if baseline_path else {}
    selected = [k for k in sorted(current)
                if any(re.match(p, k) for p in OBS_SELECTED)]
    if not selected:
        print("obs: no selected metrics found in export", file=sys.stderr)
        return
    print("\nobservability metrics (advisory, never gating):")
    print(f"{'metric':44s} {'current':>14s} {'baseline':>14s} {'ratio':>7s}")
    for key in selected:
        value = current[key]
        base = baseline.get(key)
        if base:
            print(f"{key:44s} {value:14.4g} {base:14.4g} {value / base:6.2f}x")
        else:
            print(f"{key:44s} {value:14.4g} {'-':>14s} {'-':>7s}")


def run_benchmarks(build_dir: pathlib.Path, min_time: float, repetitions: int) -> list[dict]:
    """Runs every bench binary, returns the merged benchmark records.

    With repetitions > 1 each binary is run that many times and the
    best (highest-throughput) record per benchmark is kept, which
    filters out one-off machine noise the same way interleaved A/B
    benchmarking does.
    """
    best: dict[str, dict] = {}
    for rep in range(repetitions):
        for binary in BENCH_BINARIES:
            path = build_dir / "bench" / binary
            if not path.exists():
                print(f"bench_compare: missing {path}, skipping", file=sys.stderr)
                continue
            cmd = [str(path), "--benchmark_format=json", f"--benchmark_min_time={min_time}"]
            out = subprocess.run(cmd, capture_output=True, text=True, check=True).stdout
            for record in json.loads(out)["benchmarks"]:
                name = record["name"]
                prev = best.get(name)
                if prev is None or record["real_time"] < prev["real_time"]:
                    best[name] = record
    return list(best.values())


def load_saved(paths: list[pathlib.Path]) -> list[dict]:
    best: dict[str, dict] = {}
    for path in paths:
        for record in json.loads(path.read_text())["benchmarks"]:
            name = record["name"]
            prev = best.get(name)
            if prev is None or record["real_time"] < prev["real_time"]:
                best[name] = record
    return list(best.values())


def distil(records: list[dict]) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for metric, (pattern, field) in METRICS.items():
        values = [r[field] for r in records if re.search(pattern, r["name"]) and field in r]
        if values:
            metrics[metric] = geomean(values)
    return metrics


def snapshot_paths(bench_dir: pathlib.Path) -> list[tuple[int, pathlib.Path]]:
    found = []
    for path in bench_dir.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--build-dir", type=pathlib.Path, default=REPO_ROOT / "build")
    parser.add_argument("--bench-dir", type=pathlib.Path, default=REPO_ROOT,
                        help="directory holding BENCH_<N>.json snapshots")
    parser.add_argument("--emit", action="store_true",
                        help="write the run as the next BENCH_<N>.json snapshot")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="fractional regression tolerated per metric (default 0.05)")
    parser.add_argument("--min-time", type=float, default=0.3,
                        help="--benchmark_min_time passed to each binary")
    parser.add_argument("--repetitions", type=int, default=2,
                        help="full passes over the binaries; best run per benchmark kept")
    parser.add_argument("--from-json", type=pathlib.Path, nargs="+", default=None,
                        help="distil saved --benchmark_format=json outputs instead of running")
    parser.add_argument("--label", default=None, help="free-form label stored in the snapshot")
    parser.add_argument("--obs-json", type=pathlib.Path, nargs="+", default=None,
                        help="peerlab::obs metrics exports to diff (advisory)")
    parser.add_argument("--obs-baseline", type=pathlib.Path, default=None,
                        help="baseline obs export to diff --obs-json against")
    args = parser.parse_args()

    if args.obs_json:
        diff_obs_metrics(args.obs_json, args.obs_baseline)

    if args.from_json:
        records = load_saved(args.from_json)
    else:
        records = run_benchmarks(args.build_dir, args.min_time, args.repetitions)
    if not records:
        print("bench_compare: no benchmark records produced", file=sys.stderr)
        return 2
    metrics = distil(records)

    snapshots = snapshot_paths(args.bench_dir)
    previous = None
    if snapshots:
        prev_number, prev_path = snapshots[-1]
        previous = json.loads(prev_path.read_text())
        print(f"baseline: {prev_path.name}")

    failed = []
    print(f"{'metric':28s} {'current':>14s} {'baseline':>14s} {'ratio':>7s}")
    for metric, value in sorted(metrics.items()):
        base = (previous or {}).get("metrics", {}).get(metric)
        if base:
            ratio = value / base
            flag = ""
            if ratio < 1.0 - args.threshold:
                failed.append(metric)
                flag = "  << REGRESSION"
            print(f"{metric:28s} {value:14.3e} {base:14.3e} {ratio:6.2f}x{flag}")
        else:
            print(f"{metric:28s} {value:14.3e} {'-':>14s} {'-':>7s}")

    # A baseline metric the candidate run never produced is a silently
    # deleted benchmark (renamed binary, filtered-out suite), which would
    # otherwise read as "no regression" forever. Collect the FULL list —
    # both distilled headline metrics and individual benchmark names from
    # the snapshot's "benchmarks" map — before failing, so one run shows
    # everything that vanished instead of revealing it one fix at a time.
    missing = sorted(set((previous or {}).get("metrics", {})) - set(metrics))
    current_names = {r["name"] for r in records}
    missing_benchmarks = sorted(set((previous or {}).get("benchmarks", {})) - current_names)
    if missing or missing_benchmarks:
        for metric in missing:
            print(f"MISSING: headline metric '{metric}' absent from candidate run",
                  file=sys.stderr)
        for name in missing_benchmarks:
            print(f"MISSING: benchmark '{name}' absent from candidate run", file=sys.stderr)
        print(f"FAIL: {len(missing) + len(missing_benchmarks)} baseline entries missing "
              f"from candidate run", file=sys.stderr)

    if args.emit:
        number = snapshots[-1][0] + 1 if snapshots else 0
        out_path = args.bench_dir / f"BENCH_{number}.json"
        out_path.write_text(json.dumps({
            "label": args.label or "",
            "metrics": metrics,
            "benchmarks": {r["name"]: {
                "real_time_ns": r["real_time"],
                "items_per_second": r.get("items_per_second"),
                "sim_events_per_s": r.get("sim_events/s"),
            } for r in sorted(records, key=lambda r: r["name"])},
        }, indent=2) + "\n")
        print(f"wrote {out_path.relative_to(REPO_ROOT) if out_path.is_relative_to(REPO_ROOT) else out_path}")

    if failed:
        print(f"FAIL: regression beyond {args.threshold:.0%} in: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    if missing or missing_benchmarks:
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
