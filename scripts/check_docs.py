#!/usr/bin/env python3
"""Markdown link checker for the repo documentation.

Verifies every *relative* link in README.md, DESIGN.md,
EXPERIMENTS.md, ROADMAP.md, CHANGES.md and docs/*.md:

* the target file exists (relative to the file containing the link);
* a `#fragment` (with or without a file part) matches a heading in the
  target file, using GitHub's anchor slugification.

External links (http/https/mailto/...) are ignored — this is a
structural check, not a crawler — as are links inside fenced code
blocks and inline code spans. Stdlib only; exit code 1 on any broken
link.

Two structural checks ride along:

* orphan detection — every file under docs/ must be reachable by
  following relative markdown links from README.md or DESIGN.md (a
  handbook nobody links to is a handbook nobody finds);
* anchor uniqueness — duplicate heading slugs within one file make
  `#fragment` links ambiguous (GitHub silently renames the later ones
  to `-1`, `-2`, ... and links land on the wrong section).

Usage: python3 scripts/check_docs.py [repo_root]
"""

from __future__ import annotations

import glob
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
SCHEME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9+.-]*:")


def doc_files(root: str) -> list[str]:
    names = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md", "CHANGES.md"]
    files = [os.path.join(root, n) for n in names if os.path.isfile(os.path.join(root, n))]
    files += sorted(glob.glob(os.path.join(root, "docs", "**", "*.md"), recursive=True))
    return files


def strip_code(text: str) -> str:
    """Blanks out fenced code blocks and inline code spans so C++
    lambdas like `[&](NodeId)` are not mistaken for links."""
    out_lines = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            out_lines.append("")
            continue
        out_lines.append("" if in_fence else re.sub(r"`[^`]*`", "", line))
    return "\n".join(out_lines)


def github_slug(heading: str) -> str:
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)  # drop punctuation (keeps word chars, -, space)
    return slug.replace(" ", "-")


def anchors_of(path: str) -> set[str]:
    anchors: set[str] = set()
    with open(path, encoding="utf-8") as fh:
        text = strip_code(fh.read())
    for line in text.splitlines():
        m = HEADING_RE.match(line)
        if m:
            base = github_slug(m.group(1))
            anchors.add(base)
            # Duplicate headings get -1, -2, ... suffixes on GitHub;
            # accept the base form for all of them (structural check).
    return anchors


def duplicate_anchors(path: str) -> list[tuple[int, str, str]]:
    """(lineno, slug, heading) for every heading whose slug already
    appeared earlier in the same file."""
    seen: dict[str, int] = {}
    dupes: list[tuple[int, str, str]] = []
    with open(path, encoding="utf-8") as fh:
        text = strip_code(fh.read())
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(1))
        if slug in seen:
            dupes.append((lineno, slug, m.group(1)))
        else:
            seen[slug] = lineno
    return dupes


def relative_targets(doc: str, text: str) -> set[str]:
    """Normalized paths of every relative link target in `text`."""
    targets: set[str] = set()
    for line in text.splitlines():
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if SCHEME_RE.match(target) or target.startswith("//"):
                continue
            path_part, _, _ = target.partition("#")
            if path_part:
                targets.add(os.path.normpath(
                    os.path.join(os.path.dirname(doc), path_part)))
    return targets


def reachable_docs(root: str) -> set[str]:
    """BFS over relative markdown links from the entry pages."""
    entries = [os.path.join(root, n) for n in ("README.md", "DESIGN.md")
               if os.path.isfile(os.path.join(root, n))]
    seen: set[str] = set(entries)
    frontier = list(entries)
    while frontier:
        doc = frontier.pop()
        with open(doc, encoding="utf-8") as fh:
            text = strip_code(fh.read())
        for dest in relative_targets(doc, text):
            if dest.endswith(".md") and os.path.isfile(dest) and dest not in seen:
                seen.add(dest)
                frontier.append(dest)
    return seen


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), ".."))
    errors: list[str] = []
    checked = 0
    anchor_cache: dict[str, set[str]] = {}

    for doc in doc_files(root):
        with open(doc, encoding="utf-8") as fh:
            text = strip_code(fh.read())
        rel_doc = os.path.relpath(doc, root)
        for lineno, line in enumerate(text.splitlines(), start=1):
            for m in LINK_RE.finditer(line):
                target = m.group(1)
                if SCHEME_RE.match(target) or target.startswith("//"):
                    continue  # external
                checked += 1
                path_part, _, fragment = target.partition("#")
                if path_part:
                    dest = os.path.normpath(
                        os.path.join(os.path.dirname(doc), path_part))
                else:
                    dest = doc  # same-file anchor
                if not os.path.exists(dest):
                    errors.append(f"{rel_doc}:{lineno}: broken link target "
                                  f"'{target}' ({path_part} not found)")
                    continue
                if fragment:
                    if not dest.endswith(".md") or os.path.isdir(dest):
                        continue  # anchors only checked inside markdown
                    if dest not in anchor_cache:
                        anchor_cache[dest] = anchors_of(dest)
                    if fragment.lower() not in anchor_cache[dest]:
                        errors.append(f"{rel_doc}:{lineno}: broken anchor "
                                      f"'#{fragment}' in '{target}'")

    # Orphan detection: docs/ files nobody can reach from the entry
    # pages. Top-level files (ROADMAP.md, CHANGES.md, ...) are exempt —
    # they are entry points in their own right.
    reachable = reachable_docs(root)
    docs_dir = os.path.join(root, "docs")
    for doc in sorted(glob.glob(os.path.join(docs_dir, "**", "*.md"), recursive=True)):
        if doc not in reachable:
            errors.append(f"{os.path.relpath(doc, root)}: orphaned — not "
                          f"reachable via relative links from README.md or DESIGN.md")

    # Anchor uniqueness: duplicate heading slugs within one file.
    for doc in doc_files(root):
        for lineno, slug, heading in duplicate_anchors(doc):
            errors.append(f"{os.path.relpath(doc, root)}:{lineno}: duplicate "
                          f"heading slug '#{slug}' ('{heading}') — fragment links "
                          f"to this file are ambiguous")

    for err in errors:
        print(f"check_docs: {err}", file=sys.stderr)
    print(f"check_docs: {checked} relative links checked, "
          f"{len(errors)} problems")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
