#!/usr/bin/env bash
# Fast correctness gate: the tier-1 test suite, then an ASan+UBSan build
# exercising the churn/fault-injection paths (the tests most likely to
# hide lifetime bugs: crash-triggered flow aborts, failover callbacks,
# reentrant batch teardown).
#
# scripts/run_all.sh remains the full bar (benches + regression diff);
# this script is the quick pre-push check.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build -j "$(nproc)" --timeout 180 --output-on-failure

cmake -B build-asan -S . -DPEERLAB_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$(nproc)" \
  --target test_net test_overlay test_adversary test_econ test_property test_flow_differential \
  test_selection_differential bench_churn bench_adversarial bench_economic
build-asan/tests/test_net \
  --gtest_filter='FaultPlan.*:FaultInjector.*:Network.*:FlowScheduler.*'
build-asan/tests/test_overlay --gtest_filter='Failover.*:Distribution.*'
# Adversarial actuation paths sanitized: scripted refusals, flapper
# aborts and doctored heartbeats all tear down transfer state from
# inside callbacks, exactly where use-after-frees would hide.
build-asan/tests/test_adversary
# Econ engine + broker econ path sanitized: admission re-ranks the
# model's scratch ranking in place and the assignment hints prune
# lazily, both on the petition hot path.
build-asan/tests/test_econ
# The whole property-labelled tier runs under the sanitizers: the
# randomized differential fuzz is where lifetime bugs in the
# incremental re-levelling (stale slots, reentrant aborts) would hide,
# the selection-equivalence fuzz drives the candidate index's lazy
# tree/heap maintenance through churn and adversarial stats deltas
# (stale slot pointers and heap stamps are exactly ASan's prey), the
# adversarial-distribution property drives leech/flapper/churn mixes
# through the failover machinery with defenses off and on, and the
# econ property suite pins the zero-perturbation contract (engine off
# or unconstrained == pristine, byte for byte).
ctest --test-dir build-asan -L property -j "$(nproc)" --timeout 600 --output-on-failure
build-asan/bench/bench_churn --reps 1
build-asan/bench/bench_adversarial --reps 1
build-asan/bench/bench_economic --reps 1

echo "peerlab: check.sh passed"
