#!/usr/bin/env python3
"""Reconstruct and pretty-print causal petition chains from a peerlab
trace dump (the JSONL written by TraceRecorder::write_jsonl, e.g. via a
bench binary's --trace flag).

Usage:
  trace_analyze.py DUMP                 # per-trace summary table
  trace_analyze.py DUMP --trace ID      # full causal chain of one trace
  trace_analyze.py DUMP --all           # full chains of every trace
  trace_analyze.py --postmortem FILE    # pretty-print a postmortem JSON

The chain view groups events by span (indented under the span that
opened them), flags failover legs (select-reissue, share-failover,
share-gave-up), and closes with a per-stage latency breakdown per
petition: selection, petition handshake, data phase, confirmation and
total. Exit code 0 on success, 1 on malformed input, 2 on usage errors
(unknown trace id, missing file).
"""

import argparse
import json
import sys

SCHEMA = "peerlab.trace/1"
POSTMORTEM_SCHEMA = "peerlab.postmortem/1"

# Events that open a child span carry the parent span id in "parent".
SPAN_OPENERS = {"select-request", "share-launch"}
# Failure / failover markers worth flagging in the chain view.
FAILOVER_KINDS = {"select-fail", "select-reissue", "share-failover", "share-gave-up"}
TERMINALS = {"transfer-done", "transfer-fail", "transfer-cancel"}


def fail(message, code=1):
    print("trace_analyze: error: %s" % message, file=sys.stderr)
    sys.exit(code)


def load_dump(path):
    """Returns (header, records); validates the schema header line."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = [line for line in f.read().splitlines() if line.strip()]
    except OSError as e:
        fail(str(e), code=2)
    if not lines:
        fail("%s: empty dump" % path)
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        fail("%s:1: not JSON (%s)" % (path, e))
    schema = header.get("schema")
    if schema != SCHEMA:
        fail(
            "%s: unsupported trace schema %r (this tool reads %r); "
            "re-run the bench with a matching build" % (path, schema, SCHEMA)
        )
    records = []
    for n, line in enumerate(lines[1:], start=2):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as e:
            fail("%s:%d: not JSON (%s)" % (path, n, e))
    records.sort(key=lambda r: r["seq"])
    return header, records


def by_trace(records):
    chains = {}
    for r in records:
        chains.setdefault(r["trace"], []).append(r)
    chains.pop(0, None)  # ambient events live outside any chain
    return chains


def fmt_t(t):
    return "%12.3f" % t


def fmt_dt(dt):
    if dt is None:
        return "       -"
    return "%8.3fs" % dt


def span_tree(chain):
    """parent-of mapping for every span seen in the chain."""
    parents = {}
    for r in chain:
        if r["kind"] in SPAN_OPENERS and r["parent"]:
            parents[r["span"]] = r["parent"]
        parents.setdefault(r["span"], None)
    return parents


def span_depth(parents, span, _seen=None):
    depth, seen = 0, set()
    while parents.get(span) and span not in seen:
        seen.add(span)
        span = parents[span]
        depth += 1
    return depth


def summarize_traces(header, chains):
    print(
        "dump: %d recorded, %d dropped, %d traces minted, %d traces retained"
        % (header["recorded"], header["dropped"], header["traces"], len(chains))
    )
    print("%8s %8s %6s %12s %12s  %s" % ("trace", "events", "spans", "start", "end", "outcome"))
    for trace_id in sorted(chains):
        chain = chains[trace_id]
        spans = {r["span"] for r in chain}
        outcome = []
        terminals = [r for r in chain if r["kind"] in TERMINALS]
        for kind in sorted({r["kind"] for r in terminals}):
            outcome.append("%s x%d" % (kind, sum(1 for r in terminals if r["kind"] == kind)))
        failovers = sum(1 for r in chain if r["kind"] in FAILOVER_KINDS)
        if failovers:
            outcome.append("%d failover event(s)" % failovers)
        violations = sum(1 for r in chain if r["kind"] == "violation")
        if violations:
            outcome.append("%d VIOLATION(S)" % violations)
        print(
            "%8d %8d %6d %s %s  %s"
            % (
                trace_id,
                len(chain),
                len(spans),
                fmt_t(chain[0]["t"]),
                fmt_t(chain[-1]["t"]),
                ", ".join(outcome) or "open",
            )
        )


def petition_stages(chain):
    """Per-petition (correlation) stage latencies within one trace."""
    petitions = {}
    for r in chain:
        k, corr = r["kind"], r["a"]
        if k == "petition-send":
            p = petitions.setdefault(corr, {})
            p.setdefault("petition_send", r["t"])
        elif corr in petitions:
            p = petitions[corr]
            if k == "petition-ack":
                p.setdefault("petition_ack", r["t"])
            elif k == "part-send":
                p.setdefault("first_part", r["t"])
                p["parts_sent"] = p.get("parts_sent", 0) + 1
            elif k == "part-lost":
                p["parts_lost"] = p.get("parts_lost", 0) + 1
            elif k == "part-delivered":
                p["last_part"] = r["t"]
            elif k == "confirm-send":
                p.setdefault("confirm_send", r["t"])
            elif k == "confirm-recv":
                p["confirm_recv"] = r["t"]
            elif k in TERMINALS:
                p["terminal"] = r["t"]
                p["terminal_kind"] = k
    return petitions


def selection_stages(chain):
    """Per-selection-span request → deliver/fail latencies."""
    selections = {}
    for r in chain:
        if r["kind"] == "select-request":
            selections.setdefault(r["span"], {"request": r["t"], "reissues": 0})
        elif r["span"] in selections:
            s = selections[r["span"]]
            if r["kind"] == "select-deliver":
                s["deliver"] = r["t"]
            elif r["kind"] == "select-fail":
                s["fail"] = r["t"]
            elif r["kind"] == "select-reissue":
                s["reissues"] += 1
    return selections


def delta(p, a, b):
    if a in p and b in p:
        return p[b] - p[a]
    return None


def print_chain(trace_id, chain):
    print("== trace %d: %d events, %s .. %s ==" % (trace_id, len(chain), fmt_t(chain[0]["t"]).strip(), fmt_t(chain[-1]["t"]).strip()))
    parents = span_tree(chain)
    for r in chain:
        indent = "  " * (1 + span_depth(parents, r["span"]))
        flag = ""
        if r["kind"] in FAILOVER_KINDS:
            flag = "  <-- failover leg"
        elif r["kind"] == "violation":
            flag = "  <-- WATCHDOG VIOLATION"
        print(
            "%s %s%-18s span=%-5d node=%-4d a=%-8d b=%-8d%s"
            % (fmt_t(r["t"]), indent, r["kind"], r["span"], r["node"], r["a"], r["b"], flag)
        )

    selections = selection_stages(chain)
    if selections:
        print("  -- selection stages --")
        for span in sorted(selections):
            s = selections[span]
            end = s.get("deliver", s.get("fail"))
            latency = None if end is None else end - s["request"]
            verdict = "delivered" if "deliver" in s else ("failed" if "fail" in s else "open")
            extra = ", %d reissue(s)" % s["reissues"] if s["reissues"] else ""
            print(
                "    span %-5d %-9s latency=%s%s" % (span, verdict, fmt_dt(latency), extra)
            )

    petitions = petition_stages(chain)
    if petitions:
        print("  -- petition stage latencies --")
        print(
            "    %-10s %9s %9s %9s %9s  %s"
            % ("petition", "handshake", "data", "confirm", "total", "outcome")
        )
        for corr in sorted(petitions):
            p = petitions[corr]
            handshake = delta(p, "petition_send", "petition_ack")
            data = delta(p, "first_part", "last_part")
            confirm = delta(p, "confirm_send", "confirm_recv")
            total = delta(p, "petition_send", "terminal")
            outcome = p.get("terminal_kind", "open")
            lost = p.get("parts_lost", 0)
            if lost:
                outcome += " (%d part(s) lost)" % lost
            print(
                "    %-10d %s %s %s %s  %s"
                % (corr, fmt_dt(handshake), fmt_dt(data), fmt_dt(confirm), fmt_dt(total), outcome)
            )
    print()


def print_postmortem(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            pm = json.load(f)
    except OSError as e:
        fail(str(e), code=2)
    except json.JSONDecodeError as e:
        fail("%s: not JSON (%s)" % (path, e))
    if pm.get("schema") != POSTMORTEM_SCHEMA:
        fail("%s: unsupported postmortem schema %r (expected %r)" % (path, pm.get("schema"), POSTMORTEM_SCHEMA))
    print("postmortem: %s" % path)
    print("  reason: %s" % pm.get("reason"))
    if pm.get("detail"):
        print("  detail: %s" % pm.get("detail"))
    print("  time:   %s" % pm.get("time"))
    traces = pm.get("traces", [])
    if traces:
        print("  implicated traces: %s" % ", ".join(str(t) for t in traces))
    events = pm.get("events", [])
    print("  last %d events:" % len(events))
    for r in events:
        print(
            "  %s  %-18s trace=%-6d span=%-5d node=%-4d a=%-8d b=%-8d"
            % (fmt_t(r["t"]), r["kind"], r["trace"], r["span"], r["node"], r["a"], r["b"])
        )


def main():
    ap = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("dump", nargs="?", help="trace JSONL dump")
    ap.add_argument("--trace", type=int, help="print the causal chain of one trace id")
    ap.add_argument("--all", action="store_true", help="print every chain")
    ap.add_argument("--postmortem", help="pretty-print a postmortem JSON file")
    args = ap.parse_args()

    if args.postmortem:
        print_postmortem(args.postmortem)
        if not args.dump:
            return

    if not args.dump:
        ap.error("a trace dump (or --postmortem FILE) is required")

    header, records = load_dump(args.dump)
    chains = by_trace(records)

    if args.trace is not None:
        if args.trace not in chains:
            fail("trace %d not in dump (retained: %s)" % (args.trace, sorted(chains) or "none"), code=2)
        print_chain(args.trace, chains[args.trace])
    elif args.all:
        for trace_id in sorted(chains):
            print_chain(trace_id, chains[trace_id])
    else:
        summarize_traces(header, chains)


if __name__ == "__main__":
    main()
