#!/usr/bin/env python3
"""Plot the figure benches' CSV artifacts as paper-style bar charts.

Usage:
    # after running the benches (they drop bench_*.csv in the cwd)
    python3 scripts/plot_figures.py [--dir DIR] [--out DIR]

Produces one PNG per recognized CSV. Requires matplotlib; prints a
skip notice per missing file instead of failing.
"""

from __future__ import annotations

import argparse
import csv
import os
import sys


def read_csv(path: str) -> tuple[list[str], list[list[str]]]:
    with open(path, newline="") as fh:
        rows = list(csv.reader(fh))
    return rows[0], rows[1:]


def numeric(cell: str) -> float:
    return float(cell.rstrip("%"))


def plot_grouped_bars(plt, header, rows, title, ylabel, out_path,
                      value_columns=None, log=False):
    labels = [r[0] for r in rows]
    columns = value_columns or list(range(1, len(header)))
    width = 0.8 / len(columns)
    fig, ax = plt.subplots(figsize=(9, 4.5))
    for i, col in enumerate(columns):
        values = [numeric(r[col]) for r in rows]
        offsets = [x + i * width for x in range(len(labels))]
        ax.bar(offsets, values, width=width, label=header[col])
    ax.set_xticks([x + 0.4 - width / 2 for x in range(len(labels))])
    ax.set_xticklabels(labels, rotation=20, ha="right")
    ax.set_title(title)
    ax.set_ylabel(ylabel)
    if log:
        ax.set_yscale("log")
    if len(columns) > 1:
        ax.legend()
    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    print(f"wrote {out_path}")


PLOTS = {
    "bench_fig2_petition.csv": ("Figure 2: petition reception time", "seconds", [2], False),
    "bench_fig3_transfer50.csv": ("Figure 3: 50 MB transmission time", "seconds", [1], False),
    "bench_fig4_lastmb.csv": ("Figure 4: last-MB completion time", "seconds", [1], False),
    "bench_fig5_granularity.csv": ("Figure 5: 100 MB by granularity", "minutes", None, True),
    "bench_fig6_models.csv": ("Figure 6: per-part overhead by model", "seconds", [1, 2], False),
    "bench_fig7_execution.csv": ("Figure 7: execution vs transfer+execution", "minutes",
                                 [1, 2], False),
}


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--dir", default=".", help="directory holding the bench CSVs")
    parser.add_argument("--out", default=".", help="directory for the PNGs")
    args = parser.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; nothing plotted", file=sys.stderr)
        return 1

    plotted = 0
    for name, (title, ylabel, cols, log) in PLOTS.items():
        path = os.path.join(args.dir, name)
        if not os.path.exists(path):
            print(f"skip {name} (not found; run the bench first)")
            continue
        header, rows = read_csv(path)
        out_path = os.path.join(args.out, name.replace(".csv", ".png"))
        plot_grouped_bars(plt, header, rows, title, ylabel, out_path, cols, log)
        plotted += 1
    return 0 if plotted else 1


if __name__ == "__main__":
    sys.exit(main())
