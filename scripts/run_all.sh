#!/usr/bin/env bash
# Full verification: build, test, run the microbenchmark regression
# harness, regenerate every table/figure bench.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build
ctest --test-dir build -j "$(nproc)" --timeout 180
# Headline throughput metrics, diffed against the newest committed
# BENCH_<N>.json; fails on >5% regression. Pass --emit to snapshot a
# new baseline after intentional performance work.
python3 scripts/bench_compare.py --build-dir build "$@"
for b in build/bench/*; do
  case "$b" in
    */bench_micro_*) continue ;;  # covered by bench_compare.py above
  esac
  [ -x "$b" ] && "$b"
done
echo "peerlab: all tests and benches passed"
