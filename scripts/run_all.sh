#!/usr/bin/env bash
# Full verification: build, test, regenerate every table/figure.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build -j "$(nproc)" --timeout 180
for b in build/bench/*; do
  [ -x "$b" ] && "$b"
done
echo "peerlab: all tests and benches passed"
