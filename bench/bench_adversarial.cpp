// Adversarial sweep — scatter distribution against byzantine clients
// (compound "leech" peers: refuse every transfer petition while
// fabricating self-praise history each heartbeat), for four selection
// models, with the broker's observed-outcome reputation defenses OFF
// and ON from the same seeds.
//
// Failover keeps completion at 100% in both arms; the adversaries'
// cost is makespan (every share landing on a leech burns the petition
// retry budget before failing over). The defended broker vets reports
// (self-praise is a detected lie), scores attributed failures, and
// penalizes/quarantines offenders in ranking — so with defenses on the
// scatter routes around the leeches and the makespan degradation stays
// materially below the undefended arm.

#include <cmath>

#include "bench_common.hpp"
#include "peerlab/experiments/adversarial.hpp"

int main(int argc, char** argv) {
  using namespace peerlab;
  using namespace peerlab::experiments;
  auto options = bench::parse_options(argc, argv);
  const bench::BenchMetrics metrics(options, "bench_adversarial");

  print_figure_header("Adversarial sweep",
                      "Distribution makespan against free-riding, self-praising peers, "
                      "with broker reputation defenses off and on");
  const AdversarialResult result = run_bench_adversarial(options);

  Table table("Scatter distribution vs leeches (mean of " +
                  std::to_string(options.repetitions) +
                  " runs; leech = refuses petitions + fabricates praise)",
              {"model", "leeches", "makespan s", "failovers", "refused", "complete %",
               "def makespan s", "def failovers", "lies caught", "quarantines",
               "def complete %"});
  for (int m = 0; m < kAdvModels; ++m) {
    for (int level = 0; level < kAdvLevels; ++level) {
      const auto& c =
          result.cells[static_cast<std::size_t>(m)][static_cast<std::size_t>(level)];
      table.add_row({kAdvModelNames[m], kAdvLabels[level],
                     cell(c.undefended.makespan.mean(), 1),
                     cell(c.undefended.failovers.mean(), 2),
                     cell(c.undefended.refusals.mean(), 1),
                     cell(100.0 * c.undefended.completion_rate(), 1),
                     cell(c.defended.makespan.mean(), 1),
                     cell(c.defended.failovers.mean(), 2),
                     cell(c.defended.lies_caught.mean(), 1),
                     cell(c.defended.quarantines.mean(), 1),
                     cell(100.0 * c.defended.completion_rate(), 1)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  table.write_csv("bench_adversarial.csv");

  bool ok = true;
  double gap_heaviest = 0.0;       // sum over models: undefended - defended makespan
  double refused_heaviest = 0.0;   // sum over models: undefended refusals
  double caught_heaviest = 0.0;    // sum over models: defended lies caught
  double quarantined_heaviest = 0.0;
  for (int m = 0; m < kAdvModels; ++m) {
    const auto& row = result.cells[static_cast<std::size_t>(m)];
    const auto& clean = row[0];
    const auto& heaviest = row[static_cast<std::size_t>(kAdvLevels - 1)];
    gap_heaviest += heaviest.undefended.makespan.mean() - heaviest.defended.makespan.mean();
    refused_heaviest += heaviest.undefended.refusals.mean();
    caught_heaviest += heaviest.defended.lies_caught.mean();
    quarantined_heaviest += heaviest.defended.quarantines.mean();

    for (int level = 0; level < kAdvLevels; ++level) {
      const auto& c = row[static_cast<std::size_t>(level)];
      ok &= shape_check(std::string(kAdvModelNames[m]) + "/" + kAdvLabels[level] +
                            ": defended runs complete every share",
                        c.defended.completion_rate() == 1.0);
      ok &= shape_check(std::string(kAdvModelNames[m]) + "/" + kAdvLabels[level] +
                            ": undefended runs still complete (failover routes around)",
                        c.undefended.completion_rate() == 1.0);
    }
    // Zero adversaries: the defense layer must be inert — same worlds,
    // same seeds, no evidence, so the two arms take identical decisions.
    ok &= shape_check(std::string(kAdvModelNames[m]) +
                          ": with no adversaries, defenses do not perturb the run",
                      std::abs(clean.defended.makespan.mean() -
                               clean.undefended.makespan.mean()) < 1e-6);
  }
  // The acceptance pair: at ~30% leeches the defended arm's makespan
  // degradation (vs its own adversary-free cell) stays materially
  // below the undefended arm's. The slack term absorbs the honest-pool
  // substitution cost (avoiding a fast leech means scattering over a
  // slower honest peer).
  for (const int m : {1, 3}) {  // same-priority, hybrid
    const auto& row = result.cells[static_cast<std::size_t>(m)];
    const double off_deg =
        row[2].undefended.makespan.mean() - row[0].undefended.makespan.mean();
    const double on_deg = row[2].defended.makespan.mean() - row[0].defended.makespan.mean();
    ok &= shape_check(std::string(kAdvModelNames[m]) +
                          "/2-of-8: defended degradation materially below undefended",
                      on_deg <= 0.5 * off_deg + 30.0);
  }
  ok &= shape_check("heaviest level: defenses buy makespan across the model sweep",
                    gap_heaviest > 120.0);
  ok &= shape_check("heaviest level: adversaries actually refuse petitions",
                    refused_heaviest > 0.0);
  ok &= shape_check("heaviest level: defended broker catches fabricated praise",
                    caught_heaviest > 0.0);
  ok &= shape_check("heaviest level: repeat offenders get quarantined",
                    quarantined_heaviest > 0.0);
  return ok ? 0 : 1;
}
