// Figure 2 — time in receiving the petition for file transmission,
// per SimpleClient peer. Paper values (s): SC1 12.86, SC2 0.04,
// SC3 2.79, SC4 0.07, SC5 5.19, SC6 0.35, SC7 27.13, SC8 0.06.

#include <cmath>

#include "bench_common.hpp"
#include "peerlab/planetlab/catalog.hpp"

int main(int argc, char** argv) {
  using namespace peerlab;
  using namespace peerlab::experiments;
  auto options = bench::parse_options(argc, argv);
  const bench::BenchMetrics metrics(options, "bench_fig2_petition");

  print_figure_header("Figure 2", "Time in receiving the petition for file transmission");
  const PerPeer result = run_fig2_petition(options);

  Table table("Petition reception time (seconds, mean of " +
                  std::to_string(options.repetitions) + " runs)",
              {"peer", "paper (s)", "measured (s)", "stddev"});
  for (int i = 0; i < 8; ++i) {
    const auto& summary = result[static_cast<std::size_t>(i)];
    table.add_row({bench::sc_name(i), cell(planetlab::paper::kPetitionSeconds[i], 2),
                   cell(summary.mean(), 2), cell(summary.stddev(), 2)});
  }
  std::printf("%s\n", table.render().c_str());
  table.write_csv("bench_fig2_petition.csv");

  bool ok = true;
  // SC7 is the worst peer; SC1 second worst.
  std::size_t worst = 0;
  for (std::size_t i = 1; i < 8; ++i) {
    if (result[i].mean() > result[worst].mean()) worst = i;
  }
  ok &= shape_check("SC7 takes the largest time to receive the petition", worst == 6);
  ok &= shape_check("SC1 is the second slowest",
                    result[0].mean() > result[2].mean() &&
                        result[0].mean() > result[4].mean());
  // Calibration tracks the paper within 35% per peer (5-run means of a
  // lognormal are noisy for the sub-0.1 s peers, so allow slack there).
  bool calibrated = true;
  for (int i = 0; i < 8; ++i) {
    const double paper = planetlab::paper::kPetitionSeconds[i];
    const double measured = result[static_cast<std::size_t>(i)].mean();
    const double tolerance = paper < 0.2 ? paper * 1.0 : paper * 0.35;
    calibrated &= std::fabs(measured - paper) <= tolerance;
  }
  ok &= shape_check("per-peer means track the paper's Figure 2 values", calibrated);
  ok &= shape_check("fast peers answer in well under a second",
                    result[1].mean() < 0.5 && result[3].mean() < 0.5 &&
                        result[7].mean() < 0.5);
  return ok ? 0 : 1;
}
