// Churn sweep — scatter distribution under node crash/restart churn
// (MTTF/MTTR renewal per client node) for the three peer selection
// models. Verifies the failover machinery: every share must complete
// even when its peer dies mid-transfer (the service re-petitions the
// broker for a substitute), at the price of a longer makespan.
//
// Each cell also runs a broker-crash arm from the same seed: the
// primary broker dies mid-distribution, the standby is elected from
// the replication stream and the whole flock re-homes to it. The
// "bkill penalty s" column is the per-seed makespan cost of losing the
// broker; completion must stay at 100% in both arms.

#include "bench_common.hpp"
#include "peerlab/experiments/churn.hpp"

int main(int argc, char** argv) {
  using namespace peerlab;
  using namespace peerlab::experiments;
  auto options = bench::parse_options(argc, argv);
  const bench::BenchMetrics metrics(options, "bench_churn");

  print_figure_header("Churn sweep",
                      "Distribution makespan and failovers under node churn, with and "
                      "without losing the primary broker");
  const ChurnResult result = run_bench_churn(options);

  Table table("Scatter distribution under churn (mean of " +
                  std::to_string(options.repetitions) + " runs; MTTR " +
                  std::to_string(static_cast<int>(kChurnMttr)) +
                  " s; bkill = primary broker crashed mid-distribution)",
              {"model", "churn", "makespan s", "failovers", "crashes", "complete %",
               "bkill makespan s", "bkill penalty s", "bkill complete %"});
  for (int m = 0; m < 3; ++m) {
    for (int level = 0; level < kChurnLevels; ++level) {
      const auto& c =
          result.cells[static_cast<std::size_t>(m)][static_cast<std::size_t>(level)];
      table.add_row({kModelNames[m], kChurnLabels[level], cell(c.makespan.mean(), 1),
                     cell(c.failovers.mean(), 2), cell(c.crashes.mean(), 1),
                     cell(100.0 * c.completion_rate(), 1),
                     cell(c.broker_makespan.mean(), 1), cell(c.broker_penalty.mean(), 1),
                     cell(100.0 * c.broker_completion_rate(), 1)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  table.write_csv("bench_churn.csv");

  bool ok = true;
  double failovers_heaviest = 0.0;
  double penalty_heaviest = 0.0;
  for (int m = 0; m < 3; ++m) {
    const auto& row = result.cells[static_cast<std::size_t>(m)];
    const auto& clean = row[0];
    const auto& heaviest = row[static_cast<std::size_t>(kChurnLevels - 1)];
    failovers_heaviest += heaviest.failovers.mean();
    penalty_heaviest += heaviest.broker_penalty.mean();

    ok &= shape_check(std::string(kModelNames[m]) + ": fault-free run needs no failover",
                      clean.failovers.mean() == 0.0);
    for (int level = 0; level < kChurnLevels; ++level) {
      const auto& c = row[static_cast<std::size_t>(level)];
      ok &= shape_check(std::string(kModelNames[m]) + "/" + kChurnLabels[level] +
                            ": every share completes (failover leaves none behind)",
                        c.completion_rate() == 1.0);
      ok &= shape_check(std::string(kModelNames[m]) + "/" + kChurnLabels[level] +
                            ": broker crash still completes 100% (standby failover)",
                        c.broker_completion_rate() == 1.0);
      ok &= shape_check(std::string(kModelNames[m]) + "/" + kChurnLabels[level] +
                            ": every broker-crash run elects a replacement",
                        c.broker_elections.min() >= 1.0);
    }
    ok &= shape_check(std::string(kModelNames[m]) +
                          ": churn degrades makespan (heaviest >= fault-free)",
                      heaviest.makespan.mean() >= clean.makespan.mean());
  }
  ok &= shape_check("heaviest churn actually exercises failover",
                    failovers_heaviest > 0.0);
  ok &= shape_check("broker loss under heavy churn costs makespan (penalty >= 0)",
                    penalty_heaviest >= 0.0);
  return ok ? 0 : 1;
}
