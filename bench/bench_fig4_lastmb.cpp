// Figure 4 — transmission time of the last MB. The paper: "the time in
// completing the reception of the last Mb for peer SC7 is from 2 to 4
// times slower than the rest of the peers".

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace peerlab;
  using namespace peerlab::experiments;
  auto options = bench::parse_options(argc, argv);
  const bench::BenchMetrics metrics(options, "bench_fig4_lastmb");

  print_figure_header("Figure 4", "Transmission time of the last MB");
  const PerPeer result = run_fig4_last_mb(options);

  Table table("Last-MB completion time (seconds, mean of " +
                  std::to_string(options.repetitions) + " runs)",
              {"peer", "seconds", "stddev"});
  for (int i = 0; i < 8; ++i) {
    const auto& summary = result[static_cast<std::size_t>(i)];
    table.add_row({bench::sc_name(i), cell(summary.mean(), 2), cell(summary.stddev(), 2)});
  }
  std::printf("%s\n", table.render().c_str());
  table.write_csv("bench_fig4_lastmb.csv");

  bool ok = true;
  double others_sum = 0.0;
  std::size_t slowest = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    if (result[i].mean() > result[slowest].mean()) slowest = i;
    if (i != 6) others_sum += result[i].mean();
  }
  const double ratio = result[6].mean() / (others_sum / 7.0);
  ok &= shape_check("SC7 has the slowest last MB", slowest == 6);
  ok &= shape_check("SC7's last MB is roughly 2-4x the rest (measured " +
                        cell(ratio, 1) + "x, accept 2-8x)",
                    ratio >= 2.0 && ratio <= 8.0);
  return ok ? 0 : 1;
}
