// Figure 6 — file transmission according to three peer selection
// models (economic scheduling, data evaluator in same-priority mode,
// user's preference in quick-peer mode), at 4-part and 16-part
// granularity. Metric: mean per-part selection-and-dispatch overhead
// (DESIGN.md §6). The paper's claims reproduced here: the economic
// model is cheapest and the user-preference model most expensive at
// coarse granularity, and the three models converge at 16 parts.

#include "bench_common.hpp"
#include "peerlab/planetlab/catalog.hpp"

int main(int argc, char** argv) {
  using namespace peerlab;
  using namespace peerlab::experiments;
  auto options = bench::parse_options(argc, argv);
  const bench::BenchMetrics metrics(options, "bench_fig6_models");

  print_figure_header("Figure 6",
                      "Per-part overhead under three peer selection models");
  const Fig6Result result = run_fig6_models(options);

  Table table("Per-part selection+dispatch overhead (seconds, mean of " +
                  std::to_string(options.repetitions) + " runs)",
              {"model", "4 parts", "16 parts", "paper 4 parts", "paper 16 parts"});
  for (int m = 0; m < 3; ++m) {
    const auto idx = static_cast<std::size_t>(m);
    table.add_row({kModelNames[m], cell(result.four_parts[idx].mean(), 2),
                   cell(result.sixteen_parts[idx].mean(), 2),
                   cell(planetlab::paper::kFig6FourParts[m], 2),
                   cell(planetlab::paper::kFig6SixteenParts, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  table.write_csv("bench_fig6_models.csv");

  const double econ4 = result.four_parts[0].mean();
  const double same4 = result.four_parts[1].mean();
  const double quick4 = result.four_parts[2].mean();
  double lo16 = result.sixteen_parts[0].mean(), hi16 = lo16;
  double lo4 = econ4, hi4 = econ4;
  for (int m = 0; m < 3; ++m) {
    const auto idx = static_cast<std::size_t>(m);
    lo16 = std::min(lo16, result.sixteen_parts[idx].mean());
    hi16 = std::max(hi16, result.sixteen_parts[idx].mean());
    lo4 = std::min(lo4, result.four_parts[idx].mean());
    hi4 = std::max(hi4, result.four_parts[idx].mean());
  }

  bool ok = true;
  ok &= shape_check("economic model has the lowest 4-part overhead",
                    econ4 <= same4 && econ4 <= quick4);
  ok &= shape_check("user-preference (quick peer) has the highest 4-part overhead",
                    quick4 >= same4 && quick4 >= econ4);
  ok &= shape_check("models converge at 16 parts (relative spread shrinks)",
                    (hi16 / std::max(lo16, 1e-9)) < (hi4 / std::max(lo4, 1e-9)));
  ok &= shape_check("16-part overheads agree within 2x across models",
                    hi16 < 2.0 * std::max(lo16, 1e-9));
  return ok ? 0 : 1;
}
