// Future work (Section 5): "extend the empirical study ... by using a
// larger number of peer nodes" and "measure the peer selection effect
// on real P2P large scale applications". This bench deploys the full
// 25-node Table-1 slice (with two federated brokers) and runs a
// 60-job application stream under each selection model.

#include <map>

#include "bench_common.hpp"
#include "peerlab/core/blind.hpp"
#include "peerlab/core/data_evaluator.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/core/hybrid.hpp"
#include "peerlab/planetlab/deployment.hpp"

using namespace peerlab;
using namespace peerlab::experiments;

namespace {

struct StreamResult {
  int completed = 0;
  double mean_turnaround = 0.0;
  double makespan = 0.0;
  int distinct_executors = 0;
};

std::unique_ptr<core::SelectionModel> make_model(int index) {
  switch (index) {
    case 1: return std::make_unique<core::EconomicSchedulingModel>();
    case 2:
      return std::make_unique<core::DataEvaluatorModel>(
          core::DataEvaluatorModel::same_priority());
    case 3: return std::make_unique<core::HybridModel>();
    default: return std::make_unique<core::BlindModel>();
  }
}

StreamResult run_stream(std::uint64_t seed, int model) {
  sim::Simulator sim(seed);
  planetlab::DeploymentOptions opts;
  opts.full_slice = true;
  opts.brokers = 2;
  opts.boot_time = 90.0;
  planetlab::Deployment dep(sim, opts);
  dep.boot();
  for (std::size_t b = 0; b < dep.broker_count(); ++b) {
    dep.broker_at(b).set_selection_model(make_model(model));
  }
  overlay::Primitives api(dep.control());

  StreamResult result;
  double turnaround_sum = 0.0;
  std::map<PeerId, int> executors;
  constexpr int kJobs = 60;
  for (int j = 0; j < kJobs; ++j) {
    sim.schedule(static_cast<double>(j) * 20.0, [&] {
      api.submit_task_auto(90.0, megabytes(5.0), [&](const overlay::TaskOutcome& o) {
        if (o.accepted && o.ok) {
          ++result.completed;
          turnaround_sum += o.turnaround();
          result.makespan = std::max(result.makespan, o.completed);
          ++executors[o.executor];
        }
      });
    });
  }
  sim.run();
  if (result.completed > 0) {
    result.mean_turnaround = turnaround_sum / result.completed;
  }
  result.distinct_executors = static_cast<int>(executors.size());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = peerlab::bench::parse_options(argc, argv);
  if (options.repetitions > 3) options.repetitions = 3;  // 25-node worlds are heavier
  print_figure_header("Future work", "Selection models on the full 25-node slice");

  const char* names[4] = {"blind", "economic", "data-evaluator", "hybrid"};
  Table table("60-job stream, 25 peers, 2 federated brokers (mean of " +
                  std::to_string(options.repetitions) + " runs)",
              {"model", "completed", "mean turnaround (s)", "makespan (min)",
               "distinct executors"});
  double best = 1e18, worst = 0.0, min_completed = 1e18;
  for (int m = 0; m < 4; ++m) {
    sim::Summary completed, turnaround, makespan, spread;
    for (int rep = 0; rep < options.repetitions; ++rep) {
      const auto r = run_stream(repetition_seed(options, rep) + m, m);
      completed.add(r.completed);
      turnaround.add(r.mean_turnaround);
      makespan.add(to_minutes(r.makespan));
      spread.add(r.distinct_executors);
    }
    table.add_row({names[m], cell(completed.mean(), 1), cell(turnaround.mean(), 1),
                   cell(makespan.mean(), 1), cell(spread.mean(), 1)});
    best = std::min(best, turnaround.mean());
    worst = std::max(worst, turnaround.mean());
    min_completed = std::min(min_completed, completed.mean());
  }
  std::printf("%s\n", table.render().c_str());
  table.write_csv("bench_future_fullslice.csv");

  // The paper's conclusion, at scale: the selection model materially
  // changes what the application feels — and the overlay absorbs the
  // load under every model.
  bool ok = true;
  ok &= shape_check("every model completes (nearly) the whole stream",
                    min_completed >= 54.0);
  ok &= shape_check("model choice changes mean turnaround by >1.3x (measured " +
                        cell(worst / best, 1) + "x)",
                    worst / best > 1.3);
  return ok ? 0 : 1;
}
