// Ablation: granularity sweep beyond the paper's {1, 4, 16}. Where is
// the knee? Smaller parts relieve the JXTA large-message degradation
// but pay a petition/confirm round-trip per part; the sweep exposes
// the optimum for a fast peer (SC2) and the straggler (SC7).

#include "bench_common.hpp"
#include "peerlab/planetlab/deployment.hpp"

using namespace peerlab;
using namespace peerlab::experiments;

namespace {

double transfer_minutes(std::uint64_t seed, int sc, int parts) {
  sim::Simulator sim(seed);
  planetlab::Deployment dep(sim);
  transport::FileTransferConfig cfg;
  cfg.file_size = kFig5FileSize;
  cfg.parts = parts;
  cfg.petition_retry.initial_timeout = 90.0;
  cfg.confirm_timeout = 60.0;
  cfg.max_part_attempts = 24;
  double minutes = -1.0;
  dep.control().files().send_file(dep.sc_peer(sc), cfg,
                                  [&](const transport::TransferResult& r) {
                                    if (r.complete) minutes = to_minutes(r.transmission_time());
                                  });
  sim.run();
  PEERLAB_CHECK_MSG(minutes >= 0.0, "ablation transfer failed");
  return minutes;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = peerlab::bench::parse_options(argc, argv);
  print_figure_header("Ablation", "Chunk-size sweep for a 100 MB transfer");

  const int sweeps[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  Table table("100 MB transmission time vs part count (minutes, mean of " +
                  std::to_string(options.repetitions) + " runs)",
              {"parts", "part size MB", "SC2 (fast)", "SC7 (straggler)"});

  double sc2_best = 1e18, sc2_whole = 0.0;
  int sc2_best_parts = 0;
  for (const int parts : sweeps) {
    sim::Summary sc2, sc7;
    for (int rep = 0; rep < options.repetitions; ++rep) {
      const auto seed = repetition_seed(options, rep) ^ static_cast<std::uint64_t>(parts);
      sc2.add(transfer_minutes(seed, 2, parts));
      sc7.add(transfer_minutes(seed * 31, 7, parts));
    }
    table.add_row({std::to_string(parts), cell(100.0 / parts, 2), cell(sc2.mean(), 2),
                   cell(sc7.mean(), 2)});
    if (parts == 1) sc2_whole = sc2.mean();
    if (sc2.mean() < sc2_best) {
      sc2_best = sc2.mean();
      sc2_best_parts = parts;
    }
  }
  std::printf("%s\n", table.render().c_str());
  table.write_csv("bench_ablation_chunks.csv");

  bool ok = true;
  ok &= shape_check("finer granularity beats the monolith by >8x on SC2 (best " +
                        std::to_string(sc2_best_parts) + " parts)",
                    sc2_whole / sc2_best > 8.0);
  ok &= shape_check("the knee lies beyond the paper's 16 parts but before 512",
                    sc2_best_parts >= 16 && sc2_best_parts <= 256);
  return ok ? 0 : 1;
}
