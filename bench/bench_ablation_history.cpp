// Ablation: how much history does the economic model need? The
// scheduling-based model estimates ready time and service time from
// "historical data kept for the peergroup"; this sweep varies the
// estimator depth and the warm-up volume and reports the quality of
// the resulting placements.

#include "bench_common.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/planetlab/deployment.hpp"

using namespace peerlab;
using namespace peerlab::experiments;

namespace {

struct StreamResult {
  int completed = 0;
  double mean_turnaround = 0.0;
  int straggler_picks = 0;
};

StreamResult run_stream(std::uint64_t seed, std::size_t history_depth, int warmup_jobs) {
  sim::Simulator sim(seed);
  planetlab::Deployment dep(sim);
  dep.boot();
  core::EconomicConfig cfg;
  cfg.history_depth = history_depth;
  dep.broker().set_selection_model(std::make_unique<core::EconomicSchedulingModel>(cfg));
  overlay::Primitives api(dep.control());

  // Warm-up: seed the broker's history with real observations.
  for (int w = 0; w < warmup_jobs; ++w) {
    const int target = 1 + (w % 8);
    sim.schedule(static_cast<double>(w) * 150.0, [&, target] {
      overlay::TaskSubmission sub;
      sub.executor = dep.sc_peer(target);
      sub.work = 60.0;
      dep.control().task_service().submit(sub, [](const overlay::TaskOutcome&) {});
    });
  }
  sim.run();

  StreamResult result;
  double turnaround_sum = 0.0;
  constexpr int kJobs = 16;
  const PeerId straggler = dep.sc_peer(7);
  for (int j = 0; j < kJobs; ++j) {
    sim.schedule(sim.now() + static_cast<double>(j) * 90.0, [&, straggler] {
      api.submit_task_auto(120.0, 0, [&, straggler](const overlay::TaskOutcome& o) {
        if (o.executor == straggler) ++result.straggler_picks;
        if (o.accepted && o.ok) {
          ++result.completed;
          turnaround_sum += o.turnaround();
        }
      });
    });
  }
  sim.run();
  if (result.completed > 0) result.mean_turnaround = turnaround_sum / result.completed;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = peerlab::bench::parse_options(argc, argv);
  print_figure_header("Ablation", "Economic model: history depth x warm-up volume");

  Table table("16-job stream, economic model (mean of " +
                  std::to_string(options.repetitions) + " runs)",
              {"history depth", "warmup jobs", "completed", "turnaround (s)", "SC7 picks"});
  double cold_turnaround = 0.0, warm_turnaround = 0.0;
  for (const int warmup : {0, 16}) {
    for (const std::size_t depth : {std::size_t{1}, std::size_t{4}, std::size_t{16},
                                    std::size_t{64}}) {
      sim::Summary completed, turnaround, straggler;
      for (int rep = 0; rep < options.repetitions; ++rep) {
        const auto result =
            run_stream(repetition_seed(options, rep) ^ depth, depth, warmup);
        completed.add(result.completed);
        turnaround.add(result.mean_turnaround);
        straggler.add(result.straggler_picks);
      }
      table.add_row({std::to_string(depth), std::to_string(warmup),
                     cell(completed.mean(), 1), cell(turnaround.mean(), 1),
                     cell(straggler.mean(), 1)});
      if (warmup == 0 && depth == 16) cold_turnaround = turnaround.mean();
      if (warmup == 16 && depth == 16) warm_turnaround = turnaround.mean();
    }
  }
  std::printf("%s\n", table.render().c_str());
  table.write_csv("bench_ablation_history.csv");

  bool ok = true;
  ok &= shape_check("warmed-up history does not hurt placement quality",
                    warm_turnaround <= cold_turnaround * 1.5);
  ok &= shape_check("turnarounds are sane", cold_turnaround > 0.0 && warm_turnaround > 0.0);
  return ok ? 0 : 1;
}
