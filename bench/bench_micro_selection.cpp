// Selection-model microbenchmarks (google-benchmark): decision latency
// of each model as the candidate set grows. The paper remarks that the
// user-preference model "has a very low computational cost" — measured
// here against the other two.

#include <benchmark/benchmark.h>

#include <deque>
#include <memory>

#include "peerlab/core/blind.hpp"
#include "peerlab/core/data_evaluator.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/core/user_preference.hpp"

namespace {

using namespace peerlab;

struct Fixture {
  explicit Fixture(int n) {
    for (int i = 0; i < n; ++i) {
      auto& s = statistics.emplace_back(4.0 * 3600.0);
      for (int k = 0; k < 10; ++k) {
        s.record_message(static_cast<double>(k), (i + k) % 7 != 0);
      }
      s.sample_outbox(static_cast<double>(i % 5));
      stats::TaskRecord record;
      record.task = TaskId(static_cast<std::uint64_t>(i + 1));
      record.peer = PeerId(static_cast<std::uint64_t>(i + 1));
      record.submitted = 0.0;
      record.started = 0.0;
      record.finished = 10.0 + static_cast<double>(i % 13);
      record.ok = true;
      record.work = 20.0;
      history.record_task(record);
      history.record_response_time(PeerId(static_cast<std::uint64_t>(i + 1)),
                                   0.05 + 0.01 * static_cast<double>(i % 9));
    }
    for (int i = 0; i < n; ++i) {
      core::PeerSnapshot snap;
      snap.peer = PeerId(static_cast<std::uint64_t>(i + 1));
      snap.node = NodeId(static_cast<std::uint64_t>(i + 1));
      snap.cpu_ghz = 1.0 + 0.1 * static_cast<double>(i % 10);
      snap.queued_tasks = i % 3;
      snap.idle = i % 3 == 0;
      snap.statistics = &statistics[static_cast<std::size_t>(i)];
      snap.history = &history;
      snapshots.push_back(std::move(snap));
      order.push_back(PeerId(static_cast<std::uint64_t>(i + 1)));
    }
    context.purpose = core::SelectionContext::Purpose::kTaskExecution;
    context.work = 100.0;
    context.now = 100.0;
  }
  std::deque<stats::PeerStatistics> statistics;
  stats::HistoryStore history;
  std::vector<core::PeerSnapshot> snapshots;
  std::vector<PeerId> order;
  core::SelectionContext context;
};

template <typename MakeModel>
void run_model(benchmark::State& state, MakeModel make) {
  Fixture fixture(static_cast<int>(state.range(0)));
  auto model = make(fixture);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->select(fixture.snapshots, fixture.context));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SelectEconomic(benchmark::State& state) {
  run_model(state, [](Fixture&) {
    return std::make_unique<core::EconomicSchedulingModel>();
  });
}
BENCHMARK(BM_SelectEconomic)->Arg(8)->Arg(25)->Arg(100)->Arg(400);

void BM_SelectDataEvaluator(benchmark::State& state) {
  run_model(state, [](Fixture&) {
    return std::make_unique<core::DataEvaluatorModel>(
        core::DataEvaluatorModel::same_priority());
  });
}
BENCHMARK(BM_SelectDataEvaluator)->Arg(8)->Arg(25)->Arg(100)->Arg(400);

void BM_SelectUserPreference(benchmark::State& state) {
  run_model(state, [](Fixture& fixture) {
    return std::make_unique<core::UserPreferenceModel>(fixture.order);
  });
}
BENCHMARK(BM_SelectUserPreference)->Arg(8)->Arg(25)->Arg(100)->Arg(400);

void BM_SelectBlind(benchmark::State& state) {
  run_model(state, [](Fixture&) { return std::make_unique<core::BlindModel>(); });
}
BENCHMARK(BM_SelectBlind)->Arg(8)->Arg(25)->Arg(100)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
