// Ablation: cross traffic. PlanetLab links carried other slices'
// flows; this sweep raises the background load and measures what the
// overlay's 16-part transfers feel — and whether informed selection
// keeps helping when the whole substrate is noisy.

#include "bench_common.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/net/background.hpp"
#include "peerlab/planetlab/deployment.hpp"

using namespace peerlab;
using namespace peerlab::experiments;

namespace {

struct NoiseResult {
  double mean_transfer_s = 0.0;
  int complete = 0;
};

NoiseResult run_noisy(std::uint64_t seed, Seconds interarrival) {
  sim::Simulator sim(seed);
  planetlab::Deployment dep(sim);
  dep.boot();

  net::BackgroundTrafficConfig noise;
  noise.mean_interarrival = interarrival;
  noise.min_size = megabytes(1.0);
  noise.max_size = megabytes(16.0);
  noise.max_flows = 400;
  std::optional<net::BackgroundTraffic> traffic;
  if (interarrival > 0.0) {
    traffic.emplace(dep.network(), noise);
    traffic->start();
  }

  NoiseResult result;
  double sum = 0.0;
  constexpr int kTransfers = 8;
  for (int i = 0; i < kTransfers; ++i) {
    const int sc = 1 + (i % 8);
    sim.schedule(static_cast<double>(i) * 400.0, [&, sc] {
      transport::FileTransferConfig cfg;
      cfg.file_size = megabytes(20.0);
      cfg.parts = 16;
      cfg.petition_retry.initial_timeout = 90.0;
      cfg.confirm_timeout = 60.0;
      dep.control().files().send_file(dep.sc_peer(sc), cfg,
                                      [&](const transport::TransferResult& r) {
                                        if (r.complete) {
                                          ++result.complete;
                                          sum += r.transmission_time();
                                        }
                                      });
    });
  }
  sim.run_until(sim.now() + 40000.0);
  if (traffic) traffic->stop();
  sim.run();
  if (result.complete > 0) result.mean_transfer_s = sum / result.complete;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = peerlab::bench::parse_options(argc, argv);
  print_figure_header("Ablation", "Cross traffic on the substrate");

  Table table("8 x 20 MB / 16-part transfers under background load (mean of " +
                  std::to_string(options.repetitions) + " runs)",
              {"mean interarrival (s)", "transfers ok", "mean transfer (s)"});
  double quiet_time = 0.0, noisy_time = 0.0;
  double min_complete = 1e18;
  const double levels[] = {0.0, 60.0, 15.0, 5.0};
  for (const double level : levels) {
    sim::Summary ok, seconds;
    for (int rep = 0; rep < options.repetitions; ++rep) {
      const auto r = run_noisy(repetition_seed(options, rep) ^
                                   static_cast<std::uint64_t>(level * 10.0),
                               level);
      ok.add(r.complete);
      seconds.add(r.mean_transfer_s);
    }
    table.add_row({level == 0.0 ? "quiet" : cell(level, 0), cell(ok.mean(), 1),
                   cell(seconds.mean(), 1)});
    if (level == 0.0) quiet_time = seconds.mean();
    if (level == 5.0) noisy_time = seconds.mean();
    min_complete = std::min(min_complete, ok.mean());
  }
  std::printf("%s\n", table.render().c_str());
  table.write_csv("bench_ablation_crosstraffic.csv");

  bool ok = true;
  ok &= shape_check("transfers complete even under heavy cross traffic",
                    min_complete >= 7.5);
  ok &= shape_check("cross traffic slows transfers down (quiet " + cell(quiet_time, 1) +
                        "s vs noisy " + cell(noisy_time, 1) + "s)",
                    noisy_time > quiet_time);
  return ok ? 0 : 1;
}
