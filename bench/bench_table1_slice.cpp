// Table 1 — the PlanetLab slice. Regenerates the paper's node listing
// and reports the calibrated profile of each node in our substrate.

#include "bench_common.hpp"
#include "peerlab/planetlab/profiles.hpp"

int main(int, char**) {
  using namespace peerlab;
  using namespace peerlab::experiments;

  print_figure_header("Table 1", "Nodes added to the PlanetLab slice");

  Table table("25 slice nodes + broker host (calibrated substrate profiles)",
              {"hostname", "site", "country", "role", "cpu GHz", "bw Mbit/s",
               "petition s"});
  int ordinal = 0;
  for (const auto& entry : planetlab::table1()) {
    const net::NodeProfile profile =
        entry.simple_client_index > 0
            ? planetlab::simple_client_profile(entry.simple_client_index)
            : planetlab::slice_node_profile(entry, ordinal);
    const std::string role = entry.simple_client_index > 0
                                 ? "SC" + std::to_string(entry.simple_client_index)
                                 : "slice";
    table.add_row({entry.hostname, entry.site, entry.country, role,
                   cell(profile.cpu_ghz, 1), cell(profile.uplink_mbps, 1),
                   cell(profile.control_delay_mean, 2)});
    ++ordinal;
  }
  const auto broker = planetlab::broker_profile();
  table.add_row({broker.hostname, broker.site, broker.country, "broker",
                 cell(broker.cpu_ghz, 1), cell(broker.uplink_mbps, 1),
                 cell(broker.control_delay_mean, 2)});
  std::printf("%s\n", table.render().c_str());
  table.write_csv("bench_table1_slice.csv");

  bool ok = true;
  ok &= shape_check("slice has the paper's 25 nodes", planetlab::table1().size() == 25);
  ok &= shape_check("eight SimpleClients SC1..SC8 present",
                    planetlab::simple_clients().size() == 8);
  ok &= shape_check("broker is nozomi.lsi.upc.edu",
                    planetlab::broker_host().hostname == "nozomi.lsi.upc.edu");
  return ok ? 0 : 1;
}
