#pragma once

// Shared CLI plumbing for the figure benches: every binary accepts
//   --reps N    repetitions (default 5, like the paper)
//   --seed S    base seed (default 2007)
//   --threads T worker threads (default: hardware)
//   --profile   wall-clock span profiling (writes <name>.profile.txt)
//   --trace P   causal tracing: per-repetition JSONL dumps under the
//               path prefix P (see RunOptions::trace_path), with an
//               invariant watchdog online and postmortems armed
// and prints a paper-style table plus shape verdicts. Exit code 0 only
// if every shape check passes.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "peerlab/experiments/figures.hpp"
#include "peerlab/experiments/reporter.hpp"
#include "peerlab/obs/profile.hpp"

namespace peerlab::bench {

inline experiments::RunOptions parse_options(int argc, char** argv) {
  experiments::RunOptions options;
  for (int i = 1; i < argc; ++i) {
    const auto arg = std::string(argv[i]);
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : "";
    };
    if (arg == "--reps") {
      options.repetitions = std::atoi(next());
    } else if (arg == "--seed") {
      options.base_seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--threads") {
      options.threads = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--profile") {
      options.profile = true;
    } else if (arg == "--trace") {
      options.trace_path = next();
    }
  }
  if (options.repetitions <= 0) options.repetitions = 5;
  return options;
}

/// Names of the SimpleClient peers, SC1..SC8.
inline const char* sc_name(int i) {
  static const char* kNames[8] = {"SC1", "SC2", "SC3", "SC4", "SC5", "SC6", "SC7", "SC8"};
  return kNames[i];
}

/// Scope guard wiring observability into a bench run: attaches a fresh
/// registry to `options` so the experiment drivers record into it, and
/// writes `<name>.metrics.json` (the registry's flat summary, diffable
/// by scripts/bench_compare.py) when main() returns. Under --profile it
/// additionally prints the flat wall-clock span table (self-time
/// ranked; see obs::profile_table) and writes it to <name>.profile.txt.
class BenchMetrics {
 public:
  BenchMetrics(experiments::RunOptions& options, std::string name)
      : profile_(options.profile), name_(std::move(name)) {
    options.metrics = &registry_;
  }
  ~BenchMetrics() {
    registry_.write_json(name_ + ".metrics.json", name_);
    if (!profile_) return;
    const std::string table = obs::profile_table(registry_);
    if (table.empty()) return;
    std::fprintf(stderr, "\n-- wall-clock profile (%s) --\n%s", name_.c_str(),
                 table.c_str());
    std::ofstream out(name_ + ".profile.txt");
    out << table;
  }

  BenchMetrics(const BenchMetrics&) = delete;
  BenchMetrics& operator=(const BenchMetrics&) = delete;

  [[nodiscard]] obs::MetricRegistry& registry() noexcept { return registry_; }

 private:
  obs::MetricRegistry registry_;
  bool profile_;
  std::string name_;
};

}  // namespace peerlab::bench
