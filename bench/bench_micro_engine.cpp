// Engine microbenchmarks (google-benchmark): event queue, simulator
// loop, RNG draws, fluid flow scheduler recomputation — the hot paths
// every figure experiment runs through.

#include <benchmark/benchmark.h>

#include "peerlab/net/flow_scheduler.hpp"
#include "peerlab/sim/simulator.hpp"

namespace {

using namespace peerlab;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue queue;
    for (int i = 0; i < n; ++i) {
      queue.push(static_cast<double>((i * 7919) % 1000), [] {});
    }
    while (!queue.empty()) {
      benchmark::DoNotOptimize(queue.pop().time);
    }
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void BM_SimulatorEventChain(benchmark::State& state) {
  const auto hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim(1);
    int remaining = hops;
    std::function<void()> hop = [&] {
      if (--remaining > 0) sim.schedule(0.001, hop);
    };
    sim.schedule(0.001, hop);
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_SimulatorEventChain)->Arg(1 << 10)->Arg(1 << 14);

void BM_RngLognormal(benchmark::State& state) {
  sim::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.lognormal_mean(12.86, 0.25));
  }
}
BENCHMARK(BM_RngLognormal);

void BM_RngFork(benchmark::State& state) {
  sim::Rng rng(42);
  std::uint64_t stream = 0;
  for (auto _ : state) {
    sim::Rng forked = rng.fork(++stream);
    benchmark::DoNotOptimize(forked.uniform());
  }
}
BENCHMARK(BM_RngFork);

void BM_FlowSchedulerChurn(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim(1);
    net::Topology topo(sim.rng().fork(1));
    std::vector<NodeId> nodes;
    for (int i = 0; i <= flows; ++i) {
      net::NodeProfile p;
      p.hostname = "n" + std::to_string(i);
      p.uplink_mbps = 100.0;
      p.downlink_mbps = 10.0;
      nodes.push_back(topo.add_node(p));
    }
    net::FlowScheduler scheduler(sim, topo);
    state.ResumeTiming();
    // One source fanning out to `flows` sinks: every start triggers a
    // full max-min recomputation over the active set.
    for (int i = 0; i < flows; ++i) {
      net::FlowSpec spec;
      spec.src = nodes[0];
      spec.dst = nodes[static_cast<std::size_t>(i + 1)];
      spec.size = megabytes(1.0);
      spec.on_complete = [](Seconds) {};
      benchmark::DoNotOptimize(scheduler.start(std::move(spec)));
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowSchedulerChurn)->Arg(4)->Arg(16)->Arg(64);

void BM_FlowSchedulerLocality(benchmark::State& state) {
  // Many-component topology: `pairs` disjoint long-lived flows, each
  // on its own (src, dst) pair, plus one dedicated pair churned in the
  // timed loop. Incremental re-levelling only touches the dedicated
  // pair's component, so throughput should be flat in `pairs`; the
  // old global recompute degraded linearly.
  const auto pairs = static_cast<int>(state.range(0));
  sim::Simulator sim(1);
  net::Topology topo(sim.rng().fork(1));
  std::vector<NodeId> srcs, dsts;
  for (int i = 0; i <= pairs; ++i) {
    net::NodeProfile p;
    p.hostname = "s" + std::to_string(i);
    p.uplink_mbps = 100.0;
    p.downlink_mbps = 10.0;
    srcs.push_back(topo.add_node(p));
    p.hostname = "d" + std::to_string(i);
    dsts.push_back(topo.add_node(p));
  }
  net::FlowScheduler scheduler(sim, topo);
  for (int i = 1; i <= pairs; ++i) {
    net::FlowSpec spec;
    spec.src = srcs[static_cast<std::size_t>(i)];
    spec.dst = dsts[static_cast<std::size_t>(i)];
    spec.size = megabytes(1e8);  // outlives any realistic iteration count
    spec.on_complete = [](Seconds) {};
    scheduler.start(std::move(spec));
  }
  for (auto _ : state) {
    // One full transfer on the dedicated pair per iteration: the start
    // and the completion each re-level only that pair's component
    // while the `pairs` background components stay live. 1 MB at the
    // pair's 10 Mbit/s downlink bottleneck completes in 0.8 s.
    net::FlowSpec spec;
    spec.src = srcs[0];
    spec.dst = dsts[0];
    spec.size = megabytes(1.0);
    spec.on_complete = [](Seconds) {};
    benchmark::DoNotOptimize(scheduler.start(std::move(spec)));
    sim.run_until(sim.now() + 0.9);
  }
  state.SetItemsProcessed(state.iterations() * 2);  // start + completion
}
BENCHMARK(BM_FlowSchedulerLocality)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
