// Figure 3 — transmission time for a file of 50 MB, per SimpleClient.
// The paper plots per-peer times with SC7 "the latest in completing
// the file transmission".

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace peerlab;
  using namespace peerlab::experiments;
  auto options = bench::parse_options(argc, argv);
  const bench::BenchMetrics metrics(options, "bench_fig3_transfer50");

  print_figure_header("Figure 3", "Transmission time for a file of 50 MB");
  const PerPeer result = run_fig3_transfer50(options);

  Table table("50 MB transfer time (mean of " + std::to_string(options.repetitions) +
                  " runs)",
              {"peer", "seconds", "minutes", "stddev (s)"});
  for (int i = 0; i < 8; ++i) {
    const auto& summary = result[static_cast<std::size_t>(i)];
    table.add_row({bench::sc_name(i), cell(summary.mean(), 1),
                   cell(to_minutes(summary.mean()), 2), cell(summary.stddev(), 1)});
  }
  std::printf("%s\n", table.render().c_str());
  table.write_csv("bench_fig3_transfer50.csv");

  bool ok = true;
  std::size_t slowest = 0;
  double others_sum = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    if (result[i].mean() > result[slowest].mean()) slowest = i;
    if (i != 6) others_sum += result[i].mean();
  }
  const double others_mean = others_sum / 7.0;
  ok &= shape_check("SC7 is the latest in completing the transmission", slowest == 6);
  ok &= shape_check("SC7 is at least 2x slower than the average of the rest",
                    result[6].mean() > 2.0 * others_mean);
  ok &= shape_check("healthy peers finish a 50 MB single-part transfer in minutes",
                    result[1].mean() > 60.0 && result[1].mean() < 1800.0);
  return ok ? 0 : 1;
}
