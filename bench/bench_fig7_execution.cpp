// Figure 7 — just execution vs transmission & execution, per
// SimpleClient. The validating workload: processing a large (100 MB)
// virtual-campus file on the selected peer. Peer SC7 is the
// bottleneck on both axes.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace peerlab;
  using namespace peerlab::experiments;
  auto options = bench::parse_options(argc, argv);
  const bench::BenchMetrics metrics(options, "bench_fig7_execution");

  print_figure_header("Figure 7", "Just execution vs transmission & execution");
  const Fig7Result result = run_fig7_execution(options);

  Table table("Task completion (minutes, mean of " +
                  std::to_string(options.repetitions) + " runs)",
              {"peer", "just execution", "transmission & execution", "transfer share"});
  for (int i = 0; i < 8; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const double just = to_minutes(result.just_execution[idx].mean());
    const double both = to_minutes(result.transmission_execution[idx].mean());
    table.add_row({bench::sc_name(i), cell(just, 1), cell(both, 1),
                   cell(100.0 * (both - just) / both, 0) + "%"});
  }
  std::printf("%s\n", table.render().c_str());
  table.write_csv("bench_fig7_execution.csv");

  bool ok = true;
  bool additive = true;
  std::size_t slowest_exec = 0, slowest_both = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    additive &= result.transmission_execution[i].mean() > result.just_execution[i].mean();
    if (result.just_execution[i].mean() > result.just_execution[slowest_exec].mean()) {
      slowest_exec = i;
    }
    if (result.transmission_execution[i].mean() >
        result.transmission_execution[slowest_both].mean()) {
      slowest_both = i;
    }
  }
  ok &= shape_check("transmission & execution exceeds just execution on every peer",
                    additive);
  ok &= shape_check("SC7 is the execution bottleneck", slowest_exec == 6);
  ok &= shape_check("SC7 is also the transmission+execution bottleneck",
                    slowest_both == 6);
  const double sc7 = to_minutes(result.transmission_execution[6].mean());
  ok &= shape_check("SC7's combined time lands in the paper's tens-of-minutes range "
                    "(measured " + cell(sc7, 1) + " min)",
                    sc7 > 10.0 && sc7 < 60.0);
  const double sc2_just = to_minutes(result.just_execution[1].mean());
  ok &= shape_check("healthy peers execute in a few minutes (SC2 " +
                        cell(sc2_just, 1) + " min)",
                    sc2_just > 1.0 && sc2_just < 10.0);
  return ok ? 0 : 1;
}
