// Economic sweep — deadline/budget-constrained contracts against five
// selection arms across three load levels (DESIGN.md §17,
// docs/ECONOMICS.md). Every job carries the same contract (16 MB push,
// 45 s deadline slack, 60-credit budget); the arms differ in whether
// and how the broker's econ engine reads it:
//
//   blind        engine OFF (pristine baseline — contracts ignored)
//   economic     paper's scheduling model + cost-time admission
//   quick-peer   user-preference model + cost-time admission
//   hybrid       hybrid model + cost-time admission
//   efficiency   blind ranking re-ordered by the Dubey–Tokekar score
//
// Costs are priced uniformly by one bench-side quoter, so "blind is
// more expensive" means the round-robin landed on pricier peers than
// the engine would have admitted, on the exact same price schedule.

#include <cmath>

#include "bench_common.hpp"
#include "peerlab/experiments/economic.hpp"

int main(int argc, char** argv) {
  using namespace peerlab;
  using namespace peerlab::experiments;
  auto options = bench::parse_options(argc, argv);
  const bench::BenchMetrics metrics(options, "bench_economic");

  print_figure_header("Economic sweep",
                      "Deadline-miss and budget-violation rates per selection arm under "
                      "rising load, with DBC admission and Dubey-Tokekar ranking");
  const EconResult result = run_bench_economic(options);

  Table table("Contracted transfers (mean of " + std::to_string(options.repetitions) +
                  " runs; " + std::to_string(kEconJobs) + " jobs/run, " +
                  std::to_string(kEconPayload / kMegabyte) + " MB, " +
                  std::to_string(static_cast<int>(kEconDeadlineSlack)) + " s slack, " +
                  std::to_string(static_cast<int>(kEconBudget)) + "-credit budget)",
              {"model", "load", "complete %", "deadline miss %", "budget viol %",
               "mean cost", "mean completion s"});
  for (int m = 0; m < kEconModels; ++m) {
    for (int load = 0; load < kEconLoads; ++load) {
      const auto& arm =
          result.cells[static_cast<std::size_t>(m)][static_cast<std::size_t>(load)];
      table.add_row({kEconModelNames[m], kEconLoadLabels[load],
                     cell(100.0 * arm.ledger.completion_rate(), 1),
                     cell(100.0 * arm.ledger.deadline_miss_rate(), 1),
                     cell(100.0 * arm.ledger.budget_violation_rate(), 1),
                     cell(arm.cost.mean(), 2), cell(arm.completion_time.mean(), 1)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  table.write_csv("bench_economic.csv");

  bool ok = true;
  const auto& blind = result.cells[0];
  for (int m = 0; m < kEconModels; ++m) {
    for (int load = 0; load < kEconLoads; ++load) {
      const auto& arm =
          result.cells[static_cast<std::size_t>(m)][static_cast<std::size_t>(load)];
      ok &= shape_check(std::string(kEconModelNames[m]) + "/" + kEconLoadLabels[load] +
                            ": every job resolves (ledger accounts all contracts)",
                        arm.ledger.jobs() ==
                            static_cast<std::size_t>(kEconJobs * arm.runs));
      ok &= shape_check(std::string(kEconModelNames[m]) + "/" + kEconLoadLabels[load] +
                            ": transfers complete (failure is a miss, not a loss)",
                        arm.ledger.completion_rate() == 1.0);
    }
  }
  // The acceptance pair: at light load everything completes, so cost is
  // the only differentiator — the engine-admitted arms must beat the
  // blind rotation on mean cost at equal completion.
  for (const int m : {1, 2}) {  // economic, quick-peer
    const auto& light = result.cells[static_cast<std::size_t>(m)][0];
    ok &= shape_check(std::string(kEconModelNames[m]) +
                          "/light: equal completion with the blind baseline",
                      light.ledger.completion_rate() == blind[0].ledger.completion_rate());
    ok &= shape_check(std::string(kEconModelNames[m]) +
                          "/light: beats blind selection on mean cost",
                      light.cost.mean() < blind[0].cost.mean());
    ok &= shape_check(std::string(kEconModelNames[m]) +
                          "/light: fewer budget violations than blind",
                      light.ledger.budget_violations() <= blind[0].ledger.budget_violations());
  }
  // Load must actually bite the baseline: heavy load stretches blind's
  // completions (overlapping jobs share peer links), and its miss rate
  // never *improves* under pressure. Strict miss growth is seed-
  // dependent at low rep counts (the stretched tail has to straddle
  // the slack), so the gate is the completion stretch.
  ok &= shape_check("blind: heavy load stretches mean completion time",
                    blind[2].completion_time.mean() > 1.1 * blind[0].completion_time.mean());
  ok &= shape_check("blind: deadline misses do not improve under heavy load",
                    blind[2].ledger.deadline_misses() >= blind[0].ledger.deadline_misses());
  // And informed admission must absorb some of that pressure.
  {
    double informed_best = 1e9;
    for (const int m : {1, 2, 3, 4}) {
      informed_best = std::min(
          informed_best,
          result.cells[static_cast<std::size_t>(m)][2].ledger.deadline_miss_rate());
    }
    ok &= shape_check("heavy load: best informed arm misses fewer deadlines than blind",
                      informed_best <= blind[2].ledger.deadline_miss_rate());
  }
  return ok ? 0 : 1;
}
