// Figure 5 — file transmission time when a 100 MB file is sent as a
// whole or divided into 4 / 16 parts. The paper: "the transmission
// time of the file as a whole it's not worth!"; with 16 parts
// (6.25 MB each) the average is about 1.7 minutes.

#include "bench_common.hpp"
#include "peerlab/planetlab/catalog.hpp"

int main(int argc, char** argv) {
  using namespace peerlab;
  using namespace peerlab::experiments;
  auto options = bench::parse_options(argc, argv);
  const bench::BenchMetrics metrics(options, "bench_fig5_granularity");

  print_figure_header("Figure 5",
                      "100 MB transmission: complete file vs 4 parts vs 16 parts");
  const Fig5Result result = run_fig5_granularity(options);

  Table table("Transmission time (minutes, mean of " +
                  std::to_string(options.repetitions) + " runs)",
              {"peer", "complete file", "4 parts", "16 parts"});
  double sixteen_sum = 0.0;
  for (int i = 0; i < 8; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    table.add_row({bench::sc_name(i), cell(to_minutes(result.whole[idx].mean()), 1),
                   cell(to_minutes(result.four[idx].mean()), 1),
                   cell(to_minutes(result.sixteen[idx].mean()), 1)});
    sixteen_sum += to_minutes(result.sixteen[idx].mean());
  }
  std::printf("%s\n", table.render().c_str());
  table.write_csv("bench_fig5_granularity.csv");
  const double sixteen_avg = sixteen_sum / 8.0;
  std::printf("16-part average: %.2f min (paper: %.1f min)\n\n", sixteen_avg,
              planetlab::paper::kSixteenPartMinutes);

  bool ok = true;
  bool whole_worst = true, four_middle = true;
  for (std::size_t i = 0; i < 8; ++i) {
    whole_worst &= result.whole[i].mean() > result.four[i].mean();
    four_middle &= result.four[i].mean() > result.sixteen[i].mean();
  }
  ok &= shape_check("sending the whole file is slowest for every peer", whole_worst);
  ok &= shape_check("4 parts is slower than 16 parts for every peer", four_middle);
  // Healthy-peer ratio: whole vs 16 parts differs by an order of
  // magnitude (the paper's 25-35 min vs 1.7 min).
  const double ratio = result.whole[1].mean() / result.sixteen[1].mean();
  ok &= shape_check("whole/16-parts ratio on a healthy peer is ~10-30x (measured " +
                        cell(ratio, 1) + "x)",
                    ratio > 8.0 && ratio < 40.0);
  ok &= shape_check("16-part average is around the paper's 1.7 min (within 2x)",
                    sixteen_avg > planetlab::paper::kSixteenPartMinutes / 2.0 &&
                        sixteen_avg < planetlab::paper::kSixteenPartMinutes * 2.0);
  return ok ? 0 : 1;
}
