// Overlay-scale microbenchmarks (google-benchmark): wall-clock cost of
// standing up deployments and pushing workloads through the full stack
// — the simulator's events-per-second throughput, which bounds how
// many repetitions the figure benches can afford.

#include <benchmark/benchmark.h>

#include "peerlab/core/economic.hpp"
#include "peerlab/planetlab/deployment.hpp"

namespace {

using namespace peerlab;

void BM_DeploymentBoot(benchmark::State& state) {
  const bool full = state.range(0) != 0;
  for (auto _ : state) {
    sim::Simulator sim(1);
    planetlab::DeploymentOptions opts;
    opts.full_slice = full;
    opts.boot_time = full ? 90.0 : 60.0;
    planetlab::Deployment dep(sim, opts);
    dep.boot();
    benchmark::DoNotOptimize(dep.broker().registered_clients().size());
  }
}
BENCHMARK(BM_DeploymentBoot)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_FileTransferRoundTrip(benchmark::State& state) {
  const auto parts = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator sim(1);
    planetlab::Deployment dep(sim);
    transport::FileTransferConfig cfg;
    cfg.file_size = megabytes(10.0);
    cfg.parts = parts;
    bool done = false;
    dep.control().files().send_file(dep.sc_peer(2), cfg,
                                    [&](const transport::TransferResult& r) {
                                      done = r.complete;
                                    });
    sim.run();
    benchmark::DoNotOptimize(done);
    events += sim.executed_events();
  }
  state.counters["sim_events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FileTransferRoundTrip)->Arg(1)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_TaskRoundTripThroughOverlay(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim(1);
    planetlab::Deployment dep(sim);
    dep.boot();
    dep.broker().set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
    overlay::Primitives api(dep.control());
    bool ok = false;
    api.submit_task_auto(30.0, 0, [&](const overlay::TaskOutcome& o) { ok = o.ok; });
    sim.run();
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_TaskRoundTripThroughOverlay)->Unit(benchmark::kMillisecond);

void BM_SimulatedHourOfHeartbeats(benchmark::State& state) {
  // Pure liveness machinery: how cheap is one simulated hour of an
  // idle 8-peer deployment (heartbeats + stats reports only)?
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator sim(1);
    planetlab::Deployment dep(sim);
    dep.boot();
    sim.run_until(sim.now() + 3600.0);
    events += sim.executed_events();
  }
  state.counters["sim_events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatedHourOfHeartbeats)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
