// Scale sweep — per-petition selection latency of the candidate-index
// fast path at 10k / 100k / 1M registered clients, for all five
// selection models, against the O(n) snapshot-scan baseline.
//
// Two registry flavors bracket the index's behavior:
//
//  - "correlated": a latent per-peer quality q (a random permutation,
//    so distinct and tie-free) drives every attribute strictly
//    monotonically — fast CPUs are also cheap, responsive and well
//    historied. This is the regime the threshold walk is built for:
//    with rank-aligned criterion trees it converges in O(k) pulls and
//    per-petition latency is O((k + pulls) log n) — the sub-linearity
//    shape checks pin that for all five models. (With independent
//    per-attribute noise the walk instead pays for the O(n)-sized
//    fringe of peers near-optimal on one attribute — that regime is
//    the uniform flavor's job.)
//
//  - "uniform": independently drawn attributes with the stats/history
//    subsets bounded, so the frontier trees carry huge tied runs
//    (resp = 0, rate = default) and the threshold bound cannot
//    converge. The walk detects this via its pull budget and finishes
//    with the dense cached-key sweep — O(n), but with a much smaller
//    constant than the scan. Here the checks require the index to beat
//    the scan at every arm; sub-linearity is only required of the
//    models whose fast path never walks (blind/evaluator/preference).
//
// Extra flag: --max-clients N caps the largest arm (CI runs the 10k
// arms only; the full 1M sweep is for the BENCH_5 snapshot).

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "peerlab/core/blind.hpp"
#include "peerlab/core/candidate_index.hpp"
#include "peerlab/core/data_evaluator.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/core/hybrid.hpp"
#include "peerlab/core/user_preference.hpp"
#include "peerlab/stats/history.hpp"
#include "peerlab/stats/peer_statistics.hpp"

namespace {

using namespace peerlab;

constexpr Seconds kNow = 1000.0;
/// Uniform flavor: statistics / history are bounded to a fleet subset —
/// broker memory for windowed stats does not scale to 1M peers, and
/// absent records exercise the estimators' fallback arms (and create
/// the tied default-key runs the dense fallback exists for).
constexpr std::size_t kStatsPeers = 4096;
constexpr std::size_t kHistoryPeers = 1024;

struct Population {
  std::vector<PeerId> peers;
  std::vector<std::string> hostnames;
  std::vector<double> cpu;
  std::vector<double> price;
  std::vector<bool> idle;
  std::vector<int> queued;
  std::vector<int> transfers;
  std::vector<stats::PeerStatistics> statistics;  // prefix of the fleet
  stats::HistoryStore history{32};
};

Population build_population(std::size_t n, std::uint64_t seed, bool correlated) {
  Population pop;
  std::mt19937_64 rng(seed);
  const std::size_t stats_cap = correlated ? n : kStatsPeers;
  const std::size_t history_cap = correlated ? n : kHistoryPeers;
  pop.peers.reserve(n);
  pop.hostnames.reserve(n);
  pop.cpu.reserve(n);
  pop.price.reserve(n);
  pop.idle.reserve(n);
  pop.queued.reserve(n);
  pop.transfers.reserve(n);
  pop.statistics.reserve(std::min(n, stats_cap));
  // Correlated flavor: q is a shuffled permutation scaled into (0, 1) —
  // every peer's q is distinct, so every strictly monotone transform of
  // it is a tie-free key, and all criterion trees share one rank order.
  std::vector<std::uint32_t> quality;
  if (correlated) {
    quality.resize(n);
    for (std::size_t i = 0; i < n; ++i) quality[i] = static_cast<std::uint32_t>(i);
    std::shuffle(quality.begin(), quality.end(), rng);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const PeerId peer(i + 1);
    pop.peers.push_back(peer);
    pop.hostnames.push_back("p" + std::to_string(i + 1));
    const double q = correlated
                         ? (static_cast<double>(quality[i]) + 0.5) / static_cast<double>(n)
                         : 0.0;
    if (correlated) {
      pop.cpu.push_back(0.5 + 3.5 * q);
      pop.price.push_back(0.3 + 2.0 * (1.0 - q));
      pop.idle.push_back(true);
      pop.queued.push_back(1);
      pop.transfers.push_back(1);
    } else {
      pop.cpu.push_back(0.5 + 0.001 * static_cast<double>(rng() % 3500));
      pop.price.push_back(0.25 + 0.0005 * static_cast<double>(rng() % 4000));
      pop.idle.push_back((rng() % 3) != 0);
      pop.queued.push_back(static_cast<int>(rng() % 5));
      pop.transfers.push_back(static_cast<int>(rng() % 3));
    }
    if (i < stats_cap) {
      pop.statistics.emplace_back();
      auto& s = pop.statistics.back();
      for (int e = 0; e < 8; ++e) {
        const bool ok = correlated ? (static_cast<double>(rng() % 1000) < 100.0 + 850.0 * q)
                                   : (rng() % 4) != 0;
        s.record_message(kNow - 60.0 * (8 - e), ok);
      }
      s.sample_outbox(correlated ? (1.0 - q) * 20.0 : static_cast<double>(rng() % 20));
      s.record_task_execution((rng() % 3) != 0);
    }
    if (i < history_cap) {
      stats::TaskRecord task;
      task.task = TaskId(i + 1);
      task.peer = peer;
      task.submitted = kNow - 500.0;
      task.started = kNow - 499.0;
      const double exec = correlated ? 1.0 + 4.0 * (1.0 - q)
                                     : 1.0 + 0.1 * static_cast<double>(rng() % 200);
      task.finished = task.started + exec;
      task.ok = true;
      task.work = correlated ? exec * (0.5 + 3.5 * q)
                             : 1.0 + 0.1 * static_cast<double>(rng() % 100);
      pop.history.record_task(task);
      stats::TransferRecord transfer;
      transfer.transfer = TransferId(i + 1);
      transfer.peer = peer;
      if (correlated) {
        transfer.size = static_cast<Bytes>(4) * 1024 * 1024;
        const double rate = 20.0 + 80.0 * q;  // Mbit/s target
        transfer.duration = static_cast<double>(transfer.size) * 8.0 / (rate * 1e6);
      } else {
        transfer.size = static_cast<Bytes>(rng() % 4096 + 256) * 1024;
        transfer.duration = 0.5 + 0.1 * static_cast<double>(rng() % 100);
      }
      transfer.petition_time = kNow - 400.0;
      transfer.ok = true;
      pop.history.record_transfer(transfer);
      pop.history.record_response_time(
          peer, correlated ? 0.01 + 0.2 * (1.0 - q)
                           : 0.01 + 0.001 * static_cast<double>(rng() % 500));
    }
  }
  return pop;
}

core::SelectionContext make_context(std::mt19937_64& rng) {
  core::SelectionContext ctx;
  ctx.now = kNow;
  if (rng() % 2 == 0) ctx.work = 1.0 + 0.5 * static_cast<double>(rng() % 20);
  if (rng() % 2 == 0) ctx.payload_size = static_cast<Bytes>(rng() % 8192 + 1) * 1024;
  return ctx;
}

std::vector<core::PeerSnapshot> make_snapshots(const Population& pop) {
  std::vector<core::PeerSnapshot> snaps;
  snaps.reserve(pop.peers.size());
  for (std::size_t i = 0; i < pop.peers.size(); ++i) {
    core::PeerSnapshot snap;
    snap.peer = pop.peers[i];
    snap.node = NodeId(pop.peers[i].value() + 1);
    snap.hostname = pop.hostnames[i];
    snap.cpu_ghz = pop.cpu[i];
    snap.price_per_cpu_second = pop.price[i];
    snap.online = true;
    snap.idle = pop.idle[i];
    snap.queued_tasks = pop.queued[i];
    snap.active_transfers = pop.transfers[i];
    snap.statistics = i < pop.statistics.size() ? &pop.statistics[i] : nullptr;
    snap.history = &pop.history;
    snaps.push_back(std::move(snap));
  }
  return snaps;
}

struct Measurement {
  double index_us = 0.0;
  double scan_us = 0.0;
  double pulls_per_petition = 0.0;
  bool fast_path_only = false;
};

double elapsed_us(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

Measurement measure_model(core::CandidateIndex& index, core::SelectionModel& model,
                          const std::vector<core::PeerSnapshot>& snaps, std::uint64_t seed,
                          int index_reps, int scan_reps) {
  Measurement result;
  index.bind_model(&model);
  std::vector<PeerId> out;
  // Warm-up petition absorbs the full re-key flush of the rebind.
  core::SelectionContext warm;
  warm.now = kNow;
  (void)index.try_select(warm, kNow, 4, out);

  // Batch each timed loop until a minimum wall-clock window accumulates:
  // the cheap fast paths finish a whole batch in microseconds, where a
  // single scheduler preemption would otherwise dominate the mean. The
  // expensive arms (dense sweeps, 1M scans) blow past the window in
  // their first batch, so their cost is unchanged.
  constexpr double kMinWindowUs = 20'000.0;
  const auto fallbacks_before = index.scan_fallbacks();
  const auto pulls_before = index.bound_pulls();
  std::mt19937_64 rng(seed);
  long long index_total = 0;
  double index_elapsed = 0.0;
  while (index_total < index_reps || index_elapsed < kMinWindowUs) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < index_reps; ++rep) {
      const auto ctx = make_context(rng);
      (void)index.try_select(ctx, kNow, 4, out);
    }
    const auto t1 = std::chrono::steady_clock::now();
    index_elapsed += elapsed_us(t0, t1);
    index_total += index_reps;
  }
  result.index_us = index_elapsed / static_cast<double>(index_total);
  result.fast_path_only = index.scan_fallbacks() == fallbacks_before;
  result.pulls_per_petition =
      static_cast<double>(index.bound_pulls() - pulls_before) / static_cast<double>(index_total);

  std::mt19937_64 scan_rng(seed);
  long long scan_total = 0;
  double scan_elapsed = 0.0;
  while (scan_total < scan_reps || scan_elapsed < kMinWindowUs) {
    const auto s0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < scan_reps; ++rep) {
      const auto ctx = make_context(scan_rng);
      (void)model.select_k(snaps, ctx, 4);
    }
    const auto s1 = std::chrono::steady_clock::now();
    scan_elapsed += elapsed_us(s0, s1);
    scan_total += scan_reps;
  }
  result.scan_us = scan_elapsed / scan_total;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace peerlab;
  using namespace peerlab::experiments;
  auto options = bench::parse_options(argc, argv);
  std::size_t max_clients = 1'000'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-clients") == 0 && i + 1 < argc) {
      max_clients = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    }
  }
  bench::BenchMetrics metrics(options, "bench_scale");

  print_figure_header("Scale sweep",
                      "Per-petition selection latency, candidate index vs full scan, "
                      "10k/100k/1M registered clients, correlated + uniform registries");

  std::vector<std::size_t> arms;
  for (const std::size_t n : {std::size_t{10'000}, std::size_t{100'000}, std::size_t{1'000'000}}) {
    if (n <= max_clients) arms.push_back(n);
  }
  if (arms.empty()) arms.push_back(10'000);

  const char* model_names[] = {"blind", "economic", "evaluator", "preference", "hybrid"};
  constexpr int kModels = 5;
  constexpr int kFlavors = 2;  // 0 = correlated, 1 = uniform
  const char* flavor_names[] = {"correlated", "uniform"};
  // per_model[flavor][m] = one Measurement per arm.
  std::vector<std::vector<Measurement>> per_model[kFlavors];
  for (auto& flavor : per_model) flavor.resize(kModels);

  Table table("Per-petition selection latency (k = 4, mean of timed reps)",
              {"clients", "registry", "model", "index us", "scan us", "speedup",
               "pulls/petition"});
  for (const std::size_t n : arms) {
    for (int flavor = 0; flavor < kFlavors; ++flavor) {
      const bool correlated = flavor == 0;
      const Population pop = build_population(n, options.base_seed + n + flavor, correlated);
      const auto snaps = make_snapshots(pop);
      core::CandidateIndex index;
      index.attach_metrics(metrics.registry());
      index.set_history(&pop.history);
      for (std::size_t i = 0; i < n; ++i) {
        index.upsert_peer(pop.peers[i], NodeId(pop.peers[i].value() + 1), pop.hostnames[i],
                          pop.cpu[i], pop.price[i],
                          i < pop.statistics.size() ? &pop.statistics[i] : nullptr, kNow,
                          pop.idle[i], pop.queued[i], pop.transfers[i]);
      }

      std::vector<PeerId> preference_order;
      std::mt19937_64 pref_rng(options.base_seed + 17);
      for (int i = 0; i < 128; ++i) preference_order.push_back(PeerId(pref_rng() % n + 1));

      std::unique_ptr<core::SelectionModel> models[kModels] = {
          std::make_unique<core::BlindModel>(),
          std::make_unique<core::EconomicSchedulingModel>(),
          std::make_unique<core::DataEvaluatorModel>(core::DataEvaluatorModel::same_priority()),
          std::make_unique<core::UserPreferenceModel>(preference_order),
          std::make_unique<core::HybridModel>(),
      };

      const int index_reps = n >= 1'000'000 ? 50 : (n >= 100'000 ? 150 : 300);
      const int scan_reps = n >= 1'000'000 ? 3 : (n >= 100'000 ? 20 : 100);
      for (int m = 0; m < kModels; ++m) {
        const Measurement res = measure_model(index, *models[m], snaps,
                                              options.base_seed + m, index_reps, scan_reps);
        per_model[flavor][m].push_back(res);
        table.add_row({std::to_string(n), flavor_names[flavor], model_names[m],
                       cell(res.index_us, 2), cell(res.scan_us, 1),
                       cell(res.scan_us / res.index_us, 1), cell(res.pulls_per_petition, 1)});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  table.write_csv("bench_scale.csv");

  bool ok = true;
  for (int flavor = 0; flavor < kFlavors; ++flavor) {
    for (int m = 0; m < kModels; ++m) {
      const auto& rows = per_model[flavor][m];
      const std::string tag = std::string(model_names[m]) + " (" + flavor_names[flavor] + ")";
      for (std::size_t a = 0; a < rows.size(); ++a) {
        ok &= shape_check(tag + " @" + std::to_string(arms[a]) +
                              ": every petition stays on the fast path",
                          rows[a].fast_path_only);
        ok &= shape_check(tag + " @" + std::to_string(arms[a]) + ": index beats the scan",
                          rows[a].index_us < rows[a].scan_us);
      }
      // Sub-linearity: 10×/100× more clients must cost far less than
      // 10×/100× more latency (1/5 of the population growth factor).
      // On the uniform registry economic/hybrid are *designed* to run
      // the O(n) dense sweep, so the growth check applies only where a
      // bounded-pull fast path exists: everywhere on the correlated
      // registry, and to the never-walking models on the uniform one.
      const bool walks_uniform = flavor == 1 && (m == 1 || m == 4);
      if (rows.size() >= 2 && !walks_uniform) {
        const double growth = static_cast<double>(arms.back()) / static_cast<double>(arms[0]);
        const double latency_ratio = rows.back().index_us / rows[0].index_us;
        ok &= shape_check(tag + ": sub-linear latency growth across the sweep",
                          latency_ratio < growth / 5.0);
      }
    }
  }
  return ok ? 0 : 1;
}
