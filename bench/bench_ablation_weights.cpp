// Ablation: data-evaluator weight sensitivity. The paper lets weights
// be "user defined or pre-specified"; this sweep runs the same job
// stream under differently-focused weight vectors and reports what the
// application feels. Message-focused weights track control-plane
// health; queue-focused weights track instantaneous load; the
// same-priority blend is the paper's default.

#include <map>

#include "bench_common.hpp"
#include "peerlab/core/data_evaluator.hpp"
#include "peerlab/planetlab/deployment.hpp"

using namespace peerlab;
using namespace peerlab::experiments;

namespace {

struct WeightSet {
  const char* name;
  std::vector<core::CriterionWeight> weights;
};

std::vector<WeightSet> weight_sets() {
  using stats::Criterion;
  std::vector<WeightSet> sets;
  {
    WeightSet s{"same-priority (paper)", {}};
    for (std::size_t i = 0; i < stats::kCriterionCount; ++i) {
      s.weights.push_back({static_cast<Criterion>(i), 1.0});
    }
    sets.push_back(std::move(s));
  }
  sets.push_back({"message-focused",
                  {{Criterion::kMsgSuccessSession, 1.0},
                   {Criterion::kMsgSuccessTotal, 1.0},
                   {Criterion::kMsgSuccessWindow, 1.0}}});
  sets.push_back({"queue-focused",
                  {{Criterion::kOutboxNow, 1.0},
                   {Criterion::kInboxNow, 1.0},
                   {Criterion::kPendingTransfers, 2.0}}});
  sets.push_back({"task-focused",
                  {{Criterion::kTaskExecSuccessTotal, 2.0},
                   {Criterion::kTaskAcceptTotal, 1.0}}});
  sets.push_back({"file-focused",
                  {{Criterion::kFileSentTotal, 2.0},
                   {Criterion::kFileCancelTotal, 1.0},
                   {Criterion::kPendingTransfers, 1.0}}});
  return sets;
}

struct StreamResult {
  int completed = 0;
  double mean_turnaround = 0.0;
  std::map<int, int> picks;  // SC index -> jobs
};

StreamResult run_stream(std::uint64_t seed, const std::vector<core::CriterionWeight>& weights) {
  sim::Simulator sim(seed);
  planetlab::DeploymentOptions opts;
  opts.client.heartbeat_interval = 10.0;  // fresh queue samples
  planetlab::Deployment dep(sim, opts);
  dep.boot();
  dep.broker().set_selection_model(std::make_unique<core::DataEvaluatorModel>(
      core::DataEvaluatorModel(weights)));
  overlay::Primitives api(dep.control());

  StreamResult result;
  double turnaround_sum = 0.0;
  // Jobs arrive faster than they drain, so queue-aware weightings can
  // spread load while stats-blind ones pile onto the tie-break winner.
  constexpr int kJobs = 16;
  for (int j = 0; j < kJobs; ++j) {
    sim.schedule(static_cast<double>(j) * 15.0, [&] {
      api.submit_task_auto(120.0, megabytes(20.0), [&](const overlay::TaskOutcome& o) {
        if (o.accepted && o.ok) {
          ++result.completed;
          turnaround_sum += o.turnaround();
        }
        for (int i = 1; i <= 8; ++i) {
          if (o.executor.valid() &&
              o.executor.value() == static_cast<std::uint64_t>(i + 2)) {
            ++result.picks[i];
          }
        }
      });
    });
  }
  sim.run();
  if (result.completed > 0) {
    result.mean_turnaround = turnaround_sum / result.completed;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = peerlab::bench::parse_options(argc, argv);
  print_figure_header("Ablation", "Data-evaluator weight sensitivity");

  Table table("16-job burst per weight vector (mean of " +
                  std::to_string(options.repetitions) + " runs)",
              {"weights", "completed", "mean turnaround (s)", "distinct peers", "SC7 picks"});
  double queue_focused_turnaround = 0.0, message_focused_turnaround = 0.0;
  bool all_complete = true;
  for (const auto& set : weight_sets()) {
    sim::Summary completed, turnaround, straggler, spread;
    for (int rep = 0; rep < options.repetitions; ++rep) {
      const auto result = run_stream(repetition_seed(options, rep), set.weights);
      completed.add(result.completed);
      turnaround.add(result.mean_turnaround);
      spread.add(static_cast<double>(result.picks.size()));
      const auto it = result.picks.find(7);
      straggler.add(it == result.picks.end() ? 0.0 : it->second);
    }
    table.add_row({set.name, cell(completed.mean(), 1), cell(turnaround.mean(), 1),
                   cell(spread.mean(), 1), cell(straggler.mean(), 1)});
    if (std::string(set.name) == "queue-focused") {
      queue_focused_turnaround = turnaround.mean();
    }
    if (std::string(set.name) == "message-focused") {
      message_focused_turnaround = turnaround.mean();
    }
    all_complete &= completed.mean() >= 15.0;
  }
  std::printf("%s\n", table.render().c_str());
  table.write_csv("bench_ablation_weights.csv");

  bool ok = true;
  ok &= shape_check("every weighting completes (nearly) the whole stream", all_complete);
  ok &= shape_check("queue-aware weights beat load-blind weights under bursty load",
                    queue_focused_turnaround < message_focused_turnaround);
  return ok ? 0 : 1;
}
