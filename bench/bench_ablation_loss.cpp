// Ablation: robustness under control-plane loss. The overlay's
// protocols (petition handshake, confirms, offers, discovery) all ride
// lossy datagrams with retry; this sweep raises the loss rate and
// reports completion rates and the latency tax.

#include "bench_common.hpp"
#include "peerlab/planetlab/deployment.hpp"

using namespace peerlab;
using namespace peerlab::experiments;

namespace {

struct LossResult {
  int transfers_ok = 0;
  int tasks_ok = 0;
  double mean_transfer_s = 0.0;
};

LossResult run_under_loss(std::uint64_t seed, double datagram_loss) {
  sim::Simulator sim(seed);
  planetlab::DeploymentOptions opts;
  opts.network.datagram_loss = datagram_loss;
  planetlab::Deployment dep(sim, opts);
  dep.boot();

  LossResult result;
  double transfer_sum = 0.0;
  constexpr int kOps = 8;
  for (int i = 0; i < kOps; ++i) {
    const int sc = 1 + (i % 8);
    sim.schedule(static_cast<double>(i) * 400.0, [&, sc] {
      transport::FileTransferConfig cfg;
      cfg.file_size = megabytes(5.0);
      cfg.parts = 4;
      cfg.petition_retry.initial_timeout = 60.0;
      cfg.petition_retry.max_attempts = 8;
      cfg.confirm_timeout = 30.0;
      cfg.max_confirm_queries = 10;
      dep.control().files().send_file(dep.sc_peer(sc), cfg,
                                      [&](const transport::TransferResult& r) {
                                        if (r.complete) {
                                          ++result.transfers_ok;
                                          transfer_sum += r.transmission_time();
                                        }
                                      });
      overlay::TaskSubmission sub;
      sub.executor = dep.sc_peer(1 + (sc % 8));
      sub.work = 30.0;
      dep.control().task_service().submit(sub, [&](const overlay::TaskOutcome& o) {
        result.tasks_ok += (o.accepted && o.ok) ? 1 : 0;
      });
    });
  }
  sim.run();
  if (result.transfers_ok > 0) result.mean_transfer_s = transfer_sum / result.transfers_ok;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = peerlab::bench::parse_options(argc, argv);
  print_figure_header("Ablation", "Protocol robustness under datagram loss");

  Table table("8 transfers + 8 tasks per run (mean of " +
                  std::to_string(options.repetitions) + " runs)",
              {"datagram loss", "transfers ok", "tasks ok", "mean transfer (s)"});
  double clean_transfers = 0.0, lossy_transfers = 0.0;
  double clean_time = 0.0, lossy_time = 0.0;
  for (const double loss : {0.0, 0.05, 0.15, 0.30}) {
    sim::Summary transfers, tasks, seconds;
    for (int rep = 0; rep < options.repetitions; ++rep) {
      const auto result = run_under_loss(
          repetition_seed(options, rep) ^ static_cast<std::uint64_t>(loss * 100), loss);
      transfers.add(result.transfers_ok);
      tasks.add(result.tasks_ok);
      seconds.add(result.mean_transfer_s);
    }
    table.add_row({cell(loss, 2), cell(transfers.mean(), 1), cell(tasks.mean(), 1),
                   cell(seconds.mean(), 1)});
    if (loss == 0.0) {
      clean_transfers = transfers.mean();
      clean_time = seconds.mean();
    }
    if (loss == 0.30) {
      lossy_transfers = transfers.mean();
      lossy_time = seconds.mean();
    }
  }
  std::printf("%s\n", table.render().c_str());
  table.write_csv("bench_ablation_loss.csv");

  bool ok = true;
  ok &= shape_check("clean network completes everything", clean_transfers >= 7.9);
  ok &= shape_check("30% loss still completes most transfers (retry machinery works)",
                    lossy_transfers >= clean_transfers * 0.8);
  ok &= shape_check("loss costs latency, not correctness", lossy_time >= clean_time);
  return ok ? 0 : 1;
}
