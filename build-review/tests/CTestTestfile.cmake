# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_common[1]_include.cmake")
include("/root/repo/build-review/tests/test_sim[1]_include.cmake")
include("/root/repo/build-review/tests/test_perf[1]_include.cmake")
include("/root/repo/build-review/tests/test_transport[1]_include.cmake")
include("/root/repo/build-review/tests/test_stats[1]_include.cmake")
include("/root/repo/build-review/tests/test_tasks[1]_include.cmake")
include("/root/repo/build-review/tests/test_core[1]_include.cmake")
include("/root/repo/build-review/tests/test_experiments[1]_include.cmake")
include("/root/repo/build-review/tests/test_property[1]_include.cmake")
include("/root/repo/build-review/tests/test_planetlab[1]_include.cmake")
include("/root/repo/build-review/tests/test_overlay[1]_include.cmake")
include("/root/repo/build-review/tests/test_jxta[1]_include.cmake")
include("/root/repo/build-review/tests/test_net[1]_include.cmake")
