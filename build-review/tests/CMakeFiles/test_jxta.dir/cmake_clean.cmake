file(REMOVE_RECURSE
  "CMakeFiles/test_jxta.dir/jxta/advertisement_test.cpp.o"
  "CMakeFiles/test_jxta.dir/jxta/advertisement_test.cpp.o.d"
  "CMakeFiles/test_jxta.dir/jxta/discovery_test.cpp.o"
  "CMakeFiles/test_jxta.dir/jxta/discovery_test.cpp.o.d"
  "CMakeFiles/test_jxta.dir/jxta/peergroup_test.cpp.o"
  "CMakeFiles/test_jxta.dir/jxta/peergroup_test.cpp.o.d"
  "CMakeFiles/test_jxta.dir/jxta/pipe_test.cpp.o"
  "CMakeFiles/test_jxta.dir/jxta/pipe_test.cpp.o.d"
  "CMakeFiles/test_jxta.dir/jxta/rendezvous_test.cpp.o"
  "CMakeFiles/test_jxta.dir/jxta/rendezvous_test.cpp.o.d"
  "test_jxta"
  "test_jxta.pdb"
  "test_jxta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jxta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
