# Empty dependencies file for test_jxta.
# This may be replaced when dependencies are built.
