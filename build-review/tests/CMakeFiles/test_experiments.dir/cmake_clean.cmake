file(REMOVE_RECURSE
  "CMakeFiles/test_experiments.dir/experiments/figures_test.cpp.o"
  "CMakeFiles/test_experiments.dir/experiments/figures_test.cpp.o.d"
  "CMakeFiles/test_experiments.dir/experiments/harness_test.cpp.o"
  "CMakeFiles/test_experiments.dir/experiments/harness_test.cpp.o.d"
  "CMakeFiles/test_experiments.dir/experiments/reporter_test.cpp.o"
  "CMakeFiles/test_experiments.dir/experiments/reporter_test.cpp.o.d"
  "test_experiments"
  "test_experiments.pdb"
  "test_experiments[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
