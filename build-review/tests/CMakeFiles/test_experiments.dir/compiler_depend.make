# Empty compiler generated dependencies file for test_experiments.
# This may be replaced when dependencies are built.
