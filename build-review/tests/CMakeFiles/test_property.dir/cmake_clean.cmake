file(REMOVE_RECURSE
  "CMakeFiles/test_property.dir/property/churn_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/churn_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/flow_fairness_test.cpp.o"
  "CMakeFiles/test_property.dir/property/flow_fairness_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/overlay_endtoend_test.cpp.o"
  "CMakeFiles/test_property.dir/property/overlay_endtoend_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/selection_invariants_test.cpp.o"
  "CMakeFiles/test_property.dir/property/selection_invariants_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/transfer_protocol_test.cpp.o"
  "CMakeFiles/test_property.dir/property/transfer_protocol_test.cpp.o.d"
  "test_property"
  "test_property.pdb"
  "test_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
