# Empty compiler generated dependencies file for test_tasks.
# This may be replaced when dependencies are built.
