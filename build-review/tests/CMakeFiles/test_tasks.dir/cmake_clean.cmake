file(REMOVE_RECURSE
  "CMakeFiles/test_tasks.dir/tasks/executor_test.cpp.o"
  "CMakeFiles/test_tasks.dir/tasks/executor_test.cpp.o.d"
  "CMakeFiles/test_tasks.dir/tasks/queue_test.cpp.o"
  "CMakeFiles/test_tasks.dir/tasks/queue_test.cpp.o.d"
  "test_tasks"
  "test_tasks.pdb"
  "test_tasks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
