file(REMOVE_RECURSE
  "CMakeFiles/test_planetlab.dir/planetlab/calibration_robustness_test.cpp.o"
  "CMakeFiles/test_planetlab.dir/planetlab/calibration_robustness_test.cpp.o.d"
  "CMakeFiles/test_planetlab.dir/planetlab/catalog_test.cpp.o"
  "CMakeFiles/test_planetlab.dir/planetlab/catalog_test.cpp.o.d"
  "CMakeFiles/test_planetlab.dir/planetlab/deployment_test.cpp.o"
  "CMakeFiles/test_planetlab.dir/planetlab/deployment_test.cpp.o.d"
  "CMakeFiles/test_planetlab.dir/planetlab/profiles_test.cpp.o"
  "CMakeFiles/test_planetlab.dir/planetlab/profiles_test.cpp.o.d"
  "test_planetlab"
  "test_planetlab.pdb"
  "test_planetlab[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_planetlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
