# Empty compiler generated dependencies file for test_overlay.
# This may be replaced when dependencies are built.
