
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/overlay/broker_test.cpp" "tests/CMakeFiles/test_overlay.dir/overlay/broker_test.cpp.o" "gcc" "tests/CMakeFiles/test_overlay.dir/overlay/broker_test.cpp.o.d"
  "/root/repo/tests/overlay/distribution_test.cpp" "tests/CMakeFiles/test_overlay.dir/overlay/distribution_test.cpp.o" "gcc" "tests/CMakeFiles/test_overlay.dir/overlay/distribution_test.cpp.o.d"
  "/root/repo/tests/overlay/federation_test.cpp" "tests/CMakeFiles/test_overlay.dir/overlay/federation_test.cpp.o" "gcc" "tests/CMakeFiles/test_overlay.dir/overlay/federation_test.cpp.o.d"
  "/root/repo/tests/overlay/file_service_test.cpp" "tests/CMakeFiles/test_overlay.dir/overlay/file_service_test.cpp.o" "gcc" "tests/CMakeFiles/test_overlay.dir/overlay/file_service_test.cpp.o.d"
  "/root/repo/tests/overlay/group_report_test.cpp" "tests/CMakeFiles/test_overlay.dir/overlay/group_report_test.cpp.o" "gcc" "tests/CMakeFiles/test_overlay.dir/overlay/group_report_test.cpp.o.d"
  "/root/repo/tests/overlay/messaging_test.cpp" "tests/CMakeFiles/test_overlay.dir/overlay/messaging_test.cpp.o" "gcc" "tests/CMakeFiles/test_overlay.dir/overlay/messaging_test.cpp.o.d"
  "/root/repo/tests/overlay/primitives_test.cpp" "tests/CMakeFiles/test_overlay.dir/overlay/primitives_test.cpp.o" "gcc" "tests/CMakeFiles/test_overlay.dir/overlay/primitives_test.cpp.o.d"
  "/root/repo/tests/overlay/rehome_test.cpp" "tests/CMakeFiles/test_overlay.dir/overlay/rehome_test.cpp.o" "gcc" "tests/CMakeFiles/test_overlay.dir/overlay/rehome_test.cpp.o.d"
  "/root/repo/tests/overlay/task_service_test.cpp" "tests/CMakeFiles/test_overlay.dir/overlay/task_service_test.cpp.o" "gcc" "tests/CMakeFiles/test_overlay.dir/overlay/task_service_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/peerlab_planetlab.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_overlay.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_tasks.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_jxta.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_transport.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
