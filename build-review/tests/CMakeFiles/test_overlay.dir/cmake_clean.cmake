file(REMOVE_RECURSE
  "CMakeFiles/test_overlay.dir/overlay/broker_test.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/broker_test.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/distribution_test.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/distribution_test.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/federation_test.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/federation_test.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/file_service_test.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/file_service_test.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/group_report_test.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/group_report_test.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/messaging_test.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/messaging_test.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/primitives_test.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/primitives_test.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/rehome_test.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/rehome_test.cpp.o.d"
  "CMakeFiles/test_overlay.dir/overlay/task_service_test.cpp.o"
  "CMakeFiles/test_overlay.dir/overlay/task_service_test.cpp.o.d"
  "test_overlay"
  "test_overlay.pdb"
  "test_overlay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
