# Empty dependencies file for test_perf.
# This may be replaced when dependencies are built.
