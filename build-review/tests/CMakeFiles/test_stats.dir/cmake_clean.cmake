file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/stats/counters_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/counters_test.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/history_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/history_test.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/peer_statistics_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/peer_statistics_test.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/window_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/window_test.cpp.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
