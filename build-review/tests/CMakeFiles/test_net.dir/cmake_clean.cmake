file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/background_test.cpp.o"
  "CMakeFiles/test_net.dir/net/background_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/degradation_test.cpp.o"
  "CMakeFiles/test_net.dir/net/degradation_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/flow_scheduler_test.cpp.o"
  "CMakeFiles/test_net.dir/net/flow_scheduler_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/flow_waterfill_property_test.cpp.o"
  "CMakeFiles/test_net.dir/net/flow_waterfill_property_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/geo_test.cpp.o"
  "CMakeFiles/test_net.dir/net/geo_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/network_test.cpp.o"
  "CMakeFiles/test_net.dir/net/network_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/node_test.cpp.o"
  "CMakeFiles/test_net.dir/net/node_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/topology_test.cpp.o"
  "CMakeFiles/test_net.dir/net/topology_test.cpp.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
