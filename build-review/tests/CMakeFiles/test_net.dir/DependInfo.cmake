
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/background_test.cpp" "tests/CMakeFiles/test_net.dir/net/background_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/background_test.cpp.o.d"
  "/root/repo/tests/net/degradation_test.cpp" "tests/CMakeFiles/test_net.dir/net/degradation_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/degradation_test.cpp.o.d"
  "/root/repo/tests/net/flow_scheduler_test.cpp" "tests/CMakeFiles/test_net.dir/net/flow_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/flow_scheduler_test.cpp.o.d"
  "/root/repo/tests/net/flow_waterfill_property_test.cpp" "tests/CMakeFiles/test_net.dir/net/flow_waterfill_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/flow_waterfill_property_test.cpp.o.d"
  "/root/repo/tests/net/geo_test.cpp" "tests/CMakeFiles/test_net.dir/net/geo_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/geo_test.cpp.o.d"
  "/root/repo/tests/net/network_test.cpp" "tests/CMakeFiles/test_net.dir/net/network_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/network_test.cpp.o.d"
  "/root/repo/tests/net/node_test.cpp" "tests/CMakeFiles/test_net.dir/net/node_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/node_test.cpp.o.d"
  "/root/repo/tests/net/topology_test.cpp" "tests/CMakeFiles/test_net.dir/net/topology_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/topology_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/peerlab_planetlab.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_overlay.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_tasks.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_jxta.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_transport.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
