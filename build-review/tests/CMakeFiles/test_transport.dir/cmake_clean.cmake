file(REMOVE_RECURSE
  "CMakeFiles/test_transport.dir/transport/endpoint_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/endpoint_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/file_transfer_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/file_transfer_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/message_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/message_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/reliable_channel_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/reliable_channel_test.cpp.o.d"
  "test_transport"
  "test_transport.pdb"
  "test_transport[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
