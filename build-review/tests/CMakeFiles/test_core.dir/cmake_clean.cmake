file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/blind_test.cpp.o"
  "CMakeFiles/test_core.dir/core/blind_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/data_evaluator_test.cpp.o"
  "CMakeFiles/test_core.dir/core/data_evaluator_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/economic_test.cpp.o"
  "CMakeFiles/test_core.dir/core/economic_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/hybrid_test.cpp.o"
  "CMakeFiles/test_core.dir/core/hybrid_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/selection_model_test.cpp.o"
  "CMakeFiles/test_core.dir/core/selection_model_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/user_preference_test.cpp.o"
  "CMakeFiles/test_core.dir/core/user_preference_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
