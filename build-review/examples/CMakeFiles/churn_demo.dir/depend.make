# Empty dependencies file for churn_demo.
# This may be replaced when dependencies are built.
