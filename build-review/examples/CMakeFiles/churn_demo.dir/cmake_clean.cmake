file(REMOVE_RECURSE
  "CMakeFiles/churn_demo.dir/churn_demo.cpp.o"
  "CMakeFiles/churn_demo.dir/churn_demo.cpp.o.d"
  "churn_demo"
  "churn_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
