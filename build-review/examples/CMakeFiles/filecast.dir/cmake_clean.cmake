file(REMOVE_RECURSE
  "CMakeFiles/filecast.dir/filecast.cpp.o"
  "CMakeFiles/filecast.dir/filecast.cpp.o.d"
  "filecast"
  "filecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
