# Empty compiler generated dependencies file for filecast.
# This may be replaced when dependencies are built.
