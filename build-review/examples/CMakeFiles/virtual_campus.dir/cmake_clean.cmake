file(REMOVE_RECURSE
  "CMakeFiles/virtual_campus.dir/virtual_campus.cpp.o"
  "CMakeFiles/virtual_campus.dir/virtual_campus.cpp.o.d"
  "virtual_campus"
  "virtual_campus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_campus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
