# Empty dependencies file for virtual_campus.
# This may be replaced when dependencies are built.
