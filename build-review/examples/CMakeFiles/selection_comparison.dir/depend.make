# Empty dependencies file for selection_comparison.
# This may be replaced when dependencies are built.
