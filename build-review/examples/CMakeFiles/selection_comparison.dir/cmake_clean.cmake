file(REMOVE_RECURSE
  "CMakeFiles/selection_comparison.dir/selection_comparison.cpp.o"
  "CMakeFiles/selection_comparison.dir/selection_comparison.cpp.o.d"
  "selection_comparison"
  "selection_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
