# Empty compiler generated dependencies file for bench_micro_engine.
# This may be replaced when dependencies are built.
