file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_engine.dir/bench_micro_engine.cpp.o"
  "CMakeFiles/bench_micro_engine.dir/bench_micro_engine.cpp.o.d"
  "bench_micro_engine"
  "bench_micro_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
