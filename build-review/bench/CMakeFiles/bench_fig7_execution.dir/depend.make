# Empty dependencies file for bench_fig7_execution.
# This may be replaced when dependencies are built.
