file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_execution.dir/bench_fig7_execution.cpp.o"
  "CMakeFiles/bench_fig7_execution.dir/bench_fig7_execution.cpp.o.d"
  "bench_fig7_execution"
  "bench_fig7_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
