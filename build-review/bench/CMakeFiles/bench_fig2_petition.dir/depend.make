# Empty dependencies file for bench_fig2_petition.
# This may be replaced when dependencies are built.
