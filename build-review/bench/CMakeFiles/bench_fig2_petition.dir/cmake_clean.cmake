file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_petition.dir/bench_fig2_petition.cpp.o"
  "CMakeFiles/bench_fig2_petition.dir/bench_fig2_petition.cpp.o.d"
  "bench_fig2_petition"
  "bench_fig2_petition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_petition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
