# Empty dependencies file for bench_ablation_crosstraffic.
# This may be replaced when dependencies are built.
