file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_crosstraffic.dir/bench_ablation_crosstraffic.cpp.o"
  "CMakeFiles/bench_ablation_crosstraffic.dir/bench_ablation_crosstraffic.cpp.o.d"
  "bench_ablation_crosstraffic"
  "bench_ablation_crosstraffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_crosstraffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
