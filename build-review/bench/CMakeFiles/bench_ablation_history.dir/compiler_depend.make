# Empty compiler generated dependencies file for bench_ablation_history.
# This may be replaced when dependencies are built.
