file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_history.dir/bench_ablation_history.cpp.o"
  "CMakeFiles/bench_ablation_history.dir/bench_ablation_history.cpp.o.d"
  "bench_ablation_history"
  "bench_ablation_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
