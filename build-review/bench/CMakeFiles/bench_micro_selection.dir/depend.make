# Empty dependencies file for bench_micro_selection.
# This may be replaced when dependencies are built.
