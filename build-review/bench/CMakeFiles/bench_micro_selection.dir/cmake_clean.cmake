file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_selection.dir/bench_micro_selection.cpp.o"
  "CMakeFiles/bench_micro_selection.dir/bench_micro_selection.cpp.o.d"
  "bench_micro_selection"
  "bench_micro_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
