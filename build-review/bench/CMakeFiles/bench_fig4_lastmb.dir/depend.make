# Empty dependencies file for bench_fig4_lastmb.
# This may be replaced when dependencies are built.
