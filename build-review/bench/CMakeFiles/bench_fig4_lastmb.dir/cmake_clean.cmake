file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_lastmb.dir/bench_fig4_lastmb.cpp.o"
  "CMakeFiles/bench_fig4_lastmb.dir/bench_fig4_lastmb.cpp.o.d"
  "bench_fig4_lastmb"
  "bench_fig4_lastmb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_lastmb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
