file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_chunks.dir/bench_ablation_chunks.cpp.o"
  "CMakeFiles/bench_ablation_chunks.dir/bench_ablation_chunks.cpp.o.d"
  "bench_ablation_chunks"
  "bench_ablation_chunks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_chunks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
