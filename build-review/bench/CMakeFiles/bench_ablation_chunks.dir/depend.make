# Empty dependencies file for bench_ablation_chunks.
# This may be replaced when dependencies are built.
