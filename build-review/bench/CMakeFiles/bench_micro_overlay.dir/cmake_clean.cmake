file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_overlay.dir/bench_micro_overlay.cpp.o"
  "CMakeFiles/bench_micro_overlay.dir/bench_micro_overlay.cpp.o.d"
  "bench_micro_overlay"
  "bench_micro_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
