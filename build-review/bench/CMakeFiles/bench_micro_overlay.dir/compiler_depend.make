# Empty compiler generated dependencies file for bench_micro_overlay.
# This may be replaced when dependencies are built.
