# Empty compiler generated dependencies file for bench_ablation_weights.
# This may be replaced when dependencies are built.
