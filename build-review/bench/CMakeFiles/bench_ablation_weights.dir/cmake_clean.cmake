file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_weights.dir/bench_ablation_weights.cpp.o"
  "CMakeFiles/bench_ablation_weights.dir/bench_ablation_weights.cpp.o.d"
  "bench_ablation_weights"
  "bench_ablation_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
