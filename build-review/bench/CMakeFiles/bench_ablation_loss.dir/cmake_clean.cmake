file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_loss.dir/bench_ablation_loss.cpp.o"
  "CMakeFiles/bench_ablation_loss.dir/bench_ablation_loss.cpp.o.d"
  "bench_ablation_loss"
  "bench_ablation_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
