# Empty compiler generated dependencies file for bench_ablation_loss.
# This may be replaced when dependencies are built.
