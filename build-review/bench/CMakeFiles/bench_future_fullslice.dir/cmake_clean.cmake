file(REMOVE_RECURSE
  "CMakeFiles/bench_future_fullslice.dir/bench_future_fullslice.cpp.o"
  "CMakeFiles/bench_future_fullslice.dir/bench_future_fullslice.cpp.o.d"
  "bench_future_fullslice"
  "bench_future_fullslice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_fullslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
