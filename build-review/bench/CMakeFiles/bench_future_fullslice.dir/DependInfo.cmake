
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_future_fullslice.cpp" "bench/CMakeFiles/bench_future_fullslice.dir/bench_future_fullslice.cpp.o" "gcc" "bench/CMakeFiles/bench_future_fullslice.dir/bench_future_fullslice.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/peerlab_experiments.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_planetlab.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_overlay.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_jxta.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_transport.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_tasks.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
