# Empty dependencies file for bench_future_fullslice.
# This may be replaced when dependencies are built.
