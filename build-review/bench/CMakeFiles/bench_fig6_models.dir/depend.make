# Empty dependencies file for bench_fig6_models.
# This may be replaced when dependencies are built.
