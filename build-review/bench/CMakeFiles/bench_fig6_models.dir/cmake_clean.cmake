file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_models.dir/bench_fig6_models.cpp.o"
  "CMakeFiles/bench_fig6_models.dir/bench_fig6_models.cpp.o.d"
  "bench_fig6_models"
  "bench_fig6_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
