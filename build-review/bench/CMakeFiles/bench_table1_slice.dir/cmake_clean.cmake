file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_slice.dir/bench_table1_slice.cpp.o"
  "CMakeFiles/bench_table1_slice.dir/bench_table1_slice.cpp.o.d"
  "bench_table1_slice"
  "bench_table1_slice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
