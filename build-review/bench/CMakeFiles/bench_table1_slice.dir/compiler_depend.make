# Empty compiler generated dependencies file for bench_table1_slice.
# This may be replaced when dependencies are built.
