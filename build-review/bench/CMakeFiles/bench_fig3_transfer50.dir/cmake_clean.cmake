file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_transfer50.dir/bench_fig3_transfer50.cpp.o"
  "CMakeFiles/bench_fig3_transfer50.dir/bench_fig3_transfer50.cpp.o.d"
  "bench_fig3_transfer50"
  "bench_fig3_transfer50.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_transfer50.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
