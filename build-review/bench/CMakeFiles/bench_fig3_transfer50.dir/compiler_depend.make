# Empty compiler generated dependencies file for bench_fig3_transfer50.
# This may be replaced when dependencies are built.
