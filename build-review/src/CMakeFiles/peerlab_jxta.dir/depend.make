# Empty dependencies file for peerlab_jxta.
# This may be replaced when dependencies are built.
