file(REMOVE_RECURSE
  "CMakeFiles/peerlab_jxta.dir/peerlab/jxta/advertisement.cpp.o"
  "CMakeFiles/peerlab_jxta.dir/peerlab/jxta/advertisement.cpp.o.d"
  "CMakeFiles/peerlab_jxta.dir/peerlab/jxta/discovery.cpp.o"
  "CMakeFiles/peerlab_jxta.dir/peerlab/jxta/discovery.cpp.o.d"
  "CMakeFiles/peerlab_jxta.dir/peerlab/jxta/peergroup.cpp.o"
  "CMakeFiles/peerlab_jxta.dir/peerlab/jxta/peergroup.cpp.o.d"
  "CMakeFiles/peerlab_jxta.dir/peerlab/jxta/pipe.cpp.o"
  "CMakeFiles/peerlab_jxta.dir/peerlab/jxta/pipe.cpp.o.d"
  "CMakeFiles/peerlab_jxta.dir/peerlab/jxta/rendezvous.cpp.o"
  "CMakeFiles/peerlab_jxta.dir/peerlab/jxta/rendezvous.cpp.o.d"
  "libpeerlab_jxta.a"
  "libpeerlab_jxta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerlab_jxta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
