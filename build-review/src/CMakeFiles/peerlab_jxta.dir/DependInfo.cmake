
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/peerlab/jxta/advertisement.cpp" "src/CMakeFiles/peerlab_jxta.dir/peerlab/jxta/advertisement.cpp.o" "gcc" "src/CMakeFiles/peerlab_jxta.dir/peerlab/jxta/advertisement.cpp.o.d"
  "/root/repo/src/peerlab/jxta/discovery.cpp" "src/CMakeFiles/peerlab_jxta.dir/peerlab/jxta/discovery.cpp.o" "gcc" "src/CMakeFiles/peerlab_jxta.dir/peerlab/jxta/discovery.cpp.o.d"
  "/root/repo/src/peerlab/jxta/peergroup.cpp" "src/CMakeFiles/peerlab_jxta.dir/peerlab/jxta/peergroup.cpp.o" "gcc" "src/CMakeFiles/peerlab_jxta.dir/peerlab/jxta/peergroup.cpp.o.d"
  "/root/repo/src/peerlab/jxta/pipe.cpp" "src/CMakeFiles/peerlab_jxta.dir/peerlab/jxta/pipe.cpp.o" "gcc" "src/CMakeFiles/peerlab_jxta.dir/peerlab/jxta/pipe.cpp.o.d"
  "/root/repo/src/peerlab/jxta/rendezvous.cpp" "src/CMakeFiles/peerlab_jxta.dir/peerlab/jxta/rendezvous.cpp.o" "gcc" "src/CMakeFiles/peerlab_jxta.dir/peerlab/jxta/rendezvous.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/peerlab_transport.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
