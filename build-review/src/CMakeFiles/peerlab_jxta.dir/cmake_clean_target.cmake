file(REMOVE_RECURSE
  "libpeerlab_jxta.a"
)
