file(REMOVE_RECURSE
  "libpeerlab_experiments.a"
)
