# Empty dependencies file for peerlab_experiments.
# This may be replaced when dependencies are built.
