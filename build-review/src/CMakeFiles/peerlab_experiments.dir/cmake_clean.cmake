file(REMOVE_RECURSE
  "CMakeFiles/peerlab_experiments.dir/peerlab/experiments/figures.cpp.o"
  "CMakeFiles/peerlab_experiments.dir/peerlab/experiments/figures.cpp.o.d"
  "CMakeFiles/peerlab_experiments.dir/peerlab/experiments/harness.cpp.o"
  "CMakeFiles/peerlab_experiments.dir/peerlab/experiments/harness.cpp.o.d"
  "CMakeFiles/peerlab_experiments.dir/peerlab/experiments/reporter.cpp.o"
  "CMakeFiles/peerlab_experiments.dir/peerlab/experiments/reporter.cpp.o.d"
  "libpeerlab_experiments.a"
  "libpeerlab_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerlab_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
