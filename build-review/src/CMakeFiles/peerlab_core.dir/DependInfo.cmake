
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/peerlab/core/blind.cpp" "src/CMakeFiles/peerlab_core.dir/peerlab/core/blind.cpp.o" "gcc" "src/CMakeFiles/peerlab_core.dir/peerlab/core/blind.cpp.o.d"
  "/root/repo/src/peerlab/core/data_evaluator.cpp" "src/CMakeFiles/peerlab_core.dir/peerlab/core/data_evaluator.cpp.o" "gcc" "src/CMakeFiles/peerlab_core.dir/peerlab/core/data_evaluator.cpp.o.d"
  "/root/repo/src/peerlab/core/economic.cpp" "src/CMakeFiles/peerlab_core.dir/peerlab/core/economic.cpp.o" "gcc" "src/CMakeFiles/peerlab_core.dir/peerlab/core/economic.cpp.o.d"
  "/root/repo/src/peerlab/core/hybrid.cpp" "src/CMakeFiles/peerlab_core.dir/peerlab/core/hybrid.cpp.o" "gcc" "src/CMakeFiles/peerlab_core.dir/peerlab/core/hybrid.cpp.o.d"
  "/root/repo/src/peerlab/core/selection_model.cpp" "src/CMakeFiles/peerlab_core.dir/peerlab/core/selection_model.cpp.o" "gcc" "src/CMakeFiles/peerlab_core.dir/peerlab/core/selection_model.cpp.o.d"
  "/root/repo/src/peerlab/core/snapshot.cpp" "src/CMakeFiles/peerlab_core.dir/peerlab/core/snapshot.cpp.o" "gcc" "src/CMakeFiles/peerlab_core.dir/peerlab/core/snapshot.cpp.o.d"
  "/root/repo/src/peerlab/core/user_preference.cpp" "src/CMakeFiles/peerlab_core.dir/peerlab/core/user_preference.cpp.o" "gcc" "src/CMakeFiles/peerlab_core.dir/peerlab/core/user_preference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/peerlab_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
