file(REMOVE_RECURSE
  "CMakeFiles/peerlab_core.dir/peerlab/core/blind.cpp.o"
  "CMakeFiles/peerlab_core.dir/peerlab/core/blind.cpp.o.d"
  "CMakeFiles/peerlab_core.dir/peerlab/core/data_evaluator.cpp.o"
  "CMakeFiles/peerlab_core.dir/peerlab/core/data_evaluator.cpp.o.d"
  "CMakeFiles/peerlab_core.dir/peerlab/core/economic.cpp.o"
  "CMakeFiles/peerlab_core.dir/peerlab/core/economic.cpp.o.d"
  "CMakeFiles/peerlab_core.dir/peerlab/core/hybrid.cpp.o"
  "CMakeFiles/peerlab_core.dir/peerlab/core/hybrid.cpp.o.d"
  "CMakeFiles/peerlab_core.dir/peerlab/core/selection_model.cpp.o"
  "CMakeFiles/peerlab_core.dir/peerlab/core/selection_model.cpp.o.d"
  "CMakeFiles/peerlab_core.dir/peerlab/core/snapshot.cpp.o"
  "CMakeFiles/peerlab_core.dir/peerlab/core/snapshot.cpp.o.d"
  "CMakeFiles/peerlab_core.dir/peerlab/core/user_preference.cpp.o"
  "CMakeFiles/peerlab_core.dir/peerlab/core/user_preference.cpp.o.d"
  "libpeerlab_core.a"
  "libpeerlab_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerlab_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
