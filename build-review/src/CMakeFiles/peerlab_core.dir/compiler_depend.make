# Empty compiler generated dependencies file for peerlab_core.
# This may be replaced when dependencies are built.
