file(REMOVE_RECURSE
  "libpeerlab_core.a"
)
