# Empty compiler generated dependencies file for peerlab_net.
# This may be replaced when dependencies are built.
