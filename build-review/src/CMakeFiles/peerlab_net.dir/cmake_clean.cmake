file(REMOVE_RECURSE
  "CMakeFiles/peerlab_net.dir/peerlab/net/background.cpp.o"
  "CMakeFiles/peerlab_net.dir/peerlab/net/background.cpp.o.d"
  "CMakeFiles/peerlab_net.dir/peerlab/net/degradation.cpp.o"
  "CMakeFiles/peerlab_net.dir/peerlab/net/degradation.cpp.o.d"
  "CMakeFiles/peerlab_net.dir/peerlab/net/flow_scheduler.cpp.o"
  "CMakeFiles/peerlab_net.dir/peerlab/net/flow_scheduler.cpp.o.d"
  "CMakeFiles/peerlab_net.dir/peerlab/net/geo.cpp.o"
  "CMakeFiles/peerlab_net.dir/peerlab/net/geo.cpp.o.d"
  "CMakeFiles/peerlab_net.dir/peerlab/net/network.cpp.o"
  "CMakeFiles/peerlab_net.dir/peerlab/net/network.cpp.o.d"
  "CMakeFiles/peerlab_net.dir/peerlab/net/node.cpp.o"
  "CMakeFiles/peerlab_net.dir/peerlab/net/node.cpp.o.d"
  "CMakeFiles/peerlab_net.dir/peerlab/net/topology.cpp.o"
  "CMakeFiles/peerlab_net.dir/peerlab/net/topology.cpp.o.d"
  "libpeerlab_net.a"
  "libpeerlab_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerlab_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
