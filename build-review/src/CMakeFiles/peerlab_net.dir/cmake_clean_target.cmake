file(REMOVE_RECURSE
  "libpeerlab_net.a"
)
