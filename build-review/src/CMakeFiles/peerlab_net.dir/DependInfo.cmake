
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/peerlab/net/background.cpp" "src/CMakeFiles/peerlab_net.dir/peerlab/net/background.cpp.o" "gcc" "src/CMakeFiles/peerlab_net.dir/peerlab/net/background.cpp.o.d"
  "/root/repo/src/peerlab/net/degradation.cpp" "src/CMakeFiles/peerlab_net.dir/peerlab/net/degradation.cpp.o" "gcc" "src/CMakeFiles/peerlab_net.dir/peerlab/net/degradation.cpp.o.d"
  "/root/repo/src/peerlab/net/flow_scheduler.cpp" "src/CMakeFiles/peerlab_net.dir/peerlab/net/flow_scheduler.cpp.o" "gcc" "src/CMakeFiles/peerlab_net.dir/peerlab/net/flow_scheduler.cpp.o.d"
  "/root/repo/src/peerlab/net/geo.cpp" "src/CMakeFiles/peerlab_net.dir/peerlab/net/geo.cpp.o" "gcc" "src/CMakeFiles/peerlab_net.dir/peerlab/net/geo.cpp.o.d"
  "/root/repo/src/peerlab/net/network.cpp" "src/CMakeFiles/peerlab_net.dir/peerlab/net/network.cpp.o" "gcc" "src/CMakeFiles/peerlab_net.dir/peerlab/net/network.cpp.o.d"
  "/root/repo/src/peerlab/net/node.cpp" "src/CMakeFiles/peerlab_net.dir/peerlab/net/node.cpp.o" "gcc" "src/CMakeFiles/peerlab_net.dir/peerlab/net/node.cpp.o.d"
  "/root/repo/src/peerlab/net/topology.cpp" "src/CMakeFiles/peerlab_net.dir/peerlab/net/topology.cpp.o" "gcc" "src/CMakeFiles/peerlab_net.dir/peerlab/net/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/peerlab_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
