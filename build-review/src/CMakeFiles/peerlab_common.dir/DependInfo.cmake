
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/peerlab/common/ids.cpp" "src/CMakeFiles/peerlab_common.dir/peerlab/common/ids.cpp.o" "gcc" "src/CMakeFiles/peerlab_common.dir/peerlab/common/ids.cpp.o.d"
  "/root/repo/src/peerlab/common/log.cpp" "src/CMakeFiles/peerlab_common.dir/peerlab/common/log.cpp.o" "gcc" "src/CMakeFiles/peerlab_common.dir/peerlab/common/log.cpp.o.d"
  "/root/repo/src/peerlab/common/units.cpp" "src/CMakeFiles/peerlab_common.dir/peerlab/common/units.cpp.o" "gcc" "src/CMakeFiles/peerlab_common.dir/peerlab/common/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
