file(REMOVE_RECURSE
  "CMakeFiles/peerlab_common.dir/peerlab/common/ids.cpp.o"
  "CMakeFiles/peerlab_common.dir/peerlab/common/ids.cpp.o.d"
  "CMakeFiles/peerlab_common.dir/peerlab/common/log.cpp.o"
  "CMakeFiles/peerlab_common.dir/peerlab/common/log.cpp.o.d"
  "CMakeFiles/peerlab_common.dir/peerlab/common/units.cpp.o"
  "CMakeFiles/peerlab_common.dir/peerlab/common/units.cpp.o.d"
  "libpeerlab_common.a"
  "libpeerlab_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerlab_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
