file(REMOVE_RECURSE
  "libpeerlab_common.a"
)
