# Empty dependencies file for peerlab_common.
# This may be replaced when dependencies are built.
