file(REMOVE_RECURSE
  "CMakeFiles/peerlab_transport.dir/peerlab/transport/endpoint.cpp.o"
  "CMakeFiles/peerlab_transport.dir/peerlab/transport/endpoint.cpp.o.d"
  "CMakeFiles/peerlab_transport.dir/peerlab/transport/file_transfer.cpp.o"
  "CMakeFiles/peerlab_transport.dir/peerlab/transport/file_transfer.cpp.o.d"
  "CMakeFiles/peerlab_transport.dir/peerlab/transport/message.cpp.o"
  "CMakeFiles/peerlab_transport.dir/peerlab/transport/message.cpp.o.d"
  "CMakeFiles/peerlab_transport.dir/peerlab/transport/reliable_channel.cpp.o"
  "CMakeFiles/peerlab_transport.dir/peerlab/transport/reliable_channel.cpp.o.d"
  "libpeerlab_transport.a"
  "libpeerlab_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerlab_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
