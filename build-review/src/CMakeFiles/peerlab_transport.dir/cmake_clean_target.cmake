file(REMOVE_RECURSE
  "libpeerlab_transport.a"
)
