
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/peerlab/transport/endpoint.cpp" "src/CMakeFiles/peerlab_transport.dir/peerlab/transport/endpoint.cpp.o" "gcc" "src/CMakeFiles/peerlab_transport.dir/peerlab/transport/endpoint.cpp.o.d"
  "/root/repo/src/peerlab/transport/file_transfer.cpp" "src/CMakeFiles/peerlab_transport.dir/peerlab/transport/file_transfer.cpp.o" "gcc" "src/CMakeFiles/peerlab_transport.dir/peerlab/transport/file_transfer.cpp.o.d"
  "/root/repo/src/peerlab/transport/message.cpp" "src/CMakeFiles/peerlab_transport.dir/peerlab/transport/message.cpp.o" "gcc" "src/CMakeFiles/peerlab_transport.dir/peerlab/transport/message.cpp.o.d"
  "/root/repo/src/peerlab/transport/reliable_channel.cpp" "src/CMakeFiles/peerlab_transport.dir/peerlab/transport/reliable_channel.cpp.o" "gcc" "src/CMakeFiles/peerlab_transport.dir/peerlab/transport/reliable_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/peerlab_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
