# Empty dependencies file for peerlab_transport.
# This may be replaced when dependencies are built.
