#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "peerlab::peerlab_common" for configuration "RelWithDebInfo"
set_property(TARGET peerlab::peerlab_common APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(peerlab::peerlab_common PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpeerlab_common.a"
  )

list(APPEND _cmake_import_check_targets peerlab::peerlab_common )
list(APPEND _cmake_import_check_files_for_peerlab::peerlab_common "${_IMPORT_PREFIX}/lib/libpeerlab_common.a" )

# Import target "peerlab::peerlab_sim" for configuration "RelWithDebInfo"
set_property(TARGET peerlab::peerlab_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(peerlab::peerlab_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpeerlab_sim.a"
  )

list(APPEND _cmake_import_check_targets peerlab::peerlab_sim )
list(APPEND _cmake_import_check_files_for_peerlab::peerlab_sim "${_IMPORT_PREFIX}/lib/libpeerlab_sim.a" )

# Import target "peerlab::peerlab_net" for configuration "RelWithDebInfo"
set_property(TARGET peerlab::peerlab_net APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(peerlab::peerlab_net PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpeerlab_net.a"
  )

list(APPEND _cmake_import_check_targets peerlab::peerlab_net )
list(APPEND _cmake_import_check_files_for_peerlab::peerlab_net "${_IMPORT_PREFIX}/lib/libpeerlab_net.a" )

# Import target "peerlab::peerlab_transport" for configuration "RelWithDebInfo"
set_property(TARGET peerlab::peerlab_transport APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(peerlab::peerlab_transport PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpeerlab_transport.a"
  )

list(APPEND _cmake_import_check_targets peerlab::peerlab_transport )
list(APPEND _cmake_import_check_files_for_peerlab::peerlab_transport "${_IMPORT_PREFIX}/lib/libpeerlab_transport.a" )

# Import target "peerlab::peerlab_jxta" for configuration "RelWithDebInfo"
set_property(TARGET peerlab::peerlab_jxta APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(peerlab::peerlab_jxta PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpeerlab_jxta.a"
  )

list(APPEND _cmake_import_check_targets peerlab::peerlab_jxta )
list(APPEND _cmake_import_check_files_for_peerlab::peerlab_jxta "${_IMPORT_PREFIX}/lib/libpeerlab_jxta.a" )

# Import target "peerlab::peerlab_stats" for configuration "RelWithDebInfo"
set_property(TARGET peerlab::peerlab_stats APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(peerlab::peerlab_stats PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpeerlab_stats.a"
  )

list(APPEND _cmake_import_check_targets peerlab::peerlab_stats )
list(APPEND _cmake_import_check_files_for_peerlab::peerlab_stats "${_IMPORT_PREFIX}/lib/libpeerlab_stats.a" )

# Import target "peerlab::peerlab_tasks" for configuration "RelWithDebInfo"
set_property(TARGET peerlab::peerlab_tasks APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(peerlab::peerlab_tasks PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpeerlab_tasks.a"
  )

list(APPEND _cmake_import_check_targets peerlab::peerlab_tasks )
list(APPEND _cmake_import_check_files_for_peerlab::peerlab_tasks "${_IMPORT_PREFIX}/lib/libpeerlab_tasks.a" )

# Import target "peerlab::peerlab_core" for configuration "RelWithDebInfo"
set_property(TARGET peerlab::peerlab_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(peerlab::peerlab_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpeerlab_core.a"
  )

list(APPEND _cmake_import_check_targets peerlab::peerlab_core )
list(APPEND _cmake_import_check_files_for_peerlab::peerlab_core "${_IMPORT_PREFIX}/lib/libpeerlab_core.a" )

# Import target "peerlab::peerlab_overlay" for configuration "RelWithDebInfo"
set_property(TARGET peerlab::peerlab_overlay APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(peerlab::peerlab_overlay PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpeerlab_overlay.a"
  )

list(APPEND _cmake_import_check_targets peerlab::peerlab_overlay )
list(APPEND _cmake_import_check_files_for_peerlab::peerlab_overlay "${_IMPORT_PREFIX}/lib/libpeerlab_overlay.a" )

# Import target "peerlab::peerlab_planetlab" for configuration "RelWithDebInfo"
set_property(TARGET peerlab::peerlab_planetlab APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(peerlab::peerlab_planetlab PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpeerlab_planetlab.a"
  )

list(APPEND _cmake_import_check_targets peerlab::peerlab_planetlab )
list(APPEND _cmake_import_check_files_for_peerlab::peerlab_planetlab "${_IMPORT_PREFIX}/lib/libpeerlab_planetlab.a" )

# Import target "peerlab::peerlab_experiments" for configuration "RelWithDebInfo"
set_property(TARGET peerlab::peerlab_experiments APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(peerlab::peerlab_experiments PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpeerlab_experiments.a"
  )

list(APPEND _cmake_import_check_targets peerlab::peerlab_experiments )
list(APPEND _cmake_import_check_files_for_peerlab::peerlab_experiments "${_IMPORT_PREFIX}/lib/libpeerlab_experiments.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
