file(REMOVE_RECURSE
  "CMakeFiles/peerlab_tasks.dir/peerlab/tasks/executor.cpp.o"
  "CMakeFiles/peerlab_tasks.dir/peerlab/tasks/executor.cpp.o.d"
  "CMakeFiles/peerlab_tasks.dir/peerlab/tasks/queue.cpp.o"
  "CMakeFiles/peerlab_tasks.dir/peerlab/tasks/queue.cpp.o.d"
  "CMakeFiles/peerlab_tasks.dir/peerlab/tasks/task.cpp.o"
  "CMakeFiles/peerlab_tasks.dir/peerlab/tasks/task.cpp.o.d"
  "libpeerlab_tasks.a"
  "libpeerlab_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerlab_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
