file(REMOVE_RECURSE
  "libpeerlab_tasks.a"
)
