
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/peerlab/tasks/executor.cpp" "src/CMakeFiles/peerlab_tasks.dir/peerlab/tasks/executor.cpp.o" "gcc" "src/CMakeFiles/peerlab_tasks.dir/peerlab/tasks/executor.cpp.o.d"
  "/root/repo/src/peerlab/tasks/queue.cpp" "src/CMakeFiles/peerlab_tasks.dir/peerlab/tasks/queue.cpp.o" "gcc" "src/CMakeFiles/peerlab_tasks.dir/peerlab/tasks/queue.cpp.o.d"
  "/root/repo/src/peerlab/tasks/task.cpp" "src/CMakeFiles/peerlab_tasks.dir/peerlab/tasks/task.cpp.o" "gcc" "src/CMakeFiles/peerlab_tasks.dir/peerlab/tasks/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/peerlab_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
