# Empty dependencies file for peerlab_tasks.
# This may be replaced when dependencies are built.
