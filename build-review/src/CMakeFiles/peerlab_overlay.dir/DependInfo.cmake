
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/peerlab/overlay/broker.cpp" "src/CMakeFiles/peerlab_overlay.dir/peerlab/overlay/broker.cpp.o" "gcc" "src/CMakeFiles/peerlab_overlay.dir/peerlab/overlay/broker.cpp.o.d"
  "/root/repo/src/peerlab/overlay/client.cpp" "src/CMakeFiles/peerlab_overlay.dir/peerlab/overlay/client.cpp.o" "gcc" "src/CMakeFiles/peerlab_overlay.dir/peerlab/overlay/client.cpp.o.d"
  "/root/repo/src/peerlab/overlay/file_service.cpp" "src/CMakeFiles/peerlab_overlay.dir/peerlab/overlay/file_service.cpp.o" "gcc" "src/CMakeFiles/peerlab_overlay.dir/peerlab/overlay/file_service.cpp.o.d"
  "/root/repo/src/peerlab/overlay/group_report.cpp" "src/CMakeFiles/peerlab_overlay.dir/peerlab/overlay/group_report.cpp.o" "gcc" "src/CMakeFiles/peerlab_overlay.dir/peerlab/overlay/group_report.cpp.o.d"
  "/root/repo/src/peerlab/overlay/messaging.cpp" "src/CMakeFiles/peerlab_overlay.dir/peerlab/overlay/messaging.cpp.o" "gcc" "src/CMakeFiles/peerlab_overlay.dir/peerlab/overlay/messaging.cpp.o.d"
  "/root/repo/src/peerlab/overlay/primitives.cpp" "src/CMakeFiles/peerlab_overlay.dir/peerlab/overlay/primitives.cpp.o" "gcc" "src/CMakeFiles/peerlab_overlay.dir/peerlab/overlay/primitives.cpp.o.d"
  "/root/repo/src/peerlab/overlay/task_service.cpp" "src/CMakeFiles/peerlab_overlay.dir/peerlab/overlay/task_service.cpp.o" "gcc" "src/CMakeFiles/peerlab_overlay.dir/peerlab/overlay/task_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/peerlab_jxta.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_tasks.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_transport.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
