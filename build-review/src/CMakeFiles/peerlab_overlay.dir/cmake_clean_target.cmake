file(REMOVE_RECURSE
  "libpeerlab_overlay.a"
)
