# Empty dependencies file for peerlab_overlay.
# This may be replaced when dependencies are built.
