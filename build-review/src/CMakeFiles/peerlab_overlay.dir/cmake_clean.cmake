file(REMOVE_RECURSE
  "CMakeFiles/peerlab_overlay.dir/peerlab/overlay/broker.cpp.o"
  "CMakeFiles/peerlab_overlay.dir/peerlab/overlay/broker.cpp.o.d"
  "CMakeFiles/peerlab_overlay.dir/peerlab/overlay/client.cpp.o"
  "CMakeFiles/peerlab_overlay.dir/peerlab/overlay/client.cpp.o.d"
  "CMakeFiles/peerlab_overlay.dir/peerlab/overlay/file_service.cpp.o"
  "CMakeFiles/peerlab_overlay.dir/peerlab/overlay/file_service.cpp.o.d"
  "CMakeFiles/peerlab_overlay.dir/peerlab/overlay/group_report.cpp.o"
  "CMakeFiles/peerlab_overlay.dir/peerlab/overlay/group_report.cpp.o.d"
  "CMakeFiles/peerlab_overlay.dir/peerlab/overlay/messaging.cpp.o"
  "CMakeFiles/peerlab_overlay.dir/peerlab/overlay/messaging.cpp.o.d"
  "CMakeFiles/peerlab_overlay.dir/peerlab/overlay/primitives.cpp.o"
  "CMakeFiles/peerlab_overlay.dir/peerlab/overlay/primitives.cpp.o.d"
  "CMakeFiles/peerlab_overlay.dir/peerlab/overlay/task_service.cpp.o"
  "CMakeFiles/peerlab_overlay.dir/peerlab/overlay/task_service.cpp.o.d"
  "libpeerlab_overlay.a"
  "libpeerlab_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerlab_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
