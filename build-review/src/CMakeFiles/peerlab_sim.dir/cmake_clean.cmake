file(REMOVE_RECURSE
  "CMakeFiles/peerlab_sim.dir/peerlab/sim/event_queue.cpp.o"
  "CMakeFiles/peerlab_sim.dir/peerlab/sim/event_queue.cpp.o.d"
  "CMakeFiles/peerlab_sim.dir/peerlab/sim/histogram.cpp.o"
  "CMakeFiles/peerlab_sim.dir/peerlab/sim/histogram.cpp.o.d"
  "CMakeFiles/peerlab_sim.dir/peerlab/sim/rng.cpp.o"
  "CMakeFiles/peerlab_sim.dir/peerlab/sim/rng.cpp.o.d"
  "CMakeFiles/peerlab_sim.dir/peerlab/sim/simulator.cpp.o"
  "CMakeFiles/peerlab_sim.dir/peerlab/sim/simulator.cpp.o.d"
  "CMakeFiles/peerlab_sim.dir/peerlab/sim/trace.cpp.o"
  "CMakeFiles/peerlab_sim.dir/peerlab/sim/trace.cpp.o.d"
  "libpeerlab_sim.a"
  "libpeerlab_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerlab_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
