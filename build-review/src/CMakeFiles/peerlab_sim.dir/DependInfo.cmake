
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/peerlab/sim/event_queue.cpp" "src/CMakeFiles/peerlab_sim.dir/peerlab/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/peerlab_sim.dir/peerlab/sim/event_queue.cpp.o.d"
  "/root/repo/src/peerlab/sim/histogram.cpp" "src/CMakeFiles/peerlab_sim.dir/peerlab/sim/histogram.cpp.o" "gcc" "src/CMakeFiles/peerlab_sim.dir/peerlab/sim/histogram.cpp.o.d"
  "/root/repo/src/peerlab/sim/rng.cpp" "src/CMakeFiles/peerlab_sim.dir/peerlab/sim/rng.cpp.o" "gcc" "src/CMakeFiles/peerlab_sim.dir/peerlab/sim/rng.cpp.o.d"
  "/root/repo/src/peerlab/sim/simulator.cpp" "src/CMakeFiles/peerlab_sim.dir/peerlab/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/peerlab_sim.dir/peerlab/sim/simulator.cpp.o.d"
  "/root/repo/src/peerlab/sim/trace.cpp" "src/CMakeFiles/peerlab_sim.dir/peerlab/sim/trace.cpp.o" "gcc" "src/CMakeFiles/peerlab_sim.dir/peerlab/sim/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/peerlab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
