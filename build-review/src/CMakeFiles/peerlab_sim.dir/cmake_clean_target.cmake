file(REMOVE_RECURSE
  "libpeerlab_sim.a"
)
