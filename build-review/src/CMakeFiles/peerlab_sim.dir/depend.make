# Empty dependencies file for peerlab_sim.
# This may be replaced when dependencies are built.
