file(REMOVE_RECURSE
  "CMakeFiles/peerlab_stats.dir/peerlab/stats/counters.cpp.o"
  "CMakeFiles/peerlab_stats.dir/peerlab/stats/counters.cpp.o.d"
  "CMakeFiles/peerlab_stats.dir/peerlab/stats/history.cpp.o"
  "CMakeFiles/peerlab_stats.dir/peerlab/stats/history.cpp.o.d"
  "CMakeFiles/peerlab_stats.dir/peerlab/stats/peer_statistics.cpp.o"
  "CMakeFiles/peerlab_stats.dir/peerlab/stats/peer_statistics.cpp.o.d"
  "CMakeFiles/peerlab_stats.dir/peerlab/stats/window.cpp.o"
  "CMakeFiles/peerlab_stats.dir/peerlab/stats/window.cpp.o.d"
  "libpeerlab_stats.a"
  "libpeerlab_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerlab_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
