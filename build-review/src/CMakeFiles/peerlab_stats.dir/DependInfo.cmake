
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/peerlab/stats/counters.cpp" "src/CMakeFiles/peerlab_stats.dir/peerlab/stats/counters.cpp.o" "gcc" "src/CMakeFiles/peerlab_stats.dir/peerlab/stats/counters.cpp.o.d"
  "/root/repo/src/peerlab/stats/history.cpp" "src/CMakeFiles/peerlab_stats.dir/peerlab/stats/history.cpp.o" "gcc" "src/CMakeFiles/peerlab_stats.dir/peerlab/stats/history.cpp.o.d"
  "/root/repo/src/peerlab/stats/peer_statistics.cpp" "src/CMakeFiles/peerlab_stats.dir/peerlab/stats/peer_statistics.cpp.o" "gcc" "src/CMakeFiles/peerlab_stats.dir/peerlab/stats/peer_statistics.cpp.o.d"
  "/root/repo/src/peerlab/stats/window.cpp" "src/CMakeFiles/peerlab_stats.dir/peerlab/stats/window.cpp.o" "gcc" "src/CMakeFiles/peerlab_stats.dir/peerlab/stats/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/peerlab_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/peerlab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
