file(REMOVE_RECURSE
  "libpeerlab_stats.a"
)
