# Empty compiler generated dependencies file for peerlab_stats.
# This may be replaced when dependencies are built.
