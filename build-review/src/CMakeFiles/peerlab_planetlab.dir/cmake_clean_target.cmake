file(REMOVE_RECURSE
  "libpeerlab_planetlab.a"
)
