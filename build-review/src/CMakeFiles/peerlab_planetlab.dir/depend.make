# Empty dependencies file for peerlab_planetlab.
# This may be replaced when dependencies are built.
