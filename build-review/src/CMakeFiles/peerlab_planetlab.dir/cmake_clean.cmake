file(REMOVE_RECURSE
  "CMakeFiles/peerlab_planetlab.dir/peerlab/planetlab/catalog.cpp.o"
  "CMakeFiles/peerlab_planetlab.dir/peerlab/planetlab/catalog.cpp.o.d"
  "CMakeFiles/peerlab_planetlab.dir/peerlab/planetlab/deployment.cpp.o"
  "CMakeFiles/peerlab_planetlab.dir/peerlab/planetlab/deployment.cpp.o.d"
  "CMakeFiles/peerlab_planetlab.dir/peerlab/planetlab/profiles.cpp.o"
  "CMakeFiles/peerlab_planetlab.dir/peerlab/planetlab/profiles.cpp.o.d"
  "libpeerlab_planetlab.a"
  "libpeerlab_planetlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerlab_planetlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
