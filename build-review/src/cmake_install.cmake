# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/libpeerlab_common.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/libpeerlab_sim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/libpeerlab_net.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/libpeerlab_transport.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/libpeerlab_jxta.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/libpeerlab_stats.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/libpeerlab_tasks.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/libpeerlab_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/libpeerlab_overlay.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/libpeerlab_planetlab.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build-review/src/libpeerlab_experiments.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include" TYPE DIRECTORY FILES "/root/repo/src/peerlab" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/peerlab/peerlabTargets.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/peerlab/peerlabTargets.cmake"
         "/root/repo/build-review/src/CMakeFiles/Export/d2f1d640d353bff8dcdef42a4afa4944/peerlabTargets.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/peerlab/peerlabTargets-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/peerlab/peerlabTargets.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/peerlab" TYPE FILE FILES "/root/repo/build-review/src/CMakeFiles/Export/d2f1d640d353bff8dcdef42a4afa4944/peerlabTargets.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ww][Ii][Tt][Hh][Dd][Ee][Bb][Ii][Nn][Ff][Oo])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/peerlab" TYPE FILE FILES "/root/repo/build-review/src/CMakeFiles/Export/d2f1d640d353bff8dcdef42a4afa4944/peerlabTargets-relwithdebinfo.cmake")
  endif()
endif()

