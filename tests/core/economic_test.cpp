#include "peerlab/core/economic.hpp"

#include <gtest/gtest.h>

#include "peerlab/common/check.hpp"

namespace peerlab::core {
namespace {

PeerSnapshot peer(std::uint64_t id, bool idle = true, int queued = 0) {
  PeerSnapshot p;
  p.peer = PeerId(id);
  p.node = NodeId(id);
  p.cpu_ghz = 1.0;
  p.price_per_cpu_second = 1.0;
  p.idle = idle;
  p.queued_tasks = queued;
  return p;
}

SelectionContext task_ctx(GigaCycles work = 60.0) {
  SelectionContext ctx;
  ctx.purpose = SelectionContext::Purpose::kTaskExecution;
  ctx.work = work;
  return ctx;
}

TEST(Economic, PrefersIdlePeersOverBusyOnes) {
  EconomicSchedulingModel model;
  std::vector<PeerSnapshot> peers{peer(1, /*idle=*/false, /*queued=*/3), peer(2, true, 0)};
  const auto ranking = model.rank(peers, task_ctx());
  ASSERT_FALSE(ranking.empty());
  EXPECT_EQ(ranking.front(), PeerId(2));
  // With prefer_idle, the busy peer is excluded entirely.
  EXPECT_EQ(ranking.size(), 1u);
}

TEST(Economic, FallsBackToBusyPeersWhenNoneIdle) {
  EconomicSchedulingModel model;
  std::vector<PeerSnapshot> peers{peer(1, false, 5), peer(2, false, 1)};
  const auto ranking = model.rank(peers, task_ctx());
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking.front(), PeerId(2));  // shorter backlog wins
}

TEST(Economic, PreferIdleDisabledRanksEveryone) {
  EconomicConfig cfg;
  cfg.prefer_idle = false;
  EconomicSchedulingModel model(cfg);
  std::vector<PeerSnapshot> peers{peer(1, false, 3), peer(2, true, 0)};
  EXPECT_EQ(model.rank(peers, task_ctx()).size(), 2u);
}

TEST(Economic, OfflinePeersAreNeverRanked) {
  EconomicSchedulingModel model;
  auto offline = peer(1);
  offline.online = false;
  std::vector<PeerSnapshot> peers{offline, peer(2)};
  const auto ranking = model.rank(peers, task_ctx());
  ASSERT_EQ(ranking.size(), 1u);
  EXPECT_EQ(ranking[0], PeerId(2));
}

TEST(Economic, ReadyTimeGrowsWithBacklogUsingHistory) {
  stats::HistoryStore history;
  stats::TaskRecord rec;
  rec.task = TaskId(1);
  rec.peer = PeerId(1);
  rec.submitted = 0.0;
  rec.started = 0.0;
  rec.finished = 10.0;  // tasks take 10 s on this peer
  rec.ok = true;
  rec.work = 10.0;
  history.record_task(rec);

  EconomicSchedulingModel model;
  auto busy = peer(1, /*idle=*/false, /*queued=*/2);
  busy.history = &history;
  // 2 queued + 0.5 in-flight, 10 s each.
  EXPECT_NEAR(model.estimate_ready_time(busy), 25.0, 1e-9);
  auto idle = peer(1, true, 0);
  idle.history = &history;
  EXPECT_DOUBLE_EQ(model.estimate_ready_time(idle), 0.0);
}

TEST(Economic, ReadyTimeUsesFallbackWithoutHistory) {
  EconomicConfig cfg;
  cfg.default_execution_estimate = 30.0;
  EconomicSchedulingModel model(cfg);
  auto busy = peer(1, false, 1);
  EXPECT_NEAR(model.estimate_ready_time(busy), 1.5 * 30.0, 1e-9);
}

TEST(Economic, ServiceTimeUsesHistoricalSpeed) {
  stats::HistoryStore history;
  stats::TaskRecord rec;
  rec.task = TaskId(1);
  rec.peer = PeerId(1);
  rec.started = 0.0;
  rec.finished = 30.0;
  rec.ok = true;
  rec.work = 60.0;  // 2 GHz effective
  history.record_task(rec);

  EconomicSchedulingModel model;
  auto p = peer(1);
  p.cpu_ghz = 1.0;  // advertised slower than observed
  p.history = &history;
  // 120 Gcycles at 2 GHz = 60 s.
  EXPECT_NEAR(model.estimate_service_time(p, task_ctx(120.0)), 60.0, 1e-9);
}

TEST(Economic, ServiceTimeIncludesTransferForPayloads) {
  EconomicConfig cfg;
  cfg.default_rate_estimate = 8.0;
  EconomicSchedulingModel model(cfg);
  SelectionContext ctx;
  ctx.purpose = SelectionContext::Purpose::kFileTransfer;
  ctx.payload_size = megabytes(1.0);  // 1 s at 8 Mbit/s
  EXPECT_NEAR(model.estimate_service_time(peer(1), ctx), 1.0, 1e-9);
}

TEST(Economic, FasterCpuBreaksTies) {
  EconomicSchedulingModel model;
  auto slow = peer(1);
  auto fast = peer(2);
  fast.cpu_ghz = 3.0;
  // Same price, no history, no work => identical completion and cost.
  std::vector<PeerSnapshot> peers{slow, fast};
  SelectionContext ctx;
  const auto ranking = model.rank(peers, ctx);
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking.front(), PeerId(2));
}

TEST(Economic, CheaperPeerWinsWhenCostDominates) {
  EconomicConfig cfg;
  cfg.time_weight = 0.0;
  cfg.cost_weight = 1.0;
  EconomicSchedulingModel model(cfg);
  auto pricey = peer(1);
  pricey.price_per_cpu_second = 10.0;
  auto cheap = peer(2);
  cheap.price_per_cpu_second = 1.0;
  std::vector<PeerSnapshot> peers{pricey, cheap};
  EXPECT_EQ(model.rank(peers, task_ctx()).front(), PeerId(2));
}

TEST(Economic, FasterPeerWinsWhenTimeDominates) {
  EconomicConfig cfg;
  cfg.time_weight = 1.0;
  cfg.cost_weight = 0.0;
  EconomicSchedulingModel model(cfg);
  auto slow_cheap = peer(1);
  slow_cheap.cpu_ghz = 0.5;
  slow_cheap.price_per_cpu_second = 0.1;
  auto fast_pricey = peer(2);
  fast_pricey.cpu_ghz = 3.0;
  fast_pricey.price_per_cpu_second = 10.0;
  std::vector<PeerSnapshot> peers{slow_cheap, fast_pricey};
  EXPECT_EQ(model.rank(peers, task_ctx()).front(), PeerId(2));
}

TEST(Economic, BudgetFiltersExpensivePeers) {
  EconomicSchedulingModel model;
  auto pricey = peer(1);
  pricey.price_per_cpu_second = 100.0;
  auto cheap = peer(2);
  std::vector<PeerSnapshot> peers{pricey, cheap};
  auto ctx = task_ctx(60.0);  // 60 s of CPU at 1 GHz
  ctx.budget = 100.0;         // pricey peer would cost 6000
  const auto ranking = model.rank(peers, ctx);
  ASSERT_EQ(ranking.size(), 1u);
  EXPECT_EQ(ranking[0], PeerId(2));
}

TEST(Economic, DeadlineFiltersSlowPeers) {
  EconomicSchedulingModel model;
  auto slow = peer(1);
  slow.cpu_ghz = 0.1;  // 600 s for the work
  auto fast = peer(2);
  fast.cpu_ghz = 2.0;  // 30 s
  std::vector<PeerSnapshot> peers{slow, fast};
  auto ctx = task_ctx(60.0);
  ctx.now = 0.0;
  ctx.deadline = 100.0;
  const auto ranking = model.rank(peers, ctx);
  ASSERT_EQ(ranking.size(), 1u);
  EXPECT_EQ(ranking[0], PeerId(2));
}

TEST(Economic, AllInfeasibleStillOffersLeastBad) {
  EconomicSchedulingModel model;
  auto a = peer(1);
  a.cpu_ghz = 0.1;
  auto b = peer(2);
  b.cpu_ghz = 0.2;
  std::vector<PeerSnapshot> peers{a, b};
  auto ctx = task_ctx(600.0);
  ctx.deadline = 1.0;  // nobody makes it
  const auto ranking = model.rank(peers, ctx);
  ASSERT_EQ(ranking.size(), 2u);  // broker never refuses service
  EXPECT_EQ(ranking.front(), PeerId(2));
}

TEST(Economic, RejectsDegenerateConfigs) {
  EconomicConfig bad;
  bad.time_weight = 0.0;
  bad.cost_weight = 0.0;
  EXPECT_THROW(EconomicSchedulingModel{bad}, InvariantError);
  bad = EconomicConfig{};
  bad.history_depth = 0;
  EXPECT_THROW(EconomicSchedulingModel{bad}, InvariantError);
  bad = EconomicConfig{};
  bad.default_rate_estimate = 0.0;
  EXPECT_THROW(EconomicSchedulingModel{bad}, InvariantError);
}

TEST(Economic, NameIsStable) {
  EXPECT_EQ(EconomicSchedulingModel{}.name(), "economic");
}

}  // namespace
}  // namespace peerlab::core
