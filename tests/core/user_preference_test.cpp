#include "peerlab/core/user_preference.hpp"

#include <gtest/gtest.h>

#include "peerlab/common/check.hpp"

namespace peerlab::core {
namespace {

std::vector<PeerSnapshot> peers(std::initializer_list<std::uint64_t> ids) {
  std::vector<PeerSnapshot> out;
  for (const auto id : ids) {
    PeerSnapshot p;
    p.peer = PeerId(id);
    p.node = NodeId(id);
    out.push_back(p);
  }
  return out;
}

TEST(UserPreference, ExplicitOrderIsHonoured) {
  UserPreferenceModel model({PeerId(3), PeerId(1), PeerId(2)});
  SelectionContext ctx;
  const auto candidates = peers({1, 2, 3});
  const auto ranking = model.rank(candidates, ctx);
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_EQ(ranking[0], PeerId(3));
  EXPECT_EQ(ranking[1], PeerId(1));
  EXPECT_EQ(ranking[2], PeerId(2));
}

TEST(UserPreference, UnlistedPeersRankAfterListedOnes) {
  UserPreferenceModel model({PeerId(5)});
  SelectionContext ctx;
  const auto candidates = peers({4, 5, 6});
  const auto ranking = model.rank(candidates, ctx);
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_EQ(ranking[0], PeerId(5));
  EXPECT_EQ(ranking[1], PeerId(4));  // unlisted, by id
  EXPECT_EQ(ranking[2], PeerId(6));
}

TEST(UserPreference, IgnoresCurrentPeerState) {
  // The paper's stated drawback: current load does not matter.
  UserPreferenceModel model({PeerId(1), PeerId(2)});
  auto candidates = peers({1, 2});
  candidates[0].idle = false;
  candidates[0].queued_tasks = 50;
  candidates[0].active_transfers = 10;
  SelectionContext ctx;
  EXPECT_EQ(model.rank(candidates, ctx).front(), PeerId(1));
}

TEST(UserPreference, OfflinePeersStillExcluded) {
  UserPreferenceModel model({PeerId(1), PeerId(2)});
  auto candidates = peers({1, 2});
  candidates[0].online = false;
  SelectionContext ctx;
  const auto ranking = model.rank(candidates, ctx);
  ASSERT_EQ(ranking.size(), 1u);
  EXPECT_EQ(ranking[0], PeerId(2));
}

TEST(UserPreference, QuickPeerRanksByHistoricalQuickness) {
  stats::HistoryStore history;
  history.record_response_time(PeerId(1), 5.0);
  history.record_response_time(PeerId(2), 0.1);
  history.record_response_time(PeerId(3), 1.0);
  const auto model =
      UserPreferenceModel::quick_peer(history, {PeerId(1), PeerId(2), PeerId(3)});
  ASSERT_EQ(model.preference_order().size(), 3u);
  EXPECT_EQ(model.preference_order()[0], PeerId(2));
  EXPECT_EQ(model.preference_order()[1], PeerId(3));
  EXPECT_EQ(model.preference_order()[2], PeerId(1));
}

TEST(UserPreference, QuickPeerUsesTransferRatesToo) {
  stats::HistoryStore history;
  // Same response time; peer 2 transfers much faster.
  history.record_response_time(PeerId(1), 0.5);
  history.record_response_time(PeerId(2), 0.5);
  stats::TransferRecord slow;
  slow.transfer = TransferId(1);
  slow.peer = PeerId(1);
  slow.size = megabytes(1.0);
  slow.duration = 8.0;  // 1 Mbit/s
  slow.ok = true;
  history.record_transfer(slow);
  auto fast = slow;
  fast.peer = PeerId(2);
  fast.duration = 1.0;  // 8 Mbit/s
  history.record_transfer(fast);
  const auto model = UserPreferenceModel::quick_peer(history, {PeerId(1), PeerId(2)});
  EXPECT_EQ(model.preference_order()[0], PeerId(2));
}

TEST(UserPreference, QuickPeerPutsUnknownPeersLast) {
  stats::HistoryStore history;
  history.record_response_time(PeerId(2), 0.2);
  const auto model = UserPreferenceModel::quick_peer(history, {PeerId(1), PeerId(2)});
  EXPECT_EQ(model.preference_order()[0], PeerId(2));
  EXPECT_EQ(model.preference_order()[1], PeerId(1));
}

TEST(UserPreference, QuickPeerSnapshotIsStatic) {
  stats::HistoryStore history;
  history.record_response_time(PeerId(1), 0.1);
  history.record_response_time(PeerId(2), 9.0);
  auto model = UserPreferenceModel::quick_peer(history, {PeerId(1), PeerId(2)});
  // The world changes: peer 2 becomes the quick one.
  for (int i = 0; i < 100; ++i) history.record_response_time(PeerId(2), 0.01);
  // The frozen model still prefers peer 1.
  SelectionContext ctx;
  const auto candidates = peers({1, 2});
  EXPECT_EQ(model.rank(candidates, ctx).front(), PeerId(1));
}

TEST(UserPreference, RejectsInvalidIdsInOrder) {
  EXPECT_THROW(UserPreferenceModel({PeerId(1), PeerId{}}), InvariantError);
}

TEST(UserPreference, NameIsStable) {
  EXPECT_EQ(UserPreferenceModel({}).name(), "user-preference");
}

}  // namespace
}  // namespace peerlab::core
